// Ablation: iteration schedule x data placement (the §2 design space).
//
// §2: co-location is the most powerful optimization WHEN threads have a
// fixed binding to data; "in cases where there is not a fixed binding
// between threads and data ... using memory interleaving to avoid
// contention for a single NUMA domain may be beneficial". This ablation
// measures the full cross product on one kernel: under static scheduling
// the block-wise first touch wins big; under dynamic scheduling block-wise
// placement loses its meaning (chunks land on arbitrary threads) and
// interleaving becomes the best available placement. The advisor's pattern
// classification tracks the regime change.

#include "apps/common.hpp"
#include "bench_common.hpp"
#include "simrt/omp.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

enum class Placement { kMaster, kBlockwise, kInterleave };

std::string_view to_string(Placement p) {
  switch (p) {
    case Placement::kMaster: return "master first-touch (baseline)";
    case Placement::kBlockwise: return "block-wise parallel first touch";
    case Placement::kInterleave: return "interleave";
  }
  return "?";
}

constexpr std::uint32_t kThreads = 48;
constexpr std::uint64_t kElems = kThreads * 4 * apps::kElemsPerPage;

numasim::Cycles run_cell(simrt::Schedule schedule, Placement placement,
                         core::PatternKind* pattern_out = nullptr) {
  simrt::Machine m(numasim::amd_magny_cours());
  std::optional<core::Profiler> profiler;
  if (pattern_out != nullptr) {
    core::ProfilerConfig cfg = ibs_config(211);
    profiler.emplace(m, cfg);
  }

  simos::VAddr data = 0;
  const simos::PolicySpec policy = placement == Placement::kInterleave
                                       ? simos::PolicySpec::interleave()
                                       : simos::PolicySpec::first_touch();
  parallel_region(m, 1, "alloc", {},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    data = t.malloc(kElems * 8, "grid", policy);
                    co_return;
                  });
  if (placement == Placement::kBlockwise) {
    parallel_region(m, kThreads, "init._omp", {},
                    [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                      const apps::Slice s =
                          apps::block_slice(kElems, i, kThreads);
                      apps::store_lines(t, data, s.begin, s.end);
                      co_return;
                    });
  } else {
    parallel_region(m, 1, "init", {},
                    [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                      apps::store_lines(t, data, 0, kElems);
                      co_return;
                    });
  }

  const numasim::Cycles before = m.elapsed();
  for (int sweep = 0; sweep < 4; ++sweep) {
    simrt::parallel_for(m, kThreads, "compute._omp", {}, kElems / 8,
                        schedule, 16,
                        [&](simrt::SimThread& t, std::uint64_t i) {
                          t.load(apps::elem_addr(data, i * 8));
                          t.exec(2);
                          t.store(apps::elem_addr(data, i * 8));
                        });
  }
  const numasim::Cycles compute = m.elapsed() - before;

  if (pattern_out != nullptr) {
    const core::SessionData session = profiler->snapshot();
    const core::Analyzer analyzer(session);
    const core::Advisor advisor(analyzer);
    for (const core::Variable& v : session.variables) {
      if (v.name == "grid") *pattern_out = advisor.classify(v.id).kind;
    }
  }
  return compute;
}

}  // namespace

int main() {
  heading("Ablation: iteration schedule x data placement (§2)");

  support::Table table({"schedule", "placement", "compute cycles",
                        "vs schedule's baseline"});
  std::map<simrt::Schedule, std::map<Placement, numasim::Cycles>> cells;
  for (const auto schedule :
       {simrt::Schedule::kStatic, simrt::Schedule::kDynamic}) {
    for (const auto placement :
         {Placement::kMaster, Placement::kBlockwise, Placement::kInterleave}) {
      cells[schedule][placement] = run_cell(schedule, placement);
    }
    const double base =
        static_cast<double>(cells[schedule][Placement::kMaster]);
    for (const auto placement :
         {Placement::kMaster, Placement::kBlockwise, Placement::kInterleave}) {
      const auto cycles = cells[schedule][placement];
      table.add_row({std::string(to_string(schedule)),
                     std::string(to_string(placement)),
                     support::format_count(cycles),
                     placement == Placement::kMaster
                         ? "-"
                         : speedup_str(base, static_cast<double>(cycles))});
    }
  }
  std::cout << table.to_text();

  subheading("what the tool sees");
  core::PatternKind static_pattern{}, dynamic_pattern{};
  run_cell(simrt::Schedule::kStatic, Placement::kMaster, &static_pattern);
  run_cell(simrt::Schedule::kDynamic, Placement::kMaster, &dynamic_pattern);
  std::cout << "static schedule  -> pattern: " << to_string(static_pattern)
            << " (fixed binding: co-locate)\n"
            << "dynamic schedule -> pattern: " << to_string(dynamic_pattern)
            << " (no fixed binding: balance instead)\n";

  const auto& st = cells[simrt::Schedule::kStatic];
  const auto& dy = cells[simrt::Schedule::kDynamic];
  Comparison cmp;
  cmp.add("static: block-wise co-location wins", "best placement",
          support::format_count(st.at(Placement::kBlockwise)),
          st.at(Placement::kBlockwise) < st.at(Placement::kInterleave) &&
              st.at(Placement::kBlockwise) < st.at(Placement::kMaster));
  // Under static scheduling co-location beats interleaving by a wide
  // margin; under dynamic scheduling both merely balance pages across
  // domains, so the co-location ADVANTAGE disappears (block-wise placement
  // degenerates into coarse interleaving when chunks land on arbitrary
  // threads).
  const double static_advantage =
      static_cast<double>(st.at(Placement::kInterleave)) /
      static_cast<double>(st.at(Placement::kBlockwise));
  const double dynamic_advantage =
      static_cast<double>(dy.at(Placement::kInterleave)) /
      static_cast<double>(dy.at(Placement::kBlockwise));
  cmp.add("dynamic: co-location's edge over interleave disappears",
          "ratio ~1 (vs >>1 static)",
          support::format_fixed(dynamic_advantage, 2) + "x vs " +
              support::format_fixed(static_advantage, 2) + "x static",
          dynamic_advantage < 1.2 && static_advantage > 1.5);
  cmp.add("dynamic: interleaving is beneficial (§2)", "interleave < baseline",
          support::format_count(dy.at(Placement::kInterleave)) + " < " +
              support::format_count(dy.at(Placement::kMaster)),
          dy.at(Placement::kInterleave) < dy.at(Placement::kMaster));
  cmp.add("tool detects the regime: blocked vs not-blocked",
          "pattern changes with schedule",
          std::string(to_string(static_pattern)) + " vs " +
              std::string(to_string(dynamic_pattern)),
          static_pattern == core::PatternKind::kBlocked &&
              dynamic_pattern != core::PatternKind::kBlocked);
  cmp.print();
  return 0;
}
