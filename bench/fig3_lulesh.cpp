// Figure 3 + §8.1: the LULESH case study on the AMD/IBS configuration.
//
// Reproduces the full diagnosis: program lpi_NUMA far above the 0.1
// threshold; heap variables dominated by remote latency; variable z homed
// entirely in domain 0 with M_r >> M_l; the address-centric view showing
// disjoint ascending per-thread blocks; the first-touch site in the serial
// mesh initialization; and the block-wise fix beating the interleaving fix
// (paper: +25% vs +13% on AMD).

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Figure 3 / §8.1: LULESH on AMD Magny-Cours with IBS");

  const apps::LuleshConfig base_cfg{.threads = 48,
                                    .pages_per_thread = 4,
                                    .timesteps = 16,
                                    .variant = apps::Variant::kBaseline};

  simrt::Machine machine(numasim::amd_magny_cours());
  core::Profiler profiler(machine, ibs_config(500));
  const apps::LuleshRun baseline = run_minilulesh(machine, base_cfg);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  std::cout << viewer.program_summary();
  subheading("data-centric view (bottom-right pane of Fig. 3)");
  std::cout << viewer.data_centric_table(8).to_text();
  subheading("code-centric view (bottom-left pane of Fig. 3)");
  std::cout << viewer.code_centric_table(6).to_text();
  subheading("program structure pane (augmented CCT, inclusive samples)");
  std::cout << viewer.cct_tree(core::kMemorySamples, core::kRootNode, 6,
                               0.02);

  const auto z = find_variable(data, "z");
  subheading("address-centric view of z (top-right pane of Fig. 3)");
  std::cout << viewer.address_centric_plot(z);
  subheading("first-touch report for z (the code to modify)");
  std::cout << viewer.first_touch_table(z).to_text();

  subheading("region-scoped lpi_NUMA (\"any code region\", §4.2)");
  for (const char* region :
       {"CalcForceForNodes._omp", "CalcKinematicsForElems._omp"}) {
    const auto node = analyzer.find_region(region);
    const auto lpi = node ? analyzer.region_lpi(*node) : std::nullopt;
    std::cout << region << ": "
              << (lpi ? support::format_fixed(*lpi, 3) : "n/a") << "\n";
  }

  const core::Advisor advisor(analyzer);
  const core::Recommendation rec = advisor.recommend(z);
  subheading("advisor");
  std::cout << "pattern: " << to_string(rec.guiding.kind)
            << "  action: " << to_string(rec.action) << "\nwhy: "
            << rec.rationale << "\n";

  subheading("applying the fixes (compute phase, 48 threads)");
  const auto run_variant = [&](apps::Variant v) {
    simrt::Machine m(numasim::amd_magny_cours());
    apps::LuleshConfig cfg = base_cfg;
    cfg.variant = v;
    return run_minilulesh(m, cfg);
  };
  const apps::LuleshRun blockwise = run_variant(apps::Variant::kBlockwise);
  const apps::LuleshRun interleave = run_variant(apps::Variant::kInterleave);
  support::Table speed({"variant", "compute cycles", "total cycles",
                        "compute speedup vs baseline"});
  speed.add_row({"baseline", support::format_count(baseline.compute_cycles),
                 support::format_count(baseline.total_cycles), "-"});
  speed.add_row({"blockwise (this paper's fix)",
                 support::format_count(blockwise.compute_cycles),
                 support::format_count(blockwise.total_cycles),
                 speedup_str(static_cast<double>(baseline.compute_cycles),
                             static_cast<double>(blockwise.compute_cycles))});
  speed.add_row({"interleave (prior work [21])",
                 support::format_count(interleave.compute_cycles),
                 support::format_count(interleave.total_cycles),
                 speedup_str(static_cast<double>(baseline.compute_cycles),
                             static_cast<double>(interleave.compute_cycles))});
  std::cout << speed.to_text();

  // --- paper-vs-measured -------------------------------------------------
  const auto z_report = analyzer.report(z);
  const auto nodelist_report =
      analyzer.report(find_variable(data, "nodelist"));
  const double mr_over_ml =
      z_report.match ? static_cast<double>(z_report.mismatch) /
                           static_cast<double>(z_report.match)
                     : 0.0;
  Comparison cmp;
  cmp.add("program lpi_NUMA over the 0.1 threshold", "0.466",
          support::format_fixed(analyzer.program().lpi.value_or(0), 3),
          analyzer.program().warrants_optimization);
  cmp.add("most sampled latency is remote", "74.2%",
          support::format_percent(analyzer.program().remote_latency_fraction),
          analyzer.program().remote_latency_fraction > 0.5);
  cmp.add("heap variables carry most of the remote latency", "~65-75%",
          support::format_percent(
              analyzer.kind_remote_share(core::VariableKind::kHeap)),
          analyzer.kind_remote_share(core::VariableKind::kHeap) > 0.5);
  cmp.add("z: M_r is a large multiple of M_l", "~7x",
          support::format_fixed(mr_over_ml, 1) + "x", mr_over_ml > 3.0);
  cmp.add("z: all accesses target one domain (NUMA_NODE0 = M_l + M_r)",
          "domain 0",
          z_report.single_home_domain
              ? "domain " + std::to_string(*z_report.single_home_domain)
              : "spread",
          z_report.single_home_domain.value_or(99) == 0);
  cmp.add("z: double-digit share of remote latency", "11.3%",
          support::format_percent(z_report.remote_latency_share),
          z_report.remote_latency_share > 0.05);
  cmp.add("nodelist (static) is a major offender too", "20.3%",
          support::format_percent(nodelist_report.remote_latency_share),
          nodelist_report.remote_latency_share > 0.05);
  cmp.add("advisor: blocked pattern -> block-wise first touch",
          "block-wise distribution",
          std::string(to_string(rec.action)),
          rec.action == core::Action::kBlockwiseFirstTouch);
  cmp.add("block-wise fix beats baseline", "+25%",
          speedup_str(static_cast<double>(baseline.compute_cycles),
                      static_cast<double>(blockwise.compute_cycles)),
          blockwise.compute_cycles < baseline.compute_cycles);
  cmp.add("interleave helps on AMD, but less than block-wise", "+13% < +25%",
          speedup_str(static_cast<double>(baseline.compute_cycles),
                      static_cast<double>(interleave.compute_cycles)),
          interleave.compute_cycles < baseline.compute_cycles &&
              blockwise.compute_cycles < interleave.compute_cycles);
  cmp.print();
  return 0;
}
