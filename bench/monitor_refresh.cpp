// monitor_refresh: numa_top frame pipeline throughput (observability).
//
// A live monitor pays three costs per refresh: parsing the telemetry
// stream (replay / --follow mode), folding a snapshot into the frame
// model, and rendering the visible screen. This bench records one
// deterministic minilulesh telemetry trace through the real
// TelemetryStreamer, then times each stage separately:
//   parse     load_telemetry_trace over the JSONL bytes        (MB/s)
//   refresh   feed + render per snapshot, home screen          (frames/s)
//   screens   render all five screens on the fully-fed model   (frames/s)
// with refresh and screens measured at both 80x24 and 120x40.
//
// Validity gates: the trace must hold enough snapshots to be worth
// timing, every rendered frame must be exactly `height` lines carrying
// the numa_top title, and the full refresh frame stream must be
// byte-identical across two runs (the determinism the golden lock in
// tests/monitor_test.cpp depends on) — otherwise [SHAPE MISMATCH] and
// exit 1, and the numbers are meaningless.
//
// Each timing is emitted as a machine-readable line:
//   BENCH {"bench":"monitor_refresh","stage":"refresh","size":"80x24",
//          "items":N,"bytes":B,"seconds":S,"rate_per_s":X,"mb_per_s":Y}
// and the record set is additionally written as one JSON document to
// BENCH_monitor.json (or argv[1] if given) for the perf trajectory.
#include <algorithm>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"
#include "core/telemetry_stream.hpp"
#include "monitor/model.hpp"
#include "numasim/topology.hpp"
#include "simrt/machine.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace numaprof;
using monitor::Key;
using monitor::MonitorModel;
using monitor::Screen;

// Larger than the in-test recording (tests/monitor_test.cpp) so the
// timed loops see a realistic session: ~tens of streamed intervals.
constexpr std::uint32_t kThreads = 16;
constexpr std::uint32_t kPagesPerThread = 4;
constexpr std::uint32_t kTimesteps = 8;
constexpr std::uint64_t kStreamInterval = 2000;

/// One deterministic minilulesh session streamed to JSONL — the same
/// recipe the monitor golden tests record, scaled up.
std::string record_jsonl() {
  simrt::Machine machine(numasim::test_machine(2, 4));
  support::TelemetryHub hub;
  machine.set_telemetry(&hub);

  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 50;
  cfg.event.min_sample_gap = 10'000;
  cfg.telemetry = &hub;
  core::Profiler profiler(machine, cfg);

  std::ostringstream jsonl;
  core::TelemetryStreamer::Config stream_cfg;
  stream_cfg.interval_instructions = kStreamInterval;
  stream_cfg.jsonl = &jsonl;
  stream_cfg.mechanism = profiler.sampler().mechanism();
  core::TelemetryStreamer streamer(hub, stream_cfg);
  machine.add_observer(streamer);

  apps::run_minilulesh(machine, {.threads = kThreads,
                                 .pages_per_thread = kPagesPerThread,
                                 .timesteps = kTimesteps,
                                 .variant = apps::Variant::kBaseline});

  streamer.flush(machine.elapsed());
  machine.remove_observer(streamer);
  return jsonl.str();
}

struct Record {
  std::string stage;  // parse | refresh | screens
  std::string size;   // "-" for parse, else "WxH"
  std::size_t items = 0;
  std::size_t bytes = 0;
  double seconds = 0.0;
  double rate_per_s = 0.0;
  double mb_per_s = 0.0;
};

std::string bench_json(const Record& r) {
  std::ostringstream os;
  os << "{\"bench\":\"monitor_refresh\",\"stage\":\"" << r.stage
     << "\",\"size\":\"" << r.size << "\",\"items\":" << r.items
     << ",\"bytes\":" << r.bytes << ",\"seconds\":" << r.seconds
     << ",\"rate_per_s\":" << r.rate_per_s << ",\"mb_per_s\":" << r.mb_per_s
     << "}";
  return os.str();
}

/// Min-of-reps timing; fills in the rates and prints the BENCH line.
void run_timed(std::vector<Record>& records, Record rec, int reps,
               const std::function<void()>& body) {
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    best = std::min(best, bench::time_seconds(body));
  }
  rec.seconds = best;
  rec.rate_per_s =
      best > 0.0 ? static_cast<double>(rec.items) / best : 0.0;
  rec.mb_per_s =
      best > 0.0 ? static_cast<double>(rec.bytes) / best / 1.0e6 : 0.0;
  std::cout << rec.stage << " " << rec.size << ": " << rec.items
            << " items in " << best << " s (" << rec.rate_per_s
            << " /s)\n";
  std::cout << "BENCH " << bench_json(rec) << "\n";
  records.push_back(rec);
}

MonitorModel fresh_model(const core::TelemetryTrace& trace) {
  MonitorModel model;
  if (trace.has_mechanism) model.set_mechanism(trace.mechanism);
  return model;
}

/// One full live pass: feed every snapshot, render after each. Returns
/// the concatenated frames (the determinism gate compares two of these).
std::string refresh_pass(const core::TelemetryTrace& trace,
                         std::size_t width, std::size_t height) {
  MonitorModel model = fresh_model(trace);
  std::string frames;
  for (const support::TelemetrySnapshot& snap : trace.snapshots) {
    model.feed(snap);
    frames += model.render(width, height);
  }
  return frames;
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading("monitor_refresh: numa_top parse/feed/render throughput");
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_monitor.json";
  std::vector<Record> records;
  bench::Comparison cmp;

  const std::string jsonl = record_jsonl();
  std::cout << "trace: " << jsonl.size() << " bytes of JSONL\n";

  // parse: the replay/--follow hot path.
  core::TelemetryTrace trace;
  {
    std::istringstream is(jsonl);
    trace = core::load_telemetry_trace(is);
  }
  {
    Record rec;
    rec.stage = "parse";
    rec.size = "-";
    rec.items = trace.snapshots.size();
    rec.bytes = jsonl.size();
    run_timed(records, rec, 5, [&] {
      std::istringstream is(jsonl);
      trace = core::load_telemetry_trace(is);
    });
  }
  std::ostringstream snap_count;
  snap_count << trace.snapshots.size();
  cmp.add("streamed snapshots in the trace", ">= 8", snap_count.str(),
          trace.snapshots.size() >= 8);
  if (trace.snapshots.empty()) {
    cmp.print();
    return 1;
  }

  const std::pair<std::size_t, std::size_t> sizes[] = {{80, 24}, {120, 40}};
  for (const auto& [width, height] : sizes) {
    const std::string size_str =
        std::to_string(width) + "x" + std::to_string(height);

    // refresh: the live loop — fold a snapshot, repaint the home screen.
    Record rec;
    rec.size = size_str;
    rec.stage = "refresh";
    rec.items = trace.snapshots.size();
    run_timed(records, rec, 5,
              [&] { refresh_pass(trace, width, height); });

    // Determinism and frame-shape gates on the bytes just timed.
    const std::string frames = refresh_pass(trace, width, height);
    cmp.add("refresh " + size_str + " run-to-run bytes", "identical",
            frames == refresh_pass(trace, width, height) ? "identical"
                                                         : "DIVERGED",
            frames == refresh_pass(trace, width, height));
    const std::size_t lines = static_cast<std::size_t>(
        std::count(frames.begin(), frames.end(), '\n'));
    std::ostringstream want_lines, got_lines;
    want_lines << trace.snapshots.size() * height;
    got_lines << lines;
    cmp.add("refresh " + size_str + " frame lines", want_lines.str(),
            got_lines.str(), lines == trace.snapshots.size() * height);
    cmp.add("refresh " + size_str + " title", "numa_top - IBS",
            frames.find("numa_top - IBS") != std::string::npos
                ? "numa_top - IBS"
                : "MISSING",
            frames.find("numa_top - IBS") != std::string::npos);

    // screens: render every pane of the fully-fed model (what a user
    // cycling t/d/p/v/enter pays per keystroke).
    MonitorModel model = fresh_model(trace);
    for (const support::TelemetrySnapshot& snap : trace.snapshots) {
      model.feed(snap);
    }
    const Key tour[] = {Key::kThreads, Key::kDomains, Key::kPages,
                        Key::kVars, Key::kEnter};
    constexpr int kTourPasses = 40;
    rec.stage = "screens";
    rec.items = kTourPasses * (sizeof(tour) / sizeof(tour[0]));
    run_timed(records, rec, 5, [&] {
      for (int pass = 0; pass < kTourPasses; ++pass) {
        for (const Key key : tour) {
          if (key == Key::kEnter) model.apply_key(Key::kThreads);
          model.apply_key(key);
          model.render(width, height);
        }
      }
    });
  }

  // The aggregate document for the perf trajectory.
  std::ofstream out(out_path, std::ios::binary);
  out << "{\"bench\":\"monitor_refresh\",\"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << bench_json(records[i])
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (" << records.size()
            << " records)\n";

  cmp.print();
  return cmp.all_hold() ? 0 : 1;
}
