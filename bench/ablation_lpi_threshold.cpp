// Ablation: the lpi_NUMA severity threshold (§4.2).
//
// "Experimentally, we have found that if lpi_NUMA is larger than 0.1 cycle
// per instruction, the NUMA losses ... are significant enough to warrant
// optimization." This harness measures lpi_NUMA (IBS, Eq. 2) for all four
// case-study workloads, applies each one's NUMA fix, and tabulates the
// realized speedup next to the metric's verdict — the Blackscholes row is
// the paper's own validation of the metric (§8.3).

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "bench_common.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

struct RowResult {
  std::string app;
  double lpi = 0;
  bool verdict = false;   // warrants optimization?
  double speedup = 0;     // realized gain of the fix, fraction
};

}  // namespace

int main() {
  heading("Ablation: validating the lpi_NUMA > 0.1 rule of thumb (§4.2)");

  std::vector<RowResult> rows;

  // LULESH (AMD): blockwise fix, compute phase.
  {
    RowResult r{.app = "LULESH"};
    apps::LuleshConfig cfg{.threads = 48,
                           .pages_per_thread = 4,
                           .timesteps = 16,
                           .variant = apps::Variant::kBaseline};
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, ibs_config(500));
    const auto base = run_minilulesh(m, cfg);
    const core::Analyzer an(p.snapshot());
    r.lpi = an.program().lpi.value_or(0);
    r.verdict = an.program().warrants_optimization;
    cfg.variant = apps::Variant::kBlockwise;
    simrt::Machine m2(numasim::amd_magny_cours());
    const auto fixed = run_minilulesh(m2, cfg);
    r.speedup = static_cast<double>(base.compute_cycles) /
                    static_cast<double>(fixed.compute_cycles) -
                1.0;
    rows.push_back(r);
  }

  // AMG2006 (AMD): mixed fix, solver phase.
  {
    RowResult r{.app = "AMG2006"};
    apps::AmgConfig cfg{.threads = 48,
                        .rows_per_thread = 1024,
                        .nnz_per_row = 4,
                        .relax_sweeps = 5,
                        .matvec_sweeps = 1,
                        .variant = apps::Variant::kBaseline};
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, ibs_config(500));
    const auto base = run_miniamg(m, cfg);
    const core::Analyzer an(p.snapshot());
    r.lpi = an.program().lpi.value_or(0);
    r.verdict = an.program().warrants_optimization;
    cfg.variant = apps::Variant::kBlockwise;
    simrt::Machine m2(numasim::amd_magny_cours());
    const auto fixed = run_miniamg(m2, cfg);
    r.speedup = static_cast<double>(base.solve_cycles) /
                    static_cast<double>(fixed.solve_cycles) -
                1.0;
    rows.push_back(r);
  }

  // Blackscholes (AMD): NUMA-isolated AoS fix, compute phase.
  {
    RowResult r{.app = "Blackscholes"};
    apps::BlackscholesConfig cfg;
    cfg.threads = 48;
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, ibs_config(500));
    run_miniblackscholes(m, cfg);
    const core::Analyzer an(p.snapshot());
    r.lpi = an.program().lpi.value_or(0);
    r.verdict = an.program().warrants_optimization;
    cfg.variant = apps::Variant::kAosRegroup;
    cfg.aos_with_master_init = true;
    simrt::Machine m2(numasim::amd_magny_cours());
    const auto remote = run_miniblackscholes(m2, cfg);
    cfg.aos_with_master_init = false;
    simrt::Machine m3(numasim::amd_magny_cours());
    const auto fixed = run_miniblackscholes(m3, cfg);
    r.speedup = static_cast<double>(remote.compute_cycles) /
                    static_cast<double>(fixed.compute_cycles) -
                1.0;
    rows.push_back(r);
  }

  // UMT2013 (POWER7, but measured with IBS here so lpi exists):
  {
    RowResult r{.app = "UMT2013"};
    apps::UmtConfig cfg{.threads = 32,
                        .groups = 64,
                        .corners = 32,
                        .angles = 128,
                        .sweeps = 10,
                        .variant = apps::Variant::kBaseline};
    simrt::Machine m(numasim::power7());
    core::Profiler p(m, ibs_config(500));
    const auto base = run_miniumt(m, cfg);
    const core::Analyzer an(p.snapshot());
    r.lpi = an.program().lpi.value_or(0);
    r.verdict = an.program().warrants_optimization;
    cfg.variant = apps::Variant::kParallelInit;
    simrt::Machine m2(numasim::power7());
    const auto fixed = run_miniumt(m2, cfg);
    r.speedup = static_cast<double>(base.total_cycles) /
                    static_cast<double>(fixed.total_cycles) -
                1.0;
    rows.push_back(r);
  }

  support::Table table({"application", "lpi_NUMA (Eq. 2)",
                        "verdict (>0.1?)", "realized speedup of fix",
                        "metric correct?"});
  bool all_correct = true;
  for (const RowResult& r : rows) {
    // "Correct" = the verdict predicts whether the fix pays off (>=4%).
    const bool worthwhile = r.speedup >= 0.04;
    const bool correct = worthwhile == r.verdict;
    all_correct &= correct;
    table.add_row({r.app, support::format_fixed(r.lpi, 3),
                   r.verdict ? "optimize" : "skip",
                   support::format_percent(r.speedup),
                   correct ? "yes" : "NO"});
  }
  std::cout << table.to_text();
  std::cout << (all_correct
                    ? "\n[SHAPE OK] the 0.1 cycles/instruction threshold "
                      "separates the worthwhile fixes from the pointless "
                      "one, as in §8.3.\n"
                    : "\n[SHAPE MISMATCH] the threshold misclassified a "
                      "workload.\n");
  return 0;
}
