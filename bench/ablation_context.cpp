// Ablation: whole-program vs per-context address-centric analysis (§5.2,
// the Fig. 4-vs-Fig. 5 design choice).
//
// Prior data-centric tools stop at "RAP_diag_data has many remote
// accesses". Whole-program range analysis adds a pattern — but a smeared
// one. Only the per-calling-context refinement (weighted by latency)
// recovers the dominant region's blocked pattern. This ablation compares
// the optimization each analysis level implies and measures what actually
// happens to AMG's solver time when each is applied, demonstrating that
// the context-sensitive advice is the one worth shipping.

#include "apps/miniamg.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Ablation: context-sensitive vs whole-program pattern analysis");

  const apps::AmgConfig base_cfg{.threads = 48,
                                 .rows_per_thread = 1024,
                                 .nnz_per_row = 4,
                                 .relax_sweeps = 5,
                                 .matvec_sweeps = 1,
                                 .variant = apps::Variant::kBaseline};

  simrt::Machine machine(numasim::amd_magny_cours());
  core::Profiler profiler(machine, ibs_config(500));
  const apps::AmgRun baseline = run_miniamg(machine, base_cfg);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Advisor advisor(analyzer);
  const auto id = find_variable(data, "RAP_diag_data");

  const auto whole = advisor.classify(id, core::kWholeProgram);
  const auto rec = advisor.recommend(id);

  subheading("what each analysis level concludes for RAP_diag_data");
  support::Table table({"analysis level", "observation", "implied fix"});
  table.add_row({"code/data-centric only (prior tools)",
                 "many remote accesses, indirect indexing",
                 "unknown - no layout guidance"});
  table.add_row({"whole-program ranges (naive §5.2)",
                 std::string(to_string(whole.kind)),
                 whole.kind == core::PatternKind::kFullRange ||
                         whole.kind == core::PatternKind::kIrregular
                     ? "interleave (suboptimal)"
                     : std::string(to_string(rec.action))});
  table.add_row({"per-context ranges (this paper)",
                 std::string(to_string(rec.guiding.kind)) + " in " +
                     data.frame_name(rec.guiding_context) + " (" +
                     support::format_percent(rec.guiding_context_share) +
                     " of cost)",
                 std::string(to_string(rec.action))});
  std::cout << table.to_text();

  subheading("measured outcome of each implied fix (solver time)");
  const auto run_variant = [&](apps::Variant v) {
    simrt::Machine m(numasim::amd_magny_cours());
    apps::AmgConfig cfg = base_cfg;
    cfg.variant = v;
    return run_miniamg(m, cfg);
  };
  // Interleave-everything is what a pattern-blind (or whole-program-only)
  // analysis prescribes; the mixed fix follows the per-context advice.
  const apps::AmgRun interleave = run_variant(apps::Variant::kInterleave);
  const apps::AmgRun mixed = run_variant(apps::Variant::kBlockwise);
  support::Table out({"fix", "solver cycles", "vs baseline"});
  const auto vs = [&](const apps::AmgRun& r) {
    return speedup_str(static_cast<double>(baseline.solve_cycles),
                       static_cast<double>(r.solve_cycles));
  };
  out.add_row({"baseline", support::format_count(baseline.solve_cycles), "-"});
  out.add_row({"whole-program advice (interleave everything)",
               support::format_count(interleave.solve_cycles),
               vs(interleave)});
  out.add_row({"per-context advice (blockwise CSR + interleaved vectors)",
               support::format_count(mixed.solve_cycles), vs(mixed)});
  std::cout << out.to_text();

  Comparison cmp;
  cmp.add("whole-program pattern alone is not actionable",
          "Fig. 4: no obvious pattern",
          std::string(to_string(whole.kind)),
          whole.kind != core::PatternKind::kBlocked);
  cmp.add("per-context analysis recovers the blocked pattern",
          "Fig. 5: regular", std::string(to_string(rec.guiding.kind)),
          rec.guiding.kind == core::PatternKind::kBlocked);
  cmp.add("context-guided fix beats the context-blind fix",
          "-51% vs -36%", vs(mixed) + " vs " + vs(interleave),
          mixed.solve_cycles < interleave.solve_cycles);
  cmp.print();
  return 0;
}
