// Figure 1: three common data distributions on a NUMA architecture.
//
// Distribution 1 allocates everything in one domain: locality AND
// bandwidth problems. Distribution 2 interleaves across domains: the
// centralized contention disappears, but most accesses are still remote.
// Distribution 3 co-locates data with computation: local accesses and no
// centralized contention. This harness measures all three with the same
// block-partitioned kernel and reports the quantities the figure's caption
// discusses.

#include "apps/distributions.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Figure 1: data distributions on an 8-domain NUMA machine");

  support::Table table({"distribution", "runtime (cycles)", "mean latency",
                        "remote accesses", "controller imbalance",
                        "requests per domain"});
  std::map<apps::Distribution, apps::DistributionRun> runs;
  for (const auto dist :
       {apps::Distribution::kCentralized, apps::Distribution::kInterleaved,
        apps::Distribution::kColocated}) {
    simrt::Machine machine(numasim::amd_magny_cours());
    const apps::DistributionRun run = apps::run_distribution(
        machine, {.threads = 48,
                  .pages_per_thread = 4,
                  .sweeps = 4,
                  .distribution = dist});
    std::string per_domain;
    for (const auto r : run.controller_requests) {
      if (!per_domain.empty()) per_domain += " ";
      per_domain += support::format_count(r);
    }
    table.add_row({std::string(to_string(dist)),
                   support::format_count(run.compute_cycles),
                   support::format_fixed(run.mean_access_latency, 1),
                   support::format_percent(run.remote_fraction),
                   support::format_fixed(run.controller_imbalance, 2),
                   per_domain});
    runs.emplace(dist, run);
  }
  std::cout << table.to_text();

  const auto& central = runs.at(apps::Distribution::kCentralized);
  const auto& inter = runs.at(apps::Distribution::kInterleaved);
  const auto& coloc = runs.at(apps::Distribution::kColocated);

  Comparison cmp;
  cmp.add("centralized has bandwidth problem", "imbalance ~ domain count",
          support::format_fixed(central.controller_imbalance, 1),
          central.controller_imbalance > 4.0);
  cmp.add("interleaving balances requests", "imbalance ~ 1",
          support::format_fixed(inter.controller_imbalance, 2),
          inter.controller_imbalance < 1.3);
  cmp.add("interleaving keeps the locality problem", "remote ~ (D-1)/D",
          support::format_percent(inter.remote_fraction),
          inter.remote_fraction > 0.7);
  cmp.add("co-location fixes locality", "remote ~ 0",
          support::format_percent(coloc.remote_fraction),
          coloc.remote_fraction < 0.05);
  cmp.add("co-location fastest", "coloc < interleave < centralized",
          support::format_count(coloc.compute_cycles) + " < " +
              support::format_count(inter.compute_cycles) + " < " +
              support::format_count(central.compute_cycles),
          coloc.compute_cycles < inter.compute_cycles &&
              inter.compute_cycles < central.compute_cycles);
  cmp.add("contention inflates latency (\"up to 5x\", §2 [7])",
          "centralized >> co-located",
          support::format_fixed(
              central.mean_access_latency / coloc.mean_access_latency, 2) +
              "x",
          central.mean_access_latency > 1.5 * coloc.mean_access_latency);
  cmp.print();
  return 0;
}
