// matrix_kernels: record + analyze throughput of the four grid kernels.
//
// Each scenario from the regression matrix (hash-join, graph, KV cache,
// order book) is recorded broken and fixed on the SNC preset through the
// same cell recipe the grid test uses (tests/matrix_support.hpp), and the
// analyzer is timed over the resulting profile. Two stages per variant:
//   record    full simulation + profiler capture, simulated cycles/s
//   analyze   Analyzer construction + report rendering, samples/s
// Runs are validated: every kernel's broken variant must show a strictly
// higher mismatch fraction than its fixed twin — the property the grid
// asserts cell-by-cell — otherwise the numbers describe a broken setup
// and the exit status is 1.
//
// Each timing is emitted as a machine-readable line:
//   BENCH {"bench":"matrix_kernels","kernel":"join","variant":"broken",
//          "stage":"record","samples":N,"seconds":S,"per_s":X,
//          "mismatch":M}
// and the full record set is additionally written as one JSON document to
// BENCH_matrix.json (or argv[1] if given) for the perf trajectory.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/viewer.hpp"
#include "matrix_support.hpp"

namespace {

using namespace numaprof;

constexpr const char* kTopology = "snc";

struct Record {
  std::string kernel;
  std::string variant;
  std::string stage;
  std::uint64_t samples = 0;
  double seconds = 0.0;
  double per_s = 0.0;
  double mismatch = 0.0;
};

std::string bench_json(const Record& r) {
  std::ostringstream os;
  os << "{\"bench\":\"matrix_kernels\",\"kernel\":\"" << r.kernel
     << "\",\"variant\":\"" << r.variant << "\",\"stage\":\"" << r.stage
     << "\",\"samples\":" << r.samples << ",\"seconds\":" << r.seconds
     << ",\"per_s\":" << r.per_s << ",\"mismatch\":" << r.mismatch << "}";
  return os.str();
}

void emit(std::vector<Record>& records, Record r) {
  std::cout << "  " << r.stage << " " << r.variant << ": " << r.samples
            << " samples in " << r.seconds << " s (" << r.per_s
            << " /s, mismatch " << r.mismatch << ")\n";
  std::cout << "BENCH " << bench_json(r) << "\n";
  records.push_back(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading(
      "matrix_kernels: record + analyze throughput of the grid kernels");
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_matrix.json";
  const simos::PolicySpec policy =
      matrix::policy_by_name("first-touch").spec;

  std::vector<Record> records;
  bool shape_holds = true;

  for (const apps::Scenario& scenario : apps::matrix_scenarios()) {
    bench::subheading(std::string(scenario.name) + " on " + kTopology);
    double mismatch_of[2] = {0.0, 0.0};
    for (const bool fixed : {false, true}) {
      const char* variant = fixed ? "fixed" : "broken";

      // Record: best-of-3 full simulations; keep the last capture.
      matrix::CellResult cell;
      double best_record = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        const double s = bench::time_seconds([&] {
          cell = matrix::run_cell(scenario, kTopology, policy, fixed);
        });
        best_record = std::min(best_record, s);
      }
      const core::Analyzer analyzer(cell.data);
      const double mismatch = matrix::mismatch_fraction(analyzer);
      mismatch_of[fixed ? 1 : 0] = mismatch;
      const std::uint64_t samples = analyzer.program().samples;

      Record rec;
      rec.kernel = scenario.name;
      rec.variant = variant;
      rec.stage = "record";
      rec.samples = samples;
      rec.seconds = best_record;
      rec.per_s = best_record > 0.0
                      ? static_cast<double>(samples) / best_record
                      : 0.0;
      rec.mismatch = mismatch;
      emit(records, rec);

      // Analyze: best-of-3 full pipeline + report rendering.
      double best_analyze = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        const double s = bench::time_seconds([&] {
          const core::Analyzer an(cell.data);
          core::Viewer viewer(an);
          std::ostringstream sink;
          sink << viewer.program_summary()
               << viewer.data_centric_table(10).to_text();
        });
        best_analyze = std::min(best_analyze, s);
      }
      Record arec;
      arec.kernel = scenario.name;
      arec.variant = variant;
      arec.stage = "analyze";
      arec.samples = samples;
      arec.seconds = best_analyze;
      arec.per_s = best_analyze > 0.0
                       ? static_cast<double>(samples) / best_analyze
                       : 0.0;
      arec.mismatch = mismatch;
      emit(records, arec);
    }
    if (!(mismatch_of[0] > mismatch_of[1])) {
      shape_holds = false;
      std::cerr << scenario.name << ": broken mismatch " << mismatch_of[0]
                << " not above fixed " << mismatch_of[1] << "\n";
    }
  }

  // The aggregate document for the perf trajectory.
  std::ofstream out(out_path, std::ios::binary);
  out << "{\"bench\":\"matrix_kernels\",\"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << bench_json(records[i])
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (" << records.size()
            << " records)\n";

  if (!shape_holds) {
    std::cout << "SHAPE MISMATCH: a broken kernel did not out-mismatch its "
                 "fixed twin\n";
    return 1;
  }
  std::cout << "[SHAPE OK] every broken kernel out-mismatches its fixed "
               "twin\n";
  return 0;
}
