// Ablation: interconnect fabric topology sensitivity.
//
// The flat AMD preset treats every remote pair as one hop; the real
// Magny-Cours HyperTransport fabric is partially connected (same-socket
// dies 1 hop, cross-socket 2 hops — as `numactl --hardware` distance
// tables show). This ablation reruns the LULESH case study on both
// fabrics: the centralized baseline pays the extra cross-socket hops, the
// co-located fix is fabric-insensitive (it never leaves the domain), so
// the fix's value GROWS with fabric depth — a claim the paper's
// co-location argument (§2) implies but could not isolate on hardware.

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Ablation: flat vs partially-connected interconnect fabric");

  const apps::LuleshConfig cfg{.threads = 48,
                               .pages_per_thread = 3,
                               .timesteps = 8,
                               .variant = apps::Variant::kBaseline};

  struct Row {
    const char* fabric;
    numasim::Cycles baseline;
    numasim::Cycles blockwise;
  };
  std::vector<Row> rows;
  for (const auto& [label, topo] :
       {std::pair{"flat (1 hop everywhere)", numasim::amd_magny_cours()},
        std::pair{"HT (1-2 hops)", numasim::amd_magny_cours_ht()}}) {
    simrt::Machine base_machine(topo);
    apps::LuleshConfig c = cfg;
    const auto baseline = run_minilulesh(base_machine, c);
    simrt::Machine fixed_machine(topo);
    c.variant = apps::Variant::kBlockwise;
    const auto blockwise = run_minilulesh(fixed_machine, c);
    rows.push_back(
        {label, baseline.compute_cycles, blockwise.compute_cycles});
  }

  support::Table table({"fabric", "baseline compute", "blockwise compute",
                        "co-location speedup"});
  for (const Row& row : rows) {
    table.add_row({row.fabric, support::format_count(row.baseline),
                   support::format_count(row.blockwise),
                   speedup_str(static_cast<double>(row.baseline),
                               static_cast<double>(row.blockwise))});
  }
  std::cout << table.to_text();

  const double flat_speedup =
      static_cast<double>(rows[0].baseline) / rows[0].blockwise;
  const double ht_speedup =
      static_cast<double>(rows[1].baseline) / rows[1].blockwise;

  Comparison cmp;
  cmp.add("baseline degrades on the deeper fabric", "HT > flat",
          support::format_count(rows[1].baseline) + " vs " +
              support::format_count(rows[0].baseline),
          rows[1].baseline > rows[0].baseline);
  cmp.add("co-located time is fabric-insensitive", "within 5%",
          support::format_count(rows[1].blockwise) + " vs " +
              support::format_count(rows[0].blockwise),
          std::abs(static_cast<double>(rows[1].blockwise) -
                   static_cast<double>(rows[0].blockwise)) <
              0.05 * static_cast<double>(rows[0].blockwise));
  cmp.add("co-location matters more on deeper fabrics", "HT speedup larger",
          support::format_fixed(ht_speedup, 2) + "x vs " +
              support::format_fixed(flat_speedup, 2) + "x",
          ht_speedup > flat_speedup);
  cmp.print();
  return 0;
}
