// Ablation: tool-guided source fixes vs OS automatic page migration (§9).
//
// §9: OS approaches ([6], Carrefour [7], Linux AutoNUMA) "aim to
// ameliorate NUMA problems to the greatest extent possible without source
// code changes", while this paper's tool "guides offline optimization of
// the source code which yields better code". This harness measures that
// trade on LULESH with a mini-AutoNUMA (hint-fault scans + majority
// migration, src/osopt): the OS route recovers much of the loss but pays
// scan/fault/copy overhead and only reacts after damage is done; the
// source fix starts right and wins. The combination (fix + balancer)
// shows the balancer is harmless once placement is already correct.

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"
#include "osopt/autonuma.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

struct Cell {
  numasim::Cycles compute = 0;
  std::uint64_t migrations = 0;
  std::uint64_t hint_faults = 0;
};

Cell run_cell(apps::Variant variant, bool autonuma) {
  simrt::Machine m(numasim::amd_magny_cours());
  std::optional<osopt::AutoNumaBalancer> balancer;
  if (autonuma) balancer.emplace(m);
  const apps::LuleshRun run = apps::run_minilulesh(m, {.threads = 48,
                                                 .pages_per_thread = 3,
                                                 .timesteps = 12,
                                                 .variant = variant});
  Cell cell;
  cell.compute = run.compute_cycles;
  if (balancer) {
    cell.migrations = balancer->migrations();
    cell.hint_faults = balancer->hint_faults();
  }
  return cell;
}

}  // namespace

int main() {
  heading("Ablation: source fixes vs OS auto-migration (§9)");

  const Cell baseline = run_cell(apps::Variant::kBaseline, false);
  const Cell migrated = run_cell(apps::Variant::kBaseline, true);
  const Cell fixed = run_cell(apps::Variant::kBlockwise, false);
  const Cell fixed_plus = run_cell(apps::Variant::kBlockwise, true);

  support::Table table({"configuration", "compute cycles",
                        "vs baseline", "migrations", "hint faults"});
  const auto row = [&](const char* name, const Cell& cell) {
    table.add_row({name, support::format_count(cell.compute),
                   cell.compute == baseline.compute
                       ? "-"
                       : speedup_str(static_cast<double>(baseline.compute),
                                     static_cast<double>(cell.compute)),
                   support::format_count(cell.migrations),
                   support::format_count(cell.hint_faults)});
  };
  row("baseline (no help)", baseline);
  row("baseline + AutoNuma (OS route, [6][7])", migrated);
  row("block-wise source fix (this paper's route)", fixed);
  row("source fix + AutoNuma", fixed_plus);
  std::cout << table.to_text();

  Comparison cmp;
  cmp.add("OS migration helps the broken baseline", "improves",
          speedup_str(static_cast<double>(baseline.compute),
                      static_cast<double>(migrated.compute)),
          migrated.compute < baseline.compute);
  cmp.add("the source fix yields better code (§9)", "fix < OS route",
          support::format_count(fixed.compute) + " < " +
              support::format_count(migrated.compute),
          fixed.compute < migrated.compute);
  cmp.add("OS route actually moved pages", "> 0 migrations",
          support::format_count(migrated.migrations),
          migrated.migrations > 50);
  cmp.add("balancer near-idle once placement is right",
          "few migrations on fixed code",
          support::format_count(fixed_plus.migrations),
          fixed_plus.migrations < migrated.migrations / 4);
  cmp.print();
  return 0;
}
