// Microbenchmarks of the tool's hot paths (google-benchmark).
//
// These are engineering benchmarks, not paper reproductions: they bound
// the per-event cost of the machinery that runs inside the monitored
// program (cache model lookups, sampler dispatch, CCT insertion, page-table
// queries, metric updates) and of the offline stages (merge, serialization).

#include <benchmark/benchmark.h>

#include <sstream>

#include "apps/minilulesh.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "numasim/cache.hpp"
#include "numasim/system.hpp"
#include "pmu/mechanisms.hpp"
#include "simos/page_table.hpp"
#include "support/faultinject.hpp"
#include "support/rng.hpp"

namespace {

using namespace numaprof;

void BM_CacheAccess(benchmark::State& state) {
  numasim::SetAssocCache cache({.sets = 64, .ways = 8, .hit_latency = 3});
  support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(4096)));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_SystemAccessColdStream(benchmark::State& state) {
  numasim::System system(numasim::amd_magny_cours());
  std::uint64_t addr = 0;
  numasim::Cycles now = 0;
  for (auto _ : state) {
    const auto result = system.access(0, 3, addr, false, now);
    benchmark::DoNotOptimize(result.latency);
    addr += numasim::kLineBytes;
    now += result.latency;
  }
}
BENCHMARK(BM_SystemAccessColdStream);

void BM_PageTableHomeOf(benchmark::State& state) {
  simos::PageTable table(8);
  table.register_region(0, 1 << 16, simos::PolicySpec::interleave());
  support::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.home_of(rng.next_below(1 << 16), 3));
  }
}
BENCHMARK(BM_PageTableHomeOf);

void BM_CctExtend(benchmark::State& state) {
  core::Cct cct;
  support::Rng rng(3);
  simrt::FrameId path[6];
  for (auto _ : state) {
    for (auto& f : path) {
      f = static_cast<simrt::FrameId>(rng.next_below(64));
    }
    benchmark::DoNotOptimize(cct.extend(core::kRootNode, path));
  }
}
BENCHMARK(BM_CctExtend);

void BM_MetricAdd(benchmark::State& state) {
  core::MetricStore store(8);
  support::Rng rng(4);
  for (auto _ : state) {
    store.add(static_cast<core::NodeId>(rng.next_below(4096)),
              core::kMemorySamples, 1.0);
  }
  benchmark::DoNotOptimize(store.width());
}
BENCHMARK(BM_MetricAdd);

void BM_SamplerDispatchIbs(benchmark::State& state) {
  // Cost of the per-access observer path for a hardware sampler (this is
  // what every memory access of a monitored program pays).
  auto config = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  config.period = 1 << 20;  // effectively never fire: measures the fast path
  pmu::IbsSampler sampler(config);
  simrt::Machine machine(numasim::test_machine(2, 2));
  machine.spawn([](simrt::SimThread&) -> simrt::Task { co_return; });
  machine.run();
  simrt::AccessEvent event{};
  event.addr = simos::kStaticBase;
  for (auto _ : state) {
    sampler.on_access(machine.thread(0), event);
  }
  benchmark::DoNotOptimize(sampler.samples_emitted());
}
BENCHMARK(BM_SamplerDispatchIbs);

void BM_SoftIbsStub(benchmark::State& state) {
  auto config = pmu::EventConfig::mini(pmu::Mechanism::kSoftIbs);
  pmu::SoftIbsSampler sampler(config);
  simrt::Machine machine(numasim::test_machine(2, 2));
  machine.spawn([](simrt::SimThread&) -> simrt::Task { co_return; });
  machine.run();
  simrt::AccessEvent event{};
  event.addr = simos::kStaticBase;
  for (auto _ : state) {
    sampler.on_access(machine.thread(0), event);
  }
  benchmark::DoNotOptimize(sampler.samples_emitted());
}
BENCHMARK(BM_SoftIbsStub);

void BM_ProfileSaveLoad(benchmark::State& state) {
  simrt::Machine machine(numasim::test_machine(4, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 50;
  core::Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 8,
                                 .pages_per_thread = 2,
                                 .timesteps = 2,
                                 .variant = apps::Variant::kBaseline});
  const core::SessionData data = profiler.snapshot();
  for (auto _ : state) {
    std::stringstream stream;
    core::ProfileWriter().write(data, stream);
    benchmark::DoNotOptimize(
        core::ProfileReader().read(stream).data.cct.size());
  }
}
BENCHMARK(BM_ProfileSaveLoad);

/// Serialized profile for the corrupted-load benches (built once).
const std::string& corrupted_profile_text(bool corrupted) {
  static const std::string good = [] {
    simrt::Machine machine(numasim::test_machine(4, 2));
    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
    cfg.event.period = 50;
    core::Profiler profiler(machine, cfg);
    apps::run_minilulesh(machine, {.threads = 8,
                                   .pages_per_thread = 2,
                                   .timesteps = 2,
                                   .variant = apps::Variant::kBaseline});
    return core::ProfileWriter().bytes(profiler.snapshot());
  }();
  static const std::string bad = [] {
    // Damage the body, not line 1: the bench measures recovery/diagnosis
    // cost, not the trivial magic-check rejection.
    auto plan = support::FaultPlan::parse("seed=1;bitflip=48");
    const std::string header = good.substr(0, good.find('\n') + 1);
    return header + plan.mutate_stream(good.substr(header.size()));
  }();
  return corrupted ? bad : good;
}

void BM_ProfileLoadStrictCorrupted(benchmark::State& state) {
  const std::string& text = corrupted_profile_text(true);
  std::uint64_t threw = 0, parsed = 0;
  for (auto _ : state) {
    std::stringstream stream(text);
    try {
      benchmark::DoNotOptimize(
          core::ProfileReader().read(stream).data.cct.size());
      ++parsed;
    } catch (const core::ProfileError&) {
      ++threw;
    }
  }
  benchmark::DoNotOptimize(threw + parsed);
}
BENCHMARK(BM_ProfileLoadStrictCorrupted);

void BM_ProfileLoadLenientCorrupted(benchmark::State& state) {
  const std::string& text = corrupted_profile_text(true);
  core::LoadOptions options;
  options.lenient = true;
  std::size_t diagnostics = 0;
  for (auto _ : state) {
    std::stringstream stream(text);
    const core::LoadResult result = core::ProfileReader(options).read(stream);
    diagnostics += result.diagnostics.size();
    benchmark::DoNotOptimize(result.data.cct.size());
  }
  benchmark::DoNotOptimize(diagnostics);
}
BENCHMARK(BM_ProfileLoadLenientCorrupted);

void BM_ProfileLoadLenientClean(benchmark::State& state) {
  // Baseline: what the lenient machinery costs on an undamaged stream.
  const std::string& text = corrupted_profile_text(false);
  core::LoadOptions options;
  options.lenient = true;
  for (auto _ : state) {
    std::stringstream stream(text);
    benchmark::DoNotOptimize(
        core::ProfileReader(options).read(stream).data.cct.size());
  }
}
BENCHMARK(BM_ProfileLoadLenientClean);

void BM_AnalyzerMerge(benchmark::State& state) {
  simrt::Machine machine(numasim::test_machine(4, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 50;
  core::Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 8,
                                 .pages_per_thread = 2,
                                 .timesteps = 2,
                                 .variant = apps::Variant::kBaseline});
  const core::SessionData data = profiler.snapshot();
  for (auto _ : state) {
    const core::Analyzer analyzer(data);
    benchmark::DoNotOptimize(analyzer.program().samples);
  }
}
BENCHMARK(BM_AnalyzerMerge);

}  // namespace
