// Table 2: runtime overhead of monitoring with each sampling mechanism on
// LULESH, AMG2006, and Blackscholes.
//
// Like the paper, each mechanism runs on ITS host architecture with the
// benchmark input scaled to the machine (so absolute times across rows are
// incomparable, exactly as Table 2 notes). Overhead is wall-clock of the
// monitored run vs the unmonitored run of the same configuration. The
// reproduction target is the overhead ORDERING the paper explains in §8:
// Soft-IBS worst (per-access instrumentation stub), PEBS second (online
// off-by-1 correction via binary analysis), IBS third (samples all
// instruction kinds at a high rate), MRK/DEAR/PEBS-LL low.

#include <functional>
#include <map>

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "bench_common.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

struct MechanismHost {
  pmu::Mechanism mechanism;
  numasim::Topology topology;
};

// `scale` grows per-thread work on small machines so every run is long
// enough for stable wall-clock measurement.
using AppRunner =
    std::function<void(simrt::Machine&, std::uint32_t threads, std::uint32_t scale)>;

double run_app(const numasim::Topology& topology, std::uint32_t threads,
               std::uint32_t scale, const AppRunner& app,
               const std::optional<pmu::EventConfig>& event) {
  return time_seconds([&] {
    simrt::Machine machine(topology);
    std::optional<core::Profiler> profiler;
    if (event) {
      core::ProfilerConfig cfg;
      cfg.event = *event;
      profiler.emplace(machine, cfg);
    }
    app(machine, threads, scale);
  });
}

}  // namespace

int main() {
  heading("Table 2: monitoring overhead per sampling mechanism");

  const std::vector<MechanismHost> hosts = {
      {pmu::Mechanism::kIbs, numasim::amd_magny_cours()},
      {pmu::Mechanism::kMrk, numasim::power7()},
      {pmu::Mechanism::kPebs, numasim::xeon_harpertown()},
      {pmu::Mechanism::kDear, numasim::itanium2()},
      {pmu::Mechanism::kPebsLl, numasim::ivy_bridge()},
      {pmu::Mechanism::kSoftIbs, numasim::amd_magny_cours()},
  };

  const std::map<std::string, AppRunner> apps_by_name = {
      {"LULESH",
       [](simrt::Machine& m, std::uint32_t threads, std::uint32_t scale) {
         apps::run_minilulesh(m, {.threads = threads,
                                  .pages_per_thread = 3 * scale,
                                  .timesteps = 6,
                                  .variant = apps::Variant::kBaseline});
       }},
      {"AMG2006",
       [](simrt::Machine& m, std::uint32_t threads, std::uint32_t scale) {
         apps::run_miniamg(m, {.threads = threads,
                               .rows_per_thread = 768 * scale,
                               .nnz_per_row = 4,
                               .relax_sweeps = 4,
                               .matvec_sweeps = 1,
                               .variant = apps::Variant::kBaseline});
       }},
      {"Blackscholes",
       [](simrt::Machine& m, std::uint32_t threads, std::uint32_t scale) {
         apps::BlackscholesConfig cfg;
         cfg.threads = threads;
         cfg.options_per_thread = 480 * scale;
         cfg.iterations = 48;  // overhead measurement, not lpi calibration
         apps::run_miniblackscholes(m, cfg);
       }}};

  support::Table table({"mechanism", "host", "LULESH", "AMG2006",
                        "Blackscholes"});
  std::map<std::string, std::map<pmu::Mechanism, double>> overheads;

  for (const MechanismHost& host : hosts) {
    // Per-thread count scaled to the machine, as the paper scales inputs.
    const std::uint32_t threads =
        std::min<std::uint32_t>(host.topology.core_count(), 48);
    // Scale work so even the 8-core hosts run long enough (~0.2s) for
    // stable wall-clock ratios.
    const std::uint32_t scale = threads < 16 ? 2 * (48 / threads) : 2;
    std::vector<std::string> cells = {std::string(to_string(host.mechanism)),
                                      host.topology.name};
    for (const auto& [app_name, runner] : apps_by_name) {
      // Best of 5 to damp host noise (first run also warms the binary).
      const auto best_of = [&](const std::optional<pmu::EventConfig>& e) {
        double best = run_app(host.topology, threads, scale, runner, e);
        for (int rep = 0; rep < 4; ++rep) {
          best = std::min(best,
                          run_app(host.topology, threads, scale, runner, e));
        }
        return best;
      };
      const double plain = best_of(std::nullopt);
      const double monitored =
          best_of(pmu::EventConfig::mini(host.mechanism));
      const double overhead = plain > 0 ? (monitored / plain - 1.0) : 0.0;
      overheads[app_name][host.mechanism] = overhead;
      cells.push_back(support::format_fixed(plain, 2) + "s (+" +
                      support::format_fixed(overhead * 100.0, 0) + "%)");
    }
    table.add_row(std::move(cells));
  }
  std::cout << table.to_text();

  // Shape check: averaged across apps, Soft-IBS > PEBS > IBS, and the
  // low-overhead trio stays below IBS.
  const auto mean_overhead = [&](pmu::Mechanism m) {
    double total = 0;
    for (const auto& [app, per_mech] : overheads) total += per_mech.at(m);
    return total / static_cast<double>(overheads.size());
  };
  const double soft = mean_overhead(pmu::Mechanism::kSoftIbs);
  const double pebs = mean_overhead(pmu::Mechanism::kPebs);
  const double ibs = mean_overhead(pmu::Mechanism::kIbs);
  const double low = (mean_overhead(pmu::Mechanism::kMrk) +
                      mean_overhead(pmu::Mechanism::kDear) +
                      mean_overhead(pmu::Mechanism::kPebsLl)) /
                     3.0;

  Comparison cmp;
  cmp.add("Soft-IBS overhead highest (paper +30..200%)",
          "Soft-IBS > all", support::format_percent(soft), soft > pebs);
  cmp.add("PEBS second (off-by-1 correction; paper +25..52%)",
          "PEBS > IBS", support::format_percent(pebs), pebs > ibs);
  // In this reproduction every hardware mechanism pays the same per-access
  // observer-dispatch floor, so the trio sits near IBS rather than the
  // paper's near-zero; the claim that survives the substitution is that
  // the trio does not exceed IBS materially (sample-driven costs are what
  // separate mechanisms). Wall-clock noise on sub-second runs needs the
  // small margin.
  cmp.add("MRK/DEAR/PEBS-LL not above IBS (paper +3..12%)",
          "trio mean <= IBS + noise", support::format_percent(low),
          low <= ibs + 0.05);
  cmp.print();
  return 0;
}
