// Figure 2: pinpointing first touches with page protection.
//
// The §6 protocol: the allocation wrapper masks permissions on a new heap
// block's pages; the first access traps; the handler performs code- and
// data-centric attribution from the fault context, restores permissions,
// and the access retries. This harness demonstrates the protocol on a
// workload with one master-initialized and one worker-initialized variable,
// shows the merged first-touch call paths, and measures the runtime
// overhead of the trapping (the paper's claim: low, no instrumentation of
// memory accesses required).

#include "apps/common.hpp"
#include "bench_common.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

void workload(simrt::Machine& m) {
  constexpr std::uint32_t kThreads = 16;
  constexpr std::uint64_t kPages = 32;
  constexpr std::uint64_t kElems = kPages * apps::kElemsPerPage;
  simos::VAddr master_var = 0;
  simos::VAddr worker_var = 0;
  const auto main_f = m.frames().intern("main", "app.c", 10);

  parallel_region(m, 1, "setup", {main_f},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    {
                      simrt::ScopedFrame f(t, "alloc_grid", "app.c", 20);
                      master_var = t.malloc(kElems * 8, "grid");
                    }
                    {
                      simrt::ScopedFrame f(t, "alloc_result", "app.c", 24);
                      worker_var = t.malloc(kElems * 8, "result");
                    }
                    simrt::ScopedFrame init(t, "serial_init", "app.c", 30);
                    apps::store_lines(t, master_var, 0, kElems);
                    co_return;
                  });
  parallel_region(
      m, kThreads, "compute._omp", {main_f},
      [&](simrt::SimThread& t, std::uint32_t index) -> simrt::Task {
        simrt::ScopedFrame f(t, "parallel_compute", "app.c", 40);
        const apps::Slice s = apps::block_slice(kElems, index, kThreads);
        for (std::uint64_t i = s.begin; i < s.end; i += apps::kLineStride) {
          t.load(apps::elem_addr(master_var, i));
          t.store(apps::elem_addr(worker_var, i));  // first touch here
          co_await t.tick();
        }
      });
}

}  // namespace

int main() {
  heading("Figure 2: first-touch pinpointing via page protection");

  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig cfg = ibs_config(1000);
  cfg.track_first_touch = true;
  core::Profiler profiler(machine, cfg);
  const double monitored_time = time_seconds([&] { workload(machine); });
  const core::SessionData data = profiler.snapshot();
  // Timing comparison below uses fresh machines, best of 3 per side, so
  // allocator/cache warmup does not masquerade as protocol overhead.
  const auto timed = [&](bool track) {
    double best = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::min(best, time_seconds([&] {
                        simrt::Machine m2(numasim::amd_magny_cours());
                        core::ProfilerConfig c2 = ibs_config(1000);
                        c2.track_first_touch = track;
                        core::Profiler p2(m2, c2);
                        workload(m2);
                      }));
    }
    return best;
  };
  const double tracked_time = timed(true);
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  subheading("trapped first touches");
  std::cout << "total fault records: " << data.first_touches.size() << "\n";
  for (const char* name : {"grid", "result"}) {
    const auto id = find_variable(data, name);
    std::cout << "\nvariable '" << name << "':\n"
              << viewer.first_touch_table(id).to_text();
  }

  subheading("protocol overhead");
  const double untracked_time = timed(false);
  const double overhead =
      untracked_time > 0 ? tracked_time / untracked_time - 1.0 : 0.0;
  (void)monitored_time;
  std::cout << "with first-touch tracking:    "
            << support::format_fixed(tracked_time * 1e3, 1) << " ms\n"
            << "without first-touch tracking: "
            << support::format_fixed(untracked_time * 1e3, 1) << " ms\n"
            << "overhead: " << support::format_percent(overhead) << "\n";

  Comparison cmp;
  const auto grid_sites = data.first_touch_sites(find_variable(data, "grid"));
  const auto result_sites =
      data.first_touch_sites(find_variable(data, "result"));
  cmp.add("every page of 'grid' trapped exactly once", "32 pages, one each",
          support::format_count(grid_sites.empty() ? 0 : grid_sites[0].pages),
          !grid_sites.empty() && grid_sites[0].pages == 32);
  cmp.add("'grid' first touch attributed to the serial init",
          "serial_init call path",
          grid_sites.empty() ? "?" : data.path_string(grid_sites[0].node),
          !grid_sites.empty() &&
              data.path_string(grid_sites[0].node).find("serial_init") !=
                  std::string::npos);
  cmp.add("'result' first touches merge across the parallel loop (§6)",
          "one site, 16 threads",
          result_sites.empty()
              ? "?"
              : std::to_string(result_sites[0].threads.size()) + " threads",
          !result_sites.empty() && result_sites[0].threads.size() == 16);
  cmp.add("low overhead (no access instrumentation)", "low",
          support::format_percent(overhead), overhead < 0.6);
  cmp.print();
  return 0;
}
