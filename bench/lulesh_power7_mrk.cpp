// §8.1 (POWER7/MRK half): LULESH measured with marked-event sampling.
//
// Without latency support, the diagnosis rests on M_l/M_r and the L3-miss
// mix: the paper reports 66% of L3 misses touching remote memory, heap
// arrays accounting for ~65% of remote accesses and the (promoted) stack
// variable nodelist for ~31%. The fixes behave differently than on AMD:
// block-wise still wins (+7.5%), but interleaving DEGRADES the total run
// (-16.4%) — on this 4-domain machine the centralized contention relief is
// small, while interleaving adds remote cost to the serial initialization
// and forfeits placement control.

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("§8.1 on POWER7 with MRK (PM_MRK_FROM_L3MISS)");

  // Sized so the hot arrays (4 x 64 x 4 pages = 4 MiB) exceed one POWER7
  // L3 (1 MiB) while the worker-local velocity arrays' per-domain share
  // (768 KiB) fits — as on the real machine, local data caches well and
  // the centralized arrays keep missing.
  const apps::LuleshConfig base_cfg{.threads = 64,
                                    .pages_per_thread = 4,
                                    .timesteps = 6,
                                    .variant = apps::Variant::kBaseline};

  simrt::Machine machine(numasim::power7());
  core::Profiler profiler(machine, mrk_config());
  const apps::LuleshRun baseline = run_minilulesh(machine, base_cfg);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  std::cout << viewer.program_summary();
  subheading("data-centric view (MRK samples = L3 misses)");
  std::cout << viewer.data_centric_table(8).to_text();

  const auto z = find_variable(data, "z");
  subheading("address-centric view of z (same blocked shape as on AMD)");
  std::cout << viewer.address_centric_plot(z);

  subheading("fixes (total time: init + compute phases)");
  const auto run_variant = [&](apps::Variant v) {
    simrt::Machine m(numasim::power7());
    apps::LuleshConfig cfg = base_cfg;
    cfg.variant = v;
    return run_minilulesh(m, cfg);
  };
  const apps::LuleshRun blockwise = run_variant(apps::Variant::kBlockwise);
  const apps::LuleshRun interleave = run_variant(apps::Variant::kInterleave);
  support::Table speed({"variant", "compute cycles", "total cycles",
                        "speedup (total)"});
  speed.add_row({"baseline", support::format_count(baseline.compute_cycles),
                 support::format_count(baseline.total_cycles), "-"});
  speed.add_row({"blockwise", support::format_count(blockwise.compute_cycles),
                 support::format_count(blockwise.total_cycles),
                 speedup_str(static_cast<double>(baseline.total_cycles),
                             static_cast<double>(blockwise.total_cycles))});
  speed.add_row({"interleave",
                 support::format_count(interleave.compute_cycles),
                 support::format_count(interleave.total_cycles),
                 speedup_str(static_cast<double>(baseline.total_cycles),
                             static_cast<double>(interleave.total_cycles))});
  std::cout << speed.to_text();
  std::cout << "note: the serial-init phase is a far larger share of this\n"
               "mini run than of the hour-long original, so the block-wise\n"
               "total-time gain is amplified; the direction is the claim.\n";

  // Heap vs static shares of remote accesses (M_r based: MRK has no
  // latency).
  const double heap_share =
      analyzer.kind_remote_share(core::VariableKind::kHeap);
  const double nodelist_share =
      analyzer.report(find_variable(data, "nodelist")).mismatch_share;

  Comparison cmp;
  cmp.add("majority of L3 misses are remote", "66%",
          support::format_percent(analyzer.program().remote_l3_fraction),
          analyzer.program().remote_l3_fraction > 0.5);
  cmp.add("heap arrays carry most remote accesses", "65%",
          support::format_percent(heap_share), heap_share > 0.4);
  cmp.add("nodelist carries a large share too", "31%",
          support::format_percent(nodelist_share), nodelist_share > 0.1);
  cmp.add("no lpi without latency support", "n/a for MRK",
          analyzer.program().lpi ? "present (wrong)" : "n/a",
          !analyzer.program().lpi.has_value());
  cmp.add("block-wise improves the POWER7 run", "+7.5%",
          speedup_str(static_cast<double>(baseline.total_cycles),
                      static_cast<double>(blockwise.total_cycles)),
          blockwise.total_cycles < baseline.total_cycles);
  cmp.add("interleaving DEGRADES the POWER7 run", "-16.4%",
          speedup_str(static_cast<double>(baseline.total_cycles),
                      static_cast<double>(interleave.total_cycles)),
          interleave.total_cycles > baseline.total_cycles);
  cmp.print();
  return 0;
}
