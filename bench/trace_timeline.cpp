// Extension (§10 future work 3): trace-based measurement of time-varying
// NUMA patterns.
//
// Profiles aggregate away WHEN remote accesses happen. With per-sample
// traces, the tool shows LULESH's structure over virtual time: a local
// serial-initialization phase followed by a remote-heavy compute phase in
// the baseline — and a flat, local timeline after the block-wise fix. The
// phase segmentation quantifies both.

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"
#include "core/trace.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

core::SessionData traced_run(apps::Variant variant) {
  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig cfg = ibs_config(300);
  cfg.record_trace = true;
  core::Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 48,
                           .pages_per_thread = 3,
                           .timesteps = 8,
                           .variant = variant});
  return profiler.snapshot();
}

void report(const char* title, const char* variant_name,
            const core::SessionData& data, core::TracePhase* hottest_out) {
  subheading(title);
  const core::TraceAnalysis analysis(data.trace);
  std::cout << "trace events: " << data.trace.size() << "\n|"
            << analysis.timeline(72) << "|\n";
  support::Table table({"phase", "virtual span (cycles)", "samples",
                        "character"});
  std::size_t index = 0;
  std::size_t remote_phases = 0;
  core::TracePhase hottest;
  for (const core::TracePhase& phase : analysis.phases(72, 0.5)) {
    table.add_row({std::to_string(index++),
                   support::format_count(phase.end - phase.begin),
                   support::format_count(phase.samples),
                   phase.remote_heavy ? "remote-heavy" : "local"});
    if (phase.remote_heavy) ++remote_phases;
    if (phase.remote_heavy && phase.samples > hottest.samples) {
      hottest = phase;
    }
  }
  std::cout << table.to_text();
  std::cout << "BENCH {\"bench\":\"trace_timeline\",\"variant\":\""
            << variant_name << "\",\"trace_events\":" << data.trace.size()
            << ",\"phases\":" << index
            << ",\"remote_heavy_phases\":" << remote_phases
            << ",\"hottest_remote_samples\":" << hottest.samples << "}\n";
  if (hottest_out != nullptr) *hottest_out = hottest;
}

}  // namespace

int main() {
  heading("Extension: time-varying NUMA patterns from traces (§10)");

  const core::SessionData baseline = traced_run(apps::Variant::kBaseline);
  core::TracePhase baseline_hot;
  report("baseline: local init phase, then remote-heavy compute", "baseline",
         baseline, &baseline_hot);

  const core::SessionData fixed = traced_run(apps::Variant::kBlockwise);
  core::TracePhase fixed_hot;
  report("block-wise fix: the remote-heavy phase disappears", "blockwise",
         fixed, &fixed_hot);

  Comparison cmp;
  const core::TraceAnalysis base_analysis(baseline.trace);
  const auto base_phases = base_analysis.phases(72, 0.5);
  cmp.add("baseline has distinct local and remote phases", ">= 2 phases",
          std::to_string(base_phases.size()) + " phases",
          base_phases.size() >= 2);
  cmp.add("baseline's dominant phase is remote-heavy", "compute phase",
          support::format_count(baseline_hot.samples) + " samples",
          baseline_hot.samples > 0);
  cmp.add("fix removes the remote-heavy steady state", "no remote phase",
          fixed_hot.samples == 0 ? "none"
                                 : support::format_count(fixed_hot.samples) +
                                       " samples remain",
          fixed_hot.samples < baseline_hot.samples / 4);
  cmp.print();
  return 0;
}
