// §8 summary: NUMA optimization outcomes across all four case studies.
//
// One table collecting every variant's time and speedup next to the
// paper's reported numbers. The reproduction target is direction and
// ordering, not magnitude (the substrate is a simulator).

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("§8 speedup summary across the four case studies");

  support::Table table({"application", "machine", "fix", "metric",
                        "baseline", "fixed", "measured", "paper"});

  // --- LULESH on AMD ---------------------------------------------------
  {
    apps::LuleshConfig cfg{.threads = 48,
                           .pages_per_thread = 4,
                           .timesteps = 16,
                           .variant = apps::Variant::kBaseline};
    simrt::Machine m1(numasim::amd_magny_cours());
    const auto base = run_minilulesh(m1, cfg);
    cfg.variant = apps::Variant::kBlockwise;
    simrt::Machine m2(numasim::amd_magny_cours());
    const auto block = run_minilulesh(m2, cfg);
    cfg.variant = apps::Variant::kInterleave;
    simrt::Machine m3(numasim::amd_magny_cours());
    const auto inter = run_minilulesh(m3, cfg);
    table.add_row({"LULESH", "AMD", "block-wise first touch", "compute",
                   support::format_count(base.compute_cycles),
                   support::format_count(block.compute_cycles),
                   speedup_str(static_cast<double>(base.compute_cycles),
                               static_cast<double>(block.compute_cycles)),
                   "+25%"});
    table.add_row({"LULESH", "AMD", "interleave (prior work)", "compute",
                   support::format_count(base.compute_cycles),
                   support::format_count(inter.compute_cycles),
                   speedup_str(static_cast<double>(base.compute_cycles),
                               static_cast<double>(inter.compute_cycles)),
                   "+13%"});
  }

  // --- LULESH on POWER7 --------------------------------------------------
  {
    apps::LuleshConfig cfg{.threads = 64,
                           .pages_per_thread = 3,
                           .timesteps = 6,
                           .variant = apps::Variant::kBaseline};
    simrt::Machine m1(numasim::power7());
    const auto base = run_minilulesh(m1, cfg);
    cfg.variant = apps::Variant::kBlockwise;
    simrt::Machine m2(numasim::power7());
    const auto block = run_minilulesh(m2, cfg);
    cfg.variant = apps::Variant::kInterleave;
    simrt::Machine m3(numasim::power7());
    const auto inter = run_minilulesh(m3, cfg);
    table.add_row({"LULESH", "POWER7", "block-wise first touch", "total",
                   support::format_count(base.total_cycles),
                   support::format_count(block.total_cycles),
                   speedup_str(static_cast<double>(base.total_cycles),
                               static_cast<double>(block.total_cycles)),
                   "+7.5%"});
    table.add_row({"LULESH", "POWER7", "interleave (prior work)", "total",
                   support::format_count(base.total_cycles),
                   support::format_count(inter.total_cycles),
                   speedup_str(static_cast<double>(base.total_cycles),
                               static_cast<double>(inter.total_cycles)),
                   "-16.4%"});
  }

  // --- AMG2006 -----------------------------------------------------------
  {
    apps::AmgConfig cfg{.threads = 48,
                        .rows_per_thread = 1024,
                        .nnz_per_row = 4,
                        .relax_sweeps = 5,
                        .matvec_sweeps = 1,
                        .variant = apps::Variant::kBaseline};
    simrt::Machine m1(numasim::amd_magny_cours());
    const auto base = run_miniamg(m1, cfg);
    cfg.variant = apps::Variant::kBlockwise;
    simrt::Machine m2(numasim::amd_magny_cours());
    const auto mixed = run_miniamg(m2, cfg);
    cfg.variant = apps::Variant::kInterleave;
    simrt::Machine m3(numasim::amd_magny_cours());
    const auto inter = run_miniamg(m3, cfg);
    const auto reduction = [&](const apps::AmgRun& r) {
      return "-" + support::format_percent(
                       1.0 - static_cast<double>(r.solve_cycles) /
                                 static_cast<double>(base.solve_cycles));
    };
    table.add_row({"AMG2006", "AMD", "blockwise CSR + interleaved vectors",
                   "solver",
                   support::format_count(base.solve_cycles),
                   support::format_count(mixed.solve_cycles),
                   reduction(mixed), "-51% time"});
    table.add_row({"AMG2006", "AMD", "interleave everything (prior work)",
                   "solver",
                   support::format_count(base.solve_cycles),
                   support::format_count(inter.solve_cycles),
                   reduction(inter), "-36% time"});
  }

  // --- Blackscholes --------------------------------------------------------
  {
    apps::BlackscholesConfig cfg;
    cfg.threads = 48;
    cfg.variant = apps::Variant::kAosRegroup;
    cfg.aos_with_master_init = true;
    simrt::Machine m1(numasim::amd_magny_cours());
    const auto remote = run_miniblackscholes(m1, cfg);
    cfg.aos_with_master_init = false;
    simrt::Machine m2(numasim::amd_magny_cours());
    const auto fixed = run_miniblackscholes(m2, cfg);
    table.add_row({"Blackscholes", "AMD", "AoS regroup + parallel init",
                   "compute",
                   support::format_count(remote.compute_cycles),
                   support::format_count(fixed.compute_cycles),
                   speedup_str(static_cast<double>(remote.compute_cycles),
                               static_cast<double>(fixed.compute_cycles)),
                   "<+0.1%"});
  }

  // --- UMT2013 -------------------------------------------------------------
  {
    apps::UmtConfig cfg{.threads = 32,
                        .groups = 64,
                        .corners = 32,
                        .angles = 128,
                        .sweeps = 10,
                        .variant = apps::Variant::kBaseline};
    simrt::Machine m1(numasim::power7());
    const auto base = run_miniumt(m1, cfg);
    cfg.variant = apps::Variant::kParallelInit;
    simrt::Machine m2(numasim::power7());
    const auto fixed = run_miniumt(m2, cfg);
    table.add_row({"UMT2013", "POWER7", "parallel STime init", "total",
                   support::format_count(base.total_cycles),
                   support::format_count(fixed.total_cycles),
                   speedup_str(static_cast<double>(base.total_cycles),
                               static_cast<double>(fixed.total_cycles)),
                   "+7%"});
  }

  std::cout << table.to_text();
  std::cout << "\nDirections and orderings are the reproduction target;\n"
               "magnitudes differ because the substrate is a simulator\n"
               "(see EXPERIMENTS.md for the per-row discussion).\n";
  return 0;
}
