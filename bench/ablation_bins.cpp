// Ablation: address-range bin count (§5.2).
//
// The paper: "selecting the number of bins for variables is important. A
// large number of bins can show fine-grained hot ranges but may ignore
// some important patterns"; the default is five bins for variables larger
// than five pages, configurable via an environment variable. This ablation
// profiles the AMG workload at several bin counts and reports, for
// RAP_diag_data, the per-thread hot-range width and the resulting pattern
// classification in both the whole program and the dominant region. With
// ONE bin (the naive min/max strategy) stray accesses smear every thread's
// range to nearly the whole variable and the pattern is unusable; with a
// handful of bins the hot blocks emerge.

#include "apps/miniamg.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Ablation: bin count for address-centric attribution (§5.2)");

  support::Table table({"bins", "context", "mean hot width", "pattern",
                        "action"});

  for (const std::uint32_t bins : {1u, 2u, 5u, 10u, 20u}) {
    simrt::Machine machine(numasim::amd_magny_cours());
    core::ProfilerConfig cfg = ibs_config(500);
    cfg.address_bins = bins;
    core::Profiler profiler(machine, cfg);
    apps::run_miniamg(machine, {.threads = 48,
                          .rows_per_thread = 512,
                          .nnz_per_row = 4,
                          .relax_sweeps = 5,
                          .matvec_sweeps = 1,
                          .variant = apps::Variant::kBaseline});
    const core::SessionData data = profiler.snapshot();
    const core::Analyzer analyzer(data);
    const core::Advisor advisor(analyzer);
    const auto id = find_variable(data, "RAP_diag_data");

    const auto relax_frame = [&]() -> simrt::FrameId {
      for (simrt::FrameId f = 0; f < data.frames.size(); ++f) {
        if (data.frames[f].name == "hypre_BoomerAMGRelax._omp") return f;
      }
      return core::kWholeProgram;
    }();

    for (const auto& [label, context] :
         {std::pair{"whole program", core::kWholeProgram},
          std::pair{"relax region", relax_frame}}) {
      const auto pattern = advisor.classify(id, context);
      const auto rec = advisor.recommend(id);
      table.add_row({std::to_string(bins), label,
                     support::format_fixed(pattern.mean_width, 3),
                     std::string(to_string(pattern.kind)),
                     context == core::kWholeProgram
                         ? std::string(to_string(rec.action))
                         : ""});
    }
  }
  std::cout << table.to_text();

  std::cout
      << "\nReading: in the relax region the TRUE per-thread footprint is a\n"
         "1/48-wide block. One bin cannot separate it from stray accesses\n"
         "(hot width ~1.0); five bins recover the block; more bins refine\n"
         "the estimate further at higher profile volume. The advisor's\n"
         "action is stable once bins >= 5 (the paper's default).\n";
  return 0;
}
