// Shared plumbing for the table/figure reproduction harnesses.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§8) and prints (a) the measured rows/series and (b) a
// paper-vs-measured comparison where the paper reports a number. Absolute
// values are not expected to match (the substrate is a simulator, not the
// authors' testbeds); the SHAPE — who wins, by roughly what factor, where
// crossovers fall — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"
#include "simrt/machine.hpp"
#include "support/table.hpp"

namespace numaprof::bench {

inline void heading(const std::string& title) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "================================================================\n";
}

inline void subheading(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

/// Wall-clock seconds of `fn()`.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Paper-vs-measured comparison rows.
class Comparison {
 public:
  Comparison() : table_({"quantity", "paper", "measured", "shape holds?"}) {}

  void add(std::string quantity, std::string paper, std::string measured,
           bool holds) {
    table_.add_row({std::move(quantity), std::move(paper),
                    std::move(measured), holds ? "yes" : "NO"});
    all_hold_ &= holds;
  }

  void print() {
    subheading("paper vs measured");
    std::cout << table_.to_text();
    std::cout << (all_hold_ ? "[SHAPE OK] all comparisons hold\n"
                            : "[SHAPE MISMATCH] see rows marked NO\n");
  }

  bool all_hold() const noexcept { return all_hold_; }

 private:
  support::Table table_;
  bool all_hold_ = true;
};

inline core::VariableId find_variable(const core::SessionData& data,
                                      std::string_view name) {
  for (const core::Variable& v : data.variables) {
    if (v.name == name) return v.id;
  }
  std::cerr << "bench: variable not found: " << name << "\n";
  return 0;
}

inline core::ProfilerConfig ibs_config(std::uint64_t period = 500) {
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = period;
  return cfg;
}

inline core::ProfilerConfig mrk_config(numasim::Cycles gap = 0) {
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kMrk);
  cfg.event.min_sample_gap = gap;
  return cfg;
}

inline std::string speedup_str(double baseline, double variant) {
  const double pct = (baseline / variant - 1.0) * 100.0;
  return support::format_fixed(pct, 1) + "%";
}

}  // namespace numaprof::bench
