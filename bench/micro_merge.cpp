// micro_merge: scaling harness for the parallel profile merge (§7.2).
//
// Builds a synthetic 16-thread session with a large CCT (~20k nodes) and
// dense per-thread metric stores, writes one measurement shard per thread
// (ProfileWriter::write_thread_shards) in BOTH encodings, then times
// merge_profile_files at jobs in {1, 2, 4, 8} over each set of 16 shard
// files. Three claims are checked:
//
//  - EQUIVALENCE (always enforced): the re-serialized merged profile is
//    byte-identical at every jobs value, for both encodings;
//  - FORMAT AGREEMENT (always enforced): merging binary shards produces
//    the same session as merging text shards, byte for byte;
//  - SCALING (enforced only when the host has >= 4 hardware threads): the
//    4-job merge of text shards is at least 2x faster than the serial
//    reference — the shard parses dominate and parallelize
//    embarrassingly.
//
// Besides the human-readable table, each timing is emitted as a
// machine-readable line:
//   BENCH {"bench":"micro_merge","format":"text|binary","shards":16,
//          "jobs":N,"seconds":S,"speedup":X}
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/profile_io.hpp"
#include "core/session.hpp"
#include "support/rng.hpp"

namespace {

using namespace numaprof;

constexpr std::uint32_t kShards = 16;
constexpr std::uint32_t kTopFrames = 100;
constexpr std::uint32_t kNestedFrames = 199;  // ~20k access-path nodes

/// A 16-thread session whose merge cost is dominated by real work: a CCT
/// of ~20k nodes and per-thread stores touching most of them.
core::SessionData synthetic_session() {
  support::Rng rng(0x6d657267);  // "merg"
  core::SessionData data;
  data.machine_name = "micro-merge-machine";
  data.domain_count = 4;
  data.core_count = 16;
  data.mechanism = pmu::Mechanism::kIbs;
  data.requested_mechanism = pmu::Mechanism::kIbs;
  data.sampling_period = 100;

  const std::uint32_t frame_count = kTopFrames * (kNestedFrames + 1);
  for (std::uint32_t f = 0; f < frame_count; ++f) {
    data.frames.push_back(simrt::FrameInfo{
        .name = "merge_fn" + std::to_string(f),
        .file = "micro_merge.cpp",
        .line = f,
        .kind = simrt::FrameKind::kFunction});
  }
  const core::NodeId access =
      data.cct.child(core::kRootNode, core::NodeKind::kAccess, 0);
  std::vector<core::NodeId> nodes;
  for (std::uint32_t top = 0; top < kTopFrames; ++top) {
    const core::NodeId parent =
        data.cct.child(access, core::NodeKind::kFrame, top);
    nodes.push_back(parent);
    for (std::uint32_t nested = 0; nested < kNestedFrames; ++nested) {
      nodes.push_back(data.cct.child(
          parent, core::NodeKind::kFrame,
          kTopFrames + top * kNestedFrames + nested));
    }
  }

  const core::NodeId alloc =
      data.cct.child(core::kRootNode, core::NodeKind::kAllocation, 0);
  for (std::uint32_t v = 0; v < 8; ++v) {
    core::Variable var;
    var.id = v;
    var.kind = core::VariableKind::kHeap;
    var.name = "merge_var" + std::to_string(v);
    var.start = 0x100000 + 0x100000ull * v;
    var.page_count = 32;
    var.size = var.page_count * simos::kPageBytes;
    var.variable_node =
        data.cct.child(alloc, core::NodeKind::kVariable, v);
    data.variables.push_back(var);
  }

  for (std::uint32_t tid = 0; tid < kShards; ++tid) {
    core::ThreadTotals t;
    t.per_domain.resize(data.domain_count);
    core::MetricStore store(data.domain_count);
    for (const core::NodeId node : nodes) {
      store.add(node, core::kSamples,
                static_cast<double>(1 + rng.next_below(50)));
      store.add(node, core::kNumaMatch,
                static_cast<double>(rng.next_below(30)));
      store.add(node, core::kNumaMismatch,
                static_cast<double>(rng.next_below(20)));
      store.add(node, core::kRemoteLatency, rng.next_double() * 400.0);
      t.samples += 1;
      t.per_domain[rng.next_below(data.domain_count)] += 1;
    }
    t.total_latency = rng.next_double() * 1e6;
    t.remote_latency = t.total_latency * rng.next_double();
    data.totals.push_back(std::move(t));
    data.stores.push_back(std::move(store));

    for (std::uint32_t v = 0; v < 8; ++v) {
      core::BinKey key{.context = core::kWholeProgram,
                       .variable = v,
                       .bin = 0,
                       .tid = tid};
      core::BinStats stats;
      stats.update(data.variables[v].start + rng.next_below(1 << 16),
                   rng.next_double() * 200.0);
      data.address_centric.insert(key, stats);
    }
  }
  return data;
}

std::string profile_bytes(const core::SessionData& data) {
  return core::ProfileWriter().bytes(data);
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  bench::heading("micro_merge: parallel shard merge scaling (16 shards)");

  const core::SessionData session = synthetic_session();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  bench::Comparison cmp;
  double text_speedup_at_4 = 0.0;
  double serial_seconds_by_format[2] = {0.0, 0.0};  // [text, binary]
  std::string text_merged_bytes;

  for (const ProfileFormat format :
       {ProfileFormat::kText, ProfileFormat::kBinary}) {
    const bool binary = format == ProfileFormat::kBinary;
    const char* format_name = binary ? "binary" : "text";
    const fs::path dir = fs::temp_directory_path() /
                         (std::string("numaprof_micro_merge_") + format_name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::vector<std::string> paths =
        core::ProfileWriter(format).write_thread_shards(session,
                                                        dir.string());
    std::cout << format_name << " shards: " << paths.size()
              << ", cct nodes: " << session.cct.size() << "\n";

    std::string serial_bytes;
    double serial_seconds = 0.0;
    double speedup_at_4 = 0.0;
    bool identical = true;

    bench::subheading(std::string("merge wall-clock by jobs (") +
                      format_name + " shards)");
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
      numaprof::PipelineOptions options;
      options.jobs = jobs;
      core::MergeResult merged;
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {  // min of 3: ignore cold caches
        const double s = bench::time_seconds(
            [&] { merged = core::merge_profile_files(paths, options); });
        best = std::min(best, s);
      }
      const std::string bytes = profile_bytes(merged.data);
      if (jobs == 1) {
        serial_bytes = bytes;
        serial_seconds = best;
      } else if (bytes != serial_bytes) {
        identical = false;
      }
      const double speedup = serial_seconds / best;
      if (jobs == 4) speedup_at_4 = speedup;
      std::cout << "jobs=" << jobs << ": " << best << " s  (speedup "
                << speedup << "x)\n";
      std::cout << "BENCH {\"bench\":\"micro_merge\",\"format\":\""
                << format_name << "\",\"shards\":" << paths.size()
                << ",\"jobs\":" << jobs << ",\"seconds\":" << best
                << ",\"speedup\":" << speedup << "}\n";
    }
    fs::remove_all(dir);

    serial_seconds_by_format[binary ? 1 : 0] = serial_seconds;
    cmp.add(std::string("merged bytes across jobs (") + format_name + ")",
            "byte-identical", identical ? "identical" : "DIVERGED",
            identical);
    if (binary) {
      cmp.add("binary-shard merge == text-shard merge", "byte-identical",
              serial_bytes == text_merged_bytes ? "identical" : "DIVERGED",
              serial_bytes == text_merged_bytes);
    } else {
      text_merged_bytes = serial_bytes;
      text_speedup_at_4 = speedup_at_4;
    }
  }

  if (hw >= 4) {
    std::ostringstream measured;
    measured << text_speedup_at_4 << "x";
    cmp.add("merge speedup, 4 jobs / 16 text shards", ">= 2.0x",
            measured.str(), text_speedup_at_4 >= 2.0);
  } else {
    // Scaling is meaningless without hardware parallelism; equivalence
    // (above) is still fully checked.
    cmp.add("merge speedup, 4 jobs / 16 text shards", ">= 2.0x",
            "skipped (" + std::to_string(hw) + " hw thread(s))", true);
  }
  // The binary format's reason to exist: a serial merge is load-dominated,
  // so swapping the shard encoding alone must buy an order of magnitude.
  const double format_speedup =
      serial_seconds_by_format[1] > 0.0
          ? serial_seconds_by_format[0] / serial_seconds_by_format[1]
          : 0.0;
  std::ostringstream format_measured;
  format_measured << format_speedup << "x";
  std::cout << "BENCH {\"bench\":\"micro_merge\",\"format\":\"binary\","
            << "\"shards\":" << kShards
            << ",\"jobs\":1,\"speedup_vs_text\":" << format_speedup << "}\n";
  cmp.add("serial merge, binary shards vs text shards", ">= 10x",
          format_measured.str(), format_speedup >= 10.0);
  cmp.print();
  return cmp.all_hold() ? 0 : 1;
}
