# Bench binaries land directly in build/bench/ (and nothing else does), so
# `for b in build/bench/*; do $b; done` runs every table/figure harness.
set(NUMAPROF_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(numaprof_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE numaprof_apps numaprof_core numaprof_osopt)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${NUMAPROF_BENCH_DIR})
endfunction()

numaprof_bench(table1_sampling_config)
numaprof_bench(table2_overhead)
numaprof_bench(fig1_distributions)
numaprof_bench(fig2_firsttouch)
numaprof_bench(fig3_lulesh)
numaprof_bench(lulesh_power7_mrk)
numaprof_bench(fig4_7_amg)
numaprof_bench(fig8_9_blackscholes)
numaprof_bench(fig10_umt)
numaprof_bench(speedup_summary)
numaprof_bench(ablation_bins)
numaprof_bench(ablation_context)
numaprof_bench(ablation_lpi_threshold)
numaprof_bench(trace_timeline)
numaprof_bench(ablation_fabric)
numaprof_bench(ablation_schedule)
numaprof_bench(ablation_os_migration)
numaprof_bench(micro_merge)
numaprof_bench(export_throughput)
numaprof_bench(ingest_throughput)
target_link_libraries(ingest_throughput PRIVATE numaprof_ingest)

add_executable(micro_tool_paths ${CMAKE_SOURCE_DIR}/bench/micro_tool_paths.cpp)
target_link_libraries(micro_tool_paths PRIVATE numaprof_apps numaprof_core benchmark::benchmark benchmark::benchmark_main)
set_target_properties(micro_tool_paths PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${NUMAPROF_BENCH_DIR})

# matrix_kernels has a custom main (BENCH lines + BENCH_matrix.json
# aggregate, broken-vs-fixed validity gate); it shares the grid cell
# recipe with tests/matrix_grid_test.cpp via tests/matrix_support.hpp.
add_executable(matrix_kernels ${CMAKE_SOURCE_DIR}/bench/matrix_kernels.cpp)
target_link_libraries(matrix_kernels PRIVATE numaprof_apps numaprof_core)
target_include_directories(matrix_kernels PRIVATE ${CMAKE_SOURCE_DIR}/tests)
set_target_properties(matrix_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${NUMAPROF_BENCH_DIR})

# micro_io has a custom main (BENCH lines + BENCH_io.json aggregate,
# Analyzer-report validity gate over every load path), so no
# benchmark_main here.
add_executable(micro_io ${CMAKE_SOURCE_DIR}/bench/micro_io.cpp)
target_link_libraries(micro_io PRIVATE numaprof_apps numaprof_core)
set_target_properties(micro_io PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${NUMAPROF_BENCH_DIR})

# monitor_refresh has a custom main (BENCH lines + BENCH_monitor.json
# aggregate, determinism/frame-shape validity gates), so no
# benchmark_main here.
add_executable(monitor_refresh ${CMAKE_SOURCE_DIR}/bench/monitor_refresh.cpp)
target_link_libraries(monitor_refresh PRIVATE
  numaprof_apps numaprof_core numaprof_monitor)
set_target_properties(monitor_refresh PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${NUMAPROF_BENCH_DIR})

# micro_lint has a custom main (BENCH lines + BENCH_lint.json aggregate,
# validity-checked driver/cache runs), so no benchmark_main here.
add_executable(micro_lint ${CMAKE_SOURCE_DIR}/bench/micro_lint.cpp)
target_link_libraries(micro_lint PRIVATE numaprof_lint)
set_target_properties(micro_lint PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${NUMAPROF_BENCH_DIR})
