// Figures 4-7 + §8.2: the AMG2006 case study.
//
// The whole-program address-centric view of RAP_diag_data shows no usable
// pattern (Fig. 4), because several regions access it differently. Drilling
// into the dominant parallel region (hypre_BoomerAMGRelax._omp, ~74% of the
// variable's NUMA latency) reveals clean per-thread blocks (Fig. 5) that
// direct a block-wise distribution — something code-centric analysis alone
// cannot see through the RAP_diag_data[A_diag_i[i]] indirection. The same
// holds for RAP_diag_j (Figs. 6-7). Applying the mixed fix (block-wise CSR
// + interleaved full-range vectors) beats interleaving everything:
// paper -51% vs -36% of solver time.

#include "apps/miniamg.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Figures 4-7 / §8.2: AMG2006 on AMD Magny-Cours with IBS");

  const apps::AmgConfig base_cfg{.threads = 48,
                                 .rows_per_thread = 1024,
                                 .nnz_per_row = 4,
                                 .relax_sweeps = 5,
                                 .matvec_sweeps = 1,
                                 .variant = apps::Variant::kBaseline};

  simrt::Machine machine(numasim::amd_magny_cours());
  core::Profiler profiler(machine, ibs_config(500));
  const apps::AmgRun baseline = run_miniamg(machine, base_cfg);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);
  const core::Advisor advisor(analyzer);

  std::cout << viewer.program_summary();
  subheading("data-centric view");
  std::cout << viewer.data_centric_table(8).to_text();

  // Figures 4-7: whole-program vs dominant-region views.
  const auto relax_frame = [&]() -> simrt::FrameId {
    for (simrt::FrameId f = 0; f < data.frames.size(); ++f) {
      if (data.frames[f].name == "hypre_BoomerAMGRelax._omp") return f;
    }
    return core::kWholeProgram;
  }();
  for (const char* name : {"RAP_diag_data", "RAP_diag_j"}) {
    const auto id = find_variable(data, name);
    subheading(std::string("whole-program view of ") + name +
               " (Fig. " + (std::string(name) == "RAP_diag_data" ? "4" : "6") +
               "): smeared");
    std::cout << viewer.address_centric_plot(id, core::kWholeProgram, 48);
    subheading(std::string("relax-region view of ") + name + " (Fig. " +
               (std::string(name) == "RAP_diag_data" ? "5" : "7") +
               "): regular blocks");
    std::cout << viewer.address_centric_plot(id, relax_frame, 48);
  }

  subheading("region-scoped lpi_NUMA");
  for (const char* region :
       {"hypre_BoomerAMGRelax._omp", "hypre_ParCSRMatrixMatvec._omp"}) {
    const auto node = analyzer.find_region(region);
    const auto lpi = node ? analyzer.region_lpi(*node) : std::nullopt;
    std::cout << region << ": "
              << (lpi ? support::format_fixed(*lpi, 3) : "n/a") << "\n";
  }

  subheading("advisor (uses the dominant region's pattern)");
  support::Table advice({"variable", "whole-program pattern",
                         "guiding context", "context share", "action"});
  for (const char* name :
       {"RAP_diag_data", "RAP_diag_j", "RAP_diag_i", "x_vec", "z_aux"}) {
    const auto id = find_variable(data, name);
    const auto rec = advisor.recommend(id);
    advice.add_row({name, std::string(to_string(rec.whole_program.kind)),
                    data.frame_name(rec.guiding_context),
                    support::format_percent(rec.guiding_context_share),
                    std::string(to_string(rec.action))});
  }
  std::cout << advice.to_text();

  subheading("solver-phase times");
  const auto run_variant = [&](apps::Variant v) {
    simrt::Machine m(numasim::amd_magny_cours());
    apps::AmgConfig cfg = base_cfg;
    cfg.variant = v;
    return run_miniamg(m, cfg);
  };
  const apps::AmgRun optimized = run_variant(apps::Variant::kBlockwise);
  const apps::AmgRun interleave = run_variant(apps::Variant::kInterleave);
  support::Table speed({"variant", "solver cycles", "reduction vs baseline"});
  const auto reduction = [&](const apps::AmgRun& run) {
    return support::format_percent(
        1.0 - static_cast<double>(run.solve_cycles) /
                  static_cast<double>(baseline.solve_cycles));
  };
  speed.add_row({"baseline", support::format_count(baseline.solve_cycles),
                 "-"});
  speed.add_row({"mixed fix (blockwise CSR + interleaved vectors)",
                 support::format_count(optimized.solve_cycles),
                 reduction(optimized)});
  speed.add_row({"interleave everything (prior work)",
                 support::format_count(interleave.solve_cycles),
                 reduction(interleave)});
  std::cout << speed.to_text();

  const auto rap = analyzer.report(find_variable(data, "RAP_diag_data"));
  const auto rap_rec = advisor.recommend(find_variable(data, "RAP_diag_data"));
  const double relax_share = rap_rec.guiding_context_share;
  Comparison cmp;
  cmp.add("program lpi above threshold, worse than LULESH's workload class",
          "0.92 > 0.1",
          support::format_fixed(analyzer.program().lpi.value_or(0), 3),
          analyzer.program().warrants_optimization);
  cmp.add("heap dominates remote latency", "61.8%",
          support::format_percent(
              analyzer.kind_remote_share(core::VariableKind::kHeap)),
          analyzer.kind_remote_share(core::VariableKind::kHeap) > 0.5);
  cmp.add("RAP_diag_data is a top offender", "18.6% of latency",
          support::format_percent(rap.remote_latency_share),
          rap.remote_latency_share > 0.08);
  cmp.add("whole-program pattern not directly usable (Fig. 4)",
          "no obvious pattern",
          std::string(to_string(rap_rec.whole_program.kind)),
          rap_rec.whole_program.kind != core::PatternKind::kBlocked);
  cmp.add("dominant region carries most of the variable's cost (Fig. 5)",
          "74.2%", support::format_percent(relax_share), relax_share > 0.5);
  cmp.add("regional pattern directs block-wise distribution",
          "block-wise at first touch",
          std::string(to_string(rap_rec.action)),
          rap_rec.action == core::Action::kBlockwiseFirstTouch);
  cmp.add("full-range vectors get interleaving instead", "interleave",
          std::string(to_string(
              advisor.recommend(find_variable(data, "x_vec")).action)),
          advisor.recommend(find_variable(data, "x_vec")).action ==
              core::Action::kInterleave);
  cmp.add("mixed fix reduces solver time more than interleave-everything",
          "-51% vs -36%", reduction(optimized) + " vs " + reduction(interleave),
          optimized.solve_cycles < interleave.solve_cycles &&
              interleave.solve_cycles < baseline.solve_cycles);
  cmp.print();
  return 0;
}
