// Microbenchmarks of the numalint static pass (google-benchmark).
//
// numalint is meant to run casually over whole source trees (pre-commit,
// CI), so lexing and recognition throughput matter. These benchmarks
// synthesize translation units of scaling size from realistic fragments
// (both recognized idioms) and report tokens/lines processed per second.

#include <benchmark/benchmark.h>

#include <string>

#include "lint/lexer.hpp"
#include "lint/numalint.hpp"

namespace {

using namespace numaprof;

/// Synthesizes a translation unit with `blocks` repetitions of a
/// realistic workload fragment: a serially-initialized array, a parallel
/// consumer region, and a per-thread counter (exercises L1/L2 paths).
std::string synthesize(int blocks) {
  std::string src =
      "#include <omp.h>\n"
      "struct Slot { const char* name; double* addr; bool master; };\n";
  for (int b = 0; b < blocks; ++b) {
    const std::string id = std::to_string(b);
    src += "static double grid" + id + "[1 << 16];\n"
           "static int hits" + id + "[64];\n"
           "void init" + id + "(long n) {\n"
           "  for (long i = 0; i < n; ++i) grid" + id + "[i] = 0.0;\n"
           "}\n"
           "void work" + id + "(long n) {\n"
           "  #pragma omp parallel for\n"
           "  for (long i = 0; i < n; ++i) {\n"
           "    int tid = omp_get_thread_num();\n"
           "    grid" + id + "[i] += 1.0;\n"
           "    hits" + id + "[tid] += 1;\n"
           "  }\n"
           "}\n";
  }
  return src;
}

/// DSL-idiom fragment: simulator workloads with policies and regions
/// (exercises the table/lambda/policy recognizer paths).
std::string synthesize_dsl(int blocks) {
  std::string src;
  for (int b = 0; b < blocks; ++b) {
    const std::string id = std::to_string(b);
    src += "void workload" + id +
           "(simrt::Machine& m, const Config& cfg) {\n"
           "  simos::PolicySpec policy" + id +
           " = simos::PolicySpec::interleave();\n"
           "  simos::VAddr data" + id + " = 0;\n"
           "  parallel_region(m, 1, \"init\", 0, [&](SimThread& t, "
           "uint32_t index) {\n"
           "    data" + id + " = t.malloc(cfg.elements * 8, \"data" + id +
           "\", policy" + id + ");\n"
           "    store_lines(t, data" + id + ", 0, cfg.elements);\n"
           "  });\n"
           "  parallel_region(m, cfg.threads, \"compute\", 0,\n"
           "                  [&](SimThread& t, uint32_t index) {\n"
           "    auto [lo, hi] = block_slice(cfg.elements, index, "
           "cfg.threads);\n"
           "    load_lines(t, data" + id + ", lo, hi);\n"
           "  });\n"
           "}\n";
  }
  return src;
}

void BM_LexThroughput(benchmark::State& state) {
  const std::string src = synthesize(static_cast<int>(state.range(0)));
  std::uint64_t tokens = 0;
  for (auto _ : state) {
    const lint::LexResult r = lint::lex(src);
    tokens = r.tokens.size();
    benchmark::DoNotOptimize(r.tokens.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.counters["tokens"] = static_cast<double>(tokens);
}
BENCHMARK(BM_LexThroughput)->Arg(8)->Arg(64);

void BM_LintOmpIdiom(benchmark::State& state) {
  const std::string src = synthesize(static_cast<int>(state.range(0)));
  std::size_t findings = 0;
  for (auto _ : state) {
    const lint::LintResult r = lint::lint_source(src, "bench.cpp");
    findings = r.findings.size();
    benchmark::DoNotOptimize(findings);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_LintOmpIdiom)->Arg(8)->Arg(64);

void BM_LintDslIdiom(benchmark::State& state) {
  const std::string src = synthesize_dsl(static_cast<int>(state.range(0)));
  std::size_t findings = 0;
  for (auto _ : state) {
    const lint::LintResult r = lint::lint_source(src, "bench.cpp");
    findings = r.findings.size();
    benchmark::DoNotOptimize(findings);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_LintDslIdiom)->Arg(8)->Arg(64);

}  // namespace
