// micro_lint: throughput of the numalint static pass.
//
// numalint is meant to run casually over whole source trees (pre-commit,
// CI), so lexing, per-TU recognition, and the production driver all have
// throughput budgets. Four stages are measured on synthesized trees of
// realistic fragments (both recognized idioms):
//   lex            raw tokens/bytes per second
//   lint           lint_source: per-TU L1-L4 + the interprocedural engine
//   driver         lint_paths over a file tree as --jobs scales 1,2,4,8
//   cache          the same tree cold (populate) vs warm (hit) with the
//                  incremental content-hash cache
// Driver runs are validated: every jobs value must render byte-identical
// findings, and warm cache runs must match cold ones — otherwise the
// numbers are meaningless and the exit status is 1.
//
// Each timing is emitted as a machine-readable line:
//   BENCH {"bench":"micro_lint","stage":"driver","config":"jobs=4",
//          "files":N,"bytes":B,"seconds":S,"mb_per_s":X,"findings":F}
// ("findings" is the token count for the lex stage).
// and the full record set is additionally written as one JSON document to
// BENCH_lint.json (or argv[1] if given) for the perf trajectory.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lint/lexer.hpp"
#include "lint/numalint.hpp"

namespace {

namespace fs = std::filesystem;
using namespace numaprof;

/// Synthesizes a translation unit with `blocks` repetitions of a
/// realistic workload fragment: a serially-initialized array, a parallel
/// consumer region, a per-thread counter, and a cross-function pointer
/// handoff (exercises the L1/L2 recognizers AND the dataflow summaries).
std::string synthesize(int blocks, int salt) {
  std::string src =
      "#include <omp.h>\n"
      "struct Slot { const char* name; double* addr; bool master; };\n";
  for (int b = 0; b < blocks; ++b) {
    const std::string id = std::to_string(salt * 1000 + b);
    src += "static double grid" + id + "[1 << 16];\n"
           "static int hits" + id + "[64];\n"
           "double* make" + id + "(long n) {\n"
           "  return (double*)malloc(n * sizeof(double));\n"
           "}\n"
           "void init" + id + "(double* p, long n) {\n"
           "  for (long i = 0; i < n; ++i) { grid" + id +
           "[i] = 0.0; p[i] = 0.0; }\n"
           "}\n"
           "void work" + id + "(double* p, long n) {\n"
           "  #pragma omp parallel for schedule(static)\n"
           "  for (long i = 0; i < n; ++i) {\n"
           "    int tid = omp_get_thread_num();\n"
           "    grid" + id + "[i] += p[i];\n"
           "    hits" + id + "[tid] += 1;\n"
           "  }\n"
           "}\n"
           "void run" + id + "(long n) {\n"
           "  double* p = make" + id + "(n);\n"
           "  init" + id + "(p, n);\n"
           "  work" + id + "(p, n);\n"
           "}\n";
  }
  return src;
}

/// DSL-idiom fragment: simulator workloads with policies and regions
/// (exercises the table/lambda/policy recognizer paths).
std::string synthesize_dsl(int blocks) {
  std::string src;
  for (int b = 0; b < blocks; ++b) {
    const std::string id = std::to_string(b);
    src += "void workload" + id +
           "(simrt::Machine& m, const Config& cfg) {\n"
           "  simos::PolicySpec policy" + id +
           " = simos::PolicySpec::interleave();\n"
           "  simos::VAddr data" + id + " = 0;\n"
           "  parallel_region(m, 1, \"init\", 0, [&](SimThread& t, "
           "uint32_t index) {\n"
           "    data" + id + " = t.malloc(cfg.elements * 8, \"data" + id +
           "\", policy" + id + ");\n"
           "    store_lines(t, data" + id + ", 0, cfg.elements);\n"
           "  });\n"
           "  parallel_region(m, cfg.threads, \"compute\", 0,\n"
           "                  [&](SimThread& t, uint32_t index) {\n"
           "    auto [lo, hi] = block_slice(cfg.elements, index, "
           "cfg.threads);\n"
           "    load_lines(t, data" + id + ", lo, hi);\n"
           "  });\n"
           "}\n";
  }
  return src;
}

struct Record {
  std::string stage;
  std::string config;
  std::size_t files = 0;
  std::size_t bytes = 0;
  double seconds = 0.0;
  double mb_per_s = 0.0;
  std::size_t findings = 0;
};

std::string bench_json(const Record& r) {
  std::ostringstream os;
  os << "{\"bench\":\"micro_lint\",\"stage\":\"" << r.stage
     << "\",\"config\":\"" << r.config << "\",\"files\":" << r.files
     << ",\"bytes\":" << r.bytes << ",\"seconds\":" << r.seconds
     << ",\"mb_per_s\":" << r.mb_per_s << ",\"findings\":" << r.findings
     << "}";
  return os.str();
}

Record run_stage(const std::string& stage, const std::string& config,
                 std::size_t files, std::size_t bytes, int reps,
                 const std::function<std::size_t()>& body) {
  double best = 1e100;
  std::size_t findings = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const double s = bench::time_seconds([&] { findings = body(); });
    best = std::min(best, s);
  }
  Record r;
  r.stage = stage;
  r.config = config;
  r.files = files;
  r.bytes = bytes;
  r.seconds = best;
  r.mb_per_s = best > 0.0 ? static_cast<double>(bytes) / best / 1.0e6 : 0.0;
  r.findings = findings;
  std::cout << stage << " " << config << ": " << bytes << " bytes in "
            << best << " s (" << r.mb_per_s << " MB/s, " << findings
            << " findings)\n";
  std::cout << "BENCH " << bench_json(r) << "\n";
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading("micro_lint: static pass throughput (lex/lint/driver/cache)");
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_lint.json";
  std::vector<Record> records;
  bool all_valid = true;

  // --- lex + per-TU lint on in-memory TUs --------------------------------
  bench::subheading("single translation unit");
  for (const int blocks : {8, 64}) {
    const std::string src = synthesize(blocks, 0);
    records.push_back(run_stage("lex", "blocks=" + std::to_string(blocks),
                                1, src.size(), 3, [&] {
                                  return lint::lex(src).tokens.size();
                                }));
    records.push_back(
        run_stage("lint", "omp,blocks=" + std::to_string(blocks), 1,
                  src.size(), 3, [&] {
                    return lint::lint_source(src, "bench.cpp")
                        .findings.size();
                  }));
  }
  {
    const std::string dsl = synthesize_dsl(64);
    records.push_back(run_stage("lint", "dsl,blocks=64", 1, dsl.size(), 3,
                                [&] {
                                  return lint::lint_source(dsl, "bench.cpp")
                                      .findings.size();
                                }));
  }

  // --- the production driver over a file tree ----------------------------
  // 48 files x 8 fragments each: enough work that the pool matters, small
  // enough to iterate. Findings must be byte-identical for every jobs
  // value (the driver's core contract) or the timings are meaningless.
  bench::subheading("parallel driver (lint_paths)");
  const fs::path tree = fs::temp_directory_path() / "numaprof_lint_bench";
  fs::remove_all(tree);
  fs::create_directories(tree);
  constexpr int kTreeFiles = 48;
  std::size_t tree_bytes = 0;
  std::vector<std::string> paths;
  for (int f = 0; f < kTreeFiles; ++f) {
    const std::string body = synthesize(8, f);
    const fs::path p = tree / ("tu" + std::to_string(100 + f) + ".cpp");
    std::ofstream(p, std::ios::binary) << body;
    tree_bytes += body.size();
    paths.push_back(p.string());
  }
  std::string reference;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    std::string rendered;
    PipelineOptions options;
    options.jobs = jobs;
    records.push_back(run_stage(
        "driver", "jobs=" + std::to_string(jobs), kTreeFiles, tree_bytes, 3,
        [&] {
          const lint::LintResult r = lint::lint_paths(paths, options);
          rendered = lint::render_findings(r.findings);
          return r.findings.size();
        }));
    if (reference.empty()) {
      reference = rendered;
    } else if (rendered != reference) {
      all_valid = false;
      std::cerr << "driver output drifted at jobs=" << jobs << "\n";
    }
  }

  // --- incremental cache: cold populate vs warm hit ----------------------
  bench::subheading("incremental cache (cold vs warm)");
  const fs::path cache_dir = tree / "cache";
  for (const char* mode : {"cold", "warm"}) {
    if (std::string(mode) == "cold") fs::remove_all(cache_dir);
    std::string rendered;
    PipelineOptions options;
    options.jobs = 4;
    options.lint_cache_dir = cache_dir.string();
    // Cold must populate once, not best-of-N (later reps would be warm).
    const int reps = std::string(mode) == "cold" ? 1 : 3;
    records.push_back(run_stage(
        "cache", mode, kTreeFiles, tree_bytes, reps, [&] {
          const lint::LintResult r = lint::lint_paths(paths, options);
          rendered = lint::render_findings(r.findings);
          return r.findings.size();
        }));
    if (rendered != reference) {
      all_valid = false;
      std::cerr << "cache(" << mode << ") output drifted\n";
    }
  }
  fs::remove_all(tree);

  // The aggregate document for the perf trajectory.
  std::ofstream out(out_path, std::ios::binary);
  out << "{\"bench\":\"micro_lint\",\"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << bench_json(records[i])
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (" << records.size()
            << " records)\n";

  if (!all_valid) {
    std::cout << "VALIDITY FAILURE: driver/cache output not identical\n";
    return 1;
  }
  return 0;
}
