// Figure 10 + §8.4: the UMT2013 case study on POWER7 with MRK.
//
// The loop kernel of Fig. 10 reads STime(ig, c, Angle) with Angle-planes
// assigned to threads round-robin. STime is allocated and initialized by
// the master, so 86% of sampled L3 misses touch remote memory in the
// paper's run; STime alone accounts for 18.2% of remote accesses and shows
// a staggered per-thread pattern like Blackscholes' buffer. Parallelizing
// STime's initialization (each thread first-touches the planes it sweeps)
// removes most of its remote accesses and yields a modest ~7% speedup —
// modest because the other master-initialized arrays keep their placement.

#include "apps/miniumt.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Figure 10 / §8.4: UMT2013 on POWER7 with MRK, 32 threads");

  const apps::UmtConfig base_cfg{.threads = 32,
                                 .groups = 64,
                                 .corners = 32,
                                 .angles = 128,
                                 .sweeps = 10,
                                 .variant = apps::Variant::kBaseline};

  simrt::Machine machine(numasim::power7());
  core::Profiler profiler(machine, mrk_config());
  const apps::UmtRun baseline = run_miniumt(machine, base_cfg);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  std::cout << viewer.program_summary();
  subheading("data-centric view (MRK: sampled L3 misses)");
  std::cout << viewer.data_centric_table(6).to_text();

  const auto stime = find_variable(data, "STime");
  subheading("address-centric view of STime: staggered round-robin planes");
  std::cout << viewer.address_centric_plot(stime, core::kWholeProgram, 48);
  subheading("first-touch report for STime");
  std::cout << viewer.first_touch_table(stime).to_text();

  const core::Advisor advisor(analyzer);
  const auto rec = advisor.recommend(stime);
  subheading("advisor");
  std::cout << "pattern: " << to_string(rec.guiding.kind)
            << "  action: " << to_string(rec.action) << "\nwhy: "
            << rec.rationale << "\n";

  subheading("applying the fix (parallel STime initialization)");
  simrt::Machine fixed_m(numasim::power7());
  apps::UmtConfig fixed_cfg = base_cfg;
  fixed_cfg.variant = apps::Variant::kParallelInit;
  const apps::UmtRun fixed = run_miniumt(fixed_m, fixed_cfg);
  std::cout << "baseline total: " << support::format_count(baseline.total_cycles)
            << "  fixed total: " << support::format_count(fixed.total_cycles)
            << "  speedup: "
            << speedup_str(static_cast<double>(baseline.total_cycles),
                           static_cast<double>(fixed.total_cycles))
            << "\n";

  const auto stime_report = analyzer.report(stime);
  Comparison cmp;
  cmp.add("most sampled L3 misses are remote", "86%",
          support::format_percent(analyzer.program().remote_l3_fraction),
          analyzer.program().remote_l3_fraction > 0.5);
  cmp.add("heap variables drive a large share of remote accesses", "47%",
          support::format_percent(
              analyzer.kind_remote_share(core::VariableKind::kHeap)),
          analyzer.kind_remote_share(core::VariableKind::kHeap) > 0.3);
  cmp.add("STime is a top offender", "18.2% of remote accesses",
          support::format_percent(stime_report.mismatch_share),
          stime_report.mismatch_share > 0.1);
  cmp.add("STime pattern: staggered across threads (like Fig. 8)",
          "staggered",
          std::string(to_string(rec.guiding.kind)),
          rec.guiding.kind == core::PatternKind::kStaggeredOverlap ||
              rec.guiding.kind == core::PatternKind::kBlocked);
  cmp.add("fix: co-locate via parallel initialization", "parallel init",
          std::string(to_string(rec.action)),
          rec.action == core::Action::kRegroupAos ||
              rec.action == core::Action::kBlockwiseFirstTouch);
  cmp.add("modest whole-program speedup", "+7%",
          speedup_str(static_cast<double>(baseline.total_cycles),
                      static_cast<double>(fixed.total_cycles)),
          fixed.total_cycles < baseline.total_cycles &&
              fixed.total_cycles * 3 > baseline.total_cycles * 2);
  cmp.print();
  return 0;
}
