// Figures 8-9 + §8.3: the Blackscholes case study — the negative result
// that validates lpi_NUMA as a severity metric.
//
// buffer is one allocation holding five per-option sections; every thread
// reads its option slice from every section, producing the ascending,
// heavily-overlapping staggered ranges of Fig. 8 (the memory layout of
// Fig. 9a). Regrouping into an array of structures + parallel first touch
// (Fig. 9b) removes every remote access to buffer — and the program barely
// improves, exactly as the low lpi_NUMA (0.035 << 0.1 in the paper)
// predicted.

#include "apps/miniblackscholes.hpp"
#include "bench_common.hpp"

int main() {
  using namespace numaprof;
  using namespace numaprof::bench;

  heading("Figures 8-9 / §8.3: Blackscholes on AMD Magny-Cours with IBS");

  apps::BlackscholesConfig base_cfg;  // calibrated defaults
  base_cfg.threads = 48;

  simrt::Machine machine(numasim::amd_magny_cours());
  core::Profiler profiler(machine, ibs_config(500));
  run_miniblackscholes(machine, base_cfg);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  std::cout << viewer.program_summary();
  subheading("data-centric view");
  std::cout << viewer.data_centric_table(6).to_text();

  const auto buffer = find_variable(data, "buffer");
  subheading("address-centric view of buffer (Fig. 8): staggered overlap");
  std::cout << viewer.address_centric_plot(buffer, core::kWholeProgram, 48);

  const core::Advisor advisor(analyzer);
  const auto rec = advisor.recommend(buffer);
  subheading("advisor");
  std::cout << "pattern: " << to_string(rec.guiding.kind)
            << "  action: " << to_string(rec.action) << "\nwhy: "
            << rec.rationale << "\n";

  subheading("applying the Fig. 9b regroup anyway");
  // Isolate the NUMA effect: AoS layout with master init (remote pages) vs
  // AoS layout with parallel first touch (co-located) — identical cache
  // behaviour, placement is the only difference.
  apps::BlackscholesConfig remote_cfg = base_cfg;
  remote_cfg.variant = apps::Variant::kAosRegroup;
  remote_cfg.aos_with_master_init = true;
  simrt::Machine remote_m(numasim::amd_magny_cours());
  const apps::BlackscholesRun aos_remote =
      run_miniblackscholes(remote_m, remote_cfg);

  apps::BlackscholesConfig fixed_cfg = base_cfg;
  fixed_cfg.variant = apps::Variant::kAosRegroup;
  simrt::Machine fixed_m(numasim::amd_magny_cours());
  core::Profiler fixed_profiler(fixed_m, ibs_config(500));
  const apps::BlackscholesRun aos_fixed =
      run_miniblackscholes(fixed_m, fixed_cfg);
  const core::SessionData fixed_data = fixed_profiler.snapshot();
  const core::Analyzer fixed_analyzer(fixed_data);
  const auto buffer_after =
      fixed_analyzer.report(find_variable(fixed_data, "buffer"));

  const double numa_gain =
      1.0 - static_cast<double>(aos_fixed.compute_cycles) /
                static_cast<double>(aos_remote.compute_cycles);
  std::cout << "AoS + master init (remote): "
            << support::format_count(aos_remote.compute_cycles)
            << " cycles\nAoS + parallel init (co-located): "
            << support::format_count(aos_fixed.compute_cycles)
            << " cycles\nNUMA-only improvement: "
            << support::format_percent(numa_gain) << "\n";

  const auto buffer_report = analyzer.report(buffer);
  Comparison cmp;
  cmp.add("program lpi_NUMA below the 0.1 threshold", "0.035",
          support::format_fixed(analyzer.program().lpi.value_or(1), 3),
          !analyzer.program().warrants_optimization);
  cmp.add("heap carries most of the (small) NUMA latency", "66.8%",
          support::format_percent(
              analyzer.kind_remote_share(core::VariableKind::kHeap)),
          analyzer.kind_remote_share(core::VariableKind::kHeap) > 0.4);
  cmp.add("buffer is the dominant variable", "51.6%",
          support::format_percent(buffer_report.remote_latency_share),
          buffer_report.remote_latency_share > 0.3);
  cmp.add("buffer allocated in one domain by the master", "one domain",
          buffer_report.single_home_domain
              ? "domain " + std::to_string(*buffer_report.single_home_domain)
              : "spread",
          buffer_report.single_home_domain.has_value());
  cmp.add("staggered ascending overlapping ranges (Fig. 8)",
          "staggered", std::string(to_string(rec.guiding.kind)),
          rec.guiding.kind == core::PatternKind::kStaggeredOverlap);
  cmp.add("advisor: regroup AoS + parallel init, flagged low-severity",
          "regroup; not worthwhile",
          std::string(to_string(rec.action)) +
              (rec.severity_warrants ? "" : " (below threshold)"),
          rec.action == core::Action::kRegroupAos && !rec.severity_warrants);
  cmp.add("fix removes buffer's remote accesses", "no remote latency left",
          support::format_count(buffer_after.match) + " local vs " +
              support::format_count(buffer_after.mismatch) + " remote",
          buffer_after.match > buffer_after.mismatch);
  cmp.add("...yet the program barely improves", "<0.1%",
          support::format_percent(numa_gain),
          numa_gain < 0.03 && numa_gain > -0.03);
  cmp.print();
  return 0;
}
