// export_throughput: exporter performance on the four case-study profiles.
//
// Records each paper case study (minilulesh, miniamg, miniblackscholes,
// miniumt) once, then times every exporter (Chrome trace JSON, collapsed
// stacks, speedscope JSON, HTML report) over the resulting Analyzer.
// Throughput is bytes-produced per second of export wall-clock; every
// artifact is also run through the bundled schema checker so a fast but
// malformed exporter cannot pass.
//
// Each case study's profile is also saved in both encodings and loaded
// back through ProfileReader (artifact "load:text" / "load:binary"), and
// the aggregate binary load must be >= 10x faster than text — the whole
// point of the binary format (ROADMAP 4).
//
// Each timing is emitted as a machine-readable line:
//   BENCH {"bench":"export_throughput","app":A,"artifact":F,"bytes":B,
//          "seconds":S,"mb_per_s":X}
// and the full record set is additionally written as one JSON document to
// BENCH_export.json (or argv[1] if given) for the perf trajectory.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "bench_common.hpp"
#include "core/export/export.hpp"
#include "core/export/schema.hpp"
#include "core/profile_io.hpp"

namespace {

using namespace numaprof;

core::ProfilerConfig traced_ibs_config() {
  // Denser sampling than the golden tests use: exporter and loader
  // throughput should be measured where per-sample work dominates fixed
  // overheads, the regime fleet-scale shards live in.
  core::ProfilerConfig cfg = bench::ibs_config(50);
  cfg.record_trace = true;  // the trace timeline is part of the artifacts
  return cfg;
}

struct CaseStudy {
  const char* name;
  core::SessionData data;
};

std::vector<CaseStudy> record_case_studies() {
  std::vector<CaseStudy> studies;
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, traced_ibs_config());
    apps::run_minilulesh(m, {.threads = 16,
                             .pages_per_thread = 12,
                             .timesteps = 10,
                             .variant = apps::Variant::kBaseline});
    studies.push_back({"minilulesh", p.snapshot()});
  }
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, traced_ibs_config());
    apps::run_miniamg(m, {.threads = 16,
                          .rows_per_thread = 1536,
                          .relax_sweeps = 6,
                          .variant = apps::Variant::kBaseline});
    studies.push_back({"miniamg", p.snapshot()});
  }
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, traced_ibs_config());
    apps::run_miniblackscholes(m, {.threads = 16,
                                   .options_per_thread = 640,
                                   .iterations = 128,
                                   .variant = apps::Variant::kBaseline});
    studies.push_back({"miniblackscholes", p.snapshot()});
  }
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, traced_ibs_config());
    apps::run_miniumt(m, {.threads = 16,
                          .angles = 64,
                          .sweeps = 8,
                          .variant = apps::Variant::kBaseline});
    studies.push_back({"miniumt", p.snapshot()});
  }
  return studies;
}

struct Record {
  std::string app;
  std::string artifact;
  std::size_t bytes = 0;
  double seconds = 0.0;
  double mb_per_s = 0.0;
};

std::string bench_json(const Record& r) {
  std::ostringstream os;
  os << "{\"bench\":\"export_throughput\",\"app\":\"" << r.app
     << "\",\"artifact\":\"" << r.artifact << "\",\"bytes\":" << r.bytes
     << ",\"seconds\":" << r.seconds << ",\"mb_per_s\":" << r.mb_per_s
     << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading(
      "export_throughput: exporter performance on the four case studies");

  namespace fs = std::filesystem;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_export.json";
  std::vector<Record> records;
  bool all_valid = true;
  double load_seconds[2] = {0.0, 0.0};  // [text, binary], summed over apps
  const fs::path load_dir =
      fs::temp_directory_path() / "numaprof_export_throughput";
  fs::remove_all(load_dir);
  fs::create_directories(load_dir);

  for (CaseStudy& study : record_case_studies()) {
    bench::subheading(study.name);
    const core::Analyzer analyzer(study.data);
    core::ExportOptions options;
    options.basename = study.name;

    // One exporter at a time so a slow pane is attributable. Artifacts are
    // regenerated inside the timed region; min-of-3 ignores cold caches.
    std::vector<core::ExportArtifact> artifacts =
        core::export_artifacts(analyzer, core::ExportKind::kAll, options);
    for (const core::ExportArtifact& artifact : artifacts) {
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        const double s = bench::time_seconds([&] {
          // kFlamegraph yields both collapsed and speedscope artifacts;
          // compare against the one being timed.
          bool reproduced = false;
          for (const core::ExportArtifact& regenerated :
               core::export_artifacts(analyzer, artifact.kind, options)) {
            if (regenerated.filename == artifact.filename) {
              reproduced = regenerated.bytes == artifact.bytes;
            }
          }
          if (!reproduced) all_valid = false;  // exporter not deterministic
        });
        best = std::min(best, s);
      }
      const std::vector<std::string> problems =
          core::check_artifact(artifact.filename, artifact.bytes);
      if (!problems.empty()) {
        all_valid = false;
        std::cerr << artifact.filename << ": " << problems.front() << "\n";
      }
      Record record;
      record.app = study.name;
      record.artifact = artifact.filename;
      record.bytes = artifact.bytes.size();
      record.seconds = best;
      record.mb_per_s =
          best > 0.0
              ? static_cast<double>(artifact.bytes.size()) / best / 1.0e6
              : 0.0;
      records.push_back(record);
      std::cout << artifact.filename << ": " << record.bytes << " bytes in "
                << best << " s (" << record.mb_per_s << " MB/s)"
                << (problems.empty() ? "" : "  [SCHEMA INVALID]") << "\n";
      std::cout << "BENCH " << bench_json(record) << "\n";
    }

    // Profile load, text vs binary: the exporters all sit downstream of a
    // ProfileReader in the record -> analyze pipeline, so the load is part
    // of the end-to-end throughput story.
    for (const ProfileFormat format :
         {ProfileFormat::kText, ProfileFormat::kBinary}) {
      const bool binary = format == ProfileFormat::kBinary;
      const fs::path path =
          load_dir / (std::string(study.name) + (binary ? ".npbf" : ".prof"));
      core::ProfileWriter(format).write_file(study.data, path.string());
      core::LoadResult loaded;
      double best = 1e100;
      for (int rep = 0; rep < 5; ++rep) {
        const double s = bench::time_seconds([&] {
          loaded = core::ProfileReader().read_file(path.string());
        });
        best = std::min(best, s);
      }
      if (loaded.data.thread_count() != study.data.thread_count()) {
        all_valid = false;
        std::cerr << study.name << ": reloaded profile lost threads\n";
      }
      load_seconds[binary ? 1 : 0] += best;
      Record record;
      record.app = study.name;
      record.artifact = binary ? "load:binary" : "load:text";
      record.bytes = fs::file_size(path);
      record.seconds = best;
      record.mb_per_s =
          best > 0.0 ? static_cast<double>(record.bytes) / best / 1.0e6
                     : 0.0;
      records.push_back(record);
      std::cout << record.artifact << ": " << record.bytes << " bytes in "
                << best << " s (" << record.mb_per_s << " MB/s)\n";
      std::cout << "BENCH " << bench_json(record) << "\n";
    }
  }
  fs::remove_all(load_dir);

  // The aggregate document for the perf trajectory.
  std::ofstream out(out_path, std::ios::binary);
  out << "{\"bench\":\"export_throughput\",\"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << bench_json(records[i])
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (" << records.size()
            << " records)\n";

  bench::Comparison cmp;
  cmp.add("every artifact passes its schema check", "valid",
          all_valid ? "valid" : "INVALID", all_valid);
  cmp.add("record count", "4 apps x (4 artifacts + 2 loads) = 24",
          std::to_string(records.size()), records.size() == 24);
  const double load_speedup =
      load_seconds[1] > 0.0 ? load_seconds[0] / load_seconds[1] : 0.0;
  std::ostringstream measured;
  measured << load_speedup << "x";
  cmp.add("binary vs text profile load (4 apps aggregate)", ">= 10x",
          measured.str(), load_speedup >= 10.0);
  cmp.print();
  return cmp.all_hold() ? 0 : 1;
}
