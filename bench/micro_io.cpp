// micro_io: profile serialization throughput, text vs binary (ROADMAP 4).
//
// The binary format exists to make shard loads cheap (the text loader
// re-lexes ASCII and heap-allocates the CCT node-by-node), so this bench
// measures exactly that seam on two corpora: a large synthetic session
// (~20k CCT nodes, 16 dense per-thread stores, trace + first-touch +
// address-centric records so EVERY section is populated) and a recorded
// minilulesh case study. Four stages per corpus:
//   save       ProfileWriter::bytes, text vs binary
//   load/mem   ProfileReader::read over an in-memory string
//   load/file  ProfileReader::read_file — streamed text vs mmapped binary,
//              with the first (cold) iteration reported separately from
//              the min-of-N warm ones
//   validity   the Analyzer report rendered from every loaded copy must be
//              byte-identical to the in-memory session's report
// The headline gate: binary in-memory load is >= 10x faster than text on
// the synthetic corpus (where parsing dominates), and every validity
// comparison holds — otherwise exit 1 and the numbers are meaningless.
//
// Each timing is emitted as a machine-readable line:
//   BENCH {"bench":"micro_io","corpus":C,"stage":"load","format":"binary",
//          "source":"mem","temp":"warm","bytes":B,"seconds":S,"mb_per_s":X}
// and the full record set is additionally written as one JSON document to
// BENCH_io.json (or argv[1] if given) for the perf trajectory.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/minilulesh.hpp"
#include "bench_common.hpp"
#include "core/profile_io.hpp"
#include "core/session.hpp"
#include "support/rng.hpp"

namespace {

namespace fs = std::filesystem;
using namespace numaprof;

constexpr std::uint32_t kThreads = 16;
constexpr std::uint32_t kTopFrames = 100;
constexpr std::uint32_t kNestedFrames = 199;  // ~20k access-path nodes

/// A session big enough that serialization cost dominates, with every
/// optional section populated (trace, first touches, degradations,
/// address-centric bins) so no decoder path sits idle.
core::SessionData synthetic_session() {
  support::Rng rng(0x696f6273);  // "iobs"
  core::SessionData data;
  data.machine_name = "micro-io-machine";
  data.domain_count = 4;
  data.core_count = 16;
  data.mechanism = pmu::Mechanism::kIbs;
  data.requested_mechanism = pmu::Mechanism::kIbs;
  data.sampling_period = 100;
  data.pebs_ll_events = 123456;
  data.fault_context = "spec=micro_io seed=1";
  data.degradations.push_back(core::DegradationEvent{
      .kind = core::DegradationKind::kMechanismFallback,
      .mechanism = pmu::Mechanism::kIbs,
      .value = 7,
      .detail = "synthetic degradation for bench coverage"});

  const std::uint32_t frame_count = kTopFrames * (kNestedFrames + 1);
  for (std::uint32_t f = 0; f < frame_count; ++f) {
    data.frames.push_back(simrt::FrameInfo{
        .name = "io_fn" + std::to_string(f),
        .file = "micro_io.cpp",
        .line = f,
        .kind = simrt::FrameKind::kFunction});
  }
  const core::NodeId access =
      data.cct.child(core::kRootNode, core::NodeKind::kAccess, 0);
  std::vector<core::NodeId> nodes;
  for (std::uint32_t top = 0; top < kTopFrames; ++top) {
    const core::NodeId parent =
        data.cct.child(access, core::NodeKind::kFrame, top);
    nodes.push_back(parent);
    for (std::uint32_t nested = 0; nested < kNestedFrames; ++nested) {
      nodes.push_back(data.cct.child(
          parent, core::NodeKind::kFrame,
          kTopFrames + top * kNestedFrames + nested));
    }
  }

  const core::NodeId alloc =
      data.cct.child(core::kRootNode, core::NodeKind::kAllocation, 0);
  for (std::uint32_t v = 0; v < 8; ++v) {
    core::Variable var;
    var.id = v;
    var.kind = core::VariableKind::kHeap;
    var.name = "io_var" + std::to_string(v);
    var.start = 0x100000 + 0x100000ull * v;
    var.page_count = 32;
    var.size = var.page_count * simos::kPageBytes;
    var.variable_node = data.cct.child(alloc, core::NodeKind::kVariable, v);
    data.variables.push_back(var);
  }

  for (std::uint32_t tid = 0; tid < kThreads; ++tid) {
    core::ThreadTotals t;
    t.per_domain.resize(data.domain_count);
    core::MetricStore store(data.domain_count);
    for (const core::NodeId node : nodes) {
      store.add(node, core::kSamples,
                static_cast<double>(1 + rng.next_below(50)));
      store.add(node, core::kNumaMatch,
                static_cast<double>(rng.next_below(30)));
      store.add(node, core::kNumaMismatch,
                static_cast<double>(rng.next_below(20)));
      store.add(node, core::kRemoteLatency, rng.next_double() * 400.0);
      t.samples += 1;
      t.per_domain[rng.next_below(data.domain_count)] += 1;
    }
    t.total_latency = rng.next_double() * 1e6;
    t.remote_latency = t.total_latency * rng.next_double();
    data.totals.push_back(std::move(t));
    data.stores.push_back(std::move(store));

    for (std::uint32_t v = 0; v < 8; ++v) {
      core::BinKey key{.context = core::kWholeProgram,
                       .variable = v,
                       .bin = 0,
                       .tid = tid};
      core::BinStats stats;
      stats.update(data.variables[v].start + rng.next_below(1 << 16),
                   rng.next_double() * 200.0);
      data.address_centric.insert(key, stats);

      data.first_touches.push_back(core::FirstTouchRecord{
          .variable = v,
          .tid = tid,
          .domain =
              static_cast<std::uint32_t>(rng.next_below(data.domain_count)),
          .node = data.variables[v].variable_node,
          .page = rng.next_below(32)});
    }
    for (std::uint32_t e = 0; e < 512; ++e) {
      data.trace.push_back(core::TraceEvent{
          .time = 1000 + 17ull * (tid * 512 + e),
          .tid = tid,
          .variable = static_cast<core::VariableId>(rng.next_below(8)),
          .home_domain =
              static_cast<std::uint32_t>(rng.next_below(data.domain_count)),
          .mismatch = rng.next_below(3) == 0,
          .remote = rng.next_below(4) == 0,
          .latency = static_cast<std::uint32_t>(rng.next_below(400))});
    }
  }
  // One text round-trip canonicalizes every double to its text-quantized
  // value, so the validity gate can demand identical reports from BOTH
  // encodings (raw rng doubles would diverge under text's formatting).
  return core::ProfileReader().read(core::ProfileWriter().bytes(data)).data;
}

core::SessionData lulesh_session() {
  simrt::Machine m(numasim::amd_magny_cours());
  core::ProfilerConfig cfg = bench::ibs_config(200);
  cfg.record_trace = true;
  core::Profiler p(m, cfg);
  apps::run_minilulesh(m, {.threads = 16,
                           .pages_per_thread = 6,
                           .timesteps = 6,
                           .variant = apps::Variant::kBaseline});
  return p.snapshot();
}

/// Everything the viewer derives from a session — the "Analyzer report"
/// the validity gate compares across load paths.
std::string analyzer_report(const core::SessionData& data) {
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);
  std::ostringstream os;
  os << viewer.program_summary() << viewer.collection_health() << "\n"
     << viewer.data_centric_table(10).to_text() << "\n"
     << viewer.code_centric_table(10).to_text() << "\n"
     << viewer.domain_balance_table().to_text() << "\n"
     << viewer.trace_timeline();
  return os.str();
}

struct Record {
  std::string corpus;
  std::string stage;   // save | load
  std::string format;  // text | binary
  std::string source;  // mem | file
  std::string temp;    // warm | cold
  std::size_t bytes = 0;
  double seconds = 0.0;
  double mb_per_s = 0.0;
};

std::string bench_json(const Record& r) {
  std::ostringstream os;
  os << "{\"bench\":\"micro_io\",\"corpus\":\"" << r.corpus
     << "\",\"stage\":\"" << r.stage << "\",\"format\":\"" << r.format
     << "\",\"source\":\"" << r.source << "\",\"temp\":\"" << r.temp
     << "\",\"bytes\":" << r.bytes << ",\"seconds\":" << r.seconds
     << ",\"mb_per_s\":" << r.mb_per_s << "}";
  return os.str();
}

/// Times `body` reps times (warm = min of reps after the first; for file
/// sources the first rep is also recorded as "cold"), prints BENCH lines.
Record run_timed(std::vector<Record>& records, Record base, int reps,
                 const std::function<void()>& body) {
  double cold = 0.0;
  double warm = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const double s = bench::time_seconds(body);
    if (rep == 0) {
      cold = s;
    } else {
      warm = std::min(warm, s);
    }
  }
  if (reps == 1) warm = cold;
  if (base.source == "file") {
    Record cold_rec = base;
    cold_rec.temp = "cold";
    cold_rec.seconds = cold;
    cold_rec.mb_per_s =
        cold > 0.0 ? static_cast<double>(base.bytes) / cold / 1.0e6 : 0.0;
    std::cout << "BENCH " << bench_json(cold_rec) << "\n";
    records.push_back(cold_rec);
  }
  base.temp = "warm";
  base.seconds = warm;
  base.mb_per_s =
      warm > 0.0 ? static_cast<double>(base.bytes) / warm / 1.0e6 : 0.0;
  std::cout << base.stage << " " << base.format << "/" << base.source
            << ": " << base.bytes << " bytes in " << warm << " s ("
            << base.mb_per_s << " MB/s)\n";
  std::cout << "BENCH " << bench_json(base) << "\n";
  records.push_back(base);
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading("micro_io: profile save/load throughput, text vs binary");
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_io.json";
  std::vector<Record> records;
  bench::Comparison cmp;

  struct Corpus {
    std::string name;
    core::SessionData data;
  };
  std::vector<Corpus> corpora;
  corpora.push_back({"synthetic20k", synthetic_session()});
  corpora.push_back({"minilulesh", lulesh_session()});

  const fs::path dir = fs::temp_directory_path() / "numaprof_micro_io";
  fs::remove_all(dir);
  fs::create_directories(dir);

  for (const Corpus& corpus : corpora) {
    bench::subheading(corpus.name);
    const std::string reference = analyzer_report(corpus.data);

    double load_seconds[2] = {0.0, 0.0};  // [text, binary], mem source
    for (const ProfileFormat format :
         {ProfileFormat::kText, ProfileFormat::kBinary}) {
      const bool binary = format == ProfileFormat::kBinary;
      const core::ProfileWriter writer(format);
      const std::string bytes = writer.bytes(corpus.data);
      const fs::path path =
          dir / (corpus.name + (binary ? ".npbf" : ".prof"));
      writer.write_file(corpus.data, path.string());

      Record base;
      base.corpus = corpus.name;
      base.format = binary ? "binary" : "text";
      base.bytes = bytes.size();

      // save: serialize to an in-memory string.
      base.stage = "save";
      base.source = "mem";
      run_timed(records, base, 5, [&] {
        if (writer.bytes(corpus.data).size() != bytes.size()) std::abort();
      });

      // load from memory: the merge/ingest hot path.
      base.stage = "load";
      core::LoadResult loaded;
      const Record mem = run_timed(records, base, 5, [&] {
        loaded = core::ProfileReader().read(bytes);
      });
      load_seconds[binary ? 1 : 0] = mem.seconds;
      cmp.add(corpus.name + ": " + base.format + " mem load report",
              "identical", analyzer_report(loaded.data) == reference
                               ? "identical"
                               : "DIVERGED",
              analyzer_report(loaded.data) == reference);

      // load from file: streamed text vs mmapped binary, cold then warm.
      base.source = "file";
      core::LoadResult from_file;
      run_timed(records, base, 5, [&] {
        from_file = core::ProfileReader().read_file(path.string());
      });
      cmp.add(corpus.name + ": " + base.format + " file load report",
              "identical", analyzer_report(from_file.data) == reference
                               ? "identical"
                               : "DIVERGED",
              analyzer_report(from_file.data) == reference);
    }

    const double speedup =
        load_seconds[1] > 0.0 ? load_seconds[0] / load_seconds[1] : 0.0;
    std::ostringstream measured;
    measured << speedup << "x";
    std::cout << corpus.name << ": binary load speedup vs text = "
              << measured.str() << "\n";
    if (corpus.name == "synthetic20k") {
      // The acceptance gate: parsing dominates on the big corpus, so the
      // zero-copy load must beat the text lexer by an order of magnitude.
      cmp.add("binary vs text load speedup (synthetic20k)", ">= 10x",
              measured.str(), speedup >= 10.0);
    } else {
      cmp.add("binary vs text load speedup (" + corpus.name + ")",
              "> 1x (informational)", measured.str(), speedup > 1.0);
    }
  }
  fs::remove_all(dir);

  // The aggregate document for the perf trajectory.
  std::ofstream out(out_path, std::ios::binary);
  out << "{\"bench\":\"micro_io\",\"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << bench_json(records[i])
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (" << records.size()
            << " records)\n";

  cmp.print();
  return cmp.all_hold() ? 0 : 1;
}
