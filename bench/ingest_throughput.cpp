// ingest_throughput: the crash-safe ingestion service under load.
//
// Measures shards/second through the full client -> server path — frame
// encoding, CRC verification, sequence tracking, WAL journaling, and ack
// processing — as the number of concurrent recorder clients scales
// (1, 2, 4, 8), both on a clean transport and under injected faults
// (frame drops and frame corruption force retransmits and resyncs).
// Clean runs are validated: every shard sent must be accepted exactly
// once, or the numbers are meaningless.
//
// Each timing is emitted as a machine-readable line:
//   BENCH {"bench":"ingest_throughput","clients":C,"faults":F,
//          "shards":N,"seconds":S,"shards_per_s":X,"mb_per_s":Y}
// and the full record set is additionally written as one JSON document to
// BENCH_ingest.json (or argv[1] if given) for the perf trajectory.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ingest/server.hpp"
#include "support/faultinject.hpp"
#include "support/rng.hpp"

namespace {

using namespace numaprof;

constexpr std::size_t kShardsPerClient = 64;
constexpr std::size_t kShardBytes = 4096;  // a typical per-thread shard

/// Deterministic pseudo-shard payloads sized like real thread shards.
std::vector<std::string> make_shards(std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<std::string> shards;
  shards.reserve(kShardsPerClient);
  for (std::size_t s = 0; s < kShardsPerClient; ++s) {
    std::string payload;
    payload.reserve(kShardBytes);
    while (payload.size() < kShardBytes) {
      payload.push_back(static_cast<char>('!' + rng.next_below(94)));
    }
    shards.push_back(std::move(payload));
  }
  return shards;
}

struct FaultCase {
  const char* name;
  const char* spec;  // "" = clean transport
};

struct Record {
  unsigned clients = 0;
  std::string faults;
  std::size_t shards = 0;
  double seconds = 0.0;
  double shards_per_s = 0.0;
  double mb_per_s = 0.0;
};

std::string bench_json(const Record& r) {
  std::ostringstream os;
  os << "{\"bench\":\"ingest_throughput\",\"clients\":" << r.clients
     << ",\"faults\":\"" << r.faults << "\",\"shards\":" << r.shards
     << ",\"seconds\":" << r.seconds
     << ",\"shards_per_s\":" << r.shards_per_s
     << ",\"mb_per_s\":" << r.mb_per_s << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::heading(
      "ingest_throughput: WAL-backed shard ingest vs client count");

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_ingest.json";
  const auto wal_dir =
      std::filesystem::temp_directory_path() / "numaprof_ingest_bench";
  std::filesystem::create_directories(wal_dir);

  const std::vector<FaultCase> fault_cases = {
      {"none", ""},
      {"frame-drop=0.05", "frame-drop=0.05"},
      {"frame-corrupt=0.05", "frame-corrupt=0.05"},
  };
  std::vector<Record> records;
  bool all_valid = true;

  for (const FaultCase& fc : fault_cases) {
    bench::subheading(std::string("faults: ") + fc.name);
    for (const unsigned clients : {1u, 2u, 4u, 8u}) {
      const std::size_t total_shards = clients * kShardsPerClient;
      double best = 1e100;
      std::uint64_t accepted = 0;
      for (int rep = 0; rep < 2; ++rep) {
        const std::string wal =
            (wal_dir / ("bench_" + std::string(fc.name) + "_" +
                        std::to_string(clients) + ".wal"))
                .string();
        std::filesystem::remove(wal);
        ingest::ServerOptions options;
        options.wal_path = wal;
        ingest::IngestServer server(options);

        // Per-client fault plans: seeded per client so every run injects
        // the same faults, independent of thread interleaving.
        std::vector<support::FaultPlan> plans(clients);
        for (unsigned c = 0; c < clients; ++c) {
          plans[c] = support::FaultPlan::parse(
              fc.spec[0] == '\0'
                  ? ""
                  : "seed=" + std::to_string(c + 1) + ";" + fc.spec);
        }

        const double s = bench::time_seconds([&] {
          std::vector<std::thread> workers;
          workers.reserve(clients);
          for (unsigned c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
              ingest::LoopbackTransport loop(server);
              ingest::ClientOptions client_options;
              client_options.client_id = c + 1;
              if (plans[c].enabled()) client_options.faults = &plans[c];
              ingest::IngestClient client(loop, client_options);
              (void)client.send_shards(make_shards(0xB000 + c));
            });
          }
          for (std::thread& w : workers) w.join();
        });
        best = std::min(best, s);
        accepted = server.stats().frames_accepted;
        if (fc.spec[0] == '\0' && accepted != total_shards) {
          all_valid = false;  // a clean transport must lose nothing
          std::cerr << "clean run accepted " << accepted << " of "
                    << total_shards << " shards\n";
        }
      }
      Record record;
      record.clients = clients;
      record.faults = fc.name;
      record.shards = accepted;
      record.seconds = best;
      record.shards_per_s =
          best > 0.0 ? static_cast<double>(accepted) / best : 0.0;
      record.mb_per_s = record.shards_per_s * kShardBytes / 1.0e6;
      records.push_back(record);
      std::cout << clients << " client(s): " << accepted << " shards in "
                << best << " s (" << record.shards_per_s << " shards/s, "
                << record.mb_per_s << " MB/s)\n";
      std::cout << "BENCH " << bench_json(record) << "\n";
    }
  }
  std::filesystem::remove_all(wal_dir);

  // The aggregate document for the perf trajectory.
  std::ofstream out(out_path, std::ios::binary);
  out << "{\"bench\":\"ingest_throughput\",\"records\":[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << bench_json(records[i])
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (" << records.size()
            << " records)\n";

  if (!all_valid) {
    std::cout << "VALIDITY FAILURE: clean transport lost shards\n";
    return 1;
  }
  return 0;
}
