// Table 1: configurations of the six sampling mechanisms on their host
// architectures, plus achieved sampling rates.
//
// The paper's criteria (§8): sample every memory access (not only NUMA
// events) to avoid biased access patterns, sample all instructions where
// possible (for lpi_NUMA), and pick periods yielding 100-1000 samples per
// second per thread (MRK: under 100, hardware-limited). This harness runs
// a uniform probe workload on each mechanism's host preset and reports the
// configuration next to the achieved per-thread sampling rate at both the
// paper's period and this reproduction's scaled period.

#include "apps/common.hpp"
#include "bench_common.hpp"

namespace {

using namespace numaprof;
using namespace numaprof::bench;

struct Row {
  pmu::Mechanism mechanism;
  numasim::Topology topology;
};

/// Uniform probe: every thread streams a private block with an ALU mix.
void run_probe(simrt::Machine& m, std::uint32_t threads) {
  const std::uint64_t elems = 2 * apps::kElemsPerPage;
  std::vector<simos::VAddr> blocks(threads);
  parallel_region(m, 1, "alloc", {},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    for (std::uint32_t i = 0; i < threads; ++i) {
                      blocks[i] = t.malloc(elems * 8, "block");
                    }
                    co_return;
                  });
  parallel_region(
      m, threads, "probe._omp", {},
      [&](simrt::SimThread& t, std::uint32_t index) -> simrt::Task {
        for (int sweep = 0; sweep < 4; ++sweep) {
          for (std::uint64_t i = 0; i < elems; i += apps::kLineStride) {
            t.load(apps::elem_addr(blocks[index], i));
            t.exec(3);
            co_await t.tick();
          }
          co_await t.yield();
        }
      });
}

}  // namespace

int main() {
  heading("Table 1: sampling mechanism configurations");

  const std::vector<Row> rows = {
      {pmu::Mechanism::kIbs, numasim::amd_magny_cours()},
      {pmu::Mechanism::kMrk, numasim::power7()},
      {pmu::Mechanism::kPebs, numasim::xeon_harpertown()},
      {pmu::Mechanism::kDear, numasim::itanium2()},
      {pmu::Mechanism::kPebsLl, numasim::ivy_bridge()},
      {pmu::Mechanism::kSoftIbs, numasim::amd_magny_cours()},
  };

  support::Table table({"mechanism", "processor", "threads", "event",
                        "paper period", "scaled period", "samples",
                        "samples/s/thread"});

  for (const Row& row : rows) {
    const auto paper = pmu::EventConfig::table1(row.mechanism);
    auto scaled = pmu::EventConfig::mini(row.mechanism);
    scaled.instrumentation_work = 0;  // rate measurement, not overhead

    // Threads: the paper runs on all hardware threads, but POWER7's 128
    // make the probe slow; 64 preserves the per-thread rate measurement.
    const std::uint32_t threads =
        std::min<std::uint32_t>(row.topology.core_count(), 64);

    simrt::Machine machine(row.topology);
    auto sampler = pmu::make_sampler(scaled);
    machine.add_observer(*sampler);
    run_probe(machine, threads);
    machine.remove_observer(*sampler);

    const double virtual_seconds =
        static_cast<double>(machine.elapsed()) / pmu::kCyclesPerSecond;
    const double per_thread_rate =
        virtual_seconds > 0
            ? static_cast<double>(sampler->samples_emitted()) /
                  (static_cast<double>(threads) * virtual_seconds)
            : 0.0;

    const std::string period_str =
        row.mechanism == pmu::Mechanism::kMrk
            ? "1 (gap " + support::format_count(paper.min_sample_gap) + "cy)"
            : support::format_count(paper.period);
    const std::string scaled_str =
        row.mechanism == pmu::Mechanism::kMrk
            ? "1 (gap " + support::format_count(scaled.min_sample_gap) + "cy)"
            : support::format_count(scaled.period);

    table.add_row({std::string(to_string(row.mechanism)), row.topology.name,
                   std::to_string(threads), paper.event_name, period_str,
                   scaled_str,
                   support::format_count(sampler->samples_emitted()),
                   support::format_count(
                       static_cast<std::uint64_t>(per_thread_rate))});
  }
  std::cout << table.to_text();

  subheading("notes");
  std::cout
      << "Scaled periods compensate for mini workloads (~10^7 simulated\n"
         "instructions vs ~10^11 on the paper's testbeds); at the paper's\n"
         "periods the same machinery produces the paper's 100-1000\n"
         "samples/s/thread (MRK below 100 due to hardware rate limiting).\n";
  return 0;
}
