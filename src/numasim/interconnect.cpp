#include "numasim/interconnect.hpp"

namespace numaprof::numasim {

Interconnect::Interconnect(std::uint32_t domain_count, Cycles hop_latency,
                           Cycles service)
    : domain_count_(domain_count), hop_latency_(hop_latency) {
  links_.reserve(static_cast<std::size_t>(domain_count) * domain_count);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(domain_count) * domain_count; ++i) {
    links_.emplace_back(service);
  }
}

Cycles Interconnect::round_trip(DomainId from, DomainId to, Cycles now,
                                std::uint32_t hops) noexcept {
  if (from == to) return 0;
  QueueModel& request_link = links_[index(from, to)];
  // The data-carrying request link models occupancy; the response path adds
  // propagation latency only (small control/ack messages). Multi-hop pairs
  // (partially connected fabrics) pay the propagation per traversal.
  const Cycles queue_delay = request_link.enqueue(now);
  return queue_delay + request_link.service() +
         2 * hop_latency_ * (hops == 0 ? 1 : hops);
}

std::uint64_t Interconnect::transfers(DomainId from,
                                      DomainId to) const noexcept {
  return links_[index(from, to)].requests();
}

std::uint64_t Interconnect::inbound_transfers(DomainId to) const noexcept {
  std::uint64_t total = 0;
  for (DomainId from = 0; from < domain_count_; ++from) {
    if (from != to) total += links_[index(from, to)].requests();
  }
  return total;
}

void Interconnect::reset_stats() noexcept {
  for (auto& link : links_) link.reset_stats();
}

}  // namespace numaprof::numasim
