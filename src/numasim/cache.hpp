// Set-associative LRU cache model.
//
// The profiler never inspects cache internals; the caches exist so that the
// simulated machine produces realistic event streams: L3 misses (the event
// MRK samples on POWER7), data-source classification for IBS/PEBS-LL
// samples, and the private-cache-reuse effect §4.1 warns about (a variable
// resident in a private cache keeps counting as "remote" under move_pages-
// based classification even though no remote traffic occurs).
#pragma once

#include <cstdint>
#include <vector>

#include "numasim/topology.hpp"
#include "numasim/types.hpp"

namespace numaprof::numasim {

/// One physical cache: `sets` x `ways`, true-LRU replacement, line-grain.
/// Write-allocate, and (for model simplicity) writes never generate
/// write-back traffic — the tool under study only measures read/write
/// *access* latency, not eviction traffic.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geometry);

  /// Looks up `line`; on miss, allocates it (evicting LRU). Returns true on
  /// hit. Lookup and fill are combined because the simulator always fills
  /// on the miss path.
  bool access(LineAddr line);

  /// Lookup without allocation (used by tests and by snooping probes).
  bool contains(LineAddr line) const noexcept;

  /// Invalidate a single line if present (used when a page's placement is
  /// changed by migration-style APIs).
  void invalidate(LineAddr line) noexcept;

  /// Drop all contents (workload phase boundaries in tests).
  void clear() noexcept;

  Cycles hit_latency() const noexcept { return hit_latency_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Way {
    LineAddr tag = 0;
    std::uint64_t last_use = 0;  // LRU stamp; 0 means invalid
  };

  std::uint32_t set_index(LineAddr line) const noexcept {
    if (hash_index_) {
      // Fibonacci (multiplicative) hashing: spreads ANY stride pattern
      // near-uniformly across sets, which is what hardware index hashing
      // accomplishes. A plain XOR fold only permutes within aligned
      // windows and leaves power-of-two strides aliased.
      const std::uint64_t hashed = line * 0x9E3779B97F4A7C15ULL;
      return static_cast<std::uint32_t>(hashed >> (64 - set_bits_)) &
             set_mask_;
    }
    return static_cast<std::uint32_t>(line) & set_mask_;
  }

  std::uint32_t set_mask_;
  std::uint32_t set_bits_;
  bool hash_index_;
  std::uint32_t ways_;
  Cycles hit_latency_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Way> lines_;  // sets * ways, row-major by set
};

}  // namespace numaprof::numasim
