// Inter-domain interconnect with per-directed-link bandwidth.
//
// Remote accesses traverse the link (requester domain -> home domain) and
// pay a fixed hop latency each way plus queueing when the link is
// saturated. This models the "contention for limited bandwidth between
// NUMA domains" bottleneck of §1-§2: when one domain hosts all the data,
// its inbound links and controller saturate together.
#pragma once

#include <cstdint>
#include <vector>

#include "numasim/queue_model.hpp"
#include "numasim/types.hpp"

namespace numaprof::numasim {

class Interconnect {
 public:
  /// `hop_latency` is the one-way propagation cost; `service` the per-
  /// transfer occupancy of a directed link (1/bandwidth).
  Interconnect(std::uint32_t domain_count, Cycles hop_latency, Cycles service);

  /// Performs a round trip from `from` to `to` at time `now`; returns total
  /// added cycles (propagation for `hops` traversals each way + any
  /// queueing on the request link). Local round trips (from == to) cost
  /// nothing. `hops` defaults to 1 (fully connected fabric).
  Cycles round_trip(DomainId from, DomainId to, Cycles now,
                    std::uint32_t hops = 1) noexcept;

  /// Total transfers that crossed the directed link from->to.
  std::uint64_t transfers(DomainId from, DomainId to) const noexcept;

  /// Aggregate transfers into `to` from every other domain (inbound load).
  std::uint64_t inbound_transfers(DomainId to) const noexcept;

  void reset_stats() noexcept;

 private:
  std::size_t index(DomainId from, DomainId to) const noexcept {
    return static_cast<std::size_t>(from) * domain_count_ + to;
  }

  std::uint32_t domain_count_;
  Cycles hop_latency_;
  std::vector<QueueModel> links_;
};

}  // namespace numaprof::numasim
