#include "numasim/cache.hpp"

#include <bit>

namespace numaprof::numasim {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) noexcept {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheGeometry& geometry)
    : set_mask_(round_up_pow2(geometry.sets) - 1),
      set_bits_(std::bit_width(static_cast<std::uint64_t>(set_mask_))),
      hash_index_(geometry.hash_index),
      ways_(geometry.ways == 0 ? 1 : geometry.ways),
      hit_latency_(geometry.hit_latency),
      lines_(static_cast<std::size_t>(set_mask_ + 1) * ways_) {}

bool SetAssocCache::access(LineAddr line) {
  ++tick_;
  Way* set = &lines_[static_cast<std::size_t>(set_index(line)) * ways_];
  Way* victim = set;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (set[w].last_use != 0 && set[w].tag == line) {
      set[w].last_use = tick_;
      ++hits_;
      return true;
    }
    if (set[w].last_use < victim->last_use) victim = &set[w];
  }
  ++misses_;
  victim->tag = line;
  victim->last_use = tick_;
  return false;
}

bool SetAssocCache::contains(LineAddr line) const noexcept {
  const Way* set = &lines_[static_cast<std::size_t>(set_index(line)) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (set[w].last_use != 0 && set[w].tag == line) return true;
  }
  return false;
}

void SetAssocCache::invalidate(LineAddr line) noexcept {
  Way* set = &lines_[static_cast<std::size_t>(set_index(line)) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (set[w].last_use != 0 && set[w].tag == line) {
      set[w].last_use = 0;
      return;
    }
  }
}

void SetAssocCache::clear() noexcept {
  for (auto& way : lines_) way.last_use = 0;
  tick_ = 0;
}

}  // namespace numaprof::numasim
