// Machine topology description and presets for the five evaluation systems.
//
// The paper evaluates on five machines (Table 1): a 4-socket AMD
// Magny-Cours (48 cores, 8 NUMA domains), a 4-socket IBM POWER7 (128 SMT
// threads, 4 domains), an Intel Xeon Harpertown, an Itanium 2, and an Ivy
// Bridge box. Each preset reproduces the core/domain layout and a latency/
// bandwidth profile with the qualitative properties the paper relies on:
// remote accesses cost >30% more than local (§2) and saturated controllers
// inflate latency several-fold (§2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "numasim/types.hpp"

namespace numaprof::numasim {

/// Cache geometry for one level. Sizes are per cache instance.
struct CacheGeometry {
  std::uint32_t sets = 64;
  std::uint32_t ways = 8;
  Cycles hit_latency = 3;
  /// XOR-fold high address bits into the set index, as real caches hash
  /// their index function: without it, power-of-two strided placements
  /// (e.g. per-domain page blocks) alias into a few sets and thrash a
  /// cache they fit in by capacity. Test geometries disable it to keep
  /// set mapping predictable.
  bool hash_index = true;

  std::uint64_t capacity_bytes() const noexcept {
    return static_cast<std::uint64_t>(sets) * ways * kLineBytes;
  }
};

/// Full machine description. Immutable once built; System instantiates it.
struct Topology {
  std::string name;
  std::uint32_t domain_count = 1;
  std::uint32_t cores_per_domain = 1;
  /// Trailing domains that contribute memory but hold no cores (CXL-type
  /// expanders / far-memory tiers). They occupy the HIGHEST domain ids so
  /// core->domain mapping over the compute domains stays dense.
  std::uint32_t memory_only_domains = 0;

  CacheGeometry l1;  // private per core
  CacheGeometry l2;  // private per core
  CacheGeometry l3;  // shared per domain

  Cycles local_dram_latency = 120;   // controller pipe latency, uncontended
  Cycles remote_hop_latency = 60;    // one interconnect traversal, each way
  Cycles controller_service = 4;     // occupancy per request (1/bandwidth)
  Cycles link_service = 2;           // occupancy per remote transfer

  /// Optional inter-domain hop counts (row-major D x D), like the distance
  /// table `numactl --hardware` prints: real multi-socket fabrics are often
  /// partially connected, so some remote domains cost two traversals.
  /// Empty = uniform (every remote pair is 1 hop). Diagonal entries are 0.
  std::vector<std::uint8_t> domain_distance;

  /// Optional per-domain DRAM pipe latency / controller occupancy (size
  /// domain_count each, or empty = uniform local_dram_latency /
  /// controller_service). Heterogeneous tiers — a CXL expander behind a
  /// serial link — are slower AND narrower than socket-attached DRAM.
  std::vector<Cycles> domain_dram_latency;
  std::vector<Cycles> domain_controller_service;

  /// Hops between two domains (0 for a == b, >= 1 otherwise).
  std::uint32_t distance(DomainId a, DomainId b) const noexcept {
    if (a == b) return 0;
    if (domain_distance.size() ==
        static_cast<std::size_t>(domain_count) * domain_count) {
      return domain_distance[static_cast<std::size_t>(a) * domain_count + b];
    }
    return 1;
  }

  /// Domains that hold cores (ids [0, compute_domain_count)).
  std::uint32_t compute_domain_count() const noexcept {
    return domain_count - memory_only_domains;
  }
  bool is_memory_only(DomainId domain) const noexcept {
    return domain >= compute_domain_count();
  }
  Cycles dram_latency_of(DomainId domain) const noexcept {
    if (domain_dram_latency.size() == domain_count) {
      return domain_dram_latency[domain];
    }
    return local_dram_latency;
  }
  Cycles controller_service_of(DomainId domain) const noexcept {
    if (domain_controller_service.size() == domain_count) {
      return domain_controller_service[domain];
    }
    return controller_service;
  }

  std::uint32_t core_count() const noexcept {
    return compute_domain_count() * cores_per_domain;
  }
  DomainId domain_of_core(CoreId core) const noexcept {
    return core / cores_per_domain;
  }
  CoreId first_core_of(DomainId domain) const noexcept {
    return domain * cores_per_domain;
  }
};

/// 4-socket AMD Magny-Cours: 48 cores in 8 NUMA domains (each socket holds
/// two 6-core dies with their own memory controllers). IBS host (Table 1).
Topology amd_magny_cours();

/// Same machine with its REAL partially-connected HyperTransport fabric:
/// the two dies of a socket are 1 hop apart, dies on different sockets are
/// 2 hops. (The flat preset above treats all remote pairs as 1 hop.)
Topology amd_magny_cours_ht();

/// 4-socket IBM POWER7: 128 SMT hardware threads, one NUMA domain per
/// socket (§8: "we consider each socket a NUMA domain"). MRK host.
Topology power7();

/// Intel Xeon Harpertown: 8 cores, 2 front-side-bus domains. PEBS host.
Topology xeon_harpertown();

/// Intel Itanium 2: 8 cores, 2 domains. DEAR host.
Topology itanium2();

/// Intel Ivy Bridge: 8 cores, 2 sockets/domains. PEBS-LL host.
Topology ivy_bridge();

/// Sub-NUMA clustering: a 2-socket box with each socket split into two
/// clusters (4 domains, 16 cores). Intra-socket cluster crossings are 1
/// cheap hop; cross-socket crossings are 2 hops — the asymmetric
/// intra-socket latency SNC exposes (and that flat 2-domain presets hide).
Topology snc_two_socket();

/// CXL-like far-memory tier: 2 compute domains plus one memory-only
/// expander domain with much higher latency and much lower bandwidth
/// (arXiv:2410.01514 §5 motivates profiling such tiered layouts).
Topology cxl_far_memory();

/// NUMAscope-style ccNUMA fabric: 6 two-core domains on a ring
/// interconnect, so remote costs grow with hop distance up to 3 hops
/// (arXiv:2111.11836 studies exactly these interconnect-heavy layouts).
Topology numascope_ccnuma();

/// Small machine for unit tests: `domains` domains x `cores` cores with tiny
/// caches so tests can force misses cheaply.
Topology test_machine(std::uint32_t domains, std::uint32_t cores);

/// All five evaluation presets (Table 1 order).
std::vector<Topology> evaluation_presets();

/// Stable short names of every registered preset, for by-name iteration
/// (tests and CLIs must not depend on Table-1 vector positions).
std::vector<std::string> preset_names();

/// Look up any registered preset by its short name (e.g. "magny-cours",
/// "snc", "cxl-far-memory"). Throws numaprof::Error{kUsage} naming the
/// valid choices when `name` is unknown.
Topology topology_by_name(std::string_view name);

}  // namespace numaprof::numasim
