// Machine topology description and presets for the five evaluation systems.
//
// The paper evaluates on five machines (Table 1): a 4-socket AMD
// Magny-Cours (48 cores, 8 NUMA domains), a 4-socket IBM POWER7 (128 SMT
// threads, 4 domains), an Intel Xeon Harpertown, an Itanium 2, and an Ivy
// Bridge box. Each preset reproduces the core/domain layout and a latency/
// bandwidth profile with the qualitative properties the paper relies on:
// remote accesses cost >30% more than local (§2) and saturated controllers
// inflate latency several-fold (§2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "numasim/types.hpp"

namespace numaprof::numasim {

/// Cache geometry for one level. Sizes are per cache instance.
struct CacheGeometry {
  std::uint32_t sets = 64;
  std::uint32_t ways = 8;
  Cycles hit_latency = 3;
  /// XOR-fold high address bits into the set index, as real caches hash
  /// their index function: without it, power-of-two strided placements
  /// (e.g. per-domain page blocks) alias into a few sets and thrash a
  /// cache they fit in by capacity. Test geometries disable it to keep
  /// set mapping predictable.
  bool hash_index = true;

  std::uint64_t capacity_bytes() const noexcept {
    return static_cast<std::uint64_t>(sets) * ways * kLineBytes;
  }
};

/// Full machine description. Immutable once built; System instantiates it.
struct Topology {
  std::string name;
  std::uint32_t domain_count = 1;
  std::uint32_t cores_per_domain = 1;

  CacheGeometry l1;  // private per core
  CacheGeometry l2;  // private per core
  CacheGeometry l3;  // shared per domain

  Cycles local_dram_latency = 120;   // controller pipe latency, uncontended
  Cycles remote_hop_latency = 60;    // one interconnect traversal, each way
  Cycles controller_service = 4;     // occupancy per request (1/bandwidth)
  Cycles link_service = 2;           // occupancy per remote transfer

  /// Optional inter-domain hop counts (row-major D x D), like the distance
  /// table `numactl --hardware` prints: real multi-socket fabrics are often
  /// partially connected, so some remote domains cost two traversals.
  /// Empty = uniform (every remote pair is 1 hop). Diagonal entries are 0.
  std::vector<std::uint8_t> domain_distance;

  /// Hops between two domains (0 for a == b, >= 1 otherwise).
  std::uint32_t distance(DomainId a, DomainId b) const noexcept {
    if (a == b) return 0;
    if (domain_distance.size() ==
        static_cast<std::size_t>(domain_count) * domain_count) {
      return domain_distance[static_cast<std::size_t>(a) * domain_count + b];
    }
    return 1;
  }

  std::uint32_t core_count() const noexcept {
    return domain_count * cores_per_domain;
  }
  DomainId domain_of_core(CoreId core) const noexcept {
    return core / cores_per_domain;
  }
  CoreId first_core_of(DomainId domain) const noexcept {
    return domain * cores_per_domain;
  }
};

/// 4-socket AMD Magny-Cours: 48 cores in 8 NUMA domains (each socket holds
/// two 6-core dies with their own memory controllers). IBS host (Table 1).
Topology amd_magny_cours();

/// Same machine with its REAL partially-connected HyperTransport fabric:
/// the two dies of a socket are 1 hop apart, dies on different sockets are
/// 2 hops. (The flat preset above treats all remote pairs as 1 hop.)
Topology amd_magny_cours_ht();

/// 4-socket IBM POWER7: 128 SMT hardware threads, one NUMA domain per
/// socket (§8: "we consider each socket a NUMA domain"). MRK host.
Topology power7();

/// Intel Xeon Harpertown: 8 cores, 2 front-side-bus domains. PEBS host.
Topology xeon_harpertown();

/// Intel Itanium 2: 8 cores, 2 domains. DEAR host.
Topology itanium2();

/// Intel Ivy Bridge: 8 cores, 2 sockets/domains. PEBS-LL host.
Topology ivy_bridge();

/// Small machine for unit tests: `domains` domains x `cores` cores with tiny
/// caches so tests can force misses cheaply.
Topology test_machine(std::uint32_t domains, std::uint32_t cores);

/// All five evaluation presets (Table 1 order).
std::vector<Topology> evaluation_presets();

}  // namespace numaprof::numasim
