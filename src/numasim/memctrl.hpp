// Memory controller with bandwidth-limited queueing.
//
// Each NUMA domain owns one controller. An access occupies the controller
// for `service` cycles; concurrent demand in the same time window queues,
// so a flood of requests to one domain inflates latency — the contention
// pathology §2 describes (observed up to ~5x in the literature the paper
// cites [7]). Per-controller request counts feed the "memory request
// balance" metric (§4.1) and the Figure 1 distribution comparison.
#pragma once

#include <cstdint>

#include "numasim/queue_model.hpp"
#include "numasim/types.hpp"
#include "support/stats.hpp"

namespace numaprof::numasim {

class MemoryController {
 public:
  MemoryController(Cycles pipe_latency, Cycles service) noexcept
      : pipe_latency_(pipe_latency), queue_(service) {}

  /// Issues one request at virtual time `now`. Returns the total cycles
  /// until data delivery: queueing delay + occupancy + pipe latency.
  Cycles request(Cycles now) noexcept {
    return queue_.enqueue(now) + queue_.service() + pipe_latency_;
  }

  std::uint64_t requests() const noexcept { return queue_.requests(); }
  const support::Accumulator& queue_delay() const noexcept {
    return queue_.delay_stats();
  }

  void reset_stats() noexcept { queue_.reset_stats(); }

 private:
  Cycles pipe_latency_;
  QueueModel queue_;
};

}  // namespace numaprof::numasim
