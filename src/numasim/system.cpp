#include "numasim/system.hpp"

namespace numaprof::numasim {

System::System(Topology topology)
    : topology_(std::move(topology)),
      interconnect_(topology_.domain_count, topology_.remote_hop_latency,
                    topology_.link_service) {
  const auto cores = topology_.core_count();
  l1_.reserve(cores);
  l2_.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    l1_.emplace_back(topology_.l1);
    l2_.emplace_back(topology_.l2);
  }
  l3_.reserve(topology_.domain_count);
  controllers_.reserve(topology_.domain_count);
  for (std::uint32_t d = 0; d < topology_.domain_count; ++d) {
    l3_.emplace_back(topology_.l3);
    controllers_.emplace_back(topology_.dram_latency_of(d),
                              topology_.controller_service_of(d));
  }
}

MemoryResult System::access(CoreId core, DomainId home,
                            std::uint64_t byte_addr, bool /*is_write*/,
                            Cycles now) {
  const LineAddr line = line_of(byte_addr);
  const DomainId requester = topology_.domain_of_core(core);
  const bool remote = requester != home;

  MemoryResult result;
  if (l1_[core].access(line)) {
    result.latency = topology_.l1.hit_latency;
    result.source = DataSource::kL1;
    return result;
  }
  if (l2_[core].access(line)) {
    result.latency = topology_.l2.hit_latency;
    result.source = DataSource::kL2;
    return result;
  }

  // Past the private caches: traverse to the home domain's L3. Memory-only
  // domains (CXL-type expanders) have no home-side cache, so every access
  // that reaches them pays the full DRAM path — the far tier can never
  // come back faster than socket-attached memory.
  Cycles latency = topology_.l2.hit_latency;  // L2 miss detection cost
  latency += interconnect_.round_trip(requester, home, now + latency,
                                      topology_.distance(requester, home));
  if (!topology_.is_memory_only(home) && l3_[home].access(line)) {
    latency += topology_.l3.hit_latency;
    result.latency = latency;
    result.source = remote ? DataSource::kRemoteL3 : DataSource::kLocalL3;
    return result;
  }

  // L3 miss: DRAM behind the home controller.
  result.l3_miss = true;
  latency += topology_.l3.hit_latency;  // L3 miss detection cost
  latency += controllers_[home].request(now + latency);
  result.latency = latency;
  result.source = remote ? DataSource::kRemoteDram : DataSource::kLocalDram;
  return result;
}

void System::invalidate_line(LineAddr line) noexcept {
  for (auto& cache : l1_) cache.invalidate(line);
  for (auto& cache : l2_) cache.invalidate(line);
  for (auto& cache : l3_) cache.invalidate(line);
}

void System::clear_caches() noexcept {
  for (auto& cache : l1_) cache.clear();
  for (auto& cache : l2_) cache.clear();
  for (auto& cache : l3_) cache.clear();
}

std::vector<std::uint64_t> System::controller_requests() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(controllers_.size());
  for (const auto& controller : controllers_) {
    counts.push_back(controller.requests());
  }
  return counts;
}

double System::controller_mean_queue_delay(DomainId domain) const {
  return controllers_.at(domain).queue_delay().mean();
}

void System::reset_stats() noexcept {
  for (auto& controller : controllers_) controller.reset_stats();
  interconnect_.reset_stats();
}

}  // namespace numaprof::numasim
