#include "numasim/topology.hpp"

namespace numaprof::numasim {

std::string_view to_string(DataSource s) noexcept {
  switch (s) {
    case DataSource::kL1: return "L1";
    case DataSource::kL2: return "L2";
    case DataSource::kLocalL3: return "local-L3";
    case DataSource::kRemoteL3: return "remote-L3";
    case DataSource::kLocalDram: return "local-DRAM";
    case DataSource::kRemoteDram: return "remote-DRAM";
  }
  return "unknown";
}

Topology amd_magny_cours() {
  Topology t;
  t.name = "AMD Magny-Cours (4 sockets, 8 NUMA domains, 48 cores)";
  t.domain_count = 8;
  t.cores_per_domain = 6;
  t.l1 = {.sets = 64, .ways = 2, .hit_latency = 3};     // 8 KiB
  t.l2 = {.sets = 64, .ways = 8, .hit_latency = 12};    // 32 KiB
  t.l3 = {.sets = 1024, .ways = 8, .hit_latency = 40};  // 512 KiB/domain
  t.local_dram_latency = 120;
  t.remote_hop_latency = 70;  // ~2.2x remote/local uncontended round trip
  // 64B per 12 cycles ~ 10 GB/s per controller at the nominal 2 GHz: low
  // enough that funneling all 48 threads into ONE controller saturates it
  // (the Figure-1 "bandwidth problem"), high enough that 6 local threads
  // per controller do not.
  t.controller_service = 12;
  t.link_service = 2;
  return t;
}

Topology amd_magny_cours_ht() {
  Topology t = amd_magny_cours();
  t.name = "AMD Magny-Cours (partially-connected HT fabric)";
  t.domain_distance.assign(static_cast<std::size_t>(t.domain_count) *
                               t.domain_count,
                           0);
  for (DomainId a = 0; a < t.domain_count; ++a) {
    for (DomainId b = 0; b < t.domain_count; ++b) {
      if (a == b) continue;
      // Dies 2k and 2k+1 share a socket: 1 hop. Other sockets: 2 hops.
      const bool same_socket = (a / 2) == (b / 2);
      t.domain_distance[static_cast<std::size_t>(a) * t.domain_count + b] =
          same_socket ? 1 : 2;
    }
  }
  return t;
}

Topology power7() {
  Topology t;
  t.name = "IBM POWER7 (4 sockets, 4 NUMA domains, 128 SMT threads)";
  t.domain_count = 4;
  t.cores_per_domain = 32;
  t.l1 = {.sets = 64, .ways = 2, .hit_latency = 2};
  t.l2 = {.sets = 128, .ways = 4, .hit_latency = 8};
  t.l3 = {.sets = 2048, .ways = 8, .hit_latency = 30};  // large eDRAM L3
  t.local_dram_latency = 100;
  // POWER7 sockets are tightly coupled: a smaller remote penalty than the
  // 8-domain AMD box, which is why interleaving (which sacrifices locality
  // for balance) can *hurt* there (§8.1: -16.4%). The narrow inter-socket
  // links make remote traffic expensive under load.
  t.remote_hop_latency = 45;
  t.controller_service = 8;
  t.link_service = 5;
  return t;
}

Topology xeon_harpertown() {
  Topology t;
  t.name = "Intel Xeon Harpertown (2 sockets, 8 cores)";
  t.domain_count = 2;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 64, .ways = 4, .hit_latency = 3};
  t.l2 = {.sets = 512, .ways = 8, .hit_latency = 14};
  t.l3 = {.sets = 2048, .ways = 8, .hit_latency = 45};
  t.local_dram_latency = 140;
  t.remote_hop_latency = 55;
  t.controller_service = 5;
  t.link_service = 3;
  return t;
}

Topology itanium2() {
  Topology t;
  t.name = "Intel Itanium 2 (2 domains, 8 cores)";
  t.domain_count = 2;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 32, .ways = 4, .hit_latency = 1};
  t.l2 = {.sets = 256, .ways = 8, .hit_latency = 6};
  t.l3 = {.sets = 4096, .ways = 12, .hit_latency = 25};
  t.local_dram_latency = 150;
  t.remote_hop_latency = 60;
  t.controller_service = 5;
  t.link_service = 3;
  return t;
}

Topology ivy_bridge() {
  Topology t;
  t.name = "Intel Ivy Bridge (2 sockets, 8 cores)";
  t.domain_count = 2;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 64, .ways = 8, .hit_latency = 4};
  t.l2 = {.sets = 512, .ways = 8, .hit_latency = 12};
  t.l3 = {.sets = 4096, .ways = 16, .hit_latency = 35};
  t.local_dram_latency = 110;
  t.remote_hop_latency = 50;
  t.controller_service = 3;
  t.link_service = 2;
  return t;
}

Topology test_machine(std::uint32_t domains, std::uint32_t cores) {
  Topology t;
  t.name = "test machine";
  t.domain_count = domains;
  t.cores_per_domain = cores;
  t.l1 = {.sets = 4, .ways = 2, .hit_latency = 3, .hash_index = false};
  t.l2 = {.sets = 8, .ways = 2, .hit_latency = 10, .hash_index = false};
  t.l3 = {.sets = 16, .ways = 4, .hit_latency = 30, .hash_index = false};
  t.local_dram_latency = 100;
  t.remote_hop_latency = 50;
  t.controller_service = 4;
  t.link_service = 2;
  return t;
}

std::vector<Topology> evaluation_presets() {
  return {amd_magny_cours(), power7(), xeon_harpertown(), itanium2(),
          ivy_bridge()};
}

}  // namespace numaprof::numasim
