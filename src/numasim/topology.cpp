#include "numasim/topology.hpp"

#include <cstdlib>
#include <utility>

#include "support/error.hpp"

namespace numaprof::numasim {

std::string_view to_string(DataSource s) noexcept {
  switch (s) {
    case DataSource::kL1: return "L1";
    case DataSource::kL2: return "L2";
    case DataSource::kLocalL3: return "local-L3";
    case DataSource::kRemoteL3: return "remote-L3";
    case DataSource::kLocalDram: return "local-DRAM";
    case DataSource::kRemoteDram: return "remote-DRAM";
  }
  return "unknown";
}

Topology amd_magny_cours() {
  Topology t;
  t.name = "AMD Magny-Cours (4 sockets, 8 NUMA domains, 48 cores)";
  t.domain_count = 8;
  t.cores_per_domain = 6;
  t.l1 = {.sets = 64, .ways = 2, .hit_latency = 3};     // 8 KiB
  t.l2 = {.sets = 64, .ways = 8, .hit_latency = 12};    // 32 KiB
  t.l3 = {.sets = 1024, .ways = 8, .hit_latency = 40};  // 512 KiB/domain
  t.local_dram_latency = 120;
  t.remote_hop_latency = 70;  // ~2.2x remote/local uncontended round trip
  // 64B per 12 cycles ~ 10 GB/s per controller at the nominal 2 GHz: low
  // enough that funneling all 48 threads into ONE controller saturates it
  // (the Figure-1 "bandwidth problem"), high enough that 6 local threads
  // per controller do not.
  t.controller_service = 12;
  t.link_service = 2;
  return t;
}

Topology amd_magny_cours_ht() {
  Topology t = amd_magny_cours();
  t.name = "AMD Magny-Cours (partially-connected HT fabric)";
  t.domain_distance.assign(static_cast<std::size_t>(t.domain_count) *
                               t.domain_count,
                           0);
  for (DomainId a = 0; a < t.domain_count; ++a) {
    for (DomainId b = 0; b < t.domain_count; ++b) {
      if (a == b) continue;
      // Dies 2k and 2k+1 share a socket: 1 hop. Other sockets: 2 hops.
      const bool same_socket = (a / 2) == (b / 2);
      t.domain_distance[static_cast<std::size_t>(a) * t.domain_count + b] =
          same_socket ? 1 : 2;
    }
  }
  return t;
}

Topology power7() {
  Topology t;
  t.name = "IBM POWER7 (4 sockets, 4 NUMA domains, 128 SMT threads)";
  t.domain_count = 4;
  t.cores_per_domain = 32;
  t.l1 = {.sets = 64, .ways = 2, .hit_latency = 2};
  t.l2 = {.sets = 128, .ways = 4, .hit_latency = 8};
  t.l3 = {.sets = 2048, .ways = 8, .hit_latency = 30};  // large eDRAM L3
  t.local_dram_latency = 100;
  // POWER7 sockets are tightly coupled: a smaller remote penalty than the
  // 8-domain AMD box, which is why interleaving (which sacrifices locality
  // for balance) can *hurt* there (§8.1: -16.4%). The narrow inter-socket
  // links make remote traffic expensive under load.
  t.remote_hop_latency = 45;
  t.controller_service = 8;
  t.link_service = 5;
  return t;
}

Topology xeon_harpertown() {
  Topology t;
  t.name = "Intel Xeon Harpertown (2 sockets, 8 cores)";
  t.domain_count = 2;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 64, .ways = 4, .hit_latency = 3};
  t.l2 = {.sets = 512, .ways = 8, .hit_latency = 14};
  t.l3 = {.sets = 2048, .ways = 8, .hit_latency = 45};
  t.local_dram_latency = 140;
  t.remote_hop_latency = 55;
  t.controller_service = 5;
  t.link_service = 3;
  return t;
}

Topology itanium2() {
  Topology t;
  t.name = "Intel Itanium 2 (2 domains, 8 cores)";
  t.domain_count = 2;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 32, .ways = 4, .hit_latency = 1};
  t.l2 = {.sets = 256, .ways = 8, .hit_latency = 6};
  t.l3 = {.sets = 4096, .ways = 12, .hit_latency = 25};
  t.local_dram_latency = 150;
  t.remote_hop_latency = 60;
  t.controller_service = 5;
  t.link_service = 3;
  return t;
}

Topology ivy_bridge() {
  Topology t;
  t.name = "Intel Ivy Bridge (2 sockets, 8 cores)";
  t.domain_count = 2;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 64, .ways = 8, .hit_latency = 4};
  t.l2 = {.sets = 512, .ways = 8, .hit_latency = 12};
  t.l3 = {.sets = 4096, .ways = 16, .hit_latency = 35};
  t.local_dram_latency = 110;
  t.remote_hop_latency = 50;
  t.controller_service = 3;
  t.link_service = 2;
  return t;
}

Topology snc_two_socket() {
  Topology t;
  t.name = "SNC two-socket (2 sockets x 2 clusters, 16 cores)";
  t.domain_count = 4;
  t.cores_per_domain = 4;
  t.l1 = {.sets = 64, .ways = 8, .hit_latency = 4};
  t.l2 = {.sets = 512, .ways = 8, .hit_latency = 12};
  t.l3 = {.sets = 2048, .ways = 12, .hit_latency = 33};
  t.local_dram_latency = 105;
  // SNC's defining asymmetry: the sibling cluster on the same socket is a
  // single cheap mesh hop away, while the other socket costs two UPI-class
  // traversals. remote = 105 + 2*40 = 185 > 1.3x local keeps the §2
  // invariant for the sibling cluster too.
  t.remote_hop_latency = 40;
  t.controller_service = 6;
  t.link_service = 2;
  t.domain_distance.assign(static_cast<std::size_t>(t.domain_count) *
                               t.domain_count,
                           0);
  for (DomainId a = 0; a < t.domain_count; ++a) {
    for (DomainId b = 0; b < t.domain_count; ++b) {
      if (a == b) continue;
      const bool same_socket = (a / 2) == (b / 2);
      t.domain_distance[static_cast<std::size_t>(a) * t.domain_count + b] =
          same_socket ? 1 : 2;
    }
  }
  return t;
}

Topology cxl_far_memory() {
  Topology t;
  t.name = "CXL far memory (2 compute domains + 1 memory-only expander)";
  t.domain_count = 3;
  t.cores_per_domain = 4;
  t.memory_only_domains = 1;  // domain 2 has memory but no cores
  t.l1 = {.sets = 64, .ways = 8, .hit_latency = 4};
  t.l2 = {.sets = 512, .ways = 8, .hit_latency = 12};
  t.l3 = {.sets = 4096, .ways = 16, .hit_latency = 35};
  t.local_dram_latency = 110;
  t.remote_hop_latency = 50;
  t.controller_service = 3;
  t.link_service = 2;
  // The expander sits behind a serial CXL link: ~3x the pipe latency of
  // socket DRAM and an order of magnitude less bandwidth (high occupancy
  // per request). Socket domains keep the uniform numbers.
  t.domain_dram_latency = {110, 110, 340};
  t.domain_controller_service = {3, 3, 36};
  // Reaching the expander crosses the socket fabric and then the CXL link.
  t.domain_distance = {0, 1, 2,   //
                       1, 0, 2,   //
                       2, 2, 0};
  return t;
}

Topology numascope_ccnuma() {
  Topology t;
  t.name = "NUMAscope ccNUMA ring (6 domains, 12 cores)";
  t.domain_count = 6;
  t.cores_per_domain = 2;
  t.l1 = {.sets = 64, .ways = 4, .hit_latency = 3};
  t.l2 = {.sets = 256, .ways = 8, .hit_latency = 11};
  t.l3 = {.sets = 1024, .ways = 8, .hit_latency = 38};
  t.local_dram_latency = 115;
  t.remote_hop_latency = 55;
  t.controller_service = 7;
  t.link_service = 3;
  // Ring fabric: hop count is the shorter way around, so remote latency
  // grows with distance (1..3 hops) instead of the flat 1-hop presets.
  t.domain_distance.assign(static_cast<std::size_t>(t.domain_count) *
                               t.domain_count,
                           0);
  for (DomainId a = 0; a < t.domain_count; ++a) {
    for (DomainId b = 0; b < t.domain_count; ++b) {
      if (a == b) continue;
      const std::uint32_t forward = (b + t.domain_count - a) % t.domain_count;
      const std::uint32_t hops =
          forward < t.domain_count - forward ? forward
                                             : t.domain_count - forward;
      t.domain_distance[static_cast<std::size_t>(a) * t.domain_count + b] =
          static_cast<std::uint8_t>(hops);
    }
  }
  return t;
}

Topology test_machine(std::uint32_t domains, std::uint32_t cores) {
  Topology t;
  t.name = "test machine";
  t.domain_count = domains;
  t.cores_per_domain = cores;
  t.l1 = {.sets = 4, .ways = 2, .hit_latency = 3, .hash_index = false};
  t.l2 = {.sets = 8, .ways = 2, .hit_latency = 10, .hash_index = false};
  t.l3 = {.sets = 16, .ways = 4, .hit_latency = 30, .hash_index = false};
  t.local_dram_latency = 100;
  t.remote_hop_latency = 50;
  t.controller_service = 4;
  t.link_service = 2;
  return t;
}

std::vector<Topology> evaluation_presets() {
  return {amd_magny_cours(), power7(), xeon_harpertown(), itanium2(),
          ivy_bridge()};
}

namespace {

struct PresetEntry {
  const char* name;
  Topology (*factory)();
};

// The by-name catalog. Order here is presentation order for preset_names()
// and error messages; lookups never depend on position.
constexpr PresetEntry kPresetCatalog[] = {
    {"magny-cours", amd_magny_cours},
    {"magny-cours-ht", amd_magny_cours_ht},
    {"power7", power7},
    {"harpertown", xeon_harpertown},
    {"itanium2", itanium2},
    {"ivy-bridge", ivy_bridge},
    {"snc", snc_two_socket},
    {"cxl-far-memory", cxl_far_memory},
    {"numascope", numascope_ccnuma},
};

}  // namespace

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kPresetCatalog));
  for (const PresetEntry& entry : kPresetCatalog) {
    names.emplace_back(entry.name);
  }
  return names;
}

Topology topology_by_name(std::string_view name) {
  for (const PresetEntry& entry : kPresetCatalog) {
    if (name == entry.name) return entry.factory();
  }
  std::string known;
  for (const PresetEntry& entry : kPresetCatalog) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw Error(ErrorKind::kUsage, /*file=*/"", /*field=*/"topology",
              /*line=*/0,
              "unknown topology preset '" + std::string(name) +
                  "' (known presets: " + known + ")");
}

}  // namespace numaprof::numasim
