// Epoch-windowed queueing model for bandwidth-limited resources.
//
// Memory controllers and interconnect links serve one transfer per
// `service` cycles. Queueing delay is computed from the demand observed in
// the request's own epoch (a fixed window of virtual time): the k-th
// request arriving in an epoch waits until the epoch's backlog (k*service)
// has drained. This formulation is insensitive to the order in which the
// discrete-event scheduler happens to *process* requests from concurrently
// executing threads (their virtual timestamps can be mildly out of order
// across scheduling quanta), yet it is self-limiting in the closed loop:
// queueing delay stalls the requesting thread, which lowers the demand in
// subsequent epochs until utilization settles near the service bandwidth —
// reproducing the several-fold contention-induced latency inflation of §2
// without unbounded backlog growth from artificial arrival-order skew.
#pragma once

#include <array>
#include <cstdint>

#include "numasim/types.hpp"
#include "support/stats.hpp"

namespace numaprof::numasim {

class QueueModel {
 public:
  explicit QueueModel(Cycles service, Cycles epoch_length = 4096) noexcept
      : service_(service == 0 ? 1 : service),
        epoch_length_(epoch_length == 0 ? 1 : epoch_length) {}

  /// Registers one request at virtual time `now`; returns its queueing
  /// delay (excluding the service time itself).
  Cycles enqueue(Cycles now) noexcept {
    const std::uint64_t epoch = now / epoch_length_;
    Slot& slot = slots_[epoch & (slots_.size() - 1)];
    if (slot.epoch != epoch) {
      slot.epoch = epoch;
      slot.count = 0;
    }
    const std::uint64_t backlog =
        static_cast<std::uint64_t>(slot.count) * service_;
    ++slot.count;
    ++requests_;
    const Cycles elapsed = now - epoch * epoch_length_;
    const Cycles delay = backlog > elapsed ? backlog - elapsed : 0;
    delay_stats_.add(static_cast<double>(delay));
    return delay;
  }

  Cycles service() const noexcept { return service_; }
  std::uint64_t requests() const noexcept { return requests_; }
  const support::Accumulator& delay_stats() const noexcept {
    return delay_stats_;
  }

  void reset_stats() noexcept {
    requests_ = 0;
    delay_stats_ = {};
  }

 private:
  struct Slot {
    std::uint64_t epoch = ~0ULL;
    std::uint32_t count = 0;
  };

  Cycles service_;
  Cycles epoch_length_;
  std::array<Slot, 128> slots_;  // power-of-two ring; must cover more
                                 // virtual time than the scheduler's
                                 // maximum thread-clock skew (one quantum)
  std::uint64_t requests_ = 0;
  support::Accumulator delay_stats_;
};

}  // namespace numaprof::numasim
