// Core identifier and unit types for the NUMA machine model.
#pragma once

#include <cstdint>
#include <string_view>

namespace numaprof::numasim {

/// Virtual time in CPU cycles. One global clock domain: the simulator runs
/// every core at the same nominal frequency, as the paper's metrics (cycles
/// per instruction) assume.
using Cycles = std::uint64_t;

/// Identifies a hardware thread (logical CPU) in the machine. Dense, 0-based.
using CoreId = std::uint32_t;

/// Identifies a NUMA domain (socket or on-chip domain, §1). Dense, 0-based.
using DomainId = std::uint32_t;

/// Cache line addresses: byte address >> kLineBits.
using LineAddr = std::uint64_t;

inline constexpr std::uint32_t kLineBits = 6;   // 64-byte cache lines
inline constexpr std::uint64_t kLineBytes = 1ULL << kLineBits;

constexpr LineAddr line_of(std::uint64_t byte_addr) noexcept {
  return byte_addr >> kLineBits;
}

/// Where a memory access was satisfied. This mirrors the "data source"
/// field PMU address sampling reports (IBS and PEBS-LL expose it; §3, §4.2).
enum class DataSource : std::uint8_t {
  kL1,          // requester's private L1
  kL2,          // requester's private L2
  kLocalL3,     // shared L3 of the requester's own domain
  kRemoteL3,    // shared L3 of another domain
  kLocalDram,   // memory attached to the requester's domain
  kRemoteDram,  // memory attached to another domain
};

/// True when the access left the requester's NUMA domain (counts toward
/// remote-access metrics such as M_r and l_NUMA).
constexpr bool is_remote(DataSource s) noexcept {
  return s == DataSource::kRemoteL3 || s == DataSource::kRemoteDram;
}

/// True when the access missed every cache and reached DRAM.
constexpr bool is_dram(DataSource s) noexcept {
  return s == DataSource::kLocalDram || s == DataSource::kRemoteDram;
}

std::string_view to_string(DataSource s) noexcept;

}  // namespace numaprof::numasim
