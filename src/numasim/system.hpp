// The assembled NUMA machine: caches + controllers + interconnect.
//
// System resolves one memory access end-to-end and reports the latency and
// data source, which is exactly the information hardware address sampling
// exposes to the paper's tool. The caller (simrt::Machine) supplies the
// *home domain* of the address, which the OS layer (page tables) decides.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "numasim/cache.hpp"
#include "numasim/interconnect.hpp"
#include "numasim/memctrl.hpp"
#include "numasim/topology.hpp"
#include "numasim/types.hpp"

namespace numaprof::numasim {

/// Result of one resolved memory access.
struct MemoryResult {
  Cycles latency = 0;       // total cycles to data delivery
  DataSource source = DataSource::kL1;
  bool l3_miss = false;     // true when the home L3 missed (MRK's event)
};

class System {
 public:
  explicit System(Topology topology);

  const Topology& topology() const noexcept { return topology_; }

  /// Resolves a data access from `core` to a byte address whose page is
  /// homed in `home`. `now` is the requesting thread's virtual time.
  /// The lookup order models a memory-side hierarchy: requester L1 -> L2,
  /// then the home domain's L3 (crossing the interconnect if remote), then
  /// the home domain's DRAM behind its memory controller.
  MemoryResult access(CoreId core, DomainId home, std::uint64_t byte_addr,
                      bool is_write, Cycles now);

  /// Invalidates a line everywhere (page-migration support).
  void invalidate_line(LineAddr line) noexcept;

  /// Drops all cached state; statistics are preserved.
  void clear_caches() noexcept;

  /// Per-domain DRAM request counts (the Figure 1 balance measurement).
  std::vector<std::uint64_t> controller_requests() const;

  /// Mean queueing delay observed at one controller, in cycles.
  double controller_mean_queue_delay(DomainId domain) const;

  const Interconnect& interconnect() const noexcept { return interconnect_; }
  Interconnect& interconnect() noexcept { return interconnect_; }

  const SetAssocCache& l1(CoreId core) const { return l1_.at(core); }
  const SetAssocCache& l2(CoreId core) const { return l2_.at(core); }
  const SetAssocCache& l3(DomainId domain) const { return l3_.at(domain); }

  void reset_stats() noexcept;

 private:
  Topology topology_;
  std::vector<SetAssocCache> l1_;               // per core
  std::vector<SetAssocCache> l2_;               // per core
  std::vector<SetAssocCache> l3_;               // per domain
  std::vector<MemoryController> controllers_;   // per domain
  Interconnect interconnect_;
};

}  // namespace numaprof::numasim
