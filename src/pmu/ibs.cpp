#include "pmu/mechanisms.hpp"

namespace numaprof::pmu {

std::uint64_t busy_work(std::uint32_t iterations) noexcept {
  volatile std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < iterations; ++i) acc = acc + i;
  return acc;
}

void IbsSampler::on_exec(const simrt::SimThread& thread, std::uint64_t count) {
  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = jittered_period();
    st.primed = true;
  }
  // A batch of `count` non-memory instructions may straddle several tag
  // points; each tagged op yields an instruction sample (I^s in Eq. 2).
  while (count >= st.countdown) {
    count -= st.countdown;
    emit(make_instruction_sample(thread));
    st.countdown = jittered_period();
  }
  st.countdown -= count;
}

void IbsSampler::on_access(const simrt::SimThread& thread,
                           const simrt::AccessEvent& event) {
  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = jittered_period();
    st.primed = true;
  }
  if (st.countdown <= 1) {
    emit(make_memory_sample(event));
    st.countdown = jittered_period();
  } else {
    --st.countdown;
  }
}

}  // namespace numaprof::pmu
