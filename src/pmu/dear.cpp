#include "pmu/mechanisms.hpp"

namespace numaprof::pmu {

void DearSampler::on_access(const simrt::SimThread& thread,
                            const simrt::AccessEvent& event) {
  if (event.is_write) return;  // DEAR captures loads
  if (event.latency < config_.latency_threshold) return;

  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = jittered_period();
    st.primed = true;
  }
  if (st.countdown <= 1) {
    st.countdown = jittered_period();
    emit(make_memory_sample(event));
  } else {
    --st.countdown;
  }
}

}  // namespace numaprof::pmu
