#include "pmu/config.hpp"

#include <algorithm>
#include <cctype>

#include "support/faultinject.hpp"

namespace numaprof::pmu {

std::string_view to_string(Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kIbs: return "IBS";
    case Mechanism::kMrk: return "MRK";
    case Mechanism::kPebs: return "PEBS";
    case Mechanism::kDear: return "DEAR";
    case Mechanism::kPebsLl: return "PEBS-LL";
    case Mechanism::kSoftIbs: return "Soft-IBS";
    case Mechanism::kSpe: return "SPE";
  }
  return "unknown";
}

Capabilities capabilities_of(Mechanism m) noexcept {
  switch (m) {
    case Mechanism::kIbs:
      // Samples all instruction kinds; reports latency, data source,
      // precise IP (§3, §10).
      return {.samples_all_instructions = true,
              .reports_latency = true,
              .reports_data_source = true,
              .precise_ip = true};
    case Mechanism::kMrk:
      // Marked-event sampling: only instructions causing the marked event
      // (here PM_MRK_FROM_L3MISS); no latency in the analysis the paper
      // runs; hardware-rate-limited (§8 footnote 2).
      return {.precise_ip = true, .event_filtered = true};
    case Mechanism::kPebs:
      // INST_RETIRED:ANY_P samples every instruction kind but the reported
      // IP is the *next* instruction (off-by-1, §8).
      return {.samples_all_instructions = true, .precise_ip = false};
    case Mechanism::kDear:
      // Loads with latency above a threshold; latency reported, but no
      // NUMA data-source events (§10).
      return {.reports_latency = true,
              .precise_ip = true,
              .event_filtered = true};
    case Mechanism::kPebsLl:
      // Load-latency extension: latency + data source on qualifying loads.
      return {.reports_latency = true,
              .reports_data_source = true,
              .precise_ip = true,
              .event_filtered = true};
    case Mechanism::kSoftIbs:
      // Instrumentation sees every access; effective address + IP only.
      return {.precise_ip = true, .software_instrumentation = true};
    case Mechanism::kSpe:
      // ARM SPE samples every N-th micro-op of any kind at a FIXED
      // architectural interval; sampled memory ops carry total latency,
      // a data-source packet, and a precise PC (arXiv:2410.01514 §2).
      return {.samples_all_instructions = true,
              .reports_latency = true,
              .reports_data_source = true,
              .precise_ip = true};
  }
  return {};
}

EventConfig EventConfig::table1(Mechanism m) {
  EventConfig c;
  c.mechanism = m;
  switch (m) {
    case Mechanism::kIbs:
      c.event_name = "IBS op";
      c.period = 64 * 1024;  // 64K instructions
      break;
    case Mechanism::kMrk:
      c.event_name = "PM_MRK_FROM_L3MISS";
      c.period = 1;
      // "less than 100 samples/second per thread" at the fastest
      // user-controllable rate: gap >= cycles/sec / 100.
      c.min_sample_gap = static_cast<numasim::Cycles>(kCyclesPerSecond / 100);
      break;
    case Mechanism::kPebs:
      c.event_name = "INST_RETIRED:ANY_P";
      c.period = 1'000'000;
      break;
    case Mechanism::kDear:
      c.event_name = "DATA_EAR_CACHE_LAT4";
      c.period = 20'000;
      c.latency_threshold = 4;
      break;
    case Mechanism::kPebsLl:
      c.event_name = "LATENCY_ABOVE_THRESHOLD";
      c.period = 500'000;
      c.latency_threshold = 32;
      break;
    case Mechanism::kSoftIbs:
      c.event_name = "memory accesses";
      c.period = 10'000'000;
      break;
    case Mechanism::kSpe:
      // PMSIRR.INTERVAL is a fixed op count; SPE relies on collision
      // detection rather than period jitter.
      c.event_name = "SPE ops (PMSIRR interval)";
      c.period = 32 * 1024;
      break;
  }
  return c;
}

EventConfig EventConfig::mini(Mechanism m) {
  EventConfig c = table1(m);
  // Scaled periods keep the paper's RATE ordering: Soft-IBS instruments
  // every access; PEBS pays per-sample correction; IBS samples all
  // instruction kinds at the highest hardware rate; DEAR/PEBS-LL sample
  // events at a moderate rate; MRK is hardware rate limited.
  switch (m) {
    case Mechanism::kIbs: c.period = 1'000; break;
    case Mechanism::kMrk: c.min_sample_gap = 20'000; break;
    case Mechanism::kPebs: c.period = 10'000; break;
    case Mechanism::kDear: c.period = 2'000; break;
    case Mechanism::kPebsLl: c.period = 2'000; break;
    case Mechanism::kSoftIbs: c.period = 5'000; break;
    case Mechanism::kSpe: c.period = 1'200; break;
  }
  return c;
}

std::string spec_name(Mechanism m) {
  std::string name(to_string(m));
  std::transform(name.begin(), name.end(), name.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return name;
}

std::vector<Mechanism> fallback_chain(Mechanism requested) {
  // SPE sits right after IBS: it matches IBS's capability profile
  // (all-instruction sampling + latency + data source + precise IP), so it
  // is the richest substitute when IBS hardware is absent.
  static constexpr Mechanism kOrder[] = {
      Mechanism::kIbs,  Mechanism::kSpe,  Mechanism::kPebsLl,
      Mechanism::kPebs, Mechanism::kMrk,  Mechanism::kDear,
      Mechanism::kSoftIbs};
  std::vector<Mechanism> chain{requested};
  for (const Mechanism m : kOrder) {
    if (m != requested) chain.push_back(m);
  }
  return chain;
}

bool mechanism_available(Mechanism m, const support::FaultPlan& plan) {
  // Soft-IBS is pure software instrumentation: no PMU, no permissions, no
  // model-specific registers — it cannot fail to initialize.
  if (m == Mechanism::kSoftIbs) return true;
  return !plan.fails_init(spec_name(m));
}

}  // namespace numaprof::pmu
