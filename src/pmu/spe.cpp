#include "pmu/mechanisms.hpp"

namespace numaprof::pmu {

namespace {

std::uint64_t fixed_period(const EventConfig& config) noexcept {
  return config.period == 0 ? 1 : config.period;
}

}  // namespace

void SpeSampler::on_exec(const simrt::SimThread& thread, std::uint64_t count) {
  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = fixed_period(config_);
    st.primed = true;
  }
  // Like IBS, SPE tags operations of any kind, so a batch of non-memory
  // ops can straddle several sampling intervals. Unlike IBS the reload
  // value is the exact PMSIRR interval — no jitter.
  while (count >= st.countdown) {
    count -= st.countdown;
    emit(make_instruction_sample(thread));
    st.countdown = fixed_period(config_);
  }
  st.countdown -= count;
}

void SpeSampler::on_access(const simrt::SimThread& thread,
                           const simrt::AccessEvent& event) {
  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = fixed_period(config_);
    st.primed = true;
  }
  if (st.countdown <= 1) {
    emit(make_memory_sample(event));
    st.countdown = fixed_period(config_);
  } else {
    --st.countdown;
  }
}

}  // namespace numaprof::pmu
