// Sampling-event configuration (Table 1).
//
// Each mechanism is configured with the paper's event and sampling period.
// Because this reproduction's workloads execute ~10^7-10^8 simulated
// instructions (vs ~10^10-10^11 on the paper's testbeds), `mini()` presets
// scale the periods down proportionally so case-study runs still collect
// statistically useful sample counts; `table1()` keeps the paper's values
// for the configuration-table bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "numasim/types.hpp"
#include "pmu/sample.hpp"

namespace numaprof::support {
class FaultPlan;
}

namespace numaprof::pmu {

/// Nominal simulated clock rate used to convert virtual cycles to seconds
/// when reporting samples-per-second (Table 1's 100-1000/s/thread window).
inline constexpr double kCyclesPerSecond = 2.0e9;

struct EventConfig {
  Mechanism mechanism = Mechanism::kIbs;
  std::string event_name;        // the PMU event programmed (Table 1)
  std::uint64_t period = 1;      // instructions or qualifying events
  numasim::Cycles latency_threshold = 0;  // DEAR / PEBS-LL qualifier
  numasim::Cycles min_sample_gap = 0;     // MRK hardware rate limiting
  bool pebs_skid_correction = true;  // profiler-side off-by-1 fixup (§8)
  std::uint64_t seed = 0x5eed;   // jitter seed (hardware randomizes low
                                 // period bits to avoid aliasing)

  // Host-work knobs that reproduce the *overhead structure* of Table 2:
  // Soft-IBS pays an instrumentation stub on EVERY access (highest
  // overhead); PEBS pays online previous-instruction binary analysis per
  // sample (second highest, §8: "difficult for x86 code"). Units are spin
  // iterations of real host work.
  std::uint32_t instrumentation_work = 60;   // Soft-IBS per-access stub
  std::uint32_t skid_correction_work = 60000;  // PEBS per-sample analysis

  /// The paper's Table 1 configuration for `m`.
  static EventConfig table1(Mechanism m);
  /// Periods scaled for this reproduction's mini workloads.
  static EventConfig mini(Mechanism m);
};

/// Degradation order when `requested` cannot be initialized: the requested
/// mechanism first, then IBS → SPE → PEBS-LL → PEBS → MRK → DEAR → Soft-IBS
/// (richest capabilities first; Soft-IBS is the always-available software
/// fallback the paper built for exactly this case, §3).
std::vector<Mechanism> fallback_chain(Mechanism requested);

/// Availability probe: does mechanism `m` initialize on this "machine"?
/// Missing hardware / misconfiguration is simulated by the fault plan;
/// Soft-IBS needs no hardware and always probes available.
bool mechanism_available(Mechanism m, const support::FaultPlan& plan);

/// Lower-case mechanism name as used by CLIs and NUMAPROF_FAULTS
/// (ibs, mrk, pebs, dear, pebs-ll, soft-ibs, spe).
std::string spec_name(Mechanism m);

}  // namespace numaprof::pmu
