#include "pmu/mechanisms.hpp"

namespace numaprof::pmu {

void SoftIbsSampler::on_access(const simrt::SimThread& thread,
                               const simrt::AccessEvent& event) {
  // The instrumentation stub runs on EVERY memory access (the engine
  // "instruments every memory access instruction", §3); its cost is real
  // host work and dominates Soft-IBS's Table 2 overhead.
  busy_work(config_.instrumentation_work);

  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = config_.period == 0 ? 1 : config_.period;
    st.primed = true;
  }
  if (--st.countdown != 0) return;
  st.countdown = config_.period == 0 ? 1 : config_.period;

  // Software sampling sees the address and IP; no latency or data source.
  emit(make_memory_sample(event));
}

}  // namespace numaprof::pmu
