#include "pmu/sampler.hpp"

#include <stdexcept>

#include "pmu/mechanisms.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry.hpp"

namespace numaprof::pmu {

Sampler::ThreadState& Sampler::state_of(simrt::ThreadId tid) {
  if (tid >= states_.size()) states_.resize(tid + 1);
  return states_[tid];
}

std::uint64_t Sampler::jittered_period() {
  if (!jitter_seeded_) {
    jitter_ = support::Rng(config_.seed);
    jitter_seeded_ = true;
  }
  const std::uint64_t base = config_.period == 0 ? 1 : config_.period;
  const std::uint64_t spread = base / 8;
  if (spread == 0) return base;
  return base - spread + jitter_.next_below(2 * spread + 1);
}

Sample Sampler::make_memory_sample(const simrt::AccessEvent& event) const {
  const Capabilities caps = capabilities();
  Sample s;
  s.mechanism = config_.mechanism;
  s.tid = event.tid;
  s.core = event.core;
  s.is_memory = true;
  s.addr = event.addr;
  s.is_write = event.is_write;
  if (caps.reports_latency) s.latency = event.latency;
  if (caps.reports_data_source) s.data_source = event.source;
  s.l3_miss = event.l3_miss;
  s.time = event.time;
  s.op_index = event.op_index;
  s.leaf_frame = event.leaf_frame;
  s.stack.assign(event.stack.begin(), event.stack.end());
  s.ip_precise = caps.precise_ip;
  return s;
}

Sample Sampler::make_instruction_sample(const simrt::SimThread& thread) const {
  Sample s;
  s.mechanism = config_.mechanism;
  s.tid = thread.tid();
  s.core = thread.core();
  s.is_memory = false;
  s.time = thread.now();
  s.op_index = thread.instructions();
  s.leaf_frame = thread.leaf_frame();
  const auto stack = thread.call_stack();
  s.stack.assign(stack.begin(), stack.end());
  s.ip_precise = capabilities().precise_ip;
  return s;
}

void Sampler::emit(Sample sample) {
  support::TelemetryRing* ring =
      telemetry_ != nullptr ? &telemetry_->ring(sample.tid) : nullptr;
  if (faults_ != nullptr && faults_->enabled()) {
    if (faults_->drop_sample()) {
      ++dropped_;
      if (ring != nullptr) {
        ring->add(support::TelemetryCounter::kDroppedSamples);
      }
      return;
    }
    if (sample.is_memory && faults_->corrupt_sample()) {
      sample.addr = faults_->scramble(sample.addr);
      ++corrupted_;
      if (ring != nullptr) {
        ring->add(support::TelemetryCounter::kCorruptedSamples);
      }
    }
    if (sample.latency) {
      if (const auto spike = faults_->latency_outlier()) {
        *sample.latency += static_cast<numasim::Cycles>(*spike);
      }
    }
  }
  ++emitted_;
  if (sample.is_memory) ++memory_samples_;
  if (ring != nullptr) {
    ring->add(support::TelemetryCounter::kSamples);
    if (sample.is_memory) {
      ring->add(support::TelemetryCounter::kMemorySamples);
    }
  }
  if (sink_) sink_(sample);
}

std::unique_ptr<Sampler> make_sampler(EventConfig config) {
  switch (config.mechanism) {
    case Mechanism::kIbs: return std::make_unique<IbsSampler>(config);
    case Mechanism::kMrk: return std::make_unique<MrkSampler>(config);
    case Mechanism::kPebs: return std::make_unique<PebsSampler>(config);
    case Mechanism::kDear: return std::make_unique<DearSampler>(config);
    case Mechanism::kPebsLl: return std::make_unique<PebsLlSampler>(config);
    case Mechanism::kSoftIbs: return std::make_unique<SoftIbsSampler>(config);
    case Mechanism::kSpe: return std::make_unique<SpeSampler>(config);
  }
  throw std::invalid_argument("unknown sampling mechanism");
}

MechanismFallback make_sampler_with_fallback(const EventConfig& config,
                                             support::FaultPlan& plan) {
  MechanismFallback result;
  result.requested = config.mechanism;
  result.used = config.mechanism;
  for (const Mechanism m : fallback_chain(config.mechanism)) {
    if (!mechanism_available(m, plan)) {
      result.unavailable.push_back(m);
      continue;
    }
    EventConfig chosen = config;
    if (m != config.mechanism) {
      // The requested event/period pairing is meaningless on a different
      // mechanism; fall back to that mechanism's mini() preset but keep
      // the caller's jitter seed for reproducibility.
      chosen = EventConfig::mini(m);
      chosen.seed = config.seed;
    }
    result.used = m;
    result.sampler = make_sampler(chosen);
    result.sampler->set_fault_plan(plan.enabled() ? &plan : nullptr);
    return result;
  }
  // Unreachable: Soft-IBS always probes available. Guard anyway so a
  // future chain edit cannot return a null sampler.
  throw std::runtime_error("no sampling mechanism available");
}

}  // namespace numaprof::pmu
