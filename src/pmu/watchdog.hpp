// Sampling watchdog: detects sample starvation and runaway overhead.
//
// A misconfigured period (or an injected fault regime that eats samples)
// leaves a run with either no data or crushing overhead. Production
// profilers guard against both by watching the sample rate and retuning
// the period online; this watchdog reproduces that: it observes the same
// instruction stream the sampler does, and
//   - halves the period after a window of instructions with zero emitted
//     samples (starvation — the mechanism is configured too coarse, or
//     faults are suppressing its output), and
//   - doubles the period when samples-per-instruction exceeds a ceiling
//     (runaway overhead — the mechanism fires too often to be a profiler).
// Every retune is recorded so SessionData can report HOW the data was
// collected.
#pragma once

#include <cstdint>
#include <vector>

#include "pmu/sampler.hpp"

namespace numaprof::pmu {

struct WatchdogConfig {
  /// Instructions between rate checks.
  std::uint64_t check_interval = 20'000;
  /// Zero new samples over this many instructions → starvation retune.
  std::uint64_t starvation_window = 100'000;
  /// Samples per instruction above this → overhead retune.
  double max_sample_rate = 0.05;
  std::uint64_t min_period = 16;
  std::uint64_t max_period = 1ull << 30;
};

/// One period retune performed by the watchdog.
struct WatchdogEvent {
  numasim::Cycles time = 0;          // thread virtual time at the check
  std::uint64_t instructions = 0;    // instructions observed so far
  std::uint64_t old_period = 0;
  std::uint64_t new_period = 0;
  bool starvation = false;  // true: starvation halving; false: overhead doubling
};

class SamplingWatchdog final : public simrt::MachineObserver {
 public:
  explicit SamplingWatchdog(Sampler& sampler, WatchdogConfig config = {});

  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;

  const std::vector<WatchdogEvent>& events() const noexcept {
    return events_;
  }
  std::uint64_t instructions_seen() const noexcept { return instructions_; }

  /// Streams every retune as a kPeriodRetune telemetry event (published to
  /// the ring of the thread whose instruction crossed the check boundary).
  void set_telemetry(support::TelemetryHub* hub) noexcept {
    telemetry_ = hub;
  }

 private:
  void advance(numasim::Cycles now, std::uint64_t count);
  void check(numasim::Cycles now);
  void publish_retune(numasim::Cycles now, std::uint64_t old_period,
                      std::uint64_t new_period, bool starvation);

  Sampler* sampler_;
  WatchdogConfig config_;
  std::uint64_t instructions_ = 0;
  std::uint64_t next_check_ = 0;
  std::uint64_t samples_at_check_ = 0;
  std::uint64_t instr_at_check_ = 0;
  std::uint64_t instr_at_last_sample_ = 0;
  std::vector<WatchdogEvent> events_;
  support::TelemetryHub* telemetry_ = nullptr;
  std::uint32_t last_tid_ = 0;
};

}  // namespace numaprof::pmu
