#include "pmu/mechanisms.hpp"

namespace numaprof::pmu {

void MrkSampler::on_access(const simrt::SimThread& thread,
                           const simrt::AccessEvent& event) {
  if (!event.l3_miss) return;  // only the marked event qualifies

  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = config_.period == 0 ? 1 : config_.period;
    st.primed = true;
  }
  if (--st.countdown != 0) return;
  st.countdown = config_.period == 0 ? 1 : config_.period;

  // Hardware rate limiting: POWER7 will not mark again until the gap has
  // elapsed, which is what caps MRK below 100 samples/s/thread.
  if (config_.min_sample_gap != 0 && st.last_sample_time != 0 &&
      event.time - st.last_sample_time < config_.min_sample_gap) {
    return;
  }
  st.last_sample_time = event.time;
  emit(make_memory_sample(event));
}

}  // namespace numaprof::pmu
