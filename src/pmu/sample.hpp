// Address-sampling mechanisms and the samples they produce (§3).
//
// The paper identifies five hardware mechanisms (IBS, MRK, PEBS, DEAR,
// PEBS-LL) plus its own software fallback (Soft-IBS), with differing
// capabilities: what triggers a sample, whether latency and NUMA data
// source are reported, and whether the instruction pointer is precise.
// Capabilities drives which derived metrics the profiler can compute
// (e.g. lpi_NUMA needs latency: IBS Eq. 2, PEBS-LL Eq. 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "numasim/types.hpp"
#include "simos/types.hpp"
#include "simrt/events.hpp"
#include "simrt/frame.hpp"

namespace numaprof::pmu {

enum class Mechanism : std::uint8_t {
  kIbs,      // AMD instruction-based sampling
  kMrk,      // IBM POWER marked-event sampling
  kPebs,     // Intel precise event-based sampling (INST_RETIRED)
  kDear,     // Itanium data event address registers
  kPebsLl,   // PEBS with load-latency extension
  kSoftIbs,  // software instrumentation (the paper's LLVM-based fallback)
  kSpe,      // ARM statistical profiling extension (fixed-interval op
             // sampling with latency annotations, arXiv:2410.01514)
};

/// Number of Mechanism enumerators (deserializers validate against this).
inline constexpr int kMechanismCount = 7;

std::string_view to_string(Mechanism m) noexcept;

/// What a mechanism can report. Mirrors the taxonomy of §3 and §10.
struct Capabilities {
  bool samples_all_instructions = false;  // non-memory ops too (I^s, Eq. 2)
  bool reports_latency = false;           // needed for lpi_NUMA
  bool reports_data_source = false;       // local/remote classification
  bool precise_ip = true;                 // PEBS has an off-by-1 skid
  bool event_filtered = false;            // only specific events (MRK, DEAR)
  bool software_instrumentation = false;  // per-access stub (Soft-IBS)
};

Capabilities capabilities_of(Mechanism m) noexcept;

/// One address sample delivered to the profiler.
struct Sample {
  Mechanism mechanism = Mechanism::kIbs;
  simrt::ThreadId tid = 0;
  numasim::CoreId core = 0;        // sampling CPU (maps to domain, §4.1)
  bool is_memory = false;          // false: a sampled non-memory instruction
  simos::VAddr addr = 0;           // effective address (is_memory only)
  bool is_write = false;
  std::optional<numasim::Cycles> latency;          // per capabilities
  std::optional<numasim::DataSource> data_source;  // per capabilities
  bool l3_miss = false;
  numasim::Cycles time = 0;
  std::uint64_t op_index = 0;
  simrt::FrameId leaf_frame = simrt::kInvalidFrame;
  std::vector<simrt::FrameId> stack;  // call path at sample (root..leaf)
  bool ip_precise = true;  // false: stack reflects the *following* op (PEBS
                           // skid, uncorrected)
};

}  // namespace numaprof::pmu
