#include "pmu/mechanisms.hpp"

namespace numaprof::pmu {

void PebsSampler::on_exec(const simrt::SimThread& thread,
                          std::uint64_t count) {
  flush_pending(thread);
  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = jittered_period();
    st.primed = true;
  }
  while (count >= st.countdown) {
    count -= st.countdown;
    emit(make_instruction_sample(thread));
    st.countdown = jittered_period();
  }
  st.countdown -= count;
}

void PebsSampler::on_access(const simrt::SimThread& thread,
                            const simrt::AccessEvent& event) {
  flush_pending(thread);
  ThreadState& st = state_of(thread.tid());
  if (!st.primed) {
    st.countdown = jittered_period();
    st.primed = true;
  }
  if (st.countdown <= 1) {
    st.countdown = jittered_period();
    deliver(thread, make_memory_sample(event));
  } else {
    --st.countdown;
  }
}

void PebsSampler::deliver(const simrt::SimThread& thread, Sample sample) {
  if (config_.pebs_skid_correction) {
    // The profiler compensates for the off-by-1 IP with online binary
    // analysis identifying the previous instruction — real work per sample,
    // and the reason PEBS shows the second-highest overhead in Table 2.
    busy_work(config_.skid_correction_work);
    sample.ip_precise = true;
    emit(std::move(sample));
    return;
  }
  // Uncorrected: hardware reports the *next* instruction's IP, so the
  // sample's context is whatever executes next. Hold it until then.
  if (thread.tid() >= pending_.size()) pending_.resize(thread.tid() + 1);
  pending_[thread.tid()] = std::move(sample);
}

void PebsSampler::flush_pending(const simrt::SimThread& thread) {
  if (thread.tid() >= pending_.size()) return;
  auto& slot = pending_[thread.tid()];
  if (!slot) return;
  Sample sample = std::move(*slot);
  slot.reset();
  // Attribution uses the context of the FOLLOWING instruction: the skid.
  const auto stack = thread.call_stack();
  sample.stack.assign(stack.begin(), stack.end());
  sample.leaf_frame = thread.leaf_frame();
  sample.ip_precise = false;
  emit(std::move(sample));
}

void PebsSampler::on_thread_finish(const simrt::SimThread& thread) {
  flush_pending(thread);
}

}  // namespace numaprof::pmu
