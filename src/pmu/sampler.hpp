// Sampler: common machinery for the six address-sampling mechanisms.
//
// A sampler observes the machine's instruction/access stream and delivers
// Samples to a sink (the profiler). Each concrete mechanism implements the
// trigger logic of its hardware; the base class provides per-thread state,
// period jitter (hardware randomizes low period bits to keep sampling of
// regular loops unbiased — §3 requires "uniformly sampled" accesses), and
// sample construction/emission.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pmu/config.hpp"
#include "pmu/sample.hpp"
#include "simrt/events.hpp"
#include "simrt/thread.hpp"
#include "support/rng.hpp"

namespace numaprof::pmu {

using SampleSink = std::function<void(const Sample&)>;

class Sampler : public simrt::MachineObserver {
 public:
  explicit Sampler(EventConfig config) : config_(std::move(config)) {}

  Mechanism mechanism() const noexcept { return config_.mechanism; }
  const EventConfig& config() const noexcept { return config_; }
  Capabilities capabilities() const noexcept {
    return capabilities_of(config_.mechanism);
  }

  void set_sink(SampleSink sink) { sink_ = std::move(sink); }

  std::uint64_t samples_emitted() const noexcept { return emitted_; }
  /// Memory samples only (excludes sampled non-memory instructions).
  std::uint64_t memory_samples() const noexcept { return memory_samples_; }

 protected:
  /// Per-thread sampling state, grown on demand.
  struct ThreadState {
    std::uint64_t countdown = 0;
    numasim::Cycles last_sample_time = 0;
    bool primed = false;
  };
  ThreadState& state_of(simrt::ThreadId tid);

  /// Next period with +/-12.5% deterministic jitter.
  std::uint64_t jittered_period();

  /// Builds the mechanism-appropriate Sample for a memory access, honoring
  /// this mechanism's capability mask (latency/data-source stripping).
  Sample make_memory_sample(const simrt::AccessEvent& event) const;

  /// Builds a sample of a non-memory instruction (IBS/PEBS sample those
  /// too; they count toward I^s in Eq. 2).
  Sample make_instruction_sample(const simrt::SimThread& thread) const;

  void emit(Sample sample);

  EventConfig config_;

 private:
  SampleSink sink_;
  std::vector<ThreadState> states_;
  support::Rng jitter_{0};
  bool jitter_seeded_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t memory_samples_ = 0;
};

/// Constructs the sampler for `config.mechanism`.
std::unique_ptr<Sampler> make_sampler(EventConfig config);

}  // namespace numaprof::pmu
