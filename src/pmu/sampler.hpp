// Sampler: common machinery for the six address-sampling mechanisms.
//
// A sampler observes the machine's instruction/access stream and delivers
// Samples to a sink (the profiler). Each concrete mechanism implements the
// trigger logic of its hardware; the base class provides per-thread state,
// period jitter (hardware randomizes low period bits to keep sampling of
// regular loops unbiased — §3 requires "uniformly sampled" accesses), and
// sample construction/emission.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pmu/config.hpp"
#include "pmu/sample.hpp"
#include "simrt/events.hpp"
#include "simrt/thread.hpp"
#include "support/rng.hpp"

namespace numaprof::support {
class FaultPlan;
class TelemetryHub;
}

namespace numaprof::pmu {

using SampleSink = std::function<void(const Sample&)>;

class Sampler : public simrt::MachineObserver {
 public:
  explicit Sampler(EventConfig config) : config_(std::move(config)) {}

  Mechanism mechanism() const noexcept { return config_.mechanism; }
  const EventConfig& config() const noexcept { return config_; }
  Capabilities capabilities() const noexcept {
    return capabilities_of(config_.mechanism);
  }

  void set_sink(SampleSink sink) { sink_ = std::move(sink); }

  /// Routes emitted samples through `plan` (drop / corrupt / latency
  /// spike). Pass nullptr to disable. The plan must outlive the sampler.
  void set_fault_plan(support::FaultPlan* plan) noexcept { faults_ = plan; }

  /// Publishes per-thread sample/drop/corruption counters into `hub` as
  /// they happen (support/telemetry.hpp). Pass nullptr to disable. The hub
  /// must outlive the sampler.
  void set_telemetry(support::TelemetryHub* hub) noexcept {
    telemetry_ = hub;
  }

  /// Live period retune (the sampling watchdog's knob). Takes effect at
  /// each thread's next countdown reload.
  void set_period(std::uint64_t period) noexcept {
    config_.period = period == 0 ? 1 : period;
  }

  std::uint64_t samples_emitted() const noexcept { return emitted_; }
  /// Memory samples only (excludes sampled non-memory instructions).
  std::uint64_t memory_samples() const noexcept { return memory_samples_; }
  /// Samples suppressed / mangled by the fault plan.
  std::uint64_t dropped_samples() const noexcept { return dropped_; }
  std::uint64_t corrupted_samples() const noexcept { return corrupted_; }

 protected:
  /// Per-thread sampling state, grown on demand.
  struct ThreadState {
    std::uint64_t countdown = 0;
    numasim::Cycles last_sample_time = 0;
    bool primed = false;
  };
  ThreadState& state_of(simrt::ThreadId tid);

  /// Next period with +/-12.5% deterministic jitter.
  std::uint64_t jittered_period();

  /// Builds the mechanism-appropriate Sample for a memory access, honoring
  /// this mechanism's capability mask (latency/data-source stripping).
  Sample make_memory_sample(const simrt::AccessEvent& event) const;

  /// Builds a sample of a non-memory instruction (IBS/PEBS sample those
  /// too; they count toward I^s in Eq. 2).
  Sample make_instruction_sample(const simrt::SimThread& thread) const;

  void emit(Sample sample);

  EventConfig config_;

 private:
  SampleSink sink_;
  std::vector<ThreadState> states_;
  support::Rng jitter_{0};
  bool jitter_seeded_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t memory_samples_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  support::FaultPlan* faults_ = nullptr;
  support::TelemetryHub* telemetry_ = nullptr;
};

/// Constructs the sampler for `config.mechanism`.
std::unique_ptr<Sampler> make_sampler(EventConfig config);

/// Outcome of probing the fallback chain for a usable mechanism.
struct MechanismFallback {
  std::unique_ptr<Sampler> sampler;  // never null
  Mechanism requested;
  Mechanism used;
  /// Mechanisms whose availability probe failed, in the order tried.
  std::vector<Mechanism> unavailable;
  bool degraded() const noexcept { return requested != used; }
};

/// Walks fallback_chain(config.mechanism) against `plan`'s init-failure
/// faults and constructs the first mechanism that probes available. When a
/// fallback mechanism is chosen its mini() event configuration is used
/// (the requested config's event/period pairing is mechanism-specific),
/// preserving the caller's jitter seed. Soft-IBS terminates the chain, so
/// this always yields a sampler.
MechanismFallback make_sampler_with_fallback(const EventConfig& config,
                                             support::FaultPlan& plan);

}  // namespace numaprof::pmu
