// The seven address-sampling mechanisms (§3 + ARM SPE).
//
// Each class reproduces the trigger logic and capability profile of one
// hardware (or software) mechanism. See pmu/config.cpp for the capability
// matrix and Table 1 configurations.
#pragma once

#include <optional>
#include <vector>

#include "pmu/sampler.hpp"

namespace numaprof::pmu {

/// AMD instruction-based sampling: tags every N-th *instruction* of any
/// kind; tagged memory ops report effective address, latency, data source,
/// and a precise IP. Sampling all instruction kinds is what makes the
/// load/store fraction of the instruction stream measurable (§10) — and is
/// also why IBS has the third-highest overhead in Table 2 (high sample
/// rate, software must filter non-memory samples).
class IbsSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
};

/// IBM POWER7 marked-event sampling: marks instructions causing a specific
/// event (PM_MRK_FROM_L3MISS here) and samples those; hardware limits the
/// marking rate (under 100 samples/s/thread at the fastest user-visible
/// setting, §8 footnote 2). No latency reported in this analysis mode.
class MrkSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
};

/// Intel PEBS on INST_RETIRED:ANY_P: samples every N-th retired
/// instruction; the hardware-reported IP is the *next* instruction
/// (off-by-1 skid). With skid correction enabled (the paper's choice) the
/// profiler performs costly online previous-instruction analysis per
/// sample; disabled, samples attribute to the following instruction's
/// context, which can mis-attribute across frame boundaries.
class PebsSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
  void on_thread_finish(const simrt::SimThread& thread) override;

 private:
  /// Emits or defers a ready sample according to the skid policy.
  void deliver(const simrt::SimThread& thread, Sample sample);
  /// Emits the deferred sample using the *current* context (the skid).
  void flush_pending(const simrt::SimThread& thread);

  std::vector<std::optional<Sample>> pending_;  // per thread
};

/// Itanium DEAR: data event address registers capture loads whose latency
/// meets a threshold (DATA_EAR_CACHE_LAT4); every N-th qualifying load is
/// sampled with address + latency + precise IP, but there are no NUMA
/// data-source events (§10).
class DearSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
};

/// Intel PEBS-LL: samples every N-th load with latency above threshold,
/// reporting address, latency, data source, and precise IP. The hardware
/// also counts qualifying events continuously, giving the absolute event
/// number E_NUMA that Eq. 3 scales by.
class PebsLlSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;

  /// Absolute count of qualifying (latency >= threshold) load events, the
  /// "conventional counter" reading used by Eq. 3.
  std::uint64_t events_counted() const noexcept { return events_counted_; }

 private:
  std::uint64_t events_counted_ = 0;
};

/// Soft-IBS: the paper's software fallback. An instrumentation stub runs on
/// EVERY memory access (reproduced as real host work per access — the
/// +180-200% overhead rows of Table 2); every N-th access is recorded with
/// effective address and IP. Thread->CPU binding is static, so the thread's
/// domain is known without PMU support (§4.1).
class SoftIbsSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
};

/// ARM Statistical Profiling Extension: tags every N-th operation of any
/// kind at a FIXED architectural interval (PMSIRR has no hardware period
/// randomization; the architecture relies on sample-collision detection
/// instead). Tagged memory ops report effective address, total latency,
/// a data-source packet, and a precise PC (arXiv:2410.01514 §2). The
/// fixed interval is the observable behavioral difference from IBS.
class SpeSampler final : public Sampler {
 public:
  using Sampler::Sampler;
  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
};

/// Deterministic host busy-work used to model instrumentation/analysis
/// cost. Returns a value so the loop cannot be optimized away.
std::uint64_t busy_work(std::uint32_t iterations) noexcept;

}  // namespace numaprof::pmu
