#include "pmu/watchdog.hpp"

#include <algorithm>
#include <string>

#include "simrt/thread.hpp"
#include "support/telemetry.hpp"

namespace numaprof::pmu {

SamplingWatchdog::SamplingWatchdog(Sampler& sampler, WatchdogConfig config)
    : sampler_(&sampler), config_(config) {
  next_check_ = config_.check_interval;
}

void SamplingWatchdog::on_exec(const simrt::SimThread& thread,
                               std::uint64_t count) {
  last_tid_ = thread.tid();
  advance(thread.now(), count);
}

void SamplingWatchdog::on_access(const simrt::SimThread& thread,
                                 const simrt::AccessEvent& event) {
  (void)event;
  last_tid_ = thread.tid();
  advance(thread.now(), 1);
}

void SamplingWatchdog::advance(numasim::Cycles now, std::uint64_t count) {
  instructions_ += count;
  if (instructions_ >= next_check_) {
    check(now);
    next_check_ = instructions_ + config_.check_interval;
  }
}

void SamplingWatchdog::check(numasim::Cycles now) {
  const std::uint64_t samples = sampler_->samples_emitted();
  if (samples > samples_at_check_) {
    instr_at_last_sample_ = instructions_;
  }

  const std::uint64_t period = sampler_->config().period;
  if (instructions_ - instr_at_last_sample_ >= config_.starvation_window) {
    // Starvation: the mechanism (or the faults eating its output) is not
    // producing data. Sample more aggressively.
    const std::uint64_t retuned =
        std::max(config_.min_period, period / 2);
    if (retuned != period) {
      sampler_->set_period(retuned);
      events_.push_back(WatchdogEvent{.time = now,
                                      .instructions = instructions_,
                                      .old_period = period,
                                      .new_period = retuned,
                                      .starvation = true});
      publish_retune(now, period, retuned, true);
    }
    instr_at_last_sample_ = instructions_;  // restart the window
  } else if (instructions_ > instr_at_check_) {
    const double rate =
        static_cast<double>(samples - samples_at_check_) /
        static_cast<double>(instructions_ - instr_at_check_);
    if (rate > config_.max_sample_rate) {
      // Runaway overhead: back off before the profiler becomes the
      // workload (the Table 2 failure mode).
      const std::uint64_t retuned =
          std::min(config_.max_period, std::max<std::uint64_t>(period, 1) * 2);
      if (retuned != period) {
        sampler_->set_period(retuned);
        events_.push_back(WatchdogEvent{.time = now,
                                        .instructions = instructions_,
                                        .old_period = period,
                                        .new_period = retuned,
                                        .starvation = false});
        publish_retune(now, period, retuned, false);
      }
    }
  }

  samples_at_check_ = samples;
  instr_at_check_ = instructions_;
}

void SamplingWatchdog::publish_retune(numasim::Cycles now,
                                      std::uint64_t old_period,
                                      std::uint64_t new_period,
                                      bool starvation) {
  if (telemetry_ == nullptr) return;
  support::TelemetryEvent event;
  event.kind = support::TelemetryEventKind::kPeriodRetune;
  event.tid = last_tid_;
  event.time = now;
  event.value = new_period;
  event.set_detail("period " + std::to_string(old_period) + " -> " +
                   std::to_string(new_period) +
                   (starvation ? " (starvation)" : " (overhead)"));
  telemetry_->ring(last_tid_).publish(event);
}

}  // namespace numaprof::pmu
