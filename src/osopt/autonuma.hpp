// AutoNuma: an OS-level automatic page-migration baseline (mini-Carrefour
// / Linux AutoNUMA analogue).
//
// §9 contrasts the paper's approach — tool-guided SOURCE changes — with
// operating-system approaches ([6], [7]) that "ameliorate NUMA problems to
// the greatest extent possible without source code changes", and argues
// the source route "yields better code". This module implements the OS
// route so that claim can be measured: like Linux's NUMA balancing, it
// periodically write-protects live heap pages ("NUMA hint faults"); each
// fault reveals who is actually touching a page, and a page faulted
// consistently from one remote domain is migrated there, with the faulting
// thread paying the fault + copy cost.
//
// Limitations mirroring the real mechanism: migration chases the MAJORITY
// accessor, so pages shared evenly across domains ping-pong or stay put;
// the scan/fault/copy overhead is charged to application threads; and
// nothing improves until the pattern has already cost something.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "simrt/machine.hpp"

namespace numaprof::osopt {

struct AutoNumaConfig {
  /// Virtual time between protection sweeps of live heap pages.
  numasim::Cycles scan_interval = 300'000;
  /// Hint faults from the same remote domain before a page migrates.
  std::uint32_t fault_threshold = 2;
  /// OS work charged to the faulting thread per hint fault (walk + TLB).
  numasim::Cycles fault_cost = 600;
};

class AutoNumaBalancer final : public simrt::MachineObserver {
 public:
  /// Installs the balancer: registers as observer AND takes the machine's
  /// fault handler slot (incompatible with a first-touch-tracking
  /// profiler; use ProfilerConfig::track_first_touch = false alongside).
  AutoNumaBalancer(simrt::Machine& machine, AutoNumaConfig config = {});
  ~AutoNumaBalancer() override;

  AutoNumaBalancer(const AutoNumaBalancer&) = delete;
  AutoNumaBalancer& operator=(const AutoNumaBalancer&) = delete;

  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;
  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;

  std::uint64_t scans() const noexcept { return scans_; }
  std::uint64_t hint_faults() const noexcept { return hint_faults_; }
  std::uint64_t migrations() const noexcept { return migrations_; }

 private:
  void maybe_scan(numasim::Cycles now);
  void on_fault(const simrt::FaultEvent& fault);

  struct PageState {
    numasim::DomainId last_domain = 0;
    std::uint32_t streak = 0;
  };

  simrt::Machine& machine_;
  AutoNumaConfig config_;
  numasim::Cycles next_scan_;
  std::unordered_map<simos::PageId, PageState> pages_;
  std::uint64_t scans_ = 0;
  std::uint64_t hint_faults_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace numaprof::osopt
