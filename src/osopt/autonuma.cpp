#include "osopt/autonuma.hpp"

#include "simos/numa_api.hpp"

namespace numaprof::osopt {

AutoNumaBalancer::AutoNumaBalancer(simrt::Machine& machine,
                                   AutoNumaConfig config)
    : machine_(machine),
      config_(config),
      next_scan_(config.scan_interval) {
  machine_.add_observer(*this);
  machine_.set_fault_handler(
      [this](const simrt::FaultEvent& f) { on_fault(f); });
}

AutoNumaBalancer::~AutoNumaBalancer() {
  machine_.remove_observer(*this);
  machine_.set_fault_handler({});
  // Leave no page protected behind (a scan may be mid-flight).
  auto& table = machine_.memory().page_table();
  machine_.memory().heap().for_each_live([&](const simos::HeapBlock& block) {
    for (simos::PageId p = simos::page_of(block.start);
         p < simos::page_of(block.start) + block.page_count; ++p) {
      table.unprotect(p);
    }
  });
}

void AutoNumaBalancer::on_access(const simrt::SimThread& thread,
                                 const simrt::AccessEvent& /*event*/) {
  maybe_scan(thread.now());
}

void AutoNumaBalancer::on_exec(const simrt::SimThread& thread,
                               std::uint64_t /*count*/) {
  maybe_scan(thread.now());
}

void AutoNumaBalancer::maybe_scan(numasim::Cycles now) {
  if (now < next_scan_) return;
  next_scan_ = now + config_.scan_interval;
  ++scans_;
  // The periodic "task_numa_work" sweep: write-protect live heap pages so
  // the next access faults and reveals the accessing domain.
  auto& table = machine_.memory().page_table();
  machine_.memory().heap().for_each_live([&](const simos::HeapBlock& block) {
    table.protect_range(simos::page_of(block.start), block.page_count);
  });
}

void AutoNumaBalancer::on_fault(const simrt::FaultEvent& fault) {
  ++hint_faults_;
  auto& table = machine_.memory().page_table();
  const simos::PageId page = simos::page_of(fault.addr);
  table.unprotect(page);
  machine_.charge(fault.tid, config_.fault_cost);

  const numasim::DomainId accessor =
      simos::numa_node_of_cpu(machine_.topology(), fault.core);
  const auto home = table.query_home(page);
  if (!home || *home == accessor) {
    pages_.erase(page);  // local access: no pressure to move
    return;
  }

  PageState& state = pages_[page];
  if (state.streak == 0 || state.last_domain != accessor) {
    state.last_domain = accessor;
    state.streak = 1;
  } else {
    ++state.streak;
  }
  if (state.streak >= config_.fault_threshold) {
    machine_.migrate_page(fault.addr, accessor, fault.tid);
    ++migrations_;
    pages_.erase(page);
  }
}

}  // namespace numaprof::osopt
