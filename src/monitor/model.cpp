#include "monitor/model.hpp"

#include <algorithm>
#include <cstdio>

#include "monitor/frame.hpp"

namespace numaprof::monitor {
namespace {

using support::HotCounter;
using support::TelemetryCounter;
using support::TelemetrySnapshot;
using support::ThreadTelemetry;

std::string fixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string hex_key(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::string pad_right(std::string cell, std::size_t width) {
  if (cell.size() < width) cell.append(width - cell.size(), ' ');
  return cell;
}

double ratio_or(double num, double den, double fallback) {
  return den > 0.0 ? num / den : fallback;
}

}  // namespace

std::string_view to_string(Screen s) noexcept {
  switch (s) {
    case Screen::kThreads: return "threads";
    case Screen::kDomains: return "domains";
    case Screen::kHotPages: return "hot pages";
    case Screen::kHotVars: return "hot vars";
    case Screen::kPaths: return "call paths";
  }
  return "unknown";
}

std::string_view to_string(Key k) noexcept {
  switch (k) {
    case Key::kNone: return "none";
    case Key::kUp: return "up";
    case Key::kDown: return "down";
    case Key::kEnter: return "enter";
    case Key::kBack: return "back";
    case Key::kQuit: return "quit";
    case Key::kThreads: return "t";
    case Key::kDomains: return "d";
    case Key::kPages: return "p";
    case Key::kVars: return "v";
    case Key::kSortNext: return "s";
    case Key::kReverse: return "r";
  }
  return "unknown";
}

bool key_from_name(std::string_view name, Key& out) noexcept {
  for (const Key k :
       {Key::kUp, Key::kDown, Key::kEnter, Key::kBack, Key::kQuit,
        Key::kThreads, Key::kDomains, Key::kPages, Key::kVars,
        Key::kSortNext, Key::kReverse}) {
    if (to_string(k) == name) {
      out = k;
      return true;
    }
  }
  return false;
}

MonitorModel::MonitorModel() {
  // Default sorts: threads by RMA, hot tables by count — the columns an
  // operator hunting remote traffic reads first. Domains ascend by id.
  state_.sort_col = {3, 0, 2, 1, 0};
  state_.sort_desc = {true, false, true, true, true};
}

void MonitorModel::set_mechanism(pmu::Mechanism mechanism) noexcept {
  mechanism_ = mechanism;
  has_mechanism_ = true;
}

void MonitorModel::feed(const TelemetrySnapshot& snapshot) {
  previous_ = std::move(current_);
  current_ = snapshot;
  ++fed_;
}

const std::vector<MonitorModel::ColumnSpec>& MonitorModel::columns_for(
    Screen screen) {
  static const std::vector<ColumnSpec> kThreadCols = {
      {"TID", 5},     {"SAMP", 8},  {"LMA", 8},  {"RMA", 8},
      {"RMA/LMA", 8}, {"MISM%", 6}, {"RLAT", 8}, {"INSTR", 11}};
  static const std::vector<ColumnSpec> kDomainCols = {
      {"DOM", 4},   {"LMA", 9},   {"RMA", 9},
      {"MISM%", 6}, {"HOTPG", 6}, {"TOPPAGE", 14}};
  static const std::vector<ColumnSpec> kPageCols = {
      {"DOM", 4}, {"PAGE", 14}, {"COUNT", 8}, {"RMA", 8}, {"RMA%", 6}};
  static const std::vector<ColumnSpec> kVarCols = {
      {"DOM", 4}, {"COUNT", 8}, {"RMA", 8}, {"RMA%", 6}, {"VAR", 28, true}};
  static const std::vector<ColumnSpec> kPathCols = {
      {"COUNT", 8}, {"RMA%", 6}, {"PATH", 48, true}};
  switch (screen) {
    case Screen::kThreads: return kThreadCols;
    case Screen::kDomains: return kDomainCols;
    case Screen::kHotPages: return kPageCols;
    case Screen::kHotVars: return kVarCols;
    case Screen::kPaths: return kPathCols;
  }
  return kThreadCols;
}

std::vector<MonitorModel::Row> MonitorModel::rows_for(Screen screen) const {
  std::vector<Row> rows;
  const auto hot_row = [](const HotCounter& h, bool with_domain,
                          const std::string& label) {
    Row row;
    const double mism_pct =
        ratio_or(static_cast<double>(h.mismatch) * 100.0,
                 static_cast<double>(h.count), 0.0);
    if (with_domain) {
      row.cells = {std::to_string(h.domain), std::to_string(h.count),
                   std::to_string(h.mismatch), fixed(mism_pct, 1), label};
      row.sort_keys = {static_cast<double>(h.domain),
                       static_cast<double>(h.count),
                       static_cast<double>(h.mismatch), mism_pct, 0.0};
    } else {
      row.cells = {std::to_string(h.count), fixed(mism_pct, 1), label};
      row.sort_keys = {static_cast<double>(h.count), mism_pct, 0.0};
    }
    return row;
  };

  switch (screen) {
    case Screen::kThreads:
      for (const ThreadTelemetry& t : current_.threads) {
        const auto lma =
            static_cast<double>(t.counter(TelemetryCounter::kMatchSamples));
        const auto rma = static_cast<double>(
            t.counter(TelemetryCounter::kMismatchSamples));
        const auto rlat_cycles = static_cast<double>(
            t.counter(TelemetryCounter::kRemoteLatencyCycles));
        const double ratio = ratio_or(rma, lma, rma > 0.0 ? 1e18 : 0.0);
        const double mism_pct = ratio_or(rma * 100.0, lma + rma, 0.0);
        const double rlat = ratio_or(rlat_cycles, rma, 0.0);
        Row row;
        row.tid = t.tid;
        row.cells = {
            std::to_string(t.tid),
            std::to_string(t.counter(TelemetryCounter::kSamples)),
            fixed(lma, 0),
            fixed(rma, 0),
            lma > 0.0 ? fixed(ratio, 2) : "-",
            fixed(mism_pct, 1),
            rlat > 0.0 ? fixed(rlat, 1) : "-",
            std::to_string(t.counter(TelemetryCounter::kInstructions))};
        row.sort_keys = {
            static_cast<double>(t.tid),
            static_cast<double>(t.counter(TelemetryCounter::kSamples)),
            lma,
            rma,
            ratio,
            mism_pct,
            rlat,
            static_cast<double>(
                t.counter(TelemetryCounter::kInstructions))};
        rows.push_back(std::move(row));
      }
      break;
    case Screen::kDomains: {
      const std::size_t domains = std::max(current_.domain_match.size(),
                                           current_.domain_mismatch.size());
      for (std::size_t d = 0; d < domains; ++d) {
        const auto lma = static_cast<double>(
            d < current_.domain_match.size() ? current_.domain_match[d] : 0);
        const auto rma = static_cast<double>(
            d < current_.domain_mismatch.size() ? current_.domain_mismatch[d]
                                                : 0);
        const double mism_pct = ratio_or(rma * 100.0, lma + rma, 0.0);
        std::size_t hot_pages = 0;
        std::string top_page = "-";
        for (const HotCounter& h : current_.hot_pages) {
          if (h.domain != d) continue;
          if (hot_pages == 0) top_page = hex_key(h.key);
          ++hot_pages;
        }
        Row row;
        row.cells = {std::to_string(d),       fixed(lma, 0),
                     fixed(rma, 0),           fixed(mism_pct, 1),
                     std::to_string(hot_pages), top_page};
        row.sort_keys = {static_cast<double>(d), lma, rma, mism_pct,
                         static_cast<double>(hot_pages), 0.0};
        rows.push_back(std::move(row));
      }
      break;
    }
    case Screen::kHotPages:
      for (const HotCounter& h : current_.hot_pages) {
        Row row = hot_row(h, true, hex_key(h.key));
        // PAGE replaces the VAR-style trailing label: reorder to
        // DOM PAGE COUNT RMA RMA%.
        row.cells = {row.cells[0], row.cells[4], row.cells[1], row.cells[2],
                     row.cells[3]};
        row.sort_keys = {row.sort_keys[0], static_cast<double>(h.key),
                         row.sort_keys[1], row.sort_keys[2],
                         row.sort_keys[3]};
        rows.push_back(std::move(row));
      }
      break;
    case Screen::kHotVars:
      for (const HotCounter& h : current_.hot_vars) {
        rows.push_back(hot_row(
            h, true, h.label.empty() ? "var#" + std::to_string(h.key)
                                     : h.label));
      }
      break;
    case Screen::kPaths:
      for (const ThreadTelemetry& t : current_.threads) {
        if (t.tid != state_.drill_tid) continue;
        for (const HotCounter& h : t.hot_paths) {
          rows.push_back(hot_row(
              h, false, h.label.empty() ? "node#" + std::to_string(h.key)
                                        : h.label));
        }
        break;
      }
      break;
  }

  const std::size_t screen_idx = static_cast<std::size_t>(screen);
  const std::size_t col = std::min(state_.sort_col[screen_idx],
                                   columns_for(screen).size() - 1);
  const bool desc = state_.sort_desc[screen_idx];
  std::stable_sort(rows.begin(), rows.end(),
                   [col, desc](const Row& a, const Row& b) {
                     if (a.sort_keys[col] != b.sort_keys[col]) {
                       return desc ? a.sort_keys[col] > b.sort_keys[col]
                                   : a.sort_keys[col] < b.sort_keys[col];
                     }
                     if (a.cells[col] != b.cells[col]) {
                       return desc ? a.cells[col] > b.cells[col]
                                   : a.cells[col] < b.cells[col];
                     }
                     return false;
                   });
  return rows;
}

std::size_t MonitorModel::row_count() const {
  return rows_for(state_.screen).size();
}

void MonitorModel::apply_key(Key key) {
  switch (key) {
    case Key::kNone:
      break;
    case Key::kUp:
      if (state_.selected > 0) --state_.selected;
      break;
    case Key::kDown: {
      const std::size_t rows = row_count();
      if (rows > 0 && state_.selected + 1 < rows) ++state_.selected;
      break;
    }
    case Key::kEnter: {
      if (state_.screen != Screen::kThreads) break;
      const std::vector<Row> rows = rows_for(Screen::kThreads);
      if (rows.empty()) break;
      const std::size_t pick = std::min(state_.selected, rows.size() - 1);
      state_.drill_tid = rows[pick].tid;
      state_.screen = Screen::kPaths;
      state_.selected = 0;
      break;
    }
    case Key::kBack:
      if (state_.screen == Screen::kPaths) {
        state_.screen = Screen::kThreads;
        state_.selected = 0;
      }
      break;
    case Key::kQuit:
      state_.quit = true;
      break;
    case Key::kThreads:
      state_.screen = Screen::kThreads;
      state_.selected = 0;
      break;
    case Key::kDomains:
      state_.screen = Screen::kDomains;
      state_.selected = 0;
      break;
    case Key::kPages:
      state_.screen = Screen::kHotPages;
      state_.selected = 0;
      break;
    case Key::kVars:
      state_.screen = Screen::kHotVars;
      state_.selected = 0;
      break;
    case Key::kSortNext: {
      const std::size_t idx = static_cast<std::size_t>(state_.screen);
      state_.sort_col[idx] =
          (state_.sort_col[idx] + 1) % columns_for(state_.screen).size();
      break;
    }
    case Key::kReverse: {
      const std::size_t idx = static_cast<std::size_t>(state_.screen);
      state_.sort_desc[idx] = !state_.sort_desc[idx];
      break;
    }
  }
}

std::string MonitorModel::summary_line() const {
  const auto total = [this](TelemetryCounter c) { return current_.total(c); };
  std::string out = "samples " +
                    std::to_string(total(TelemetryCounter::kSamples));
  if (fed_ >= 2) {
    const std::uint64_t cur = total(TelemetryCounter::kSamples);
    const std::uint64_t prev =
        previous_.total(TelemetryCounter::kSamples);
    const std::uint64_t delta = cur >= prev ? cur - prev : 0;
    out += " (+" + std::to_string(delta);
    // Same zero-elapsed guard as format_status_line: a final flush can
    // share its predecessor's timestamp.
    if (current_.time > previous_.time) {
      out += " " +
             fixed(static_cast<double>(delta) * 1000.0 /
                       static_cast<double>(current_.time - previous_.time),
                   1) +
             "/kc";
    }
    out += ")";
  }
  out += " mem " + std::to_string(total(TelemetryCounter::kMemorySamples));
  out += " drop " + fixed(current_.drop_fraction() * 100.0, 1) + "%";
  out += " traps " +
         std::to_string(total(TelemetryCounter::kFirstTouchTraps));
  const std::uint64_t ml = total(TelemetryCounter::kMatchSamples);
  const std::uint64_t mr = total(TelemetryCounter::kMismatchSamples);
  out += " M_l/M_r " + std::to_string(ml) + "/" + std::to_string(mr);
  if (ml + mr > 0) {
    out += " (" +
           fixed(static_cast<double>(mr) * 100.0 /
                     static_cast<double>(ml + mr),
                 1) +
           "% remote)";
  }
  const std::uint64_t rlat_cycles =
      total(TelemetryCounter::kRemoteLatencyCycles);
  if (mr > 0 && rlat_cycles > 0) {
    out += " rlat " +
           fixed(static_cast<double>(rlat_cycles) / static_cast<double>(mr),
                 1) +
           "c";
  }
  return out;
}

std::string MonitorModel::render(std::size_t width,
                                 std::size_t height) const {
  if (width == 0) width = 1;
  if (height == 0) height = 1;
  std::vector<std::string> lines;

  std::string title = "numa_top - ";
  title += has_mechanism_ ? std::string(pmu::to_string(mechanism_)) : "-";
  if (fed_ == 0) {
    title += " | waiting for telemetry";
    lines.push_back(title);
    lines.push_back(rule(width));
    lines.push_back("no snapshot received yet");
    return render_frame(lines, width, height);
  }
  title += " | snap #" + std::to_string(current_.sequence) +
           " t=" + std::to_string(current_.time) + " | threads " +
           std::to_string(current_.threads.size()) + " | [" +
           std::string(to_string(state_.screen));
  if (state_.screen == Screen::kPaths) {
    title += " tid " + std::to_string(state_.drill_tid);
  }
  title += "]";
  lines.push_back(std::move(title));
  lines.push_back(summary_line());
  lines.push_back(rule(width));

  const std::vector<ColumnSpec>& cols = columns_for(state_.screen);
  const std::size_t screen_idx = static_cast<std::size_t>(state_.screen);
  const std::size_t sort_col =
      std::min(state_.sort_col[screen_idx], cols.size() - 1);
  std::string header = "  ";
  for (std::size_t c = 0; c < cols.size(); ++c) {
    std::string cell = cols[c].title;
    if (c == sort_col) cell += state_.sort_desc[screen_idx] ? "v" : "^";
    if (c) header += ' ';
    header += cols[c].left ? pad_right(std::move(cell), cols[c].width)
                           : pad_left(std::move(cell), cols[c].width);
  }
  lines.push_back(std::move(header));

  const std::vector<Row> rows = rows_for(state_.screen);
  const std::size_t selected =
      rows.empty() ? 0 : std::min(state_.selected, rows.size() - 1);
  const std::size_t visible = height > 6 ? height - 6 : 1;
  const std::size_t scroll =
      selected >= visible ? selected - visible + 1 : 0;
  for (std::size_t i = scroll;
       i < rows.size() && i < scroll + visible; ++i) {
    std::string line = i == selected ? "> " : "  ";
    for (std::size_t c = 0; c < rows[i].cells.size(); ++c) {
      if (c) line += ' ';
      line += cols[c].left ? pad_right(rows[i].cells[c], cols[c].width)
                           : pad_left(rows[i].cells[c], cols[c].width);
    }
    lines.push_back(std::move(line));
  }
  if (rows.empty()) {
    lines.push_back(state_.screen == Screen::kPaths
                        ? "  (no sampled call paths for this thread yet)"
                        : "  (no rows yet)");
  }

  std::vector<std::string> frame_lines;
  frame_lines.reserve(height);
  for (std::size_t i = 0; i + 2 < height && i < lines.size(); ++i) {
    frame_lines.push_back(std::move(lines[i]));
  }
  while (frame_lines.size() + 2 < height) frame_lines.emplace_back();
  frame_lines.push_back(rule(width));
  frame_lines.push_back(
      "q quit | t threads d domains p pages v vars | s sort r reverse | "
      "enter drill b back | up/down select");
  return render_frame(frame_lines, width, height);
}

}  // namespace numaprof::monitor
