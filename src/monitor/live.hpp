// LiveTop: the in-process live renderer behind `record_app --top`.
//
// A simrt::MachineObserver that, every `interval_instructions` retired
// instructions, pulls one snapshot from the TelemetryHub, feeds the pure
// MonitorModel, and paints a frame to `out` — ANSI repaint-in-place when
// `ansi` is set (a real terminal), plain `== frame N ==`-delimited frames
// otherwise (pipes, CI logs).
//
// The observer is strictly pull-only: it reads the hub the samplers
// already publish into and writes to its own stream, so attaching it
// cannot perturb the recorded profile. A TelemetryHub snapshot drains
// per-ring event queues (single-consumer), so LiveTop must not share a
// hub with a TelemetryStreamer — record_app rejects that combination.
#pragma once

#include <cstdint>
#include <ostream>

#include "monitor/model.hpp"
#include "simrt/events.hpp"
#include "support/telemetry.hpp"

namespace numaprof::monitor {

class LiveTop final : public simrt::MachineObserver {
 public:
  struct Config {
    std::uint64_t interval_instructions = 100000;
    std::size_t width = 80;
    std::size_t height = 24;
    bool ansi = false;             // repaint in place vs. framed plain text
    std::ostream* out = nullptr;   // required
    pmu::Mechanism mechanism = pmu::Mechanism::kIbs;
  };

  LiveTop(support::TelemetryHub& hub, Config config)
      : hub_(&hub), config_(config) {
    model_.set_mechanism(config.mechanism);
  }

  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;

  /// Paints the final partial interval exactly once; a second flush in a
  /// row (or one landing on an interval boundary) is a no-op.
  void flush(std::uint64_t time);

  std::uint64_t frames_painted() const noexcept { return painted_; }
  const MonitorModel& model() const noexcept { return model_; }

 private:
  void paint(std::uint64_t time);

  support::TelemetryHub* hub_;
  Config config_;
  MonitorModel model_;
  std::uint64_t since_paint_ = 0;
  std::uint64_t last_time_ = 0;
  std::uint64_t painted_ = 0;
};

}  // namespace numaprof::monitor
