// Deterministic text-frame primitives for the numa_top monitor.
//
// A frame is plain text: `height` lines, each clipped to `width` columns
// with trailing whitespace trimmed, every line '\n'-terminated. Control
// sequences never appear here — the live renderer (monitor/term.hpp)
// wraps finished frames in cursor-addressing codes, so the same bytes a
// terminal repaints are what the scripted-frames goldens lock down.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace numaprof::monitor {

/// Clips `text` to `width` columns and trims trailing spaces/tabs.
std::string fit_line(std::string_view text, std::size_t width);

/// Assembles a frame exactly `height` lines tall: each line fit_line'd,
/// missing lines blank, extras dropped.
std::string render_frame(const std::vector<std::string>& lines,
                         std::size_t width, std::size_t height);

/// A horizontal rule of '-' spanning `width` columns.
std::string rule(std::size_t width);

/// Right-aligns `cell` into `width` columns (cells wider than the column
/// are kept whole; the frame clip handles overflow).
std::string pad_left(std::string cell, std::size_t width);

}  // namespace numaprof::monitor
