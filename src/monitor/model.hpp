// The numa_top frame model: snapshots + keystrokes in, text frames out.
//
// Modeled on intel numatop's window stack (per-node -> per-process ->
// per-latency drill-down), shrunk to this tool's telemetry: a summary
// bar, sortable per-thread and per-domain tables (RMA/LMA, remote
// latency, mismatch fraction), hot-page / hot-variable panes fed by the
// per-domain top-K telemetry counters, and drill-down from a thread to
// its hottest call paths.
//
// The model is deliberately pure: render() is a deterministic function of
// (snapshots fed so far, UI state, frame size) with no clock, terminal,
// or locale dependence. That purity is what lets the scripted-frames mode
// (monitor/script.hpp) golden-lock the exact bytes a live terminal shows.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pmu/sample.hpp"
#include "support/telemetry.hpp"

namespace numaprof::monitor {

/// The monitor's screens (numatop-style windows).
enum class Screen : std::uint8_t {
  kThreads,   // per-thread table (the home screen)
  kDomains,   // per-domain M_l/M_r balance
  kHotPages,  // per-domain top-K hot pages
  kHotVars,   // per-domain top-K hot variables
  kPaths,     // one thread's hottest call paths (drill-down)
};
inline constexpr std::size_t kScreenCount = 5;
std::string_view to_string(Screen s) noexcept;

/// Decoded keystrokes. Script names (monitor/script.hpp) and the live
/// byte decoder (monitor/term.hpp) both map onto these.
enum class Key : std::uint8_t {
  kNone,
  kUp,        // up / 'k'
  kDown,      // down / 'j'
  kEnter,     // drill into the selected thread's call paths
  kBack,      // 'b' / backspace: leave the drill-down
  kQuit,      // 'q'
  kThreads,   // 't'
  kDomains,   // 'd'
  kPages,     // 'p'
  kVars,      // 'v'
  kSortNext,  // 's': cycle the active screen's sort column
  kReverse,   // 'r': flip the active screen's sort direction
};

/// Script-token names: up down enter back quit t d p v s r.
bool key_from_name(std::string_view name, Key& out) noexcept;
std::string_view to_string(Key k) noexcept;

/// Everything the user can change from the keyboard. Plain data so tests
/// can inspect exactly where a keystroke sequence landed.
struct UiState {
  Screen screen = Screen::kThreads;
  std::array<std::size_t, kScreenCount> sort_col{};
  std::array<bool, kScreenCount> sort_desc{};
  std::size_t selected = 0;     // row index within the sorted table
  std::uint32_t drill_tid = 0;  // thread shown by Screen::kPaths
  bool quit = false;
};

class MonitorModel {
 public:
  MonitorModel();

  /// Mechanism shown in the summary bar ("-" until set).
  void set_mechanism(pmu::Mechanism mechanism) noexcept;

  /// Advances to the next snapshot (the previous one is retained for the
  /// summary bar's interval rates).
  void feed(const support::TelemetrySnapshot& snapshot);

  void apply_key(Key key);
  bool quit_requested() const noexcept { return state_.quit; }
  const UiState& state() const noexcept { return state_; }
  std::size_t snapshots_fed() const noexcept { return fed_; }

  /// Pure render: depends only on fed snapshots, UI state, and the size.
  std::string render(std::size_t width, std::size_t height) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    std::vector<double> sort_keys;  // one per column
    std::uint32_t tid = 0;          // threads screen: drill target
  };
  struct ColumnSpec {
    const char* title;
    std::size_t width;
    bool left = false;  // label columns; everything else right-aligns
  };

  static const std::vector<ColumnSpec>& columns_for(Screen screen);
  std::vector<Row> rows_for(Screen screen) const;
  std::size_t row_count() const;
  std::string summary_line() const;

  support::TelemetrySnapshot current_;
  support::TelemetrySnapshot previous_;
  std::size_t fed_ = 0;
  pmu::Mechanism mechanism_ = pmu::Mechanism::kIbs;
  bool has_mechanism_ = false;
  UiState state_;
};

}  // namespace numaprof::monitor
