#include "monitor/frame.hpp"

namespace numaprof::monitor {

std::string fit_line(std::string_view text, std::size_t width) {
  if (text.size() > width) text = text.substr(0, width);
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return std::string(text);
}

std::string render_frame(const std::vector<std::string>& lines,
                         std::size_t width, std::size_t height) {
  std::string out;
  out.reserve(height * (width / 2 + 1));
  for (std::size_t i = 0; i < height; ++i) {
    if (i < lines.size()) out += fit_line(lines[i], width);
    out += '\n';
  }
  return out;
}

std::string rule(std::size_t width) { return std::string(width, '-'); }

std::string pad_left(std::string cell, std::size_t width) {
  if (cell.size() < width) {
    cell.insert(cell.begin(), width - cell.size(), ' ');
  }
  return cell;
}

}  // namespace numaprof::monitor
