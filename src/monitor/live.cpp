#include "monitor/live.hpp"

#include <algorithm>

#include "monitor/frame.hpp"
#include "monitor/term.hpp"
#include "simrt/thread.hpp"

namespace numaprof::monitor {

void LiveTop::on_exec(const simrt::SimThread& thread, std::uint64_t count) {
  since_paint_ += count;
  last_time_ =
      std::max(last_time_, static_cast<std::uint64_t>(thread.now()));
  if (config_.interval_instructions > 0 &&
      since_paint_ >= config_.interval_instructions) {
    paint(last_time_);
  }
}

void LiveTop::flush(std::uint64_t time) {
  if (painted_ > 0 && since_paint_ == 0) return;
  paint(std::max(time, last_time_));
}

void LiveTop::paint(std::uint64_t time) {
  since_paint_ = 0;
  model_.feed(hub_->snapshot(time));
  ++painted_;
  if (config_.out == nullptr) return;
  const std::string frame = model_.render(config_.width, config_.height);
  if (config_.ansi) {
    if (painted_ == 1) *config_.out << ansi_enter();
    *config_.out << ansi_frame(frame);
  } else {
    *config_.out << "== frame " << painted_ << " (" << config_.width << "x"
                 << config_.height << ") ==\n"
                 << frame;
  }
  config_.out->flush();
}

}  // namespace numaprof::monitor
