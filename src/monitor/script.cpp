#include "monitor/script.hpp"

#include <sstream>

#include "support/error.hpp"

namespace numaprof::monitor {
namespace {

[[noreturn]] void script_error(const ScriptOptions& options,
                               std::size_t lineno,
                               const std::string& detail) {
  throw Error(ErrorKind::kMonitor, options.file, "script", lineno,
              "numa_top script error (line " + std::to_string(lineno) +
                  "): " + detail);
}

bool parse_size(const std::string& token, std::size_t& out) {
  if (token.empty()) return false;
  std::size_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  if (value == 0) return false;
  out = value;
  return true;
}

}  // namespace

ScriptResult run_script(
    MonitorModel& model,
    const std::vector<support::TelemetrySnapshot>& snapshots,
    std::istream& script, const ScriptOptions& options) {
  ScriptResult result;
  std::size_t width = options.width;
  std::size_t height = options.height;
  std::size_t next_snapshot = model.snapshots_fed();
  std::size_t lineno = 0;
  std::string line;
  while (std::getline(script, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string cmd;
    if (!(words >> cmd)) continue;  // blank / comment-only line

    if (cmd == "feed") {
      std::size_t count = 1;
      std::string arg;
      if (words >> arg && !parse_size(arg, count)) {
        script_error(options, lineno,
                     "feed count must be a positive integer, got '" + arg +
                         "'");
      }
      for (std::size_t i = 0; i < count; ++i) {
        if (next_snapshot >= snapshots.size()) {
          script_error(options, lineno,
                       "feed past end of trace (" +
                           std::to_string(snapshots.size()) +
                           " snapshots available)");
        }
        model.feed(snapshots[next_snapshot++]);
      }
    } else if (cmd == "key") {
      std::string name;
      if (!(words >> name)) {
        script_error(options, lineno, "key requires a name");
      }
      Key key = Key::kNone;
      if (!key_from_name(name, key)) {
        script_error(options, lineno, "unknown key '" + name + "'");
      }
      model.apply_key(key);
    } else if (cmd == "resize") {
      std::string w;
      std::string h;
      if (!(words >> w >> h) || !parse_size(w, width) ||
          !parse_size(h, height)) {
        script_error(options, lineno,
                     "resize requires two positive integers");
      }
    } else if (cmd == "frame") {
      ++result.frame_count;
      result.frames += "== frame " + std::to_string(result.frame_count) +
                       " (" + std::to_string(width) + "x" +
                       std::to_string(height) + ") ==\n";
      result.frames += model.render(width, height);
    } else {
      script_error(options, lineno, "unknown command '" + cmd + "'");
    }

    std::string extra;
    if (words >> extra) {
      script_error(options, lineno,
                   "trailing token '" + extra + "' after " + cmd);
    }
  }
  return result;
}

}  // namespace numaprof::monitor
