#include "monitor/term.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/ioctl.h>
#include <termios.h>
#include <unistd.h>
#define NUMAPROF_MONITOR_HAS_TTY 1
#else
#define NUMAPROF_MONITOR_HAS_TTY 0
#endif

namespace numaprof::monitor {

TermSize detect_term_size(int fd) noexcept {
  TermSize size;
#if NUMAPROF_MONITOR_HAS_TTY
  winsize ws{};
  if (::isatty(fd) && ::ioctl(fd, TIOCGWINSZ, &ws) == 0 && ws.ws_col > 0 &&
      ws.ws_row > 0) {
    size.width = ws.ws_col;
    size.height = ws.ws_row;
  }
#else
  (void)fd;
#endif
  return size;
}

std::string ansi_frame(std::string_view frame) {
  // Home the cursor, then clear to end-of-line after each painted line so
  // shorter lines fully overwrite their predecessors without a whole-screen
  // clear (which flickers).
  std::string out = "\x1b[H";
  out.reserve(frame.size() + frame.size() / 16 + 8);
  for (const char c : frame) {
    if (c == '\n') out += "\x1b[K";
    out += c;
  }
  out += "\x1b[J";
  return out;
}

std::string_view ansi_enter() noexcept { return "\x1b[?1049h\x1b[?25l"; }
std::string_view ansi_leave() noexcept { return "\x1b[?25h\x1b[?1049l"; }

Key decode_key_bytes(std::string_view bytes) noexcept {
  if (bytes.empty()) return Key::kNone;
  if (bytes[0] == '\x1b') {
    if (bytes.size() >= 3 && bytes[1] == '[') {
      if (bytes[2] == 'A') return Key::kUp;
      if (bytes[2] == 'B') return Key::kDown;
    }
    return Key::kNone;
  }
  switch (bytes[0]) {
    case 'q': return Key::kQuit;
    case 't': return Key::kThreads;
    case 'd': return Key::kDomains;
    case 'p': return Key::kPages;
    case 'v': return Key::kVars;
    case 's': return Key::kSortNext;
    case 'r': return Key::kReverse;
    case 'b': return Key::kBack;
    case 'k': return Key::kUp;
    case 'j': return Key::kDown;
    case '\r':
    case '\n': return Key::kEnter;
    case '\x7f': return Key::kBack;
    default: return Key::kNone;
  }
}

RawTerminal::RawTerminal(int fd) noexcept : fd_(fd) {
#if NUMAPROF_MONITOR_HAS_TTY
  static_assert(sizeof(saved_) >= sizeof(struct termios),
                "termios state does not fit the opaque buffer");
  struct termios tio{};
  if (!::isatty(fd_) || ::tcgetattr(fd_, &tio) != 0) return;
  std::memcpy(saved_, &tio, sizeof(tio));
  tio.c_lflag &= ~static_cast<tcflag_t>(ICANON | ECHO);
  tio.c_cc[VMIN] = 0;
  tio.c_cc[VTIME] = 0;
  if (::tcsetattr(fd_, TCSANOW, &tio) == 0) active_ = true;
#endif
}

RawTerminal::~RawTerminal() {
#if NUMAPROF_MONITOR_HAS_TTY
  if (active_) {
    struct termios tio;
    std::memcpy(&tio, saved_, sizeof(tio));
    ::tcsetattr(fd_, TCSANOW, &tio);
  }
#endif
}

Key poll_key(int fd, int timeout_ms) noexcept {
#if NUMAPROF_MONITOR_HAS_TTY
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  if (::poll(&pfd, 1, timeout_ms) <= 0 || !(pfd.revents & POLLIN)) {
    return Key::kNone;
  }
  char buf[8];
  const ssize_t n = ::read(fd, buf, sizeof(buf));
  if (n <= 0) return Key::kNone;
  return decode_key_bytes(std::string_view(buf, static_cast<size_t>(n)));
#else
  (void)fd;
  (void)timeout_ms;
  return Key::kNone;
#endif
}

}  // namespace numaprof::monitor
