// Scripted-frames mode for numa_top: replays a keystroke/feed script
// against the pure frame model and concatenates the frames it asks for.
//
// The script grammar is one command per line ('#' starts a comment):
//
//   feed [N]      feed the next N snapshots into the model (default 1)
//   key NAME      apply a keystroke; NAME is a script token from
//                 key_from_name(): up down enter back quit t d p v s r
//   resize W H    change the frame size for subsequent `frame` commands
//   frame         emit one frame, preceded by `== frame <n> (<W>x<H>) ==`
//
// Because MonitorModel::render() is a pure function of (snapshots fed,
// UI state, size), the resulting byte stream is deterministic and can be
// golden-locked in CI. Malformed scripts raise Error(kMonitor) with a
// 1-based line number.
#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

#include "monitor/model.hpp"
#include "support/telemetry.hpp"

namespace numaprof::monitor {

struct ScriptOptions {
  std::size_t width = 80;   // initial frame size (overridden by `resize`)
  std::size_t height = 24;
  std::string file;         // script name used in error messages
};

struct ScriptResult {
  std::string frames;           // all emitted frames, headers included
  std::size_t frame_count = 0;  // number of `frame` commands executed
};

/// Runs `script` against `model`, drawing snapshots from `snapshots` in
/// order. Feeding past the end of `snapshots` is an error (the script
/// asked for data the trace does not have).
ScriptResult run_script(MonitorModel& model,
                        const std::vector<support::TelemetrySnapshot>& snapshots,
                        std::istream& script, const ScriptOptions& options);

}  // namespace numaprof::monitor
