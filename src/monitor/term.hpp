// Terminal plumbing for live numa_top: size detection, raw-mode input,
// and the thin ANSI wrapper around the pure frames from monitor/frame.hpp.
//
// Everything stateful and platform-touching lives here so the frame model
// stays deterministic. decode_key_bytes() is pure (bytes -> Key) and unit
// tested; RawTerminal/poll_key are the only pieces that need a real tty.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "monitor/model.hpp"

namespace numaprof::monitor {

struct TermSize {
  std::size_t width = 80;
  std::size_t height = 24;
};

/// Size of the terminal attached to `fd`, or 80x24 when `fd` is not a
/// tty (pipes, CI).
TermSize detect_term_size(int fd) noexcept;

/// Wraps a finished frame in cursor-home + clear-to-end codes so a
/// repaint replaces the previous frame without scrollback spam.
std::string ansi_frame(std::string_view frame);

/// Enter/leave the alternate screen (and hide/show the cursor). Emitted
/// once around a live session; no-ops for the scripted mode.
std::string_view ansi_enter() noexcept;
std::string_view ansi_leave() noexcept;

/// Decodes one keypress from raw input bytes: arrow-key CSI sequences
/// (ESC [ A/B), the letter commands (q t d p v s r b), vi-style j/k,
/// Enter (\r or \n), and backspace (0x7f -> kBack). Unknown bytes decode
/// to kNone. Pure; exercised directly by tests.
Key decode_key_bytes(std::string_view bytes) noexcept;

/// Puts `fd` into raw (non-canonical, no-echo) mode for the object's
/// lifetime; restores the previous termios state on destruction. Safe to
/// construct on a non-tty fd (becomes a no-op).
class RawTerminal {
 public:
  explicit RawTerminal(int fd) noexcept;
  ~RawTerminal();
  RawTerminal(const RawTerminal&) = delete;
  RawTerminal& operator=(const RawTerminal&) = delete;

  bool active() const noexcept { return active_; }

 private:
  int fd_;
  bool active_ = false;
  char saved_[64];  // opaque termios storage (keeps <termios.h> out of here)
};

/// Waits up to `timeout_ms` for a keypress on `fd` and decodes it.
/// Returns Key::kNone on timeout or when `fd` has no pending input.
Key poll_key(int fd, int timeout_ms) noexcept;

}  // namespace numaprof::monitor
