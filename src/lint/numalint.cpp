#include "lint/numalint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "lint/cache.hpp"
#include "lint/ir.hpp"
#include "lint/lexer.hpp"
#include "support/threadpool.hpp"

namespace numaprof::lint {

namespace {

using core::Action;
using core::LintKind;
using core::PatternKind;
using core::StaticFinding;

// ---------------------------------------------------------------------
// Recognizer model
// ---------------------------------------------------------------------

struct Field {
  std::string name;
  bool is_bool = false;
  std::uint32_t size = 8;
};

struct StructInfo {
  std::vector<Field> fields;
  std::uint32_t byte_size = 0;
  std::size_t body_begin = 0, body_end = 0;  // token range of the braces

  int field_index(std::string_view name) const {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

struct Cell {
  enum Kind : std::uint8_t { kStr, kLval, kBool, kOther };
  Kind kind = kOther;
  std::string text;  // string contents / lvalue chain
  bool bval = false;
};

struct Row {
  std::uint32_t line = 0;
  std::vector<Cell> cells;
};

struct TableInfo {
  std::string struct_name;
  std::vector<Row> rows;
};

struct Policy {
  bool interleave = false;
  bool first_touch = false;
  bool bind = false;
};

struct RegionInfo {
  std::string name;
  std::uint32_t line = 0;
  bool parallel = false;
  std::size_t begin = 0, end = 0;  // body token range
  bool blocked = false;            // partitions with block_slice / chunks
  bool round_robin = false;        // strided by the thread count
  std::string count_last;          // trailing ident of the count expression
};

struct IfBlock {
  std::size_t cond_begin = 0, cond_end = 0;
  std::size_t begin = 0, end = 0;
};

struct VarDecl {
  enum Storage : std::uint8_t { kHeap, kStatic, kStack, kStackReg };
  std::string name;    // source-level name
  std::string lvalue;  // canonical chain ("run.x", "level.rap_diag_i")
  std::string last;    // trailing identifier of the lvalue
  std::uint32_t line = 0;
  Storage storage = kHeap;
  std::set<std::string> size_idents;  // trailing idents in the size expr
  Policy policy;
  std::uint32_t elem_size = 8;
};

struct Access {
  int var = -1;
  bool write = false;
  std::uint32_t line = 0;
  int region = -1;  // -1: serial context outside any region
  bool region_parallel = false;
  bool thread_guarded = false;  // under if (index == 0)-style guard
  bool indirect = false;        // index computed through an unknown call
  bool soa = false;             // index scales by an allocation-size ident
  bool per_thread = false;      // element selected by a thread id
};

struct BraceInfo {
  std::size_t open = 0, close = 0;
  char kind = 'i';  // 'n' namespace, 's' struct, 'c' code, 'i' initializer
};

const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kw = {
      "return", "case",   "co_return", "co_await", "delete", "sizeof",
      "typedef", "using", "new",       "goto",     "throw",  "else"};
  return kw;
}

std::uint32_t primitive_size(const std::string& t) {
  if (t == "double" || t == "uint64_t" || t == "int64_t" || t == "size_t" ||
      t == "long" || t == "VAddr" || t == "ptrdiff_t" || t == "intptr_t") {
    return 8;
  }
  if (t == "int" || t == "unsigned" || t == "uint32_t" || t == "int32_t" ||
      t == "float" || t == "FrameId") {
    return 4;
  }
  if (t == "short" || t == "uint16_t" || t == "int16_t") return 2;
  if (t == "char" || t == "bool" || t == "uint8_t" || t == "int8_t") return 1;
  return 0;
}

bool thread_id_name(const std::string& s) {
  return s == "tid" || s == "index" || s == "thread_id" || s == "thread_num" ||
         s == "rank" || s == "me" || s == "worker";
}

// Calls that keep an index expression "direct" (linear / known helpers).
bool known_linear_call(const std::string& s) {
  return s == "elem_addr" || s == "block_slice" || s == "min" || s == "max" ||
         s == "size" || s == "begin" || s == "end" || s == "data" ||
         s == "to_string" || s == "sizeof";
}

// ---------------------------------------------------------------------
// Per-file analyzer
// ---------------------------------------------------------------------

class FileAnalyzer {
 public:
  FileAnalyzer(std::string_view source, std::string file)
      : file_(std::move(file)) {
    LexResult lexed = lex(source);
    toks_ = std::move(lexed.tokens);
    stats_.files = 1;
    stats_.lines = lexed.lines;
    stats_.tokens = toks_.size();
  }

  LintResult run() {
    build_matches();
    classify_braces();
    collect_structs();
    collect_lambdas();
    collect_policies();
    collect_tables();
    collect_range_fors();
    collect_ifs();
    collect_regions();
    collect_vars();
    collect_accesses();
    emit();
    std::sort(findings_.begin(), findings_.end(),
              [](const StaticFinding& a, const StaticFinding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                if (a.variable != b.variable) return a.variable < b.variable;
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
    return {std::move(findings_), stats_};
  }

 private:
  // -- token utilities -------------------------------------------------

  std::size_t n() const { return toks_.size(); }
  const Token& tok(std::size_t i) const { return toks_[i]; }
  bool valid(std::size_t i) const { return i < toks_.size(); }

  void build_matches() {
    match_.assign(n(), SIZE_MAX);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < n(); ++i) {
      if (tok(i).kind != TokKind::kPunct) continue;
      const std::string& t = tok(i).text;
      if (t == "(" || t == "{" || t == "[") {
        stack.push_back(i);
      } else if (t == ")" || t == "}" || t == "]") {
        // Tolerate imbalance: pop until an opener of the right shape.
        const char open = t == ")" ? '(' : (t == "}" ? '{' : '[');
        while (!stack.empty() && tok(stack.back()).text[0] != open) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          match_[stack.back()] = i;
          match_[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  std::size_t matching(std::size_t i) const {
    return match_[i] == SIZE_MAX ? n() : match_[i];
  }

  /// Canonical forward chain starting at an identifier:
  /// ident ('::'|'.'|'->' ident | '[...]' -> "[]")*. Returns the canonical
  /// text, the trailing identifier, and one past the last consumed token.
  struct Chain {
    std::string text;
    std::string first;
    std::string last;
    std::size_t end = 0;
  };

  Chain read_chain(std::size_t i) const {
    Chain c;
    if (!valid(i) || tok(i).kind != TokKind::kIdent) {
      c.end = i;
      return c;
    }
    c.first = c.last = tok(i).text;
    c.text = tok(i).text;
    std::size_t p = i + 1;
    while (valid(p)) {
      const std::string& t = tok(p).text;
      if (tok(p).kind == TokKind::kPunct &&
          (t == "." || t == "->" || t == "::") && valid(p + 1) &&
          tok(p + 1).kind == TokKind::kIdent) {
        c.text += (t == "::") ? "::" : ".";
        c.text += tok(p + 1).text;
        c.last = tok(p + 1).text;
        p += 2;
        continue;
      }
      if (tok(p).is_punct("[") && matching(p) < n()) {
        c.text += "[]";
        p = matching(p) + 1;
        continue;
      }
      break;
    }
    c.end = p;
    return c;
  }

  /// Reads a chain that ENDS at token `e` (inclusive), walking backwards.
  /// Returns the start index, canonical text, and whether a unary '*'
  /// deref precedes it at statement position.
  struct BackChain {
    std::string text;
    std::string first;
    std::string last;
    std::size_t start = SIZE_MAX;
    bool deref = false;
    bool ok = false;
  };

  BackChain read_chain_back(std::size_t e) const {
    BackChain bc;
    if (!valid(e)) return bc;
    std::size_t i = e;
    // Walk back over chain constituents.
    while (true) {
      const Token& t = tok(i);
      if (t.is_punct("]") && matching(i) < n() && matching(i) < i) {
        i = matching(i);
        if (i == 0) break;
        --i;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        if (i == 0) {
          bc.start = 0;
          break;
        }
        const Token& prev = tok(i - 1);
        if (prev.is_punct(".") || prev.is_punct("->") || prev.is_punct("::")) {
          i -= 2;
          continue;
        }
        bc.start = i;
        break;
      }
      return bc;  // not a chain
    }
    if (bc.start == SIZE_MAX) return bc;
    Chain fwd = read_chain(bc.start);
    if (fwd.end <= e) return bc;  // didn't reach the anchor; reject
    bc.text = fwd.text;
    bc.first = fwd.first;
    bc.last = fwd.last;
    bc.ok = true;
    if (bc.start > 0 && tok(bc.start - 1).is_punct("*")) {
      const std::size_t s = bc.start - 1;
      if (s == 0 || tok(s - 1).is_punct(";") || tok(s - 1).is_punct("{") ||
          tok(s - 1).is_punct("}") || tok(s - 1).is_punct("(")) {
        bc.deref = true;
      }
    }
    return bc;
  }

  /// Splits the argument list of a call whose '(' is at `open` into
  /// depth-1 comma-separated token ranges [begin, end).
  std::vector<std::pair<std::size_t, std::size_t>> split_args(
      std::size_t open) const {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    const std::size_t close = matching(open);
    if (close >= n()) return args;
    std::size_t start = open + 1;
    std::size_t depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const std::string& t = tok(i).text;
      if (tok(i).kind == TokKind::kPunct) {
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (t == "," && depth == 0) {
          args.emplace_back(start, i);
          start = i + 1;
        }
      }
    }
    if (start < close || close > open + 1) args.emplace_back(start, close);
    return args;
  }

  std::optional<std::string> first_string_in(std::size_t b,
                                             std::size_t e) const {
    for (std::size_t i = b; i < e && i < n(); ++i) {
      if (tok(i).kind == TokKind::kString) return tok(i).text;
    }
    return std::nullopt;
  }

  /// Start of the statement containing `i` (one past the previous
  /// ';', '{' or '}').
  std::size_t stmt_start(std::size_t i) const {
    while (i > 0) {
      const Token& t = tok(i - 1);
      if (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) break;
      --i;
    }
    return i;
  }

  // -- structural passes -----------------------------------------------

  void classify_braces() {
    for (std::size_t i = 0; i < n(); ++i) {
      if (!tok(i).is_punct("{") || matching(i) >= n()) continue;
      BraceInfo b;
      b.open = i;
      b.close = matching(i);
      b.kind = 'i';
      if (i > 0 && tok(i - 1).is_punct(")")) {
        b.kind = 'c';  // function body or control-flow block
      } else if (i > 0 && (tok(i - 1).is_ident("else") ||
                           tok(i - 1).is_ident("do") ||
                           tok(i - 1).is_ident("try"))) {
        b.kind = 'c';
      } else {
        const std::size_t s = stmt_start(i);
        for (std::size_t k = s; k < i; ++k) {
          if (tok(k).is_ident("namespace")) b.kind = 'n';
          if (tok(k).is_ident("struct") || tok(k).is_ident("class") ||
              tok(k).is_ident("union") || tok(k).is_ident("enum")) {
            b.kind = 's';
          }
        }
      }
      braces_.push_back(b);
    }
  }

  bool in_function(std::size_t i) const {
    for (const BraceInfo& b : braces_) {
      if (b.kind == 'c' && b.open < i && i < b.close) return true;
    }
    return false;
  }

  bool in_struct_body(std::size_t i) const {
    for (const auto& [name, info] : structs_) {
      if (info.body_begin < i && i < info.body_end) return true;
    }
    return false;
  }

  void collect_structs() {
    for (std::size_t i = 0; i + 2 < n(); ++i) {
      if (!(tok(i).is_ident("struct") || tok(i).is_ident("class"))) continue;
      // Skip alignas(...) / attribute specifiers between the keyword and
      // the struct name.
      std::size_t name_at = i + 1;
      while (valid(name_at + 1) &&
             (tok(name_at).is_ident("alignas") ||
              tok(name_at).is_ident("__attribute__")) &&
             tok(name_at + 1).is_punct("(")) {
        name_at = matching(name_at + 1) + 1;
      }
      if (!valid(name_at) || tok(name_at).kind != TokKind::kIdent) continue;
      // Find the '{' before any ';' (skips forward declarations).
      std::size_t b = name_at + 1;
      while (valid(b) && !tok(b).is_punct("{") && !tok(b).is_punct(";") &&
             b < i + 16) {
        ++b;
      }
      if (!valid(b) || !tok(b).is_punct("{")) continue;
      const std::size_t close = matching(b);
      if (close >= n()) continue;
      StructInfo info;
      info.body_begin = b;
      info.body_end = close;
      // Parse field statements at depth 0 within the braces.
      std::size_t p = b + 1;
      while (p < close) {
        // Skip nested braces (methods, nested types) and parens.
        std::size_t stmt_begin = p;
        bool has_paren = false;
        std::vector<std::size_t> stmt;  // token indices at depth 0
        while (p < close && !tok(p).is_punct(";")) {
          if (tok(p).is_punct("{") || tok(p).is_punct("(")) {
            if (tok(p).is_punct("(")) has_paren = true;
            p = matching(p) < close ? matching(p) + 1 : close;
            continue;
          }
          stmt.push_back(p);
          ++p;
        }
        ++p;  // past ';'
        if (stmt.size() < 2 || has_paren) continue;
        if (tok(stmt.front()).is_ident("using") ||
            tok(stmt.front()).is_ident("typedef") ||
            tok(stmt.front()).is_ident("friend") ||
            tok(stmt.front()).is_ident("static")) {
          continue;
        }
        Field f;
        std::uint32_t size = 0;
        std::uint64_t array_mult = 1;
        for (std::size_t k : stmt) {
          if (tok(k).kind == TokKind::kIdent) {
            f.name = tok(k).text;
            if (tok(k).text == "bool") f.is_bool = true;
            const std::uint32_t s = primitive_size(tok(k).text);
            if (s > 0 && size == 0) size = s;
          }
          if (tok(k).is_punct("*")) size = 8;
        }
        // Array field: multiply by a literal extent if present.
        for (std::size_t q = stmt_begin; q < p; ++q) {
          if (tok(q).is_punct("[") && valid(q + 1) &&
              tok(q + 1).kind == TokKind::kNumber) {
            // Strip C++14 digit separators: strtoull("1'024") stops at the
            // quote and would report a 1-element extent.
            std::string digits = tok(q + 1).text;
            digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                         digits.end());
            array_mult = std::strtoull(digits.c_str(), nullptr, 0);
            if (array_mult == 0) array_mult = 1;
          }
        }
        f.size = static_cast<std::uint32_t>((size == 0 ? 8 : size) *
                                            array_mult);
        if (!f.name.empty()) info.fields.push_back(f);
      }
      for (const Field& f : info.fields) info.byte_size += f.size;
      structs_[tok(name_at).text] = std::move(info);
    }
  }

  void collect_lambdas() {
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (!tok(i).is_punct("=") || !tok(i + 1).is_punct("[")) continue;
      const std::size_t intro_close = matching(i + 1);
      if (intro_close >= n()) continue;
      BackChain name = read_chain_back(i - 1);
      if (!name.ok || name.text.find('.') != std::string::npos) continue;
      // Optional (params), optional -> T, then the body braces.
      std::size_t p = intro_close + 1;
      if (valid(p) && tok(p).is_punct("(")) p = matching(p) + 1;
      while (valid(p) && !tok(p).is_punct("{") && !tok(p).is_punct(";") &&
             p < intro_close + 24) {
        ++p;
      }
      if (!valid(p) || !tok(p).is_punct("{")) continue;
      const std::size_t close = matching(p);
      if (close >= n()) continue;
      lambdas_[name.text] = {p + 1, close};
    }
  }

  Policy resolve_policy(std::size_t b, std::size_t e) const {
    Policy p;
    for (std::size_t i = b; i < e && i < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      const std::string& t = tok(i).text;
      if (t == "interleave") p.interleave = true;
      if (t == "first_touch") p.first_touch = true;
      if (t == "bind" || t == "membind" || t == "preferred") p.bind = true;
      auto it = policies_.find(t);
      if (it != policies_.end()) {
        p.interleave |= it->second.interleave;
        p.first_touch |= it->second.first_touch;
        p.bind |= it->second.bind;
      }
    }
    if (!p.interleave && !p.bind) p.first_touch = true;
    return p;
  }

  void collect_policies() {
    // Declarations: ... PolicySpec NAME = <expr>;
    for (std::size_t i = 0; i + 2 < n(); ++i) {
      if (!tok(i).is_ident("PolicySpec")) continue;
      if (tok(i + 1).kind != TokKind::kIdent || !tok(i + 2).is_punct("=")) {
        continue;
      }
      std::size_t e = i + 3;
      std::size_t depth = 0;
      while (valid(e) && !(depth == 0 && tok(e).is_punct(";"))) {
        if (tok(e).is_punct("(") || tok(e).is_punct("{")) ++depth;
        if (tok(e).is_punct(")") || tok(e).is_punct("}")) --depth;
        ++e;
      }
      Policy p = resolve_policy(i + 3, e);
      Policy& slot = policies_[tok(i + 1).text];
      slot.interleave |= p.interleave;
      slot.first_touch |= p.first_touch;
      slot.bind |= p.bind;
    }
    // Reassignments: NAME = PolicySpec::... ;
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent || !tok(i + 1).is_punct("=")) {
        continue;
      }
      auto it = policies_.find(tok(i).text);
      if (it == policies_.end()) continue;
      std::size_t e = i + 2;
      while (valid(e) && !tok(e).is_punct(";")) ++e;
      const Policy p = resolve_policy(i + 2, e);
      it->second.interleave |= p.interleave;
      it->second.first_touch |= p.first_touch;
      it->second.bind |= p.bind;
    }
  }

  void collect_tables() {
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (!tok(i).is_punct("=") || !tok(i + 1).is_punct("{")) continue;
      BackChain name = read_chain_back(i - 1);
      if (!name.ok || name.text.find('.') != std::string::npos) continue;
      // The declaration must name a known struct type.
      const std::size_t s = stmt_start(i);
      std::string struct_name;
      for (std::size_t k = s; k < i; ++k) {
        if (tok(k).kind == TokKind::kIdent && structs_.count(tok(k).text)) {
          struct_name = tok(k).text;
        }
      }
      if (struct_name.empty()) continue;
      TableInfo table;
      table.struct_name = struct_name;
      collect_rows(i + 1, table);
      if (!table.rows.empty()) tables_[name.text] = std::move(table);
    }
  }

  /// Recursively descends brace groups; a group whose first cell is a
  /// string literal is a row.
  void collect_rows(std::size_t open, TableInfo& table) {
    const std::size_t close = matching(open);
    if (close >= n()) return;
    // Direct children at depth 0 inside this group.
    std::size_t i = open + 1;
    bool saw_scalar = false;
    std::vector<std::size_t> child_groups;
    while (i < close) {
      if (tok(i).is_punct("{")) {
        child_groups.push_back(i);
        i = matching(i) < close ? matching(i) + 1 : close;
        continue;
      }
      if (tok(i).is_punct("(") || tok(i).is_punct("[")) {
        i = matching(i) < close ? matching(i) + 1 : close;
        saw_scalar = true;
        continue;
      }
      if (!tok(i).is_punct(",")) saw_scalar = true;
      ++i;
    }
    if (!child_groups.empty() && !saw_scalar) {
      for (std::size_t g : child_groups) collect_rows(g, table);
      return;
    }
    // Leaf group: a row iff the first cell is a string literal.
    Row row;
    row.line = tok(open).line;
    for (auto [b, e] : split_args(open)) {
      Cell cell;
      if (b < e && tok(b).kind == TokKind::kString) {
        cell.kind = Cell::kStr;
        cell.text = tok(b).text;
      } else if (b < e && tok(b).is_punct("&") && b + 1 < e) {
        Chain c = read_chain(b + 1);
        cell.kind = Cell::kLval;
        cell.text = c.text;
      } else if (b < e && (tok(b).is_ident("true") || tok(b).is_ident("false"))) {
        cell.kind = Cell::kBool;
        cell.bval = tok(b).is_ident("true");
      }
      row.cells.push_back(std::move(cell));
    }
    if (!row.cells.empty() && row.cells.front().kind == Cell::kStr) {
      table.rows.push_back(std::move(row));
    }
  }

  void collect_range_fors() {
    // for ( <decl> ITER : TABLE )
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (!tok(i).is_ident("for") || !tok(i + 1).is_punct("(")) continue;
      const std::size_t close = matching(i + 1);
      if (close >= n()) continue;
      // Find a depth-0 ':' (skip '::').
      for (std::size_t k = i + 2; k < close; ++k) {
        if (!tok(k).is_punct(":")) continue;
        // iter = identifier immediately before ':'.
        if (k == 0 || tok(k - 1).kind != TokKind::kIdent) break;
        Chain seq = read_chain(k + 1);
        if (!seq.text.empty() && tables_.count(seq.text)) {
          range_iters_[tok(k - 1).text] = seq.text;
        }
        break;
      }
    }
  }

  void collect_ifs() {
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (!tok(i).is_ident("if") || !tok(i + 1).is_punct("(")) continue;
      const std::size_t cond_close = matching(i + 1);
      if (cond_close >= n()) continue;
      IfBlock blk;
      blk.cond_begin = i + 2;
      blk.cond_end = cond_close;
      std::size_t p = cond_close + 1;
      if (valid(p) && tok(p).is_punct("{")) {
        blk.begin = p + 1;
        blk.end = matching(p);
      } else {
        blk.begin = p;
        while (valid(p) && !tok(p).is_punct(";")) {
          if (tok(p).is_punct("(") || tok(p).is_punct("{")) {
            p = matching(p) < n() ? matching(p) : p;
          }
          ++p;
        }
        blk.end = p;
      }
      if (blk.end <= n()) ifs_.push_back(blk);
    }
  }

  void collect_regions() {
    // DSL: parallel_region(machine, COUNT, "name", base, <lambda>) and
    //      parallel_for(machine, COUNT, "name", base, total, sched, chunk, body)
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      const bool pr = tok(i).is_ident("parallel_region");
      const bool pf = tok(i).is_ident("parallel_for");
      if ((!pr && !pf) || !tok(i + 1).is_punct("(")) continue;
      const auto args = split_args(i + 1);
      if (args.size() < 3) continue;
      RegionInfo r;
      r.line = tok(i).line;
      const auto [cb, ce] = args[1];
      r.parallel = !(ce == cb + 1 && tok(cb).kind == TokKind::kNumber &&
                     tok(cb).text == "1");
      for (std::size_t k = cb; k < ce; ++k) {
        if (tok(k).kind == TokKind::kIdent) r.count_last = tok(k).text;
      }
      if (auto s = first_string_in(args[0].first, matching(i + 1))) {
        r.name = *s;
      }
      // Body: first '{' inside the last argument.
      const auto [lb, le] = args.back();
      for (std::size_t k = lb; k < le; ++k) {
        if (tok(k).is_punct("{") && matching(k) < n()) {
          r.begin = k + 1;
          r.end = matching(k);
          break;
        }
      }
      if (r.begin == 0) continue;
      finish_region(r);
    }
    // OpenMP: #pragma omp parallel [for] ...
    for (std::size_t i = 0; i + 2 < n(); ++i) {
      if (!tok(i).is_punct("#") || !tok(i + 1).is_ident("pragma") ||
          !tok(i + 2).is_ident("omp")) {
        continue;
      }
      const std::uint32_t line = tok(i).line;
      std::size_t p = i + 3;
      bool parallel = false;
      bool serial_override = false;
      std::string name = "omp";
      std::uint32_t cur_line = line;
      while (valid(p) && tok(p).line == cur_line) {
        // Backslash continuation: the directive extends onto the next line.
        if (tok(p).is_punct("\\") && valid(p + 1) &&
            tok(p + 1).line == cur_line + 1) {
          ++cur_line;
          ++p;
          continue;
        }
        if (tok(p).kind == TokKind::kIdent) {
          name += " " + tok(p).text;
          if (tok(p).text == "parallel") parallel = true;
          if (tok(p).text == "single" || tok(p).text == "master" ||
              tok(p).text == "critical") {
            serial_override = true;
          }
          if (tok(p).text == "num_threads" && valid(p + 2) &&
              tok(p + 1).is_punct("(") && tok(p + 2).text == "1") {
            serial_override = true;
          }
        }
        ++p;
      }
      if (!parallel || serial_override || !valid(p)) continue;
      RegionInfo r;
      r.line = line;
      r.name = name;
      r.parallel = true;
      if (tok(p).is_punct("{")) {
        r.begin = p + 1;
        r.end = matching(p);
      } else if (tok(p).is_ident("for") || tok(p).is_ident("while")) {
        // The loop statement: header parens + body (block or statement).
        std::size_t q = p + 1;
        if (valid(q) && tok(q).is_punct("(")) q = matching(q) + 1;
        if (valid(q) && tok(q).is_punct("{")) {
          r.begin = p;
          r.end = matching(q);
        } else {
          r.begin = p;
          while (valid(q) && !tok(q).is_punct(";")) ++q;
          r.end = q;
        }
      } else {
        continue;
      }
      if (r.end >= n()) continue;
      finish_region(r);
    }
    std::sort(regions_.begin(), regions_.end(),
              [](const RegionInfo& a, const RegionInfo& b) {
                return a.begin < b.begin;
              });
  }

  void finish_region(RegionInfo& r) {
    for (std::size_t k = r.begin; k < r.end; ++k) {
      if (tok(k).is_ident("block_slice") || tok(k).is_ident("schedule")) {
        r.blocked = true;
      }
      if (tok(k).is_punct("+=") && valid(k + 1)) {
        Chain c = read_chain(k + 1);
        if (!c.last.empty() &&
            (c.last == r.count_last || c.last == "threads" ||
             c.last == "nthreads" || c.last == "num_threads")) {
          r.round_robin = true;
        }
      }
    }
    regions_.push_back(r);
  }

  int region_of(std::size_t i) const {
    int best = -1;
    std::size_t best_span = SIZE_MAX;
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      if (regions_[r].begin <= i && i < regions_[r].end) {
        const std::size_t span = regions_[r].end - regions_[r].begin;
        if (span < best_span) {
          best = static_cast<int>(r);
          best_span = span;
        }
      }
    }
    return best;
  }

  // -- guard analysis ---------------------------------------------------

  struct Guards {
    bool thread_guarded = false;
    // Row filters: (table name, bool column index, keep-when value).
    std::vector<std::tuple<std::string, int, bool>> row_filters;
  };

  Guards guards_of(std::size_t i) const {
    Guards g;
    for (const IfBlock& blk : ifs_) {
      if (!(blk.begin <= i && i < blk.end)) continue;
      analyze_condition(blk.cond_begin, blk.cond_end, g);
    }
    return g;
  }

  void analyze_condition(std::size_t b, std::size_t e, Guards& g) const {
    for (std::size_t i = b; i < e && i < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      const bool negated = i > 0 && tok(i - 1).is_punct("!");
      Chain c = read_chain(i);
      // Thread guard: <tid-ish> == 0 (or t.tid() == 0).
      if ((thread_id_name(c.last) || c.last == "tid") && c.end + 1 < n() &&
          tok(c.end).is_punct("==") && tok(c.end + 1).text == "0") {
        g.thread_guarded = true;
      }
      // Row filter: ITER.FIELD where ITER ranges over a table and FIELD is
      // a bool column — or TABLE[...].FIELD.
      std::string table;
      auto it = range_iters_.find(c.first);
      if (it != range_iters_.end()) {
        table = it->second;
      } else if (tables_.count(c.first)) {
        table = c.first;
      }
      if (!table.empty() && c.last != c.first) {
        const TableInfo& t = tables_.at(table);
        auto sit = structs_.find(t.struct_name);
        if (sit != structs_.end()) {
          const int col = sit->second.field_index(c.last);
          if (col >= 0 && sit->second.fields[col].is_bool) {
            g.row_filters.emplace_back(table, col, !negated);
          }
        }
      }
      i = c.end > i ? c.end - 1 : i;
    }
  }

  // -- declarations -----------------------------------------------------

  void add_size_idents(std::size_t b, std::size_t e, VarDecl& v) const {
    for (std::size_t i = b; i < e && i < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      Chain c = read_chain(i);
      v.size_idents.insert(c.last);
      i = c.end > i ? c.end - 1 : i;
    }
  }

  /// Per-row policy: `T[i].BOOLFIELD ? A : B` picks A for true rows.
  Policy row_policy(std::size_t b, std::size_t e, const TableInfo& table,
                    bool row_true) const {
    std::size_t q = SIZE_MAX;  // '?' position at depth 0
    std::size_t colon = SIZE_MAX;
    std::size_t depth = 0;
    for (std::size_t i = b; i < e && i < n(); ++i) {
      const std::string& t = tok(i).text;
      if (tok(i).kind == TokKind::kPunct) {
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (depth == 0 && t == "?" && q == SIZE_MAX) q = i;
        if (depth == 0 && t == ":" && q != SIZE_MAX && colon == SIZE_MAX) {
          colon = i;
        }
      }
    }
    if (q == SIZE_MAX || colon == SIZE_MAX) return resolve_policy(b, e);
    // The selector must reference a bool column of this table.
    bool selector_is_bool_col = false;
    for (std::size_t i = b; i < q; ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      Chain c = read_chain(i);
      auto sit = structs_.find(table.struct_name);
      if (sit != structs_.end()) {
        const int col = sit->second.field_index(c.last);
        if (col >= 0 && sit->second.fields[col].is_bool) {
          selector_is_bool_col = true;
        }
      }
      i = c.end > i ? c.end - 1 : i;
    }
    if (!selector_is_bool_col) return resolve_policy(b, e);
    return row_true ? resolve_policy(q + 1, colon)
                    : resolve_policy(colon + 1, e);
  }

  /// Finds the table referenced as `TABLE[...].FIELD` (or ITER.FIELD).
  /// Returns (table name, field name) or nullopt.
  std::optional<std::pair<std::string, std::string>> table_field_of(
      const std::string& chain_first, const std::string& chain_last) const {
    std::string table;
    auto it = range_iters_.find(chain_first);
    if (it != range_iters_.end()) {
      table = it->second;
    } else if (tables_.count(chain_first)) {
      table = chain_first;
    }
    if (table.empty() || chain_last == chain_first) return std::nullopt;
    return std::make_pair(table, chain_last);
  }

  void declare_from_table(const TableInfo& table, const std::string& addr_field,
                          std::size_t policy_b, std::size_t policy_e,
                          std::size_t size_b, std::size_t size_e) {
    auto sit = structs_.find(table.struct_name);
    if (sit == structs_.end()) return;
    const int addr_col = sit->second.field_index(addr_field);
    if (addr_col < 0) return;
    for (const Row& row : table.rows) {
      if (static_cast<std::size_t>(addr_col) >= row.cells.size()) continue;
      const Cell& addr_cell = row.cells[static_cast<std::size_t>(addr_col)];
      if (addr_cell.kind != Cell::kLval || row.cells.front().kind != Cell::kStr) {
        continue;
      }
      bool row_true = false;
      for (const Cell& c : row.cells) {
        if (c.kind == Cell::kBool) row_true = c.bval;
      }
      VarDecl v;
      v.name = row.cells.front().text;
      v.lvalue = addr_cell.text;
      {
        const std::size_t dot = v.lvalue.rfind('.');
        v.last = dot == std::string::npos ? v.lvalue : v.lvalue.substr(dot + 1);
      }
      v.line = row.line;
      v.storage = VarDecl::kHeap;
      add_size_idents(size_b, size_e, v);
      v.policy = policy_b < policy_e ? row_policy(policy_b, policy_e, table,
                                                  row_true)
                                     : Policy{.first_touch = true};
      push_var(std::move(v));
    }
  }

  void push_var(VarDecl v) {
    if (v.name.empty()) return;
    // One declaration per (name, lvalue): AMG declares each level in a
    // loop from one call site.
    for (const VarDecl& existing : vars_) {
      if (existing.name == v.name && existing.lvalue == v.lvalue) return;
    }
    vars_.push_back(std::move(v));
  }

  void collect_vars() {
    for (std::size_t i = 0; i < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      const std::string& t = tok(i).text;
      const bool member_call =
          i > 0 && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->"));
      if (t == "malloc" && valid(i + 1) && tok(i + 1).is_punct("(")) {
        collect_malloc(i, member_call);
      } else if (t == "define_static" && member_call && valid(i + 1) &&
                 tok(i + 1).is_punct("(")) {
        collect_define_static(i);
      } else if (t == "register_stack_variable" && valid(i + 1) &&
                 tok(i + 1).is_punct("(")) {
        collect_stack_registration(i);
      } else if (t == "new" && !member_call) {
        collect_new(i);
      }
    }
    collect_plain_arrays();
    // Index by trailing identifier for access resolution.
    by_last_.clear();
    by_lvalue_.clear();
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      by_last_[vars_[v].last].push_back(static_cast<int>(v));
      by_lvalue_[vars_[v].lvalue] = static_cast<int>(v);
    }
  }

  /// The '=' that assigns the statement's lvalue, or SIZE_MAX.
  std::size_t assignment_before(std::size_t i) const {
    const std::size_t s = stmt_start(i);
    std::size_t eq = SIZE_MAX;
    for (std::size_t k = s; k < i; ++k) {
      if (tok(k).is_punct("=")) eq = k;
    }
    return eq;
  }

  void collect_malloc(std::size_t i, bool member_call) {
    const auto args = split_args(i + 1);
    const std::size_t eq = assignment_before(i);
    BackChain lhs;
    if (eq != SIZE_MAX && eq > 0) lhs = read_chain_back(eq - 1);

    if (member_call && args.size() >= 2) {
      // DSL: target = t.malloc(size, name-expr[, policy]).
      const std::size_t pb = args.size() > 2 ? args[2].first : 0;
      const std::size_t pe = args.size() > 2 ? args[2].second : 0;
      // Table form: name expr is TABLE[...].FIELD with a string column.
      Chain name_chain;
      if (tok(args[1].first).kind == TokKind::kIdent) {
        name_chain = read_chain(args[1].first);
      }
      if (!name_chain.text.empty()) {
        if (auto tf = table_field_of(name_chain.first, name_chain.last)) {
          const TableInfo& table = tables_.at(tf->first);
          // The lhs should deref the same table's pointer column.
          std::string addr_field;
          if (lhs.ok && lhs.deref) {
            const std::size_t dot = lhs.text.rfind('.');
            if (dot != std::string::npos) addr_field = lhs.text.substr(dot + 1);
          }
          if (!addr_field.empty()) {
            declare_from_table(table, addr_field, pb, pe, args[0].first,
                               args[0].second);
            return;
          }
        }
      }
      auto name = first_string_in(args[1].first, args[1].second);
      VarDecl v;
      v.name = name.value_or(lhs.ok ? lhs.last : "");
      v.lvalue = lhs.ok ? lhs.text : "";
      v.last = lhs.ok ? lhs.last : v.name;
      v.line = tok(i).line;
      v.storage = VarDecl::kHeap;
      add_size_idents(args[0].first, args[0].second, v);
      v.policy = args.size() > 2 ? resolve_policy(pb, pe)
                                 : Policy{.first_touch = true};
      push_var(std::move(v));
      return;
    }
    // C-style: target = malloc(size).
    if (!member_call && lhs.ok && !args.empty()) {
      VarDecl v;
      v.name = lhs.last;
      v.lvalue = lhs.text;
      v.last = lhs.last;
      v.line = tok(i).line;
      v.storage = VarDecl::kHeap;
      v.policy.first_touch = true;
      add_size_idents(args[0].first, args[0].second, v);
      push_var(std::move(v));
    }
  }

  void collect_define_static(std::size_t i) {
    const auto args = split_args(i + 1);
    if (args.empty()) return;
    auto name = first_string_in(args[0].first, args[0].second);
    if (!name) return;
    const std::size_t eq = assignment_before(i);
    BackChain lhs;
    if (eq != SIZE_MAX && eq > 0) lhs = read_chain_back(eq - 1);
    VarDecl v;
    v.name = *name;
    v.lvalue = lhs.ok ? lhs.text : *name;
    v.last = lhs.ok ? lhs.last : *name;
    v.line = tok(i).line;
    v.storage = VarDecl::kStatic;
    if (args.size() > 1) add_size_idents(args[1].first, args[1].second, v);
    v.policy = args.size() > 2 ? resolve_policy(args[2].first, args[2].second)
                               : Policy{.first_touch = true};
    push_var(std::move(v));
  }

  void collect_stack_registration(std::size_t i) {
    const auto args = split_args(i + 1);
    if (args.size() < 3) return;
    auto name = first_string_in(args[0].first, args[0].second);
    if (!name) return;
    Chain addr = read_chain(args[2].first);
    VarDecl v;
    v.name = *name;
    v.lvalue = addr.text.empty() ? *name : addr.text;
    v.last = addr.last.empty() ? *name : addr.last;
    v.line = tok(i).line;
    v.storage = VarDecl::kStackReg;
    if (args.size() > 3) add_size_idents(args[3].first, args[3].second, v);
    v.policy.first_touch = true;
    push_var(std::move(v));
  }

  void collect_new(std::size_t i) {
    // target = new TYPE[extent];
    const std::size_t eq =
        i > 0 && tok(i - 1).is_punct("=") ? i - 1 : SIZE_MAX;
    if (eq == SIZE_MAX || eq == 0) return;
    BackChain lhs = read_chain_back(eq - 1);
    if (!lhs.ok) return;
    std::size_t p = i + 1;
    while (valid(p) && tok(p).kind == TokKind::kIdent) {
      Chain c = read_chain(p);
      p = c.end;
      break;
    }
    if (!valid(p) || !tok(p).is_punct("[")) return;
    VarDecl v;
    v.name = lhs.last;
    v.lvalue = lhs.text;
    v.last = lhs.last;
    v.line = tok(i).line;
    v.storage = VarDecl::kHeap;
    v.policy.first_touch = true;
    add_size_idents(p + 1, matching(p), v);
    push_var(std::move(v));
  }

  void collect_plain_arrays() {
    for (std::size_t i = 1; i + 1 < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent || !tok(i + 1).is_punct("[")) {
        continue;
      }
      if (in_struct_body(i)) continue;
      const Token& prev = tok(i - 1);
      const bool type_before =
          (prev.kind == TokKind::kIdent && !type_keywords().count(prev.text)) ||
          prev.is_punct("*") || prev.is_punct(">") || prev.is_punct("&");
      if (!type_before) continue;
      const std::size_t close = matching(i + 1);
      if (close >= n() || !valid(close + 1)) continue;
      const Token& after = tok(close + 1);
      if (!(after.is_punct(";") || after.is_punct("=") ||
            after.is_punct("["))) {
        continue;
      }
      // Reject parameter declarations: '(' between statement start and i.
      const std::size_t s = stmt_start(i);
      bool has_paren = false;
      bool is_static = false;
      std::uint32_t elem = 0;
      for (std::size_t k = s; k < i; ++k) {
        if (tok(k).is_punct("(")) has_paren = true;
        if (tok(k).is_ident("static")) is_static = true;
        if (tok(k).kind == TokKind::kIdent) {
          const std::uint32_t ps = primitive_size(tok(k).text);
          if (ps > 0 && elem == 0) elem = ps;
          auto sit = structs_.find(tok(k).text);
          if (sit != structs_.end() && elem == 0) {
            elem = sit->second.byte_size;
          }
        }
      }
      if (has_paren || i == s) continue;  // parameters / stray indexing
      VarDecl v;
      v.name = tok(i).text;
      v.lvalue = tok(i).text;
      v.last = tok(i).text;
      v.line = tok(i).line;
      v.storage = is_static || !in_function(i) ? VarDecl::kStatic
                                               : VarDecl::kStack;
      v.elem_size = elem == 0 ? 8 : elem;
      v.policy.first_touch = true;
      add_size_idents(i + 2, close, v);
      push_var(std::move(v));
    }
  }

  // -- accesses ---------------------------------------------------------

  std::vector<int> resolve_chain(const std::string& text,
                                 const std::string& last) const {
    auto lv = by_lvalue_.find(text);
    if (lv != by_lvalue_.end()) return {lv->second};
    auto it = by_last_.find(last);
    if (it != by_last_.end() && it->second.size() == 1) return it->second;
    return {};
  }

  /// Resolves a variable expression starting at token `b` (bounded by `e`)
  /// to candidate variables. Handles the deref-of-table-column idiom
  /// `*slot.addr` / `*slots[i].addr` with bool-column row filters.
  std::vector<int> resolve_expr(std::size_t b, std::size_t e,
                                const Guards& guards) const {
    while (b < e && tok(b).is_punct("(")) ++b;
    if (b >= e) return {};
    bool deref = false;
    if (tok(b).is_punct("*")) {
      deref = true;
      ++b;
    }
    if (b >= e || tok(b).kind != TokKind::kIdent) return {};
    Chain c = read_chain(b);
    if (deref) {
      if (auto tf = table_field_of(c.first, c.last)) {
        const TableInfo& table = tables_.at(tf->first);
        auto sit = structs_.find(table.struct_name);
        if (sit != structs_.end()) {
          const int col = sit->second.field_index(tf->second);
          if (col >= 0) {
            std::vector<int> out;
            for (const Row& row : table.rows) {
              if (static_cast<std::size_t>(col) >= row.cells.size()) continue;
              const Cell& cell = row.cells[static_cast<std::size_t>(col)];
              if (cell.kind != Cell::kLval) continue;
              if (!row_passes(table, tf->first, row, guards)) continue;
              auto lv = by_lvalue_.find(cell.text);
              if (lv != by_lvalue_.end()) out.push_back(lv->second);
            }
            return out;
          }
        }
      }
    }
    return resolve_chain(c.text, c.last);
  }

  bool row_passes(const TableInfo& table, const std::string& table_name,
                  const Row& row, const Guards& guards) const {
    for (const auto& [gtable, col, keep] : guards.row_filters) {
      if (gtable != table_name) continue;
      if (static_cast<std::size_t>(col) >= row.cells.size()) return false;
      const Cell& cell = row.cells[static_cast<std::size_t>(col)];
      if (cell.kind != Cell::kBool) return false;
      if (cell.bval != keep) return false;
    }
    (void)table;
    return true;
  }

  struct IndexShape {
    bool indirect = false;
    bool soa = false;
    bool per_thread = false;
  };

  /// Classifies an index expression against a variable's size idents.
  /// `depth` bounds lambda inlining.
  void classify_index(std::size_t b, std::size_t e, const VarDecl& var,
                      IndexShape& shape, int depth) const {
    for (std::size_t i = b; i < e && i < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      Chain c = read_chain(i);
      // Unknown call => indirect indexing (the RAP_diag_j-as-index class).
      const bool is_call = c.end < n() && tok(c.end).is_punct("(") &&
                           c.end < e;
      if (is_call) {
        auto lam = lambdas_.find(c.text);
        if (lam != lambdas_.end()) {
          if (depth > 0) {
            classify_index(lam->second.first, lam->second.second, var, shape,
                           depth - 1);
          }
        } else if (!known_linear_call(c.last)) {
          shape.indirect = true;
        }
      }
      if (thread_id_name(c.last)) shape.per_thread = true;
      // SoA stride: the index scales by an allocation-size identifier.
      if (var.size_idents.count(c.last)) {
        const bool mul_before = i > b && tok(i - 1).is_punct("*");
        const bool mul_after = c.end < e && tok(c.end).is_punct("*");
        if (mul_before || mul_after) shape.soa = true;
      }
      i = c.end > i ? c.end - 1 : i;
    }
  }

  void add_access(const std::vector<int>& vars, bool write, std::size_t at,
                  const Guards& guards, const IndexShape& shape) {
    const int region = region_of(at);
    for (int v : vars) {
      Access a;
      a.var = v;
      a.write = write;
      a.line = tok(at).line;
      a.region = region;
      a.region_parallel = region >= 0 && regions_[static_cast<std::size_t>(region)].parallel;
      a.thread_guarded = guards.thread_guarded;
      a.indirect = shape.indirect;
      a.soa = shape.soa;
      a.per_thread = shape.per_thread;
      accesses_.push_back(a);
    }
  }

  void collect_accesses() {
    for (std::size_t i = 0; i < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent) continue;
      const std::string& t = tok(i).text;
      const bool call = valid(i + 1) && tok(i + 1).is_punct("(");

      if ((t == "store_lines" || t == "load_lines") && call) {
        const auto args = split_args(i + 1);
        if (args.size() < 2) continue;
        const Guards g = guards_of(i);
        add_access(resolve_expr(args[1].first, args[1].second, g),
                   t == "store_lines", i, g, IndexShape{});
        continue;
      }
      const bool member_call =
          call && i > 0 && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->"));
      if ((t == "store" || t == "load") && member_call) {
        const auto args = split_args(i + 1);
        if (args.empty()) continue;
        const Guards g = guards_of(i);
        analyze_address_expr(args[0].first, args[0].second, t == "store", i,
                             g);
        continue;
      }
      // Generic element access: VAR [ index ] (...) possibly assigned.
      if (valid(i + 1) && tok(i + 1).is_punct("[") && !call) {
        const std::vector<int> vars = resolve_chain(t, t);
        if (vars.empty()) continue;
        // Only track plain-array vars here (DSL vars use load/store).
        const VarDecl& v = vars_[static_cast<std::size_t>(vars[0])];
        if (v.storage != VarDecl::kStack && v.storage != VarDecl::kStatic &&
            v.storage != VarDecl::kHeap) {
          continue;
        }
        if (i > 0 && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->") ||
                      tok(i - 1).is_punct("::"))) {
          continue;
        }
        // Skip the declaration itself.
        if (v.line == tok(i).line && v.lvalue == t) {
          const Token& prev = tok(i - 1);
          if (prev.kind == TokKind::kIdent || prev.is_punct("*") ||
              prev.is_punct(">") || prev.is_punct("&")) {
            continue;
          }
        }
        const std::size_t close = matching(i + 1);
        if (close >= n()) continue;
        IndexShape shape;
        classify_index(i + 2, close, v, shape, 1);
        // Postfix: [idx].field chain, then an assignment operator?
        std::size_t p = close + 1;
        while (valid(p) && (tok(p).is_punct(".") || tok(p).is_punct("->")) &&
               valid(p + 1) && tok(p + 1).kind == TokKind::kIdent) {
          p += 2;
        }
        bool write = false;
        if (valid(p) && tok(p).kind == TokKind::kPunct) {
          const std::string& op = tok(p).text;
          write = op == "=" || op == "+=" || op == "-=" || op == "*=" ||
                  op == "/=" || op == "|=" || op == "&=" || op == "^=" ||
                  op == "++" || op == "--";
        }
        if (i > 0 && (tok(i - 1).is_punct("++") || tok(i - 1).is_punct("--"))) {
          write = true;
        }
        const Guards g = guards_of(i);
        add_access(vars, write, i, g, shape);
      }
    }
  }

  /// t.load(EXPR) / t.store(EXPR): EXPR is elem_addr(base, idx), a local
  /// address-helper lambda call, or a bare chain (+ offset arithmetic).
  void analyze_address_expr(std::size_t b, std::size_t e, bool write,
                            std::size_t at, const Guards& g) {
    while (b < e && tok(b).is_punct("(")) ++b;
    if (b >= e) return;
    if (tok(b).kind == TokKind::kIdent) {
      Chain c = read_chain(b);
      if (c.end < e && tok(c.end).is_punct("(")) {
        if (c.last == "elem_addr" || c.last == "field_addr_of") {
          const auto inner = split_args(c.end);
          if (inner.empty()) return;
          const std::vector<int> vars =
              resolve_expr(inner[0].first, inner[0].second, g);
          for (int vi : vars) {
            IndexShape shape;
            for (std::size_t a = 1; a < inner.size(); ++a) {
              classify_index(inner[a].first, inner[a].second,
                             vars_[static_cast<std::size_t>(vi)], shape, 1);
            }
            add_access({vi}, write, at, g, shape);
          }
          return;
        }
        auto lam = lambdas_.find(c.text);
        if (lam != lambdas_.end()) {
          // Address-helper lambda: attribute to the base variables named
          // in its return expressions; classify over the whole body.
          const auto [lb, le] = lam->second;
          std::set<int> bases;
          for (std::size_t k = lb; k < le; ++k) {
            if (!tok(k).is_ident("return")) continue;
            std::size_t p = k + 1;
            while (p < le && tok(p).is_punct("(")) ++p;
            if (p < le && tok(p).kind == TokKind::kIdent) {
              Chain rc = read_chain(p);
              for (int vi : resolve_chain(rc.text, rc.last)) bases.insert(vi);
            }
          }
          for (int vi : bases) {
            IndexShape shape;
            classify_index(lb, le, vars_[static_cast<std::size_t>(vi)], shape,
                           1);
            // Also the call's own arguments.
            classify_index(b, e, vars_[static_cast<std::size_t>(vi)], shape,
                           0);
            add_access({vi}, write, at, g, shape);
          }
          return;
        }
      }
      // Bare chain + arithmetic: base resolves, rest classifies the index.
      const std::vector<int> vars = resolve_chain(c.text, c.last);
      if (!vars.empty()) {
        for (int vi : vars) {
          IndexShape shape;
          classify_index(c.end, e, vars_[static_cast<std::size_t>(vi)], shape,
                         1);
          add_access({vi}, write, at, g, shape);
        }
        return;
      }
    }
    // Leading '*' deref or unresolvable: try the table idiom.
    const std::vector<int> vars = resolve_expr(b, e, g);
    if (!vars.empty()) add_access(vars, write, at, g, IndexShape{});
  }

  // -- finding emission -------------------------------------------------

  void emit() {
    for (std::size_t vi = 0; vi < vars_.size(); ++vi) {
      const VarDecl& v = vars_[vi];
      std::vector<const Access*> serial_writes, par_acc, par_writes;
      std::set<std::string> par_regions;
      bool any_indirect = false, any_soa = false, any_per_thread_write = false;
      bool any_blocked_region = false, any_round_robin = false;
      for (const Access& a : accesses_) {
        if (a.var != static_cast<int>(vi)) continue;
        const bool serial_ctx = !a.region_parallel || a.thread_guarded;
        if (a.write && serial_ctx) serial_writes.push_back(&a);
        if (!serial_ctx) {
          par_acc.push_back(&a);
          if (a.write) par_writes.push_back(&a);
          if (a.indirect) any_indirect = true;
          if (a.soa) any_soa = true;
          if (a.write && a.per_thread) any_per_thread_write = true;
          if (a.region >= 0) {
            const RegionInfo& r = regions_[static_cast<std::size_t>(a.region)];
            par_regions.insert(r.name.empty() ? "<anonymous>" : r.name);
            if (r.blocked) any_blocked_region = true;
            if (r.round_robin) any_round_robin = true;
          }
        }
        if (a.soa) any_soa = true;
      }
      if (par_acc.empty()) continue;

      // Statically predicted dynamic pattern + the matching fix.
      PatternKind expected = PatternKind::kIrregular;
      Action suggested = Action::kBlockwiseFirstTouch;
      if (any_soa) {
        expected = PatternKind::kStaggeredOverlap;
        suggested = Action::kRegroupAos;
      } else if (any_indirect) {
        expected = PatternKind::kFullRange;
        suggested = Action::kInterleave;
      } else if (any_blocked_region) {
        expected = PatternKind::kBlocked;
        suggested = Action::kBlockwiseFirstTouch;
      } else if (any_round_robin) {
        expected = PatternKind::kFullRange;
        suggested = Action::kBlockwiseFirstTouch;
      }

      std::string regions_str;
      for (const std::string& r : par_regions) {
        if (!regions_str.empty()) regions_str += ", ";
        regions_str += "'" + r + "'";
      }

      // L1: serial initialization feeding parallel consumers.
      if (!serial_writes.empty() &&
          (v.storage == VarDecl::kHeap || v.storage == VarDecl::kStatic ||
           v.storage == VarDecl::kStackReg)) {
        const Access* first = *std::min_element(
            serial_writes.begin(), serial_writes.end(),
            [](const Access* a, const Access* b) { return a->line < b->line; });
        StaticFinding f;
        f.file = file_;
        f.line = first->line;
        f.decl_line = v.line;
        f.variable = v.name;
        f.kind = LintKind::kSerialFirstTouch;
        f.expected = expected;
        f.suggested = suggested;
        std::ostringstream msg;
        msg << "'" << v.name << "' is written by serial code ("
            << serial_writes.size() << " site" << (serial_writes.size() == 1 ? "" : "s")
            << ") but consumed by parallel region" << (par_regions.size() == 1 ? " " : "s ")
            << regions_str
            << "; first touch homes every page in the initializing thread's "
               "domain";
        f.message = msg.str();
        findings_.push_back(std::move(f));
      }

      // L3: a stack array escaping into parallel regions.
      if ((v.storage == VarDecl::kStack || v.storage == VarDecl::kStackReg)) {
        const Access* first = *std::min_element(
            par_acc.begin(), par_acc.end(),
            [](const Access* a, const Access* b) { return a->line < b->line; });
        StaticFinding f;
        f.file = file_;
        f.line = first->line;
        f.decl_line = v.line;
        f.variable = v.name;
        f.kind = LintKind::kStackEscape;
        f.expected = expected;
        f.suggested = suggested;
        std::ostringstream msg;
        msg << "stack array '" << v.name << "' escapes into parallel region"
            << (par_regions.size() == 1 ? " " : "s ") << regions_str
            << "; its pages live on one thread's stack and cannot be "
               "re-homed — promote it to static/heap data first";
        f.message = msg.str();
        findings_.push_back(std::move(f));
      }

      // L2: per-thread-written elements packed within one cache line.
      if (any_per_thread_write && v.elem_size > 0 && v.elem_size < 64) {
        const Access* first = nullptr;
        for (const Access* a : par_writes) {
          if (a->per_thread && (first == nullptr || a->line < first->line)) {
            first = a;
          }
        }
        if (first != nullptr) {
          StaticFinding f;
          f.file = file_;
          f.line = first->line;
          f.decl_line = v.line;
          f.variable = v.name;
          f.kind = LintKind::kFalseSharing;
          f.expected = PatternKind::kBlocked;
          f.suggested = Action::kPadAlign;
          std::ostringstream msg;
          msg << "'" << v.name << "' packs " << v.elem_size
              << "-byte per-thread-written elements within one 64-byte cache "
                 "line; pad or align each thread's element to a full line";
          f.message = msg.str();
          findings_.push_back(std::move(f));
        }
      }

      // L4: interleaving an array whose every parallel access is
      // block-local (the §8.1 POWER7 regression).
      if (v.policy.interleave && !any_indirect && !any_soa &&
          (any_blocked_region || !par_writes.empty())) {
        StaticFinding f;
        f.file = file_;
        f.line = v.line;
        f.decl_line = v.line;
        f.variable = v.name;
        f.kind = LintKind::kInterleaveMisuse;
        f.expected = PatternKind::kBlocked;
        f.suggested = Action::kBlockwiseFirstTouch;
        std::ostringstream msg;
        msg << "'" << v.name << "' may be allocated interleaved, but its "
               "parallel accesses are block-local; interleaving forfeits "
               "natural block locality — prefer a blockwise parallel first "
               "touch";
        f.message = msg.str();
        findings_.push_back(std::move(f));
      }
    }
    // Deduplicate identical findings.
    std::set<std::tuple<std::string, std::uint32_t, std::string, int>> seen;
    std::vector<StaticFinding> unique;
    for (StaticFinding& f : findings_) {
      auto key = std::make_tuple(f.file, f.line, f.variable,
                                 static_cast<int>(f.kind));
      if (seen.insert(key).second) unique.push_back(std::move(f));
    }
    findings_ = std::move(unique);
  }

  // -- state ------------------------------------------------------------

  std::string file_;
  std::vector<Token> toks_;
  std::vector<std::size_t> match_;
  std::vector<BraceInfo> braces_;
  std::map<std::string, StructInfo> structs_;
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, std::pair<std::size_t, std::size_t>> lambdas_;
  std::map<std::string, Policy> policies_;
  std::map<std::string, std::string> range_iters_;  // iter -> table
  std::vector<IfBlock> ifs_;
  std::vector<RegionInfo> regions_;
  std::vector<VarDecl> vars_;
  std::vector<Access> accesses_;
  std::map<std::string, std::vector<int>> by_last_;
  std::map<std::string, int> by_lvalue_;
  std::vector<StaticFinding> findings_;
  LintStats stats_;
};

}  // namespace

namespace {

void sort_findings(std::vector<StaticFinding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const StaticFinding& a, const StaticFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.variable != b.variable) return a.variable < b.variable;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

}  // namespace

FilePhase1 lint_file_phase1(std::string_view source, std::string file) {
  FilePhase1 out;
  FileAnalyzer analyzer(source, file);
  out.local = analyzer.run();
  out.summary = dataflow::summarize(ir::build_ir(source, std::move(file)));
  return out;
}

LintResult lint_source(std::string_view source, std::string file) {
  FilePhase1 p1 = lint_file_phase1(source, std::move(file));
  LintResult out = std::move(p1.local);
  std::vector<StaticFinding> inter =
      dataflow::propagate_and_check({std::move(p1.summary)});
  out.findings.insert(out.findings.end(),
                      std::make_move_iterator(inter.begin()),
                      std::make_move_iterator(inter.end()));
  sort_findings(out.findings);
  return out;
}

bool lintable_file(const std::string& path) {
  const std::filesystem::path p(path);
  const std::string ext = p.extension().string();
  return ext == ".c" || ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
         ext == ".h" || ext == ".hh" || ext == ".hpp";
}

LintResult lint_paths(const std::vector<std::string>& paths) {
  return lint_paths(paths, numaprof::PipelineOptions{});
}

LintResult lint_paths(const std::vector<std::string>& paths,
                      const numaprof::PipelineOptions& options) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(
               path, std::filesystem::directory_options::skip_permission_denied,
               ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable_file(it->path().string())) {
          files.push_back(it->path().string());
        }
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      throw LintError(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Phase 1: lint every file into its slot, then fold in path order — the
  // fold order (not completion order) defines the output, so any jobs
  // value yields the serial result. The incremental cache lives entirely
  // inside this phase: a hit restores the per-file artifact, a miss
  // computes and stores it; either way the folded inputs are identical.
  std::vector<FilePhase1> parts(files.size());
  const std::string& cache_dir = options.lint_cache_dir;
  const auto lint_one = [&files, &parts, &cache_dir](std::size_t i) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) return;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    // Report paths by filename to keep findings stable across checkouts.
    const std::string name =
        std::filesystem::path(files[i]).filename().string();
    if (!cache_dir.empty()) {
      const std::uint64_t key = phase1_cache_key(name, buffer.str());
      if (auto hit = load_phase1_cache(cache_dir, key)) {
        parts[i] = std::move(*hit);
        return;
      }
      parts[i] = lint_file_phase1(buffer.str(), name);
      store_phase1_cache(cache_dir, key, parts[i],
                         static_cast<unsigned>(i));
      return;
    }
    parts[i] = lint_file_phase1(buffer.str(), name);
  };
  const unsigned jobs =
      options.pool != nullptr ? options.pool->jobs() : options.jobs;
  if (jobs <= 1 || files.size() <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) lint_one(i);
  } else if (options.pool != nullptr) {
    options.pool->for_each_index(files.size(), lint_one);
  } else {
    support::ThreadPool pool(jobs);
    pool.for_each_index(files.size(), lint_one);
  }

  LintResult out;
  std::vector<dataflow::FileSummary> summaries;
  summaries.reserve(parts.size());
  for (FilePhase1& one : parts) {
    out.stats.files += one.local.stats.files;
    out.stats.lines += one.local.stats.lines;
    out.stats.tokens += one.local.stats.tokens;
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(one.local.findings.begin()),
                        std::make_move_iterator(one.local.findings.end()));
    summaries.push_back(std::move(one.summary));
  }
  // Phase 2: whole-program propagation is serial and deterministic, so
  // the interprocedural findings are byte-identical for every jobs value.
  std::vector<StaticFinding> inter =
      dataflow::propagate_and_check(std::move(summaries));
  out.findings.insert(out.findings.end(),
                      std::make_move_iterator(inter.begin()),
                      std::make_move_iterator(inter.end()));
  sort_findings(out.findings);
  return out;
}

std::string_view kind_code(LintKind kind) noexcept {
  switch (kind) {
    case LintKind::kSerialFirstTouch: return "L1";
    case LintKind::kFalseSharing: return "L2";
    case LintKind::kStackEscape: return "L3";
    case LintKind::kInterleaveMisuse: return "L4";
    case LintKind::kCrossSerialInit: return "L5";
    case LintKind::kScheduleMismatch: return "L6";
    case LintKind::kAliasHiddenInit: return "L7";
    case LintKind::kReadMostly: return "L8";
  }
  return "L?";
}

std::string render_findings(const std::vector<StaticFinding>& findings) {
  std::ostringstream os;
  for (const StaticFinding& f : findings) {
    os << f.file << ":" << f.line << " [" << kind_code(f.kind) << " "
       << to_string(f.kind) << "] " << f.variable << "\n"
       << "    expected " << to_string(f.expected) << ", suggest "
       << to_string(f.suggested) << " (declared at line " << f.decl_line
       << ")\n"
       << "    " << f.message << "\n";
  }
  if (findings.empty()) os << "no findings\n";
  return os.str();
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        os << c;
    }
  }
  os << '"';
}

}  // namespace

std::string render_findings_json(const std::vector<StaticFinding>& findings) {
  std::ostringstream os;
  for (const StaticFinding& f : findings) {
    os << "{\"file\":";
    append_json_string(os, f.file);
    os << ",\"line\":" << f.line << ",\"decl-line\":" << f.decl_line
       << ",\"variable\":";
    append_json_string(os, f.variable);
    os << ",\"code\":";
    append_json_string(os, kind_code(f.kind));
    os << ",\"kind\":";
    append_json_string(os, to_string(f.kind));
    os << ",\"expected\":";
    append_json_string(os, to_string(f.expected));
    os << ",\"suggested\":";
    append_json_string(os, to_string(f.suggested));
    os << ",\"message\":";
    append_json_string(os, f.message);
    os << "}\n";
  }
  return os.str();
}

}  // namespace numaprof::lint
