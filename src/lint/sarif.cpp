#include "lint/sarif.hpp"

#include <sstream>

#include "lint/numalint.hpp"

namespace numaprof::lint {

namespace {

using core::LintKind;

void esc(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) os << c;
    }
  }
  os << '"';
}

std::string_view rule_description(LintKind kind) noexcept {
  switch (kind) {
    case LintKind::kSerialFirstTouch:
      return "Array initialized by serial code but consumed inside a "
             "parallel region: first touch homes every page on the "
             "initializing thread's domain.";
    case LintKind::kFalseSharing:
      return "Per-thread-written elements packed within one cache line.";
    case LintKind::kStackEscape:
      return "Stack array escapes into a parallel region; its pages live "
             "on one thread's stack and cannot be re-homed.";
    case LintKind::kInterleaveMisuse:
      return "Interleaved allocation of an array whose parallel accesses "
             "are block-local forfeits natural block locality.";
    case LintKind::kCrossSerialInit:
      return "Serial first touch reached through a call chain or another "
             "translation unit feeds parallel consumers.";
    case LintKind::kScheduleMismatch:
      return "Parallel initialization and parallel consumption partition "
             "iterations differently, so the first-touch thread is not "
             "the consuming thread.";
    case LintKind::kAliasHiddenInit:
      return "First touch happens through a pointer alias or wrapper, "
             "invisible at the allocation site.";
    case LintKind::kReadMostly:
      return "Written once serially, then read across its whole extent by "
             "every thread: replication or interleaving candidate.";
  }
  return "";
}

}  // namespace

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

Severity severity_of(LintKind kind) noexcept {
  switch (kind) {
    case LintKind::kSerialFirstTouch:
    case LintKind::kCrossSerialInit:
    case LintKind::kAliasHiddenInit:
      return Severity::kError;
    case LintKind::kFalseSharing:
    case LintKind::kStackEscape:
    case LintKind::kInterleaveMisuse:
    case LintKind::kScheduleMismatch:
      return Severity::kWarning;
    case LintKind::kReadMostly:
      return Severity::kNote;
  }
  return Severity::kWarning;
}

std::string render_sarif(const std::vector<core::StaticFinding>& findings) {
  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"numalint\",\"informationUri\":"
        "\"https://example.invalid/numaprof/docs/lint.md\","
        "\"rules\":[";
  for (int k = 0; k < core::kLintKindCount; ++k) {
    const auto kind = static_cast<LintKind>(k);
    if (k > 0) os << ',';
    os << "{\"id\":";
    esc(os, kind_code(kind));
    os << ",\"name\":";
    esc(os, core::to_string(kind));
    os << ",\"shortDescription\":{\"text\":";
    esc(os, core::to_string(kind));
    os << "},\"fullDescription\":{\"text\":";
    esc(os, rule_description(kind));
    os << "},\"defaultConfiguration\":{\"level\":";
    esc(os, to_string(severity_of(kind)));
    os << "}}";
  }
  os << "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const core::StaticFinding& f = findings[i];
    if (i > 0) os << ',';
    os << "{\"ruleId\":";
    esc(os, kind_code(f.kind));
    os << ",\"ruleIndex\":" << static_cast<int>(f.kind) << ",\"level\":";
    esc(os, to_string(severity_of(f.kind)));
    os << ",\"message\":{\"text\":";
    esc(os, f.message);
    os << "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{"
          "\"uri\":";
    esc(os, f.file);
    os << "},\"region\":{\"startLine\":" << (f.line == 0 ? 1 : f.line)
       << "}}}],\"properties\":{\"variable\":";
    esc(os, f.variable);
    os << ",\"declLine\":" << f.decl_line << ",\"expected\":";
    esc(os, core::to_string(f.expected));
    os << ",\"suggested\":";
    esc(os, core::to_string(f.suggested));
    os << "}}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace numaprof::lint
