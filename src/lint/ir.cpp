#include "lint/ir.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "lint/lexer.hpp"

namespace numaprof::lint::ir {

std::string_view to_string(Schedule s) noexcept {
  switch (s) {
    case Schedule::kNone: return "none";
    case Schedule::kStaticBlock: return "static";
    case Schedule::kStaticChunk: return "static-chunk";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kRuntime: return "runtime";
  }
  return "?";
}

int Function::param_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Function::is_local_alloc(std::string_view name) const noexcept {
  for (const std::string& l : local_allocs) {
    if (l == name) return true;
  }
  return false;
}

std::pair<int, std::size_t> Function::order_of(int block,
                                               std::size_t pos) const {
  const int rpo =
      block >= 0 && static_cast<std::size_t>(block) < blocks.size()
          ? blocks[static_cast<std::size_t>(block)].rpo
          : 0;
  return {rpo, pos};
}

namespace {

bool thread_id_name(const std::string& s) {
  return s == "tid" || s == "index" || s == "thread_id" || s == "thread_num" ||
         s == "rank" || s == "me" || s == "worker";
}

bool known_linear_call(const std::string& s) {
  return s == "elem_addr" || s == "block_slice" || s == "min" || s == "max" ||
         s == "size" || s == "begin" || s == "end" || s == "data" ||
         s == "sizeof";
}

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "new",      "delete",   "throw",
      "alignof",  "decltype", "alignas",  "noexcept", "operator",
      "case",     "goto",     "do",       "else",     "co_return",
      "co_await", "static_assert"};
  return kw.count(s) > 0;
}

bool is_type_name(const std::string& s) {
  static const std::set<std::string> ty = {
      "void",     "bool",    "char",     "short",    "int",      "long",
      "unsigned", "signed",  "float",    "double",   "auto",     "size_t",
      "int8_t",   "int16_t", "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
      "uint32_t", "uint64_t", "ptrdiff_t", "intptr_t", "uintptr_t",
      "const",    "static",  "volatile", "constexpr", "extern",  "register",
      "mutable",  "inline",  "std",      "VAddr"};
  return ty.count(s) > 0;
}

/// Functions we never treat as user call sites: language keywords, libc
/// memory/IO helpers, the simulator DSL's structural forms, and OpenMP
/// runtime queries. Anything else named `f(...)` becomes a CallSite.
bool is_blocked_callee(const std::string& s) {
  static const std::set<std::string> blocked = {
      "malloc",        "free",          "calloc",        "realloc",
      "memset",        "memcpy",        "memmove",       "printf",
      "fprintf",       "snprintf",      "sprintf",       "puts",
      "exit",          "abort",         "assert",        "defined",
      "static_cast",   "dynamic_cast",  "reinterpret_cast", "const_cast",
      "parallel_region", "parallel_for", "block_slice",  "elem_addr",
      "store_lines",   "load_lines",    "to_string",     "move",
      "omp_get_thread_num", "omp_get_num_threads", "omp_get_max_threads",
      "omp_set_num_threads", "omp_get_wtime"};
  return is_keyword(s) || is_type_name(s) || known_linear_call(s) ||
         blocked.count(s) > 0;
}

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  const std::string& s = t.text;
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
         s == ">>=";
}

int to_int(const std::string& s) {
  return static_cast<int>(std::strtol(s.c_str(), nullptr, 0));
}

/// Parallel context at a token position, resolved from the innermost
/// enclosing region plus any thread-guard range.
struct Ctx {
  bool parallel = false;
  bool guarded = false;
  Schedule sched = Schedule::kNone;
  int chunk = 0;
  bool blocked = false;
  std::string loop_var;  // omp-for induction variable, if known
};

struct Region {
  std::size_t begin = 0, end = 0;  // body token range
  bool parallel = false;
  Schedule sched = Schedule::kNone;
  int chunk = 0;
  bool blocked = false;
  std::string loop_var;
};

class IrBuilder {
 public:
  IrBuilder(std::string_view source, std::string file) {
    ir_.file = std::move(file);
    LexResult lexed = lex(source);
    toks_ = std::move(lexed.tokens);
    build_matches();
  }

  FileIr build() {
    collect_regions();
    collect_guards();
    collect_globals();
    collect_functions();
    return std::move(ir_);
  }

 private:
  // -- token utilities --------------------------------------------------

  std::size_t n() const { return toks_.size(); }
  const Token& tok(std::size_t i) const { return toks_[i]; }
  bool valid(std::size_t i) const { return i < toks_.size(); }

  void build_matches() {
    match_.assign(n(), SIZE_MAX);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < n(); ++i) {
      if (tok(i).kind != TokKind::kPunct) continue;
      const std::string& t = tok(i).text;
      if (t == "(" || t == "{" || t == "[") {
        stack.push_back(i);
      } else if (t == ")" || t == "}" || t == "]") {
        const char open = t == ")" ? '(' : (t == "}" ? '{' : '[');
        while (!stack.empty() && tok(stack.back()).text[0] != open) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          match_[stack.back()] = i;
          match_[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  std::size_t matching(std::size_t i) const {
    return match_[i] == SIZE_MAX ? n() : match_[i];
  }

  struct Chain {
    std::string text;
    std::string first;
    std::size_t end = 0;
  };

  /// ident ('::'|'.'|'->' ident | '[...]' -> "[]")*
  Chain read_chain(std::size_t i) const {
    Chain c;
    if (!valid(i) || tok(i).kind != TokKind::kIdent) {
      c.end = i;
      return c;
    }
    c.first = tok(i).text;
    c.text = tok(i).text;
    std::size_t p = i + 1;
    while (valid(p)) {
      const std::string& t = tok(p).text;
      if (tok(p).kind == TokKind::kPunct &&
          (t == "." || t == "->" || t == "::") && valid(p + 1) &&
          tok(p + 1).kind == TokKind::kIdent) {
        c.text += (t == "::") ? "::" : ".";
        c.text += tok(p + 1).text;
        p += 2;
        continue;
      }
      if (tok(p).is_punct("[") && matching(p) < n()) {
        c.text += "[]";
        p = matching(p) + 1;
        continue;
      }
      break;
    }
    c.end = p;
    return c;
  }

  std::vector<std::pair<std::size_t, std::size_t>> split_args(
      std::size_t open) const {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    const std::size_t close = matching(open);
    if (close >= n()) return args;
    std::size_t start = open + 1;
    std::size_t depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const std::string& t = tok(i).text;
      if (tok(i).kind == TokKind::kPunct) {
        if (t == "(" || t == "[" || t == "{") ++depth;
        if (t == ")" || t == "]" || t == "}") --depth;
        if (t == "," && depth == 0) {
          args.emplace_back(start, i);
          start = i + 1;
        }
      }
    }
    if (start < close || close > open + 1) args.emplace_back(start, close);
    return args;
  }

  std::size_t stmt_start(std::size_t i) const {
    while (i > 0) {
      const Token& t = tok(i - 1);
      if (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) break;
      --i;
    }
    return i;
  }

  /// Base identifier of the chain ending at token `e`, or SIZE_MAX.
  std::size_t chain_base_before(std::size_t e) const {
    if (!valid(e)) return SIZE_MAX;
    std::size_t i = e;
    int guard = 0;
    while (guard++ < 64) {
      const Token& t = tok(i);
      if (t.is_punct("]") && match_[i] != SIZE_MAX && match_[i] < i) {
        i = match_[i];
        if (i == 0) return SIZE_MAX;
        --i;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        if (i == 0) return 0;
        const Token& prev = tok(i - 1);
        if (prev.is_punct(".") || prev.is_punct("->") || prev.is_punct("::")) {
          if (i < 2) return SIZE_MAX;
          i -= 2;
          continue;
        }
        return i;
      }
      return SIZE_MAX;
    }
    return SIZE_MAX;
  }

  /// The '=' that assigns the statement's lvalue before `i`, or SIZE_MAX.
  std::size_t assignment_before(std::size_t i) const {
    const std::size_t s = stmt_start(i);
    std::size_t eq = SIZE_MAX;
    for (std::size_t k = s; k < i; ++k) {
      if (tok(k).is_punct("=")) eq = k;
    }
    return eq;
  }

  /// Token range of the construct starting at `p`: a brace block or a
  /// single statement (used for pragma bodies and guard bodies).
  std::pair<std::size_t, std::size_t> construct_range(std::size_t p) const {
    if (!valid(p)) return {p, p};
    if (tok(p).is_punct("{") && matching(p) < n()) {
      return {p + 1, matching(p)};
    }
    std::size_t q = p;
    int guard = 0;
    while (valid(q) && !tok(q).is_punct(";") && guard++ < 4096) {
      if ((tok(q).is_punct("(") || tok(q).is_punct("{") ||
           tok(q).is_punct("[")) &&
          matching(q) < n()) {
        q = matching(q);
      }
      ++q;
    }
    return {p, q};
  }

  // -- regions ----------------------------------------------------------

  /// OpenMP pragmas, with `\` line continuations honored: a pragma's
  /// clauses extend onto the next line when the current one ends in a
  /// backslash (the satellite lexer fix keeps the token stream intact;
  /// this keeps the clause scan following it).
  void collect_omp_regions() {
    for (std::size_t i = 0; i + 2 < n(); ++i) {
      if (!tok(i).is_punct("#") || !tok(i + 1).is_ident("pragma") ||
          !tok(i + 2).is_ident("omp")) {
        continue;
      }
      std::uint32_t cur_line = tok(i).line;
      std::size_t p = i + 3;
      bool parallel = false, omp_for = false, serial = false, guard = false;
      Schedule sched = Schedule::kNone;
      int chunk = 0;
      while (valid(p)) {
        if (tok(p).line != cur_line) break;
        if (tok(p).is_punct("\\") && valid(p + 1) &&
            tok(p + 1).line == cur_line + 1) {
          ++cur_line;
          ++p;
          continue;
        }
        if (tok(p).kind == TokKind::kIdent) {
          const std::string& w = tok(p).text;
          if (w == "parallel") parallel = true;
          if (w == "for") omp_for = true;
          if (w == "single" || w == "master" || w == "critical") guard = true;
          if ((w == "num_threads" || w == "schedule") && valid(p + 1) &&
              tok(p + 1).is_punct("(") && matching(p + 1) < n()) {
            const auto args = split_args(p + 1);
            if (w == "num_threads" && !args.empty() &&
                args[0].second == args[0].first + 1 &&
                tok(args[0].first).text == "1") {
              serial = true;
            }
            if (w == "schedule" && !args.empty() &&
                tok(args[0].first).kind == TokKind::kIdent) {
              const std::string& k = tok(args[0].first).text;
              if (k == "static") {
                sched = Schedule::kStaticBlock;
              } else if (k == "dynamic" || k == "guided") {
                sched = Schedule::kDynamic;
              } else {
                sched = Schedule::kRuntime;  // runtime / auto
              }
              if (args.size() > 1 && args[1].first < args[1].second &&
                  tok(args[1].first).kind == TokKind::kNumber) {
                chunk = to_int(tok(args[1].first).text);
                if (k == "static" && chunk > 0) sched = Schedule::kStaticChunk;
              }
            }
            const std::size_t m = matching(p + 1);
            cur_line = tok(m).line;
            p = m + 1;
            continue;
          }
        }
        ++p;
      }
      if (!valid(p) || serial) continue;
      if (guard && !omp_for && !parallel) {
        // Orphaned single/master/critical: everything under it runs on
        // one thread — a guard range, not a region.
        const auto [gb, ge] = construct_range(p);
        if (gb < ge) guards_.emplace_back(gb, ge);
        continue;
      }
      if (guard) {
        const auto [gb, ge] = construct_range(p);
        if (gb < ge) guards_.emplace_back(gb, ge);
        continue;
      }
      if (!parallel && !omp_for) continue;
      Region r;
      r.parallel = true;
      if (omp_for) {
        r.blocked = true;
        if (sched == Schedule::kNone) sched = Schedule::kStaticBlock;
      }
      r.sched = sched;
      r.chunk = chunk;
      if (tok(p).is_punct("{") && matching(p) < n()) {
        r.begin = p + 1;
        r.end = matching(p);
      } else if (tok(p).is_ident("for") || tok(p).is_ident("while")) {
        if (tok(p).is_ident("for") && valid(p + 1) && tok(p + 1).is_punct("(")) {
          const std::size_t hclose = matching(p + 1);
          for (std::size_t k = p + 2; k + 1 < hclose && k + 1 < n(); ++k) {
            if (tok(k).is_punct(";")) break;
            if (tok(k).kind == TokKind::kIdent && tok(k + 1).is_punct("=")) {
              r.loop_var = tok(k).text;
              break;
            }
          }
        }
        const auto [rb, re] = construct_range(p);
        r.begin = rb;
        r.end = re;
      } else {
        continue;
      }
      if (r.end > n() || r.begin >= r.end) continue;
      regions_.push_back(std::move(r));
    }
  }

  /// Simulator DSL: parallel_region(machine, COUNT, "name", base, lambda)
  /// and parallel_for(..., sched, chunk, body).
  void collect_dsl_regions() {
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (!(tok(i).is_ident("parallel_region") ||
            tok(i).is_ident("parallel_for")) ||
          !tok(i + 1).is_punct("(")) {
        continue;
      }
      const auto args = split_args(i + 1);
      if (args.size() < 3) continue;
      Region r;
      const auto [cb, ce] = args[1];
      r.parallel = !(ce == cb + 1 && tok(cb).kind == TokKind::kNumber &&
                     tok(cb).text == "1");
      std::string count_last;
      for (std::size_t k = cb; k < ce; ++k) {
        if (tok(k).kind == TokKind::kIdent) count_last = tok(k).text;
      }
      // Explicit schedule idents in the non-body arguments.
      for (std::size_t a = 2; a + 1 < args.size(); ++a) {
        for (std::size_t k = args[a].first; k < args[a].second; ++k) {
          if (tok(k).kind != TokKind::kIdent) continue;
          const std::string& w = tok(k).text;
          if (w == "dynamic" || w == "kDynamic" || w == "guided") {
            r.sched = Schedule::kDynamic;
          } else if ((w == "static" || w == "kStatic" ||
                      w == "kStaticBlock") &&
                     r.sched == Schedule::kNone) {
            r.sched = Schedule::kStaticBlock;
          }
        }
      }
      // Body: first '{' inside the last argument.
      const auto [lb, le] = args.back();
      for (std::size_t k = lb; k < le; ++k) {
        if (tok(k).is_punct("{") && matching(k) < n()) {
          r.begin = k + 1;
          r.end = matching(k);
          break;
        }
      }
      if (r.begin == 0 || r.begin >= r.end) continue;
      bool round_robin = false;
      for (std::size_t k = r.begin; k < r.end; ++k) {
        if (tok(k).is_ident("block_slice") || tok(k).is_ident("schedule")) {
          r.blocked = true;
        }
        if (tok(k).is_punct("+=") && valid(k + 1)) {
          Chain c = read_chain(k + 1);
          std::string last = c.text;
          const std::size_t dot = last.rfind('.');
          if (dot != std::string::npos) last = last.substr(dot + 1);
          if (!last.empty() &&
              (last == count_last || last == "threads" || last == "nthreads" ||
               last == "num_threads")) {
            round_robin = true;
          }
        }
      }
      if (r.blocked && r.sched == Schedule::kNone) {
        r.sched = Schedule::kStaticBlock;
      } else if (round_robin && !r.blocked) {
        r.sched = Schedule::kStaticChunk;
        r.chunk = 1;
        r.blocked = true;
      }
      regions_.push_back(std::move(r));
    }
  }

  void collect_regions() {
    collect_dsl_regions();
    collect_omp_regions();
    std::sort(regions_.begin(), regions_.end(),
              [](const Region& a, const Region& b) { return a.begin < b.begin; });
  }

  void collect_guards() {
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (!tok(i).is_ident("if") || !tok(i + 1).is_punct("(")) continue;
      const std::size_t cond_close = matching(i + 1);
      if (cond_close >= n()) continue;
      bool guarded = false;
      for (std::size_t k = i + 2; k < cond_close; ++k) {
        if (tok(k).kind != TokKind::kIdent) continue;
        Chain c = read_chain(k);
        std::string last = c.text;
        const std::size_t dot = last.find_last_of(".:");
        if (dot != std::string::npos) last = last.substr(dot + 1);
        // tid == 0  |  0 == tid
        if (thread_id_name(last)) {
          if (valid(c.end + 1) && tok(c.end).is_punct("==") &&
              tok(c.end + 1).text == "0") {
            guarded = true;
          }
          if (k >= 2 && tok(k - 1).is_punct("==") && tok(k - 2).text == "0") {
            guarded = true;
          }
        }
        k = c.end > k ? c.end - 1 : k;
      }
      if (!guarded) continue;
      const auto [gb, ge] = construct_range(cond_close + 1);
      if (gb < ge) guards_.emplace_back(gb, ge);
    }
  }

  Ctx ctx_at(std::size_t pos) const {
    Ctx c;
    const Region* best = nullptr;
    std::size_t best_span = SIZE_MAX;
    for (const Region& r : regions_) {
      if (r.begin <= pos && pos < r.end && r.end - r.begin < best_span) {
        best = &r;
        best_span = r.end - r.begin;
      }
    }
    if (best != nullptr && best->parallel) {
      c.parallel = true;
      c.sched = best->sched;
      c.chunk = best->chunk;
      c.blocked = best->blocked;
      c.loop_var = best->loop_var;
    }
    for (const auto& [gb, ge] : guards_) {
      if (gb <= pos && pos < ge) c.guarded = true;
    }
    return c;
  }

  // -- globals ----------------------------------------------------------

  char brace_kind(std::size_t open) const {
    if (open > 0 && tok(open - 1).is_punct(")")) return 'c';
    if (open > 0 && (tok(open - 1).is_ident("else") ||
                     tok(open - 1).is_ident("do") ||
                     tok(open - 1).is_ident("try"))) {
      return 'c';
    }
    for (std::size_t k = stmt_start(open); k < open; ++k) {
      if (tok(k).is_ident("namespace")) return 'n';
      if (tok(k).is_ident("struct") || tok(k).is_ident("class") ||
          tok(k).is_ident("union") || tok(k).is_ident("enum")) {
        return 's';
      }
    }
    return 'i';
  }

  /// Skips a '#' directive line (with `\` continuations).
  std::size_t skip_directive(std::size_t i) const {
    std::uint32_t line = tok(i).line;
    ++i;
    while (valid(i)) {
      if (tok(i).line != line) {
        break;
      }
      if (tok(i).is_punct("\\") && valid(i + 1) &&
          tok(i + 1).line == line + 1) {
        ++line;
      }
      ++i;
    }
    return i;
  }

  void collect_globals() {
    std::size_t i = 0;
    int guard = 0;
    const int max_iter = static_cast<int>(n()) * 2 + 16;
    while (i < n() && guard++ < max_iter) {
      const Token& t = tok(i);
      if (t.is_punct("#")) {
        i = skip_directive(i);
        continue;
      }
      if (t.is_punct("{")) {
        if (brace_kind(i) == 'n') {
          ++i;  // descend into namespaces
        } else {
          i = matching(i) < n() ? matching(i) + 1 : i + 1;
        }
        continue;
      }
      if (t.is_punct("}") || t.is_punct(";")) {
        ++i;
        continue;
      }
      // One file-scope statement.
      const std::size_t s = i;
      bool has_paren = false, has_body = false;
      std::vector<std::size_t> flat;
      while (valid(i)) {
        const Token& u = tok(i);
        if (u.is_punct(";")) {
          ++i;
          break;
        }
        if (u.is_punct("#") || u.is_punct("}")) break;
        if (u.is_punct("(")) {
          has_paren = true;
          i = matching(i) < n() ? matching(i) + 1 : i + 1;
          continue;
        }
        if (u.is_punct("[")) {
          flat.push_back(i);
          i = matching(i) < n() ? matching(i) + 1 : i + 1;
          continue;
        }
        if (u.is_punct("{")) {
          if (brace_kind(i) == 'i') {
            i = matching(i) < n() ? matching(i) + 1 : i + 1;
            continue;
          }
          has_body = true;  // function / struct definition ends the stmt
          i = matching(i) < n() ? matching(i) + 1 : i + 1;
          if (valid(i) && tok(i).is_punct(";")) ++i;
          break;
        }
        flat.push_back(i);
        ++i;
      }
      if (has_paren || has_body || flat.empty()) continue;
      const Token& head = tok(flat.front());
      if (head.kind == TokKind::kIdent &&
          (head.is_ident("using") || head.is_ident("typedef") ||
           head.is_ident("template") || head.is_ident("namespace") ||
           head.is_ident("struct") || head.is_ident("class") ||
           head.is_ident("enum") || head.is_ident("friend"))) {
        continue;
      }
      // name = last ident before the initializer; require a second ident
      // or a '*' so lone expressions don't register.
      std::size_t idents = 0;
      bool star = false, is_extern = false;
      std::size_t name_at = SIZE_MAX;
      for (std::size_t k : flat) {
        if (tok(k).is_punct("=")) break;
        if (tok(k).is_punct("*") || tok(k).is_punct("&")) star = true;
        if (tok(k).kind == TokKind::kIdent) {
          ++idents;
          if (tok(k).is_ident("extern")) is_extern = true;
          if (!is_keyword(tok(k).text)) name_at = k;
        }
      }
      if (name_at == SIZE_MAX || (idents < 2 && !star)) continue;
      const std::string& name = tok(name_at).text;
      if (is_type_name(name)) continue;
      bool known = false;
      for (Global& g : ir_.globals) {
        if (g.name == name) {
          // The defining declaration wins over an extern one.
          if (g.is_extern && !is_extern) {
            g.line = tok(s).line;
            g.is_extern = false;
          }
          known = true;
        }
      }
      if (!known) {
        ir_.globals.push_back(Global{name, tok(s).line, is_extern});
        global_names_.insert(name);
      }
    }
  }

  // -- functions --------------------------------------------------------

  void collect_functions() {
    for (std::size_t i = 0; i + 1 < n(); ++i) {
      if (tok(i).kind != TokKind::kIdent || !tok(i + 1).is_punct("(")) {
        continue;
      }
      if (i > 0 &&
          (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->"))) {
        continue;
      }
      if (is_keyword(tok(i).text) || is_type_name(tok(i).text)) continue;
      const std::size_t close = matching(i + 1);
      if (close >= n()) continue;
      // Find the body '{' past cv-qualifiers, noexcept, trailing return
      // types, and constructor init lists.
      std::size_t p = close + 1;
      bool found = false, after_colon = false;
      int guard = 0;
      while (valid(p) && guard++ < 96) {
        const Token& t = tok(p);
        if (t.is_punct(";") || t.is_punct("}") || t.is_punct("=")) break;
        if (t.is_punct("(") || t.is_punct("[")) {
          const std::size_t m = matching(p);
          if (m >= n()) break;
          p = m + 1;
          continue;
        }
        if (t.is_punct(":")) {
          after_colon = true;
          ++p;
          continue;
        }
        if (t.is_punct("{")) {
          // In an init list, `member{init}` braces follow an identifier;
          // the body brace follows ')' or '}'.
          if (after_colon && p > 0 && tok(p - 1).kind == TokKind::kIdent) {
            const std::size_t m = matching(p);
            if (m >= n()) break;
            p = m + 1;
            continue;
          }
          found = true;
          break;
        }
        if (t.kind == TokKind::kIdent || t.is_punct("->") ||
            t.is_punct("::") || t.is_punct("<") || t.is_punct(">") ||
            t.is_punct("&") || t.is_punct("&&") || t.is_punct("*") ||
            (after_colon && t.is_punct(","))) {
          ++p;
          continue;
        }
        break;
      }
      if (!found) continue;
      const std::size_t body_open = p;
      const std::size_t body_close = matching(body_open);
      if (body_close >= n()) continue;

      Function fn;
      fn.name = tok(i).text;
      fn.file = ir_.file;
      fn.line = tok(i).line;
      parse_params(fn, i + 1);
      intervals_.clear();
      fn.blocks.push_back(BasicBlock{});  // entry
      const int exit_block =
          cfg_seq(fn, body_open + 1, body_close, 0, 0);
      (void)exit_block;
      compute_rpo(fn);
      analyze_body(fn, body_open + 1, body_close);
      ir_.functions.push_back(std::move(fn));
    }
  }

  void parse_params(Function& fn, std::size_t open) {
    for (const auto& [b, e] : split_args(open)) {
      if (b >= e) continue;
      if (e == b + 1 && tok(b).is_ident("void")) continue;
      Param prm;
      std::size_t limit = e;
      for (std::size_t k = b; k < e; ++k) {
        if (tok(k).is_punct("=")) {
          limit = k;
          break;
        }
      }
      std::size_t name_at = SIZE_MAX;
      for (std::size_t k = b; k < limit && k < n(); ++k) {
        if (tok(k).kind == TokKind::kIdent && !is_keyword(tok(k).text)) {
          name_at = k;
        }
        if (tok(k).is_punct("*") || tok(k).is_punct("&") ||
            tok(k).is_punct("&&") || tok(k).is_punct("[") ||
            tok(k).is_ident("VAddr")) {
          prm.pointer_like = true;
        }
      }
      if (name_at != SIZE_MAX) {
        const std::size_t nx = name_at + 1;
        if (nx >= limit || tok(nx).is_punct("[")) {
          if (!is_type_name(tok(name_at).text)) prm.name = tok(name_at).text;
        }
      }
      fn.params.push_back(std::move(prm));
    }
  }

  // -- CFG --------------------------------------------------------------

  struct Interval {
    std::size_t b = 0, e = 0;
    int block = 0;
  };

  int cfg_new_block(Function& fn) {
    fn.blocks.push_back(BasicBlock{});
    return static_cast<int>(fn.blocks.size()) - 1;
  }

  void cfg_edge(Function& fn, int a, int b) {
    if (a >= 0 && static_cast<std::size_t>(a) < fn.blocks.size()) {
      fn.blocks[static_cast<std::size_t>(a)].succ.push_back(b);
    }
  }

  void add_interval(std::size_t b, std::size_t e, int block) {
    if (b < e) intervals_.push_back(Interval{b, e, block});
  }

  /// One past the end of the statement starting at `p` (structured:
  /// follows if/else, loop bodies, and brace blocks).
  std::size_t stmt_end(std::size_t p, std::size_t limit, int depth) const {
    if (!valid(p) || p >= limit) return limit;
    if (depth > 48) {  // fuzz safety: flatten pathological nesting
      return std::min(limit, p + 1);
    }
    if (tok(p).is_punct("{")) {
      const std::size_t m = matching(p);
      return m < limit ? m + 1 : limit;
    }
    if (tok(p).is_ident("if") || tok(p).is_ident("for") ||
        tok(p).is_ident("while") || tok(p).is_ident("switch")) {
      std::size_t q = p + 1;
      if (valid(q) && tok(q).is_punct("(")) {
        const std::size_t m = matching(q);
        if (m >= limit) return limit;
        q = m + 1;
      }
      q = stmt_end(q, limit, depth + 1);
      if (tok(p).is_ident("if") && q < limit && tok(q).is_ident("else")) {
        q = stmt_end(q + 1, limit, depth + 1);
      }
      return q;
    }
    if (tok(p).is_ident("do")) {
      std::size_t q = stmt_end(p + 1, limit, depth + 1);
      if (q < limit && tok(q).is_ident("while") && valid(q + 1) &&
          tok(q + 1).is_punct("(")) {
        const std::size_t m = matching(q + 1);
        q = m < limit ? m + 1 : limit;
        if (q < limit && tok(q).is_punct(";")) ++q;
      }
      return q;
    }
    std::size_t i = p;
    while (i < limit) {
      if (tok(i).is_punct(";")) return i + 1;
      if (tok(i).is_punct("}")) return i;
      if (tok(i).is_punct("(") || tok(i).is_punct("[") ||
          tok(i).is_punct("{")) {
        const std::size_t m = matching(i);
        if (m < limit) {
          i = m + 1;
          continue;
        }
        return limit;
      }
      ++i;
    }
    return limit;
  }

  /// Lowers [b, e) into blocks starting from `cur`; returns the block
  /// control falls out of.
  int cfg_seq(Function& fn, std::size_t b, std::size_t e, int cur,
              int depth) {
    std::size_t i = b;
    int guard = 0;
    const int max_iter = static_cast<int>(e - b) + 16;
    while (i < e && i < n() && guard++ < max_iter) {
      if (depth < 48 && tok(i).is_ident("if") && valid(i + 1) &&
          tok(i + 1).is_punct("(") && matching(i + 1) < e) {
        const std::size_t cclose = matching(i + 1);
        add_interval(i, cclose + 1, cur);
        const std::size_t tb = cclose + 1;
        const std::size_t te = stmt_end(tb, e, 0);
        const int then_entry = cfg_new_block(fn);
        cfg_edge(fn, cur, then_entry);
        const int then_exit = cfg_seq(fn, tb, te, then_entry, depth + 1);
        std::size_t after = te;
        const int join = cfg_new_block(fn);
        if (after < e && tok(after).is_ident("else")) {
          const std::size_t eb = after + 1;
          const std::size_t ee = stmt_end(eb, e, 0);
          const int else_entry = cfg_new_block(fn);
          cfg_edge(fn, cur, else_entry);
          const int else_exit = cfg_seq(fn, eb, ee, else_entry, depth + 1);
          cfg_edge(fn, else_exit, join);
          after = ee;
        } else {
          cfg_edge(fn, cur, join);
        }
        cfg_edge(fn, then_exit, join);
        cur = join;
        i = std::max(after, i + 1);
        continue;
      }
      if (depth < 48 &&
          (tok(i).is_ident("for") || tok(i).is_ident("while")) &&
          valid(i + 1) && tok(i + 1).is_punct("(") && matching(i + 1) < e) {
        const std::size_t cclose = matching(i + 1);
        const int header = cfg_new_block(fn);
        cfg_edge(fn, cur, header);
        add_interval(i, cclose + 1, header);
        const std::size_t bb = cclose + 1;
        const std::size_t be = stmt_end(bb, e, 0);
        const int body_entry = cfg_new_block(fn);
        cfg_edge(fn, header, body_entry);
        const int body_exit = cfg_seq(fn, bb, be, body_entry, depth + 1);
        cfg_edge(fn, body_exit, header);
        const int exit = cfg_new_block(fn);
        cfg_edge(fn, header, exit);
        cur = exit;
        i = std::max(be, i + 1);
        continue;
      }
      if (tok(i).is_punct("{") && matching(i) < e) {
        cur = cfg_seq(fn, i + 1, matching(i), cur, depth + 1);
        i = matching(i) + 1;
        continue;
      }
      std::size_t se = stmt_end(i, e, 0);
      if (se <= i) se = i + 1;
      add_interval(i, se, cur);
      i = se;
    }
    return cur;
  }

  void compute_rpo(Function& fn) {
    const int nb = static_cast<int>(fn.blocks.size());
    std::vector<int> state(static_cast<std::size_t>(nb), 0);
    std::vector<int> post;
    post.reserve(static_cast<std::size_t>(nb));
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const auto& succ = fn.blocks[static_cast<std::size_t>(v)].succ;
      if (idx < succ.size()) {
        const int w = succ[idx++];
        if (w >= 0 && w < nb && state[static_cast<std::size_t>(w)] == 0) {
          state[static_cast<std::size_t>(w)] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
    int rank = 0;
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      fn.blocks[static_cast<std::size_t>(*it)].rpo = rank++;
    }
    for (int v = 0; v < nb; ++v) {
      if (state[static_cast<std::size_t>(v)] == 0) {
        fn.blocks[static_cast<std::size_t>(v)].rpo = rank++;
      }
    }
  }

  int block_at(std::size_t pos) const {
    int best = 0;
    std::size_t best_span = SIZE_MAX;
    for (const Interval& iv : intervals_) {
      if (iv.b <= pos && pos < iv.e && iv.e - iv.b < best_span) {
        best = iv.block;
        best_span = iv.e - iv.b;
      }
    }
    return best;
  }

  // -- body analysis ----------------------------------------------------

  std::string resolve(const Function& fn, std::string name) const {
    for (int hops = 0; hops < 8; ++hops) {
      auto it = fn.aliases.find(name);
      if (it == fn.aliases.end() || it->second == name) break;
      name = it->second;
    }
    if (fn.param_index(name) >= 0) return name;
    if (fn.is_local_alloc(name)) return name;
    if (global_names_.count(name) > 0) return name;
    return "";
  }

  void push_touch(Function& fn, std::string symbol, TouchKind kind,
                  std::size_t pos, bool full_range, bool via_alias,
                  std::string alias) {
    const Ctx c = ctx_at(pos);
    Touch t;
    t.symbol = std::move(symbol);
    t.kind = kind;
    t.line = tok(pos).line;
    t.parallel = c.parallel;
    t.thread_guarded = c.guarded;
    t.sched = c.sched;
    t.chunk = c.chunk;
    t.blocked = c.blocked;
    t.full_range = full_range;
    t.via_alias = via_alias;
    t.alias = std::move(alias);
    t.block = block_at(pos);
    t.pos = pos;
    fn.touches.push_back(std::move(t));
  }

  /// Does the index expression at `open` ('[') span the whole extent for
  /// every thread? True for indirect (gather) indices and for indices
  /// that ignore the partitioned loop variable.
  bool index_full_range(const Ctx& c, std::size_t open) const {
    if (!c.parallel) return false;
    bool has_tid = false, has_loopvar = false, indirect = false;
    const std::size_t close = matching(open);
    std::size_t depth = 0;
    for (std::size_t k = open + 1; k < close && k < n(); ++k) {
      if (tok(k).is_punct("[")) ++depth;
      if (tok(k).is_punct("]") && depth > 0) --depth;
      if (tok(k).kind == TokKind::kIdent) {
        if (thread_id_name(tok(k).text)) has_tid = true;
        if (!c.loop_var.empty() && tok(k).text == c.loop_var) {
          // The partitioned loop var inside a NESTED subscript means the
          // outer index is loaded from another array: data-dependent.
          if (depth == 0) {
            has_loopvar = true;
          } else {
            indirect = true;
          }
        }
        if (valid(k + 1) && tok(k + 1).is_punct("(") &&
            !known_linear_call(tok(k).text)) {
          indirect = true;
        }
      }
    }
    if (has_tid) return false;
    if (indirect) return true;
    if (!c.loop_var.empty()) return !has_loopvar;
    return !c.blocked;
  }

  /// Do any of the argument ranges reference a thread id?
  bool args_reference_tid(
      const std::vector<std::pair<std::size_t, std::size_t>>& args,
      std::size_t from) const {
    for (std::size_t a = from; a < args.size(); ++a) {
      for (std::size_t k = args[a].first; k < args[a].second && k < n(); ++k) {
        if (tok(k).kind == TokKind::kIdent && thread_id_name(tok(k).text)) {
          return true;
        }
      }
    }
    return false;
  }

  /// First identifier in [b, e) that resolves to a tracked symbol.
  struct Resolved {
    std::string root;
    std::string name;
  };
  Resolved first_resolvable(const Function& fn, std::size_t b,
                            std::size_t e) const {
    for (std::size_t k = b; k < e && k < n(); ++k) {
      if (tok(k).kind != TokKind::kIdent) continue;
      std::string root = resolve(fn, tok(k).text);
      if (!root.empty()) return {std::move(root), tok(k).text};
    }
    return {};
  }

  void handle_alloc(Function& fn, std::size_t i) {
    const std::size_t eq = assignment_before(i);
    if (eq == SIZE_MAX || eq == 0) return;
    const std::size_t base_at = chain_base_before(eq - 1);
    if (base_at == SIZE_MAX) return;
    const std::string& base = tok(base_at).text;
    std::string root = resolve(fn, base);
    if (root.empty()) {
      if (is_keyword(base) || is_type_name(base)) return;
      fn.local_allocs.push_back(base);
      root = base;
    }
    push_touch(fn, root, TouchKind::kAlloc, i, false, root != base, base);
  }

  void maybe_alias_decl(Function& fn, std::size_t i) {
    if (!valid(i + 1) || !tok(i + 1).is_punct("=")) return;
    const std::size_t s = stmt_start(i);
    bool marker = false;
    for (std::size_t k = s; k < i; ++k) {
      if (tok(k).is_punct("*") || tok(k).is_punct("&") ||
          tok(k).is_ident("auto")) {
        marker = true;
      }
      if (tok(k).is_punct("=") || tok(k).is_punct("(")) return;
    }
    if (!marker) return;
    std::size_t k = i + 2;
    if (valid(k) && tok(k).is_punct("&")) ++k;
    if (!valid(k) || tok(k).kind != TokKind::kIdent) return;
    const std::string root = resolve(fn, tok(k).text);
    if (root.empty()) return;
    // The remainder of the initializer must stay linear — a call hands
    // the pointer to code we can't see from here.
    Chain c = read_chain(k);
    std::size_t q = c.end;
    int guard = 0;
    while (valid(q) && !tok(q).is_punct(";") && guard++ < 40) {
      if (tok(q).is_punct("(")) {
        if (!(q > 0 && tok(q - 1).kind == TokKind::kIdent &&
              known_linear_call(tok(q - 1).text))) {
          return;
        }
        const std::size_t m = matching(q);
        if (m >= n()) return;
        q = m + 1;
        continue;
      }
      ++q;
    }
    fn.aliases[tok(i).text] = root;
  }

  void handle_symbol(Function& fn, std::size_t i, std::size_t body_begin) {
    const std::string& name = tok(i).text;
    if (is_keyword(name) || is_type_name(name)) return;
    // Local plain-array declaration: `double scratch[64];` — a stack
    // allocation root whose first touch is still interesting.
    if (valid(i + 1) && tok(i + 1).is_punct("[") && i > body_begin &&
        tok(i - 1).kind == TokKind::kIdent &&
        !is_keyword(tok(i - 1).text) && resolve(fn, name).empty()) {
      bool decl = true;
      for (std::size_t k = stmt_start(i); k < i; ++k) {
        if (tok(k).is_punct("=") || tok(k).is_punct("(")) decl = false;
      }
      if (decl) {
        fn.local_allocs.push_back(name);
        push_touch(fn, name, TouchKind::kAlloc, i, false, false, "");
        return;
      }
    }
    const std::string root = resolve(fn, name);
    if (root.empty()) {
      maybe_alias_decl(fn, i);
      return;
    }
    Chain c = read_chain(i);
    const bool deref =
        i > 0 && tok(i - 1).is_punct("*") &&
        (i - 1 == 0 || tok(i - 2).is_punct(";") || tok(i - 2).is_punct("{") ||
         tok(i - 2).is_punct("}"));
    const bool indexed = c.text.find("[]") != std::string::npos;
    const bool membered = c.text.find('.') != std::string::npos;
    if (!deref && !indexed && !membered) return;
    bool write = false;
    if (valid(c.end)) {
      const Token& a = tok(c.end);
      write = is_assign_op(a) || a.is_punct("++") || a.is_punct("--");
    }
    if (i > 0 && (tok(i - 1).is_punct("++") || tok(i - 1).is_punct("--"))) {
      write = true;
    }
    bool full = false;
    if (indexed) {
      for (std::size_t k = i + 1; k < c.end && k < n(); ++k) {
        if (tok(k).is_punct("[")) {
          full = index_full_range(ctx_at(i), k);
          break;
        }
      }
    }
    push_touch(fn, root, write ? TouchKind::kWrite : TouchKind::kRead, i,
               full, root != name, root != name ? name : "");
  }

  void handle_call(Function& fn, std::size_t i) {
    CallSite cs;
    cs.callee = tok(i).text;
    cs.line = tok(i).line;
    const Ctx c = ctx_at(i);
    cs.parallel = c.parallel;
    cs.thread_guarded = c.guarded;
    cs.sched = c.sched;
    cs.chunk = c.chunk;
    cs.blocked = c.blocked;
    cs.block = block_at(i);
    cs.pos = i;
    for (const auto& [ab, ae] : split_args(i + 1)) {
      std::string sym;
      std::size_t k = ab;
      if (k < ae && tok(k).is_punct("&")) ++k;
      if (k < ae && tok(k).kind == TokKind::kIdent) {
        sym = resolve(fn, tok(k).text);
      }
      cs.args.push_back(std::move(sym));
    }
    fn.calls.push_back(std::move(cs));
  }

  void analyze_body(Function& fn, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e && i < n(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokKind::kIdent) continue;
      const bool member =
          i > 0 && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->"));
      const std::string& s = t.text;
      const bool call_shaped = valid(i + 1) && tok(i + 1).is_punct("(");
      if (s == "malloc" && call_shaped) {
        handle_alloc(fn, i);
        continue;
      }
      if (s == "new" && !member) {
        handle_alloc(fn, i);
        continue;
      }
      if ((s == "memset" || s == "memcpy") && !member && call_shaped) {
        const auto args = split_args(i + 1);
        if (!args.empty()) {
          Resolved dst = first_resolvable(fn, args[0].first, args[0].second);
          if (!dst.root.empty()) {
            push_touch(fn, dst.root, TouchKind::kWrite, i, ctx_at(i).parallel,
                       dst.root != dst.name, dst.root != dst.name ? dst.name
                                                                  : "");
          }
          if (s == "memcpy" && args.size() > 1) {
            Resolved src = first_resolvable(fn, args[1].first, args[1].second);
            if (!src.root.empty()) {
              push_touch(fn, src.root, TouchKind::kRead, i, ctx_at(i).parallel,
                         src.root != src.name,
                         src.root != src.name ? src.name : "");
            }
          }
        }
        continue;
      }
      if ((s == "store_lines" || s == "load_lines") && !member &&
          call_shaped) {
        const auto args = split_args(i + 1);
        if (args.size() >= 2) {
          Resolved addr = first_resolvable(fn, args[1].first, args[1].second);
          if (!addr.root.empty()) {
            const Ctx c = ctx_at(i);
            const bool full =
                c.parallel && !c.blocked && !args_reference_tid(args, 2);
            push_touch(fn, addr.root,
                       s == "store_lines" ? TouchKind::kWrite
                                          : TouchKind::kRead,
                       i, full, addr.root != addr.name,
                       addr.root != addr.name ? addr.name : "");
          }
        }
        continue;
      }
      if ((s == "store" || s == "load") && member && call_shaped) {
        const auto args = split_args(i + 1);
        if (!args.empty()) {
          Resolved addr = first_resolvable(fn, args[0].first, args[0].second);
          if (!addr.root.empty()) {
            push_touch(fn, addr.root,
                       s == "store" ? TouchKind::kWrite : TouchKind::kRead, i,
                       false, addr.root != addr.name,
                       addr.root != addr.name ? addr.name : "");
          }
        }
        continue;
      }
      if (!member && call_shaped && !is_blocked_callee(s) &&
          matching(i + 1) < n()) {
        handle_call(fn, i);
        continue;
      }
      if (!member) handle_symbol(fn, i, b);
    }
  }

  std::vector<Token> toks_;
  std::vector<std::size_t> match_;
  std::vector<Region> regions_;
  std::vector<std::pair<std::size_t, std::size_t>> guards_;
  std::vector<Interval> intervals_;
  std::set<std::string> global_names_;
  FileIr ir_;
};

}  // namespace

FileIr build_ir(std::string_view source, std::string file) {
  return IrBuilder(source, std::move(file)).build();
}

}  // namespace numaprof::lint::ir
