#include "lint/dataflow.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace numaprof::lint::dataflow {

namespace {

using core::Action;
using core::LintKind;
using core::PatternKind;
using core::StaticFinding;

constexpr std::size_t kMaxChain = 6;  // provenance depth cap (breaks cycles)
constexpr int kMaxRounds = 8;

Effect::Target classify_target(const FunctionSummary& fn,
                               const std::set<std::string>& globals,
                               const std::string& symbol, int* param_out) {
  for (std::size_t i = 0; i < fn.param_names.size(); ++i) {
    if (!fn.param_names[i].empty() && fn.param_names[i] == symbol) {
      *param_out = static_cast<int>(i);
      return Effect::Target::kParam;
    }
  }
  *param_out = -1;
  for (const std::string& l : fn.local_allocs) {
    if (l == symbol) return Effect::Target::kLocal;
  }
  (void)globals;
  return Effect::Target::kGlobal;
}

/// Dedup key for an effect within one function; chain and order are
/// deliberately excluded so the shortest provenance (found in the
/// earliest fixpoint round) wins and re-derivations are dropped.
std::string effect_key(const Effect& e) {
  std::ostringstream os;
  os << static_cast<int>(e.target) << '|' << e.param << '|' << e.symbol << '|'
     << static_cast<int>(e.kind) << '|' << e.parallel << e.guarded
     << e.full_range << e.via_alias << e.blocked << '|'
     << static_cast<int>(e.sched) << '|' << e.chunk << '|' << e.file << ':'
     << e.line;
  return os.str();
}

bool partitioned(ir::Schedule s) {
  return s == ir::Schedule::kStaticBlock || s == ir::Schedule::kStaticChunk ||
         s == ir::Schedule::kDynamic;
}

bool schedules_mismatch(const Effect& a, const Effect& b) {
  if (!partitioned(a.sched) || !partitioned(b.sched)) return false;
  if (a.sched != b.sched) return true;
  return a.sched == ir::Schedule::kStaticChunk && a.chunk != b.chunk;
}

/// A symbol's aggregated evidence: every effect anywhere in the program
/// that lands on it, with the function owning each.
struct Site {
  const FunctionSummary* fn = nullptr;
  const Effect* e = nullptr;
};

std::string render_chain(const FunctionSummary& owner, const Effect& e) {
  if (e.chain.empty()) return {};
  std::string out = " via " + owner.name;
  for (const Hop& h : e.chain) {
    out += " -> " + h.callee;
  }
  return out;
}

std::string site_str(const Effect& e) {
  return e.file + ":" + std::to_string(e.line) + " (" + e.touch_fn + ")";
}

std::string sched_str(const Effect& e) {
  std::string s(ir::to_string(e.sched));
  if (e.sched == ir::Schedule::kStaticChunk && e.chunk > 0) {
    s += "," + std::to_string(e.chunk);
  }
  return s;
}

}  // namespace

FileSummary summarize(const ir::FileIr& ir) {
  FileSummary out;
  out.file = ir.file;
  out.globals = ir.globals;
  std::set<std::string> global_names;
  for (const ir::Global& g : ir.globals) global_names.insert(g.name);
  for (const ir::Function& fn : ir.functions) {
    FunctionSummary fs;
    fs.name = fn.name;
    fs.file = fn.file;
    fs.line = fn.line;
    for (const ir::Param& p : fn.params) fs.param_names.push_back(p.name);
    fs.local_allocs = fn.local_allocs;
    for (const ir::CallSite& c : fn.calls) {
      Call call;
      call.callee = c.callee;
      call.line = c.line;
      call.args = c.args;
      call.parallel = c.parallel;
      call.guarded = c.thread_guarded;
      call.sched = c.sched;
      call.chunk = c.chunk;
      call.blocked = c.blocked;
      call.order = fn.order_of(c.block, c.pos);
      fs.calls.push_back(std::move(call));
    }
    for (const ir::Touch& t : fn.touches) {
      Effect e;
      e.symbol = t.symbol;
      e.target = classify_target(fs, global_names, t.symbol, &e.param);
      e.kind = t.kind;
      e.parallel = t.parallel;
      e.guarded = t.thread_guarded;
      e.full_range = t.full_range;
      e.via_alias = t.via_alias;
      e.sched = t.sched;
      e.chunk = t.chunk;
      e.blocked = t.blocked;
      e.file = fn.file;
      e.line = t.line;
      e.touch_fn = fn.name;
      e.order = fn.order_of(t.block, t.pos);
      fs.effects.push_back(std::move(e));
    }
    out.functions.push_back(std::move(fs));
  }
  return out;
}

std::vector<StaticFinding> propagate_and_check(std::vector<FileSummary> files) {
  // Deterministic processing order regardless of how summaries arrived.
  std::sort(files.begin(), files.end(),
            [](const FileSummary& a, const FileSummary& b) {
              return a.file < b.file;
            });

  // Whole-program symbol tables.
  std::set<std::string> global_names;
  std::map<std::string, std::pair<std::string, std::uint32_t>> global_decl;
  for (const FileSummary& f : files) {
    for (const ir::Global& g : f.globals) {
      global_names.insert(g.name);
      auto it = global_decl.find(g.name);
      if (it == global_decl.end()) {
        global_decl[g.name] = {f.file, g.line};
      } else if (!g.is_extern) {
        // The defining declaration wins over extern references.
        bool have_def = false;
        for (const FileSummary& f2 : files) {
          for (const ir::Global& g2 : f2.globals) {
            if (g2.name == g.name && !g2.is_extern &&
                f2.file == it->second.first && g2.line == it->second.second) {
              have_def = true;
            }
          }
        }
        if (!have_def) global_decl[g.name] = {f.file, g.line};
      }
    }
  }
  std::map<std::string, FunctionSummary*> by_name;
  for (FileSummary& f : files) {
    for (FunctionSummary& fn : f.functions) {
      by_name.emplace(fn.name, &fn);  // first definition in path order wins
    }
  }

  // Fixpoint: lift callee effects into callers.
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (FileSummary& f : files) {
      for (FunctionSummary& fn : f.functions) {
        std::set<std::string> seen;
        for (const Effect& e : fn.effects) seen.insert(effect_key(e));
        for (const Call& c : fn.calls) {
          auto it = by_name.find(c.callee);
          if (it == by_name.end()) continue;
          const FunctionSummary& callee = *it->second;
          // Snapshot size: the callee may be this very function.
          const std::size_t ne = callee.effects.size();
          for (std::size_t k = 0; k < ne; ++k) {
            const Effect& e = callee.effects[k];
            if (e.chain.size() >= kMaxChain) continue;
            Effect lifted = e;
            if (e.target == Effect::Target::kParam) {
              if (e.param < 0 ||
                  static_cast<std::size_t>(e.param) >= c.args.size()) {
                continue;
              }
              const std::string& sym = c.args[static_cast<std::size_t>(e.param)];
              if (sym.empty()) continue;
              // A one-hop pointer handoff stays "cross-function" (L5);
              // via_alias is reserved for touches that were themselves
              // alias-obscured inside the callee.
              lifted.symbol = sym;
              lifted.target =
                  classify_target(fn, global_names, sym, &lifted.param);
            } else if (e.target == Effect::Target::kGlobal) {
              // Lift globals only to correct the context: a serial helper
              // called from a parallel loop touches in parallel.
              if (!(c.parallel && !c.guarded && !e.parallel)) continue;
            } else {
              continue;  // locals never escape their function
            }
            if (c.parallel && !c.guarded && !e.parallel) {
              lifted.parallel = true;
              lifted.sched = c.sched;
              lifted.chunk = c.chunk;
              lifted.blocked = c.blocked;
              lifted.full_range = e.full_range || !c.blocked;
            }
            lifted.guarded = e.guarded || c.guarded;
            lifted.order = c.order;
            lifted.chain.clear();
            lifted.chain.push_back(Hop{callee.name, fn.file, c.line});
            lifted.chain.insert(lifted.chain.end(), e.chain.begin(),
                                e.chain.end());
            const std::string key = effect_key(lifted);
            if (seen.count(key) > 0) continue;
            seen.insert(key);
            fn.effects.push_back(std::move(lifted));
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  // Aggregate per root symbol. Globals key by name; locals by the frame
  // that owns the allocation.
  std::map<std::string, std::vector<Site>> by_symbol;
  for (const FileSummary& f : files) {
    for (const FunctionSummary& fn : f.functions) {
      for (const Effect& e : fn.effects) {
        std::string key;
        if (e.target == Effect::Target::kGlobal &&
            global_names.count(e.symbol) > 0) {
          key = "g:" + e.symbol;
        } else if (e.target == Effect::Target::kLocal) {
          key = "l:" + fn.file + "#" + fn.name + "#" + e.symbol;
        } else {
          continue;  // unbound parameter effects only matter once lifted
        }
        by_symbol[key].push_back(Site{&fn, &e});
      }
    }
  }

  std::vector<StaticFinding> findings;
  for (const auto& [key, sites] : by_symbol) {
    const std::string variable = sites.front().e->symbol;

    std::vector<Site> serial_writes, par_writes, par_reads, allocs;
    for (const Site& s : sites) {
      switch (s.e->kind) {
        case ir::TouchKind::kAlloc:
          allocs.push_back(s);
          break;
        case ir::TouchKind::kWrite:
          if (s.e->parallel && !s.e->guarded) {
            par_writes.push_back(s);
          } else {
            serial_writes.push_back(s);
          }
          break;
        case ir::TouchKind::kRead:
          if (s.e->parallel && !s.e->guarded) par_reads.push_back(s);
          break;
      }
    }

    // Allocation origin for provenance and decl_line.
    std::string alloc_site;
    std::uint32_t decl_line = 0;
    if (key[0] == 'g') {
      auto it = global_decl.find(variable);
      if (it != global_decl.end()) {
        alloc_site = it->second.first + ":" + std::to_string(it->second.second);
        decl_line = it->second.second;
      }
    }
    if (!allocs.empty()) {
      const Effect& a = *allocs.front().e;
      alloc_site = a.file + ":" + std::to_string(a.line) + " (" + a.touch_fn +
                   ")";
      decl_line = a.line;
    }
    const std::string alloc_text =
        alloc_site.empty() ? std::string("allocated externally")
                           : "allocated at " + alloc_site;

    // --- L6: parallel init vs parallel consume, different partitioning.
    if (!par_writes.empty()) {
      const Site* init = nullptr;
      const Site* consumer = nullptr;
      for (const Site& w : par_writes) {
        for (const Site& c : par_reads) {
          if (schedules_mismatch(*w.e, *c.e)) {
            init = &w;
            consumer = &c;
            break;
          }
        }
        if (init == nullptr) {
          for (const Site& c : par_writes) {
            if (c.e != w.e && schedules_mismatch(*w.e, *c.e) &&
                w.e->order < c.e->order) {
              init = &w;
              consumer = &c;
              break;
            }
          }
        }
        if (init != nullptr) break;
      }
      if (init != nullptr && consumer != nullptr) {
        StaticFinding f;
        f.file = init->e->file;
        f.line = init->e->line;
        f.decl_line = decl_line;
        f.variable = variable;
        f.kind = LintKind::kScheduleMismatch;
        f.expected = PatternKind::kIrregular;
        f.suggested = consumer->e->sched == ir::Schedule::kDynamic
                          ? Action::kInterleave
                          : Action::kBlockwiseFirstTouch;
        f.message =
            variable + ": parallel-initialized at " + site_str(*init->e) +
            " with schedule(" + sched_str(*init->e) + ") but consumed at " +
            site_str(*consumer->e) + " with schedule(" +
            sched_str(*consumer->e) +
            "); the first-touch thread differs from the consuming thread, "
            "so pages land on the wrong domain. Align both schedules" +
            (f.suggested == Action::kInterleave
                 ? " or interleave the allocation."
                 : " (static, same chunking) so init places each block on "
                   "its consumer.");
        findings.push_back(std::move(f));
      }
    }

    // --- First-touch family: a serial write that nothing parallel
    // precedes (orderable only within one function), plus parallel use.
    if (serial_writes.empty() || (par_reads.empty() && par_writes.empty())) {
      continue;
    }
    const Site* sw = nullptr;
    for (const Site& s : serial_writes) {
      bool preceded = false;
      for (const Site& p : par_writes) {
        if (p.fn == s.fn && p.e->order < s.e->order) preceded = true;
      }
      if (preceded) continue;
      if (sw == nullptr) {
        sw = &s;
        continue;
      }
      const auto rank = [](const Site& x) {
        return std::make_tuple(x.e->chain.size(), x.e->file, x.fn->line,
                               x.e->order);
      };
      if (rank(s) < rank(*sw)) sw = &s;
    }
    if (sw == nullptr) continue;

    const Site* consumer =
        !par_reads.empty() ? &par_reads.front() : &par_writes.front();
    for (const Site& c : par_reads) {
      if (c.e->file < consumer->e->file ||
          (c.e->file == consumer->e->file && c.e->line < consumer->e->line)) {
        consumer = &c;
      }
    }

    bool all_reads_full = !par_reads.empty();
    for (const Site& r : par_reads) {
      if (!r.e->full_range) all_reads_full = false;
    }

    LintKind kind;
    if (par_writes.empty() && all_reads_full) {
      kind = LintKind::kReadMostly;
    } else if (sw->e->via_alias || sw->e->chain.size() >= 2) {
      kind = LintKind::kAliasHiddenInit;
    } else if (!sw->e->chain.empty() || sw->e->file != consumer->e->file ||
               sw->e->touch_fn != consumer->e->touch_fn) {
      kind = LintKind::kCrossSerialInit;
    } else {
      continue;  // same-function serial init is the per-TU L1's territory
    }

    StaticFinding f;
    f.file = sw->e->file;
    f.line = sw->e->line;
    f.decl_line = decl_line;
    f.variable = variable;
    f.kind = kind;
    if (kind == LintKind::kReadMostly) {
      f.expected = PatternKind::kFullRange;
      f.suggested = Action::kInterleave;
    } else {
      f.expected = consumer->e->sched == ir::Schedule::kDynamic
                       ? PatternKind::kIrregular
                       : (consumer->e->full_range ? PatternKind::kFullRange
                                                  : PatternKind::kBlocked);
      f.suggested = consumer->e->sched == ir::Schedule::kDynamic
                        ? Action::kInterleave
                        : Action::kBlockwiseFirstTouch;
    }

    std::ostringstream msg;
    msg << variable << ": " << alloc_text << "; first touched serially at "
        << site_str(*sw->e) << render_chain(*sw->fn, *sw->e);
    if (sw->e->via_alias && !sw->e->chain.empty()) {
      msg << " (pointer handed through the call chain before init)";
    } else if (sw->e->via_alias) {
      msg << " (through a pointer alias)";
    }
    msg << "; consumed in parallel at " << site_str(*consumer->e);
    if (partitioned(consumer->e->sched)) {
      msg << " with schedule(" << sched_str(*consumer->e) << ")";
    }
    msg << ". ";
    switch (kind) {
      case LintKind::kReadMostly:
        msg << "Every thread reads the whole extent but only one thread "
               "ever writes it: a replication candidate — interleave the "
               "pages (or replicate per domain) instead of leaving them on "
               "the initializing thread's node.";
        break;
      case LintKind::kAliasHiddenInit:
        msg << "The first touch is hidden behind a pointer handoff, so the "
               "allocation site looks clean while every page still lands "
               "on the initializing thread's domain. Move initialization "
               "into a parallel loop matching the consumer's partitioning.";
        break;
      case LintKind::kCrossSerialInit:
      case LintKind::kSerialFirstTouch:
      case LintKind::kFalseSharing:
      case LintKind::kStackEscape:
      case LintKind::kInterleaveMisuse:
      case LintKind::kScheduleMismatch:
        msg << "All pages land on the initializing thread's domain; "
               "initialize in parallel with the consumer's partitioning so "
               "each block is first touched by the thread that uses it.";
        break;
    }
    f.message = msg.str();
    findings.push_back(std::move(f));
  }

  std::sort(findings.begin(), findings.end(),
            [](const StaticFinding& a, const StaticFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.variable != b.variable) return a.variable < b.variable;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return findings;
}

}  // namespace numaprof::lint::dataflow
