// Interprocedural dataflow over the lint IR.
//
// Per function, `summarize` reduces the IR to effects: which parameters,
// globals, and local allocation roots the function allocates, writes, or
// reads, and in what parallel context. `propagate_and_check` then runs a
// whole-program fixpoint over every file's summary: parameter effects are
// lifted through call sites into the caller's symbols (so a helper that
// serially initializes its pointer argument charges the initialization to
// whatever the caller passed), global effects are re-contextualized when
// a serial helper is invoked from inside a parallel region, and each hop
// is recorded as provenance. The aggregated per-symbol picture drives the
// four interprocedural checks:
//
//   L5 cross-function serial first touch   (alloc / init / consume split
//                                           across functions or files)
//   L6 parallel-init / parallel-consume schedule mismatch
//   L7 alias-obscured first touch          (init through a pointer alias
//                                           or a wrapper call chain)
//   L8 read-mostly replication candidate   (written once serially, read
//                                           by every thread, full range)
//
// Findings come out in the advisor's StaticFinding/Action vocabulary so
// core::fuse_findings consumes them exactly like the per-TU L1-L4 ones.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/advisor.hpp"
#include "lint/ir.hpp"

namespace numaprof::lint::dataflow {

/// One call-chain step in a lifted effect's provenance: at `file:line`
/// (in the function owning the effect) control passes into `callee`.
struct Hop {
  std::string callee;
  std::string file;
  std::uint32_t line = 0;
};

/// One memory effect a function has on a named symbol. `target` says how
/// the symbol is addressed from the owning function's frame; the
/// file/line/touch_fn triple always names the REAL touch site, however
/// many call hops away it is.
struct Effect {
  enum class Target : std::uint8_t {
    kParam,   // through parameter `param` of the owning function
    kGlobal,  // a file-scope symbol
    kLocal,   // an allocation root local to the owning function
  };
  Target target = Target::kGlobal;
  int param = -1;
  std::string symbol;  // symbol name in the owning function's frame
  ir::TouchKind kind = ir::TouchKind::kRead;
  bool parallel = false;
  bool guarded = false;
  bool full_range = false;
  bool via_alias = false;
  ir::Schedule sched = ir::Schedule::kNone;
  int chunk = 0;
  bool blocked = false;
  std::string file;      // where the touch physically is
  std::uint32_t line = 0;
  std::string touch_fn;  // function containing the physical touch
  /// Execution-order key within the OWNING function (block rpo, token
  /// position of the touch, or of the call site for lifted effects).
  std::pair<int, std::size_t> order{0, 0};
  std::vector<Hop> chain;  // call path from the owning fn to the touch
};

/// A call site, reduced to what propagation needs.
struct Call {
  std::string callee;
  std::uint32_t line = 0;
  std::vector<std::string> args;  // resolved symbol per position, "" = expr
  bool parallel = false;
  bool guarded = false;
  ir::Schedule sched = ir::Schedule::kNone;
  int chunk = 0;
  bool blocked = false;
  std::pair<int, std::size_t> order{0, 0};
};

struct FunctionSummary {
  std::string name;
  std::string file;
  std::uint32_t line = 0;
  std::vector<std::string> param_names;  // "" for unnamed positions
  std::vector<std::string> local_allocs;
  std::vector<Call> calls;
  std::vector<Effect> effects;
};

struct FileSummary {
  std::string file;
  std::vector<ir::Global> globals;
  std::vector<FunctionSummary> functions;
};

/// Phase 1 (embarrassingly parallel, per file): IR -> summary.
FileSummary summarize(const ir::FileIr& ir);

/// Phase 2 (whole program, deterministic): fixpoint propagation over all
/// summaries, then the L5-L8 checks. Input order does not matter; files
/// are processed in path order internally so output is byte-identical
/// regardless of how the summaries were produced.
std::vector<core::StaticFinding> propagate_and_check(
    std::vector<FileSummary> files);

}  // namespace numaprof::lint::dataflow
