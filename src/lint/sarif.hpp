// SARIF 2.1.0 export for numalint findings.
//
// SARIF (Static Analysis Results Interchange Format) is what code-scanning
// UIs ingest; emitting it lets numalint findings land in the same review
// pane as any other analyzer. One run, one driver ("numalint"), the full
// L1-L8 rule table (so ruleIndex is stable whether or not a rule fired),
// one result per finding with the variable/expected/suggested triple under
// `properties`. The emitted document is validated by the bundled
// core/export/schema checker (`check_sarif_json`) in tests and CI.
#pragma once

#include <string>
#include <vector>

#include "core/advisor.hpp"

namespace numaprof::lint {

/// Severity tiers, matching SARIF's result levels.
enum class Severity : std::uint8_t { kNote, kWarning, kError };

std::string_view to_string(Severity s) noexcept;

/// The per-kind default severity: certain first-touch pathologies (L1,
/// L5, L7) are errors, structural smells (L2-L4, L6) warnings, and the
/// replication hint (L8) a note.
Severity severity_of(core::LintKind kind) noexcept;

/// Renders findings as one SARIF 2.1.0 document (stable key order and
/// formatting: byte-identical for identical findings).
std::string render_sarif(const std::vector<core::StaticFinding>& findings);

}  // namespace numaprof::lint
