#include "lint/baseline.hpp"

#include <fstream>
#include <sstream>

#include "core/export/schema.hpp"
#include "lint/numalint.hpp"

namespace numaprof::lint {

namespace {

void esc(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) os << c;
    }
  }
  os << '"';
}

}  // namespace

Baseline make_baseline(const std::vector<core::StaticFinding>& findings) {
  Baseline b;
  for (const core::StaticFinding& f : findings) {
    ++b.counts[{f.file, std::string(kind_code(f.kind)), f.variable}];
  }
  return b;
}

std::string render_baseline(const Baseline& baseline) {
  std::ostringstream os;
  os << "{\"version\":1,\"suppressions\":[";
  bool first = true;
  for (const auto& [key, count] : baseline.counts) {
    if (!first) os << ',';
    first = false;
    os << "\n  {\"file\":";
    esc(os, std::get<0>(key));
    os << ",\"code\":";
    esc(os, std::get<1>(key));
    os << ",\"variable\":";
    esc(os, std::get<2>(key));
    os << ",\"count\":" << count << '}';
  }
  os << (baseline.counts.empty() ? "]}\n" : "\n]}\n");
  return os.str();
}

std::optional<Baseline> parse_baseline(std::string_view text,
                                       std::string* error) {
  const auto root = core::parse_json(text, error);
  if (!root) return std::nullopt;
  const auto fail = [error](const char* what) -> std::optional<Baseline> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (root->kind != core::JsonNode::Kind::kObject) {
    return fail("baseline: root is not an object");
  }
  const core::JsonNode* version = root->find("version");
  if (version == nullptr || version->kind != core::JsonNode::Kind::kNumber ||
      version->number != 1.0) {
    return fail("baseline: missing or unsupported \"version\"");
  }
  const core::JsonNode* list = root->find("suppressions");
  if (list == nullptr || list->kind != core::JsonNode::Kind::kArray) {
    return fail("baseline: missing \"suppressions\" array");
  }
  Baseline b;
  for (const core::JsonNode& entry : list->items) {
    if (entry.kind != core::JsonNode::Kind::kObject) {
      return fail("baseline: suppression entry is not an object");
    }
    const core::JsonNode* file = entry.find("file");
    const core::JsonNode* code = entry.find("code");
    const core::JsonNode* variable = entry.find("variable");
    const core::JsonNode* count = entry.find("count");
    if (file == nullptr || file->kind != core::JsonNode::Kind::kString ||
        code == nullptr || code->kind != core::JsonNode::Kind::kString ||
        variable == nullptr ||
        variable->kind != core::JsonNode::Kind::kString) {
      return fail("baseline: entry needs string file/code/variable");
    }
    std::uint64_t n = 1;
    if (count != nullptr) {
      if (count->kind != core::JsonNode::Kind::kNumber || count->number < 1) {
        return fail("baseline: \"count\" must be a positive number");
      }
      n = static_cast<std::uint64_t>(count->number);
    }
    b.counts[{file->string, code->string, variable->string}] += n;
  }
  return b;
}

std::optional<Baseline> load_baseline(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "baseline: cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_baseline(buffer.str(), error);
}

std::vector<core::StaticFinding> apply_baseline(
    const Baseline& baseline, std::vector<core::StaticFinding> findings,
    std::size_t* suppressed) {
  auto budget = baseline.counts;
  std::vector<core::StaticFinding> out;
  std::size_t removed = 0;
  for (core::StaticFinding& f : findings) {
    const auto it =
        budget.find({f.file, std::string(kind_code(f.kind)), f.variable});
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++removed;
      continue;
    }
    out.push_back(std::move(f));
  }
  if (suppressed != nullptr) *suppressed = removed;
  return out;
}

}  // namespace numaprof::lint
