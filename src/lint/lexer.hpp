// A lightweight C/C++ lexer for numalint (no libclang dependency).
//
// Produces a flat token stream with line numbers: identifiers, literals,
// and (multi-char aware) punctuation. Comments vanish; preprocessor
// directives stay in the stream ('#' is a punct token) so the recognizer
// can see `#pragma omp parallel`. This is deliberately NOT a full C++
// front end — the recognizer (numalint.cpp) works on token shapes, which
// is all the antipattern catalog needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace numaprof::lint {

enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // integer / float literals (incl. suffixes)
  kString,  // "..." and R"(...)" — text holds the *contents*, unescaped
  kChar,    // '...'
  kPunct,   // operators and punctuation, multi-char merged ("::", "->", ...)
};

/// Number of TokKind enumerators.
inline constexpr int kTokKindCount = 5;

std::string_view to_string(TokKind k) noexcept;

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::uint32_t line = 1;

  bool is(std::string_view t) const noexcept { return text == t; }
  bool is_ident(std::string_view t) const noexcept {
    return kind == TokKind::kIdent && text == t;
  }
  bool is_punct(std::string_view t) const noexcept {
    return kind == TokKind::kPunct && text == t;
  }
};

struct LexResult {
  std::vector<Token> tokens;
  std::uint32_t lines = 0;  // total source lines seen
};

/// Tokenizes `source`. Never throws on malformed input: unterminated
/// strings/comments lex to end-of-file (lint must survive any input).
LexResult lex(std::string_view source);

}  // namespace numaprof::lint
