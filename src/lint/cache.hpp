// Incremental cache for numalint's phase-1 artifacts.
//
// Phase 1 (lex + L1-L4 recognizers + IR + dataflow summary) is a pure
// function of a file's bytes, so its result is cached in a directory of
// JSON entries keyed by fnv1a64(path + '\0' + contents). A changed file
// changes the key, so entries can never go stale — eviction is just
// deleting files. The cache is strictly an accelerator: every failure
// (missing dir, corrupt entry, unwritable disk) silently degrades to
// recomputation, and a cached sweep is byte-identical to a cold one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "lint/numalint.hpp"

namespace numaprof::lint {

/// Cache key for one file's phase-1 artifact.
std::uint64_t phase1_cache_key(std::string_view file,
                               std::string_view content) noexcept;

/// Loads the entry for `key` from `dir`; nullopt on miss or a corrupt /
/// version-mismatched entry (which is then ignored, not an error).
std::optional<FilePhase1> load_phase1_cache(const std::string& dir,
                                            std::uint64_t key);

/// Best-effort store via temp file + atomic rename (`salt` keeps
/// concurrent writers' temp names distinct). Failures are silent.
void store_phase1_cache(const std::string& dir, std::uint64_t key,
                        const FilePhase1& artifact, unsigned salt = 0);

}  // namespace numaprof::lint
