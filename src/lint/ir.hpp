// Declaration/def-use IR for the numalint interprocedural engine.
//
// The L1-L4 recognizer (numalint.cpp) works on token shapes within one
// translation unit; anything split across a function or file boundary is
// invisible to it. This layer parses the same token stream into a small
// whole-program-ready IR instead: per file, the functions it defines
// (with parameters), the globals it declares, and per function the
// allocations, pointer aliases, call sites, and reads/writes of named
// symbols — each access annotated with its parallel context (region,
// schedule, thread guard) and positioned on a per-function control-flow
// graph so "first touch" means first in execution order, not first in
// the file. src/lint/dataflow.hpp turns this IR into function summaries
// and propagates them across translation units.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace numaprof::lint::ir {

/// Loop-iteration-to-thread mapping of a parallel loop: which thread
/// touches element i. Static mappings are predictable (the first-touch
/// thread equals the consuming thread when schedules match); dynamic and
/// runtime mappings are not.
enum class Schedule : std::uint8_t {
  kNone,         // no explicit schedule / not a partitioned loop
  kStaticBlock,  // omp schedule(static) or DSL block_slice: one block each
  kStaticChunk,  // omp schedule(static, c) or DSL round-robin striding
  kDynamic,      // omp schedule(dynamic[, c]) / guided: first-come-first-served
  kRuntime,      // omp schedule(runtime): unknowable statically
};

std::string_view to_string(Schedule s) noexcept;

struct Param {
  std::string name;
  bool pointer_like = false;  // T*, T&, T[], or a DSL address (VAddr)
};

enum class TouchKind : std::uint8_t {
  kAlloc,  // symbol assigned from malloc / new[] / t.malloc
  kWrite,
  kRead,
};

/// One access to a named symbol inside a function body.
struct Touch {
  std::string symbol;  // name as written in this function
  TouchKind kind = TouchKind::kRead;
  std::uint32_t line = 0;
  bool parallel = false;        // inside a parallel region, unguarded
  bool thread_guarded = false;  // under an `if (tid == 0)`-style guard
  Schedule sched = Schedule::kNone;
  int chunk = 0;             // explicit static/dynamic chunk size, 0 = none
  bool blocked = false;      // region partitions with block_slice/schedule
  bool full_range = false;   // each thread spans the whole extent
  bool via_alias = false;    // reached through a local pointer alias
  std::string alias;         // the alias name used (message material)
  int block = 0;             // owning CFG basic block
  std::size_t pos = 0;       // token position (intra-block order)
};

/// A call to a named function, with the symbols passed as bare arguments
/// (empty string for non-symbol expressions) and the parallel context of
/// the call site — a serial helper called from a parallel loop touches
/// memory in parallel, which is exactly what the per-TU pass misses.
struct CallSite {
  std::string callee;
  std::uint32_t line = 0;
  std::vector<std::string> args;
  bool parallel = false;
  bool thread_guarded = false;
  Schedule sched = Schedule::kNone;
  int chunk = 0;
  bool blocked = false;
  int block = 0;
  std::size_t pos = 0;
};

/// CFG basic block: a run of straight-line statements. Blocks are
/// numbered in construction order; `rpo` gives the reverse-post-order
/// rank used to linearize touches into execution order.
struct BasicBlock {
  std::vector<int> succ;
  int rpo = 0;
};

struct Function {
  std::string name;
  std::string file;
  std::uint32_t line = 0;
  std::vector<Param> params;
  std::vector<Touch> touches;
  std::vector<CallSite> calls;
  std::vector<BasicBlock> blocks;
  /// Locals assigned from an allocation call (allocation roots).
  std::vector<std::string> local_allocs;
  /// Local pointer aliases: alias name -> root symbol in this function.
  std::map<std::string, std::string> aliases;

  int param_index(std::string_view name) const noexcept;
  bool is_local_alloc(std::string_view name) const noexcept;
  /// Execution-order key of a touch/call: (block rpo, token position).
  std::pair<int, std::size_t> order_of(int block, std::size_t pos) const;
};

/// A file-scope data symbol. Extern declarations are kept — they are what
/// gives a cross-TU symbol its identity in the referencing file — but the
/// defining declaration wins when provenance needs "where it lives".
struct Global {
  std::string name;
  std::uint32_t line = 0;
  bool is_extern = false;
};

struct FileIr {
  std::string file;
  std::vector<Function> functions;
  /// File-scope data symbols: static/global arrays and pointers, extern
  /// declarations included (they give cross-TU symbols their identity).
  std::vector<Global> globals;
};

/// Parses one translation unit into the IR. Never throws on malformed
/// input; unrecognized constructs simply contribute nothing.
FileIr build_ir(std::string_view source, std::string file);

}  // namespace numaprof::lint::ir
