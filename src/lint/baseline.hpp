// Finding baselines: CI gates on NEW findings only.
//
// A baseline is the accepted set of pre-existing findings, keyed by
// (file, rule code, variable) with a count — deliberately NOT by line, so
// unrelated edits that shift a finding up or down do not break the gate,
// while a second instance of the same antipattern on the same variable
// does. `numa_lint --write-baseline` seeds the file from the current
// findings; `--baseline` subtracts it from subsequent runs, leaving only
// regressions to feed the --werror exit-code contract.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.hpp"

namespace numaprof::lint {

struct Baseline {
  /// (file, code, variable) -> accepted occurrence count.
  std::map<std::tuple<std::string, std::string, std::string>, std::uint64_t>
      counts;
};

/// Baseline accepting exactly `findings`.
Baseline make_baseline(const std::vector<core::StaticFinding>& findings);

/// Stable JSON rendering (sorted keys, byte-identical per content).
std::string render_baseline(const Baseline& baseline);

/// Parses a baseline document; nullopt + message on malformed input.
std::optional<Baseline> parse_baseline(std::string_view text,
                                       std::string* error);

/// Reads and parses `path`; nullopt + message when unreadable/malformed.
std::optional<Baseline> load_baseline(const std::string& path,
                                      std::string* error);

/// Returns the findings NOT covered by the baseline, preserving order.
/// Each key suppresses at most its accepted count (earliest findings
/// first); `suppressed`, when non-null, receives the number removed.
std::vector<core::StaticFinding> apply_baseline(
    const Baseline& baseline, std::vector<core::StaticFinding> findings,
    std::size_t* suppressed = nullptr);

}  // namespace numaprof::lint
