// numalint: a static NUMA-antipattern analyzer.
//
// Scans translation units with a lightweight lexer + declaration/loop/
// parallel-region recognizer (no libclang) for the antipattern catalog of
// docs/lint.md:
//   L1 serial-first-touch   arrays initialized by serial code but consumed
//                           inside parallel regions (the LULESH/AMG bug
//                           class of §8.1/§8.2)
//   L2 false-sharing-layout per-thread-written elements packed within one
//                           cache line
//   L3 stack-escape         stack arrays escaping into parallel regions
//                           (the §6 nodelist insight)
//   L4 interleave-misuse    interleaved allocation of arrays whose every
//                           parallel access is block-local (the §8.1
//                           POWER7 regression)
//
// Two source idioms are recognized: real OpenMP-style C/C++ (`#pragma omp
// parallel`, local arrays, malloc/new) and this repository's simulator
// workload DSL (`parallel_region`, `t.malloc(size, "name", policy)`,
// `store_lines`/`t.load`/`t.store`). Findings reuse the advisor's
// Action/PatternKind vocabulary so they fuse with dynamic profiles
// (core::fuse_findings).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/advisor.hpp"
#include "core/options.hpp"
#include "lint/dataflow.hpp"
#include "support/error.hpp"

namespace numaprof::lint {

/// A lint input failure (numaprof::Error with kind ErrorKind::kLint):
/// a named top-level path that does not exist or cannot be read. Files
/// discovered inside directories are still skipped silently — a partially
/// readable tree should not kill a lint sweep.
class LintError : public numaprof::Error {
 public:
  explicit LintError(const std::string& path)
      : Error(ErrorKind::kLint, path, "path", 0,
              "lint input error: cannot read " + path) {}
};

struct LintStats {
  std::uint64_t files = 0;
  std::uint64_t lines = 0;
  std::uint64_t tokens = 0;
};

struct LintResult {
  std::vector<core::StaticFinding> findings;
  LintStats stats;
};

/// Lints one in-memory translation unit. `file` is used for reporting.
/// Runs the per-TU L1-L4 recognizers AND the interprocedural engine over
/// this one file, so a program merged into a single TU reports the same
/// L5-L8 findings as the multi-file sweep. Never throws on malformed input.
LintResult lint_source(std::string_view source, std::string file);

/// Phase-1 artifact for one file: the local L1-L4 findings plus the
/// dataflow summary that phase 2 propagates across the whole program.
/// This is what the incremental cache stores per content hash.
struct FilePhase1 {
  LintResult local;
  dataflow::FileSummary summary;
};

/// Phase 1 only (embarrassingly parallel, pure function of the source).
FilePhase1 lint_file_phase1(std::string_view source, std::string file);

/// True if `path` names a file numalint knows how to scan (.c/.cc/.cpp/
/// .cxx/.h/.hh/.hpp).
bool lintable_file(const std::string& path);

/// Lints files and directories (recursive, deterministic order). A named
/// top-level path that does not exist throws LintError; unreadable files
/// discovered inside directories are skipped. Findings are sorted by
/// (file, line, variable, kind).
LintResult lint_paths(const std::vector<std::string>& paths);

/// As above with the consolidated pipeline policy: files are linted on
/// `options.jobs` participants (or `options.pool`) and folded in path
/// order, so the result is identical to the serial one for every jobs
/// value. Only the parallelism knobs of `options` are consumed.
LintResult lint_paths(const std::vector<std::string>& paths,
                      const numaprof::PipelineOptions& options);

/// Short L1..L4 code for a finding kind.
std::string_view kind_code(core::LintKind kind) noexcept;

/// Human-readable rendering of findings, one block per finding:
///   file:line [L1 serial-first-touch] variable
///       expected <pattern>, suggest <action> (declared at line N)
///       <message>
std::string render_findings(const std::vector<core::StaticFinding>& findings);

/// Machine-readable rendering (`--format json`): one JSON object per line
/// with file/line/decl-line/variable/kind/code/expected/suggested/message.
std::string render_findings_json(
    const std::vector<core::StaticFinding>& findings);

}  // namespace numaprof::lint
