#include "lint/lexer.hpp"

#include <array>
#include <cctype>

namespace numaprof::lint {

std::string_view to_string(TokKind k) noexcept {
  switch (k) {
    case TokKind::kIdent: return "ident";
    case TokKind::kNumber: return "number";
    case TokKind::kString: return "string";
    case TokKind::kChar: return "char";
    case TokKind::kPunct: return "punct";
  }
  return "?";
}

namespace {

bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c));
}

/// Multi-char punctuation, longest first within each leading char.
constexpr std::array<std::string_view, 24> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--"};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::uint32_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind kind, std::string text, std::uint32_t at) {
    out.tokens.push_back(Token{kind, std::move(text), at});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(' && src[p] != '\n' && delim.size() < 16) {
        delim += src[p++];
      }
      if (p < n && src[p] == '(') {
        const std::string close = ")" + delim + "\"";
        const std::size_t start = p + 1;
        const std::size_t end = src.find(close, start);
        const std::size_t stop = end == std::string_view::npos ? n : end;
        std::string body(src.substr(start, stop - start));
        const std::uint32_t at = line;
        for (char b : body) {
          if (b == '\n') ++line;
        }
        push(TokKind::kString, std::move(body), at);
        i = stop == n ? n : stop + close.size();
        continue;
      }
      // 'R' not starting a raw string: fall through as identifier below.
    }
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      push(TokKind::kIdent, std::string(src.substr(i, p - i)), line);
      i = p;
      continue;
    }
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      std::size_t p = i;
      bool hex = false;
      if (c == '0' && i + 1 < n && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        hex = true;
        p += 2;
      }
      while (p < n) {
        const char d = src[p];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.') {
          ++p;
          continue;
        }
        // C++14 digit separator: part of the number only when a digit (or
        // hex digit) follows; a trailing ' starts a char literal instead.
        if (d == '\'' && p + 1 < n &&
            std::isalnum(static_cast<unsigned char>(src[p + 1]))) {
          p += 2;
          continue;
        }
        // Exponent signs: 1e-5, 0x1p+3.
        if ((d == '+' || d == '-') && p > i) {
          const char prev = static_cast<char>(
              std::tolower(static_cast<unsigned char>(src[p - 1])));
          if ((!hex && prev == 'e') || (hex && prev == 'p')) {
            ++p;
            continue;
          }
        }
        break;
      }
      push(TokKind::kNumber, std::string(src.substr(i, p - i)), line);
      i = p;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string body;
      std::size_t p = i + 1;
      const std::uint32_t at = line;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) {
          // Backslash-newline is a line splice, not an escape: the line
          // count must advance or every later token misreports its line.
          if (src[p + 1] == '\n') {
            ++line;
            p += 2;
            continue;
          }
          body += src[p + 1];
          p += 2;
          continue;
        }
        if (src[p] == '\n') ++line;  // unterminated; keep going defensively
        body += src[p++];
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(body),
           at);
      i = p < n ? p + 1 : n;
      continue;
    }
    // Punctuation: merge multi-char operators.
    std::string_view matched;
    for (std::string_view m : kMultiPunct) {
      if (src.substr(i, m.size()) == m) {
        matched = m;
        break;
      }
    }
    if (!matched.empty()) {
      push(TokKind::kPunct, std::string(matched), line);
      i += matched.size();
    } else {
      push(TokKind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  out.lines = line;
  return out;
}

}  // namespace numaprof::lint
