#include "lint/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/export/schema.hpp"
#include "support/hash.hpp"

namespace numaprof::lint {

namespace {

/// Entry format version; bump on any serialization change so old entries
/// miss instead of deserializing garbage.
constexpr int kCacheVersion = 1;

void esc(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) os << c;
    }
  }
  os << '"';
}

void write_order(std::ostringstream& os, std::pair<int, std::size_t> order) {
  os << '[' << order.first << ',' << order.second << ']';
}

std::string render(const FilePhase1& a) {
  std::ostringstream os;
  os << "{\"version\":" << kCacheVersion << ",\"stats\":{\"files\":"
     << a.local.stats.files << ",\"lines\":" << a.local.stats.lines
     << ",\"tokens\":" << a.local.stats.tokens << "},\"findings\":[";
  for (std::size_t i = 0; i < a.local.findings.size(); ++i) {
    const core::StaticFinding& f = a.local.findings[i];
    if (i > 0) os << ',';
    os << "{\"file\":";
    esc(os, f.file);
    os << ",\"line\":" << f.line << ",\"decl\":" << f.decl_line
       << ",\"variable\":";
    esc(os, f.variable);
    os << ",\"kind\":" << static_cast<int>(f.kind)
       << ",\"expected\":" << static_cast<int>(f.expected)
       << ",\"suggested\":" << static_cast<int>(f.suggested) << ",\"message\":";
    esc(os, f.message);
    os << '}';
  }
  os << "],\"summary\":{\"file\":";
  esc(os, a.summary.file);
  os << ",\"globals\":[";
  for (std::size_t i = 0; i < a.summary.globals.size(); ++i) {
    const ir::Global& g = a.summary.globals[i];
    if (i > 0) os << ',';
    os << "{\"name\":";
    esc(os, g.name);
    os << ",\"line\":" << g.line << ",\"ext\":" << (g.is_extern ? 1 : 0)
       << '}';
  }
  os << "],\"functions\":[";
  for (std::size_t i = 0; i < a.summary.functions.size(); ++i) {
    const dataflow::FunctionSummary& fn = a.summary.functions[i];
    if (i > 0) os << ',';
    os << "{\"name\":";
    esc(os, fn.name);
    os << ",\"file\":";
    esc(os, fn.file);
    os << ",\"line\":" << fn.line << ",\"params\":[";
    for (std::size_t k = 0; k < fn.param_names.size(); ++k) {
      if (k > 0) os << ',';
      esc(os, fn.param_names[k]);
    }
    os << "],\"locals\":[";
    for (std::size_t k = 0; k < fn.local_allocs.size(); ++k) {
      if (k > 0) os << ',';
      esc(os, fn.local_allocs[k]);
    }
    os << "],\"calls\":[";
    for (std::size_t k = 0; k < fn.calls.size(); ++k) {
      const dataflow::Call& c = fn.calls[k];
      if (k > 0) os << ',';
      os << "{\"callee\":";
      esc(os, c.callee);
      os << ",\"line\":" << c.line << ",\"args\":[";
      for (std::size_t m = 0; m < c.args.size(); ++m) {
        if (m > 0) os << ',';
        esc(os, c.args[m]);
      }
      os << "],\"par\":" << (c.parallel ? 1 : 0)
         << ",\"guard\":" << (c.guarded ? 1 : 0)
         << ",\"sched\":" << static_cast<int>(c.sched)
         << ",\"chunk\":" << c.chunk << ",\"blocked\":" << (c.blocked ? 1 : 0)
         << ",\"order\":";
      write_order(os, c.order);
      os << '}';
    }
    os << "],\"effects\":[";
    for (std::size_t k = 0; k < fn.effects.size(); ++k) {
      const dataflow::Effect& e = fn.effects[k];
      if (k > 0) os << ',';
      os << "{\"target\":" << static_cast<int>(e.target)
         << ",\"param\":" << e.param << ",\"symbol\":";
      esc(os, e.symbol);
      os << ",\"kind\":" << static_cast<int>(e.kind)
         << ",\"par\":" << (e.parallel ? 1 : 0)
         << ",\"guard\":" << (e.guarded ? 1 : 0)
         << ",\"full\":" << (e.full_range ? 1 : 0)
         << ",\"alias\":" << (e.via_alias ? 1 : 0)
         << ",\"sched\":" << static_cast<int>(e.sched)
         << ",\"chunk\":" << e.chunk << ",\"blocked\":" << (e.blocked ? 1 : 0)
         << ",\"file\":";
      esc(os, e.file);
      os << ",\"line\":" << e.line << ",\"fn\":";
      esc(os, e.touch_fn);
      os << ",\"order\":";
      write_order(os, e.order);
      os << ",\"chain\":[";
      for (std::size_t m = 0; m < e.chain.size(); ++m) {
        const dataflow::Hop& h = e.chain[m];
        if (m > 0) os << ',';
        os << "{\"callee\":";
        esc(os, h.callee);
        os << ",\"file\":";
        esc(os, h.file);
        os << ",\"line\":" << h.line << '}';
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "]}}";
  return os.str();
}

// --- Deserialization (strict: any shape surprise aborts into a miss) ----

bool get_u64(const core::JsonNode& obj, std::string_view key,
             std::uint64_t* out) {
  const core::JsonNode* n = obj.find(key);
  if (n == nullptr || n->kind != core::JsonNode::Kind::kNumber) return false;
  *out = static_cast<std::uint64_t>(n->number);
  return true;
}

bool get_int(const core::JsonNode& obj, std::string_view key, int* out) {
  const core::JsonNode* n = obj.find(key);
  if (n == nullptr || n->kind != core::JsonNode::Kind::kNumber) return false;
  *out = static_cast<int>(n->number);
  return true;
}

bool get_str(const core::JsonNode& obj, std::string_view key,
             std::string* out) {
  const core::JsonNode* n = obj.find(key);
  if (n == nullptr || n->kind != core::JsonNode::Kind::kString) return false;
  *out = n->string;
  return true;
}

bool get_order(const core::JsonNode& obj, std::string_view key,
               std::pair<int, std::size_t>* out) {
  const core::JsonNode* n = obj.find(key);
  if (n == nullptr || n->kind != core::JsonNode::Kind::kArray ||
      n->items.size() != 2 ||
      n->items[0].kind != core::JsonNode::Kind::kNumber ||
      n->items[1].kind != core::JsonNode::Kind::kNumber) {
    return false;
  }
  out->first = static_cast<int>(n->items[0].number);
  out->second = static_cast<std::size_t>(n->items[1].number);
  return true;
}

const std::vector<core::JsonNode>* get_array(const core::JsonNode& obj,
                                             std::string_view key) {
  const core::JsonNode* n = obj.find(key);
  if (n == nullptr || n->kind != core::JsonNode::Kind::kArray) return nullptr;
  return &n->items;
}

bool parse_phase1(const core::JsonNode& root, FilePhase1* out) {
  int version = 0;
  if (!get_int(root, "version", &version) || version != kCacheVersion) {
    return false;
  }
  const core::JsonNode* stats = root.find("stats");
  if (stats == nullptr || stats->kind != core::JsonNode::Kind::kObject ||
      !get_u64(*stats, "files", &out->local.stats.files) ||
      !get_u64(*stats, "lines", &out->local.stats.lines) ||
      !get_u64(*stats, "tokens", &out->local.stats.tokens)) {
    return false;
  }
  const auto* findings = get_array(root, "findings");
  if (findings == nullptr) return false;
  for (const core::JsonNode& fj : *findings) {
    if (fj.kind != core::JsonNode::Kind::kObject) return false;
    core::StaticFinding f;
    int line = 0, decl = 0, kind = 0, expected = 0, suggested = 0;
    if (!get_str(fj, "file", &f.file) || !get_int(fj, "line", &line) ||
        !get_int(fj, "decl", &decl) || !get_str(fj, "variable", &f.variable) ||
        !get_int(fj, "kind", &kind) || !get_int(fj, "expected", &expected) ||
        !get_int(fj, "suggested", &suggested) ||
        !get_str(fj, "message", &f.message)) {
      return false;
    }
    if (kind < 0 || kind >= core::kLintKindCount) return false;
    f.line = static_cast<std::uint32_t>(line);
    f.decl_line = static_cast<std::uint32_t>(decl);
    f.kind = static_cast<core::LintKind>(kind);
    f.expected = static_cast<core::PatternKind>(expected);
    f.suggested = static_cast<core::Action>(suggested);
    out->local.findings.push_back(std::move(f));
  }
  const core::JsonNode* summary = root.find("summary");
  if (summary == nullptr || summary->kind != core::JsonNode::Kind::kObject ||
      !get_str(*summary, "file", &out->summary.file)) {
    return false;
  }
  const auto* globals = get_array(*summary, "globals");
  if (globals == nullptr) return false;
  for (const core::JsonNode& gj : *globals) {
    if (gj.kind != core::JsonNode::Kind::kObject) return false;
    ir::Global g;
    int line = 0, ext = 0;
    if (!get_str(gj, "name", &g.name) || !get_int(gj, "line", &line) ||
        !get_int(gj, "ext", &ext)) {
      return false;
    }
    g.line = static_cast<std::uint32_t>(line);
    g.is_extern = ext != 0;
    out->summary.globals.push_back(std::move(g));
  }
  const auto* functions = get_array(*summary, "functions");
  if (functions == nullptr) return false;
  for (const core::JsonNode& fj : *functions) {
    if (fj.kind != core::JsonNode::Kind::kObject) return false;
    dataflow::FunctionSummary fn;
    int line = 0;
    if (!get_str(fj, "name", &fn.name) || !get_str(fj, "file", &fn.file) ||
        !get_int(fj, "line", &line)) {
      return false;
    }
    fn.line = static_cast<std::uint32_t>(line);
    const auto* params = get_array(fj, "params");
    const auto* locals = get_array(fj, "locals");
    const auto* calls = get_array(fj, "calls");
    const auto* effects = get_array(fj, "effects");
    if (params == nullptr || locals == nullptr || calls == nullptr ||
        effects == nullptr) {
      return false;
    }
    for (const core::JsonNode& p : *params) {
      if (p.kind != core::JsonNode::Kind::kString) return false;
      fn.param_names.push_back(p.string);
    }
    for (const core::JsonNode& l : *locals) {
      if (l.kind != core::JsonNode::Kind::kString) return false;
      fn.local_allocs.push_back(l.string);
    }
    for (const core::JsonNode& cj : *calls) {
      if (cj.kind != core::JsonNode::Kind::kObject) return false;
      dataflow::Call c;
      int cline = 0, par = 0, guard = 0, sched = 0, blocked = 0;
      if (!get_str(cj, "callee", &c.callee) || !get_int(cj, "line", &cline) ||
          !get_int(cj, "par", &par) || !get_int(cj, "guard", &guard) ||
          !get_int(cj, "sched", &sched) || !get_int(cj, "chunk", &c.chunk) ||
          !get_int(cj, "blocked", &blocked) ||
          !get_order(cj, "order", &c.order)) {
        return false;
      }
      const auto* args = get_array(cj, "args");
      if (args == nullptr) return false;
      for (const core::JsonNode& aj : *args) {
        if (aj.kind != core::JsonNode::Kind::kString) return false;
        c.args.push_back(aj.string);
      }
      c.line = static_cast<std::uint32_t>(cline);
      c.parallel = par != 0;
      c.guarded = guard != 0;
      c.sched = static_cast<ir::Schedule>(sched);
      c.blocked = blocked != 0;
      fn.calls.push_back(std::move(c));
    }
    for (const core::JsonNode& ej : *effects) {
      if (ej.kind != core::JsonNode::Kind::kObject) return false;
      dataflow::Effect e;
      int target = 0, kind = 0, line2 = 0, par = 0, guard = 0, full = 0,
          alias = 0, sched = 0, blocked = 0;
      if (!get_int(ej, "target", &target) || !get_int(ej, "param", &e.param) ||
          !get_str(ej, "symbol", &e.symbol) || !get_int(ej, "kind", &kind) ||
          !get_int(ej, "par", &par) || !get_int(ej, "guard", &guard) ||
          !get_int(ej, "full", &full) || !get_int(ej, "alias", &alias) ||
          !get_int(ej, "sched", &sched) || !get_int(ej, "chunk", &e.chunk) ||
          !get_int(ej, "blocked", &blocked) || !get_str(ej, "file", &e.file) ||
          !get_int(ej, "line", &line2) || !get_str(ej, "fn", &e.touch_fn) ||
          !get_order(ej, "order", &e.order)) {
        return false;
      }
      const auto* chain = get_array(ej, "chain");
      if (chain == nullptr) return false;
      for (const core::JsonNode& hj : *chain) {
        if (hj.kind != core::JsonNode::Kind::kObject) return false;
        dataflow::Hop h;
        int hline = 0;
        if (!get_str(hj, "callee", &h.callee) ||
            !get_str(hj, "file", &h.file) || !get_int(hj, "line", &hline)) {
          return false;
        }
        h.line = static_cast<std::uint32_t>(hline);
        e.chain.push_back(std::move(h));
      }
      e.target = static_cast<dataflow::Effect::Target>(target);
      e.kind = static_cast<ir::TouchKind>(kind);
      e.parallel = par != 0;
      e.guarded = guard != 0;
      e.full_range = full != 0;
      e.via_alias = alias != 0;
      e.sched = static_cast<ir::Schedule>(sched);
      e.blocked = blocked != 0;
      e.file = ej.find("file")->string;
      e.line = static_cast<std::uint32_t>(line2);
      fn.effects.push_back(std::move(e));
    }
    out->summary.functions.push_back(std::move(fn));
  }
  return true;
}

std::string entry_name(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx.json",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

std::uint64_t phase1_cache_key(std::string_view file,
                               std::string_view content) noexcept {
  std::uint64_t h = support::fnv1a64(file);
  h = support::fnv1a64(std::string_view("\0", 1), h);
  return support::fnv1a64(content, h);
}

std::optional<FilePhase1> load_phase1_cache(const std::string& dir,
                                            std::uint64_t key) {
  const std::filesystem::path path =
      std::filesystem::path(dir) / entry_name(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto root = core::parse_json(buffer.str(), &error);
  if (!root || root->kind != core::JsonNode::Kind::kObject) {
    return std::nullopt;
  }
  FilePhase1 out;
  if (!parse_phase1(*root, &out)) return std::nullopt;
  return out;
}

void store_phase1_cache(const std::string& dir, std::uint64_t key,
                        const FilePhase1& artifact, unsigned salt) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path final_path =
      std::filesystem::path(dir) / entry_name(key);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp" + std::to_string(salt);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << render(artifact);
    if (!out) {
      out.close();
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

}  // namespace numaprof::lint
