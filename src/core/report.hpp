// Report generation: a complete analysis written to a directory.
//
// hpcviewer presents profiles interactively; this reproduction's
// equivalent is a self-contained report directory a user can archive or
// diff between runs:
//   report.txt          program summary + verdicts + recommendations
//   data_centric.csv    the variable ranking
//   code_centric.csv    the call-path ranking
//   domains.csv         per-domain request balance
//   var_<name>/         per-hot-variable detail: address-centric CSV +
//                       plot, first-touch sites, data sources
//   timeline.txt        trace timeline (when a trace was recorded)
#pragma once

#include <string>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/viewer.hpp"

namespace numaprof::core {

struct ReportOptions {
  /// How many top variables get a detail subdirectory.
  std::size_t top_variables = 5;
  /// Rows in the ranking CSVs.
  std::size_t table_rows = 50;
  /// Windows in the trace timeline.
  std::uint32_t timeline_windows = 72;
};

/// Writes the full report into `directory` (created if missing, files
/// overwritten). Returns the path of the main report.txt.
/// Throws std::runtime_error on I/O failure.
std::string write_report(const Analyzer& analyzer,
                         const std::string& directory,
                         const ReportOptions& options = {});

}  // namespace numaprof::core
