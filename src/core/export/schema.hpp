// Bundled artifact validators for the export layer.
//
// The exporters (core/export/export.hpp) target external consumers —
// Perfetto, speedscope, a browser — that this repository cannot run in
// tests. These checkers are the next best thing: a small dependency-free
// JSON parser plus per-format structural checks (the invariants each
// consumer documents), so every emitted artifact is validated both in the
// test suite and by the `export_check` CLI that CI's export-smoke job
// runs on freshly produced artifacts.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace numaprof::core {

/// A parsed JSON document node (object member order preserved).
struct JsonNode {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonNode> items;  // kArray
  std::vector<std::pair<std::string, JsonNode>> members;  // kObject

  /// First member named `key` (objects only); nullptr when absent.
  const JsonNode* find(std::string_view key) const noexcept;
};

/// Parses one complete JSON document (trailing whitespace allowed, any
/// other trailing content is an error). On failure returns nullopt and
/// writes a human-readable message (with character offset) to `error`.
std::optional<JsonNode> parse_json(std::string_view text, std::string* error);

/// Well-formedness only: empty vector when `text` is one valid JSON
/// document, otherwise the parse error.
std::vector<std::string> json_well_formed(std::string_view text);

/// Chrome trace-event format: root object, "traceEvents" array, every
/// event an object with a known "ph", a string "name", numeric "pid", and
/// the per-phase required fields ("ts" for C/X/i, "dur" for X).
std::vector<std::string> check_trace_json(std::string_view text);

/// speedscope file format: "$schema" URL, shared.frames (objects with
/// "name"), non-empty "profiles" of type "sampled" whose samples/weights
/// line up and whose frame indices are in range.
std::vector<std::string> check_speedscope_json(std::string_view text);

/// Brendan-Gregg collapsed format: every non-empty line is
/// "frame(;frame)* <non-negative integer>".
std::vector<std::string> check_collapsed_stacks(std::string_view text);

/// Self-contained HTML report: doctype, matching <html> tags, all five
/// panes present, and NO external asset references (src=/href=/url()
/// pointing at a scheme or protocol-relative URL).
std::vector<std::string> check_html_report(std::string_view text);

/// SARIF 2.1.0 (numalint --export sarif): version "2.1.0", non-empty
/// "runs", every run a tool.driver with a name and a rule table, every
/// result a known level, a message.text, a ruleId consistent with its
/// ruleIndex, and physical locations with a uri and a startLine >= 1.
std::vector<std::string> check_sarif_json(std::string_view text);

/// Dispatches on the artifact's file-name suffix (.trace.json,
/// .speedscope.json, .collapsed.txt, .html — the names write_exports
/// produces — plus .sarif / .sarif.json from numalint). Unknown names
/// fail with a one-entry error vector.
std::vector<std::string> check_artifact(std::string_view filename,
                                        std::string_view bytes);

}  // namespace numaprof::core
