#include "core/export/export.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "support/error.hpp"

namespace numaprof::core {

std::string_view to_string(ExportKind k) noexcept {
  switch (k) {
    case ExportKind::kTraceJson: return "trace";
    case ExportKind::kFlamegraph: return "flamegraph";
    case ExportKind::kHtml: return "html";
    case ExportKind::kAll: return "all";
  }
  return "unknown";
}

std::optional<ExportKind> parse_export_kind(std::string_view text) noexcept {
  if (text == "trace") return ExportKind::kTraceJson;
  if (text == "flamegraph") return ExportKind::kFlamegraph;
  if (text == "html") return ExportKind::kHtml;
  if (text == "all") return ExportKind::kAll;
  return std::nullopt;
}

std::string_view to_string(FlameWeight w) noexcept {
  switch (w) {
    case FlameWeight::kMismatch: return "mismatch";
    case FlameWeight::kRemoteLatency: return "remote-latency";
    case FlameWeight::kLpi: return "lpi";
  }
  return "unknown";
}

std::optional<FlameWeight> parse_flame_weight(std::string_view text) noexcept {
  if (text == "mismatch") return FlameWeight::kMismatch;
  if (text == "remote-latency") return FlameWeight::kRemoteLatency;
  if (text == "lpi") return FlameWeight::kLpi;
  return std::nullopt;
}

std::vector<ExportArtifact> export_artifacts(const Analyzer& analyzer,
                                             ExportKind kind,
                                             const ExportOptions& options) {
  const bool all = kind == ExportKind::kAll;
  std::vector<ExportArtifact> artifacts;
  if (all || kind == ExportKind::kTraceJson) {
    artifacts.push_back({ExportKind::kTraceJson,
                         options.basename + ".trace.json",
                         export_trace_json(analyzer, options)});
  }
  if (all || kind == ExportKind::kFlamegraph) {
    artifacts.push_back({ExportKind::kFlamegraph,
                         options.basename + ".collapsed.txt",
                         export_collapsed_stacks(analyzer, options)});
    artifacts.push_back({ExportKind::kFlamegraph,
                         options.basename + ".speedscope.json",
                         export_speedscope(analyzer, options)});
  }
  if (all || kind == ExportKind::kHtml) {
    artifacts.push_back({ExportKind::kHtml,
                         options.basename + ".report.html",
                         export_html(analyzer, options)});
  }
  return artifacts;
}

std::vector<std::string> write_exports(const Analyzer& analyzer,
                                       ExportKind kind,
                                       const std::string& directory,
                                       const ExportOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    throw Error(ErrorKind::kExport, directory, "", 0,
                "cannot create export directory '" + directory +
                    "': " + ec.message());
  }
  std::vector<std::string> written;
  for (const ExportArtifact& artifact :
       export_artifacts(analyzer, kind, options)) {
    const std::string path =
        (fs::path(directory) / artifact.filename).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(artifact.bytes.data(),
              static_cast<std::streamsize>(artifact.bytes.size()));
    if (!out) {
      throw Error(ErrorKind::kExport, path, "", 0,
                  "cannot write export artifact '" + path + "'");
    }
    written.push_back(path);
  }
  return written;
}

}  // namespace numaprof::core
