// Collapsed-stack / speedscope flamegraph exporters.
//
// Both walk the CCT's [ACCESS] subtree depth-first via Cct::children()
// (sorted by node id — Cct::visit() iterates a hash map and must not be
// used here) and weight each context by the selected NUMA cost. A context
// appears once per CCT node with a non-zero weight; weights are EXCLUSIVE
// per node, so flamegraph tools reconstruct inclusive totals by summing
// subtrees, exactly like they do for time-based profiles.
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "core/export/export.hpp"
#include "core/export/writer_util.hpp"
#include "core/metrics.hpp"
#include "support/table.hpp"

namespace numaprof::core {
namespace {

using export_detail::collapsed_escape;
using export_detail::json_escape;

/// Exclusive weight of one CCT node under the selected NUMA cost.
/// lpi_NUMA is a ratio (cycles/instruction), so it is scaled x1000 to an
/// integer "milli-lpi" that collapsed formats can carry.
std::uint64_t node_weight(const MetricStore& store, NodeId node,
                          FlameWeight weight) {
  double value = 0.0;
  switch (weight) {
    case FlameWeight::kMismatch:
      value = store.get(node, kNumaMismatch);
      break;
    case FlameWeight::kRemoteLatency:
      value = store.get(node, kRemoteLatency);
      break;
    case FlameWeight::kLpi: {
      const double samples = store.get(node, kSamples);
      value = samples > 0.0
                  ? store.get(node, kRemoteLatency) / samples * 1000.0
                  : 0.0;
      break;
    }
  }
  if (value <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(value));
}

/// One weighted stack: labels from [ACCESS] down to the node.
struct WeightedStack {
  std::vector<std::string> frames;
  std::uint64_t weight = 0;
};

/// Deterministic pre-order collection of every non-zero-weight context.
std::vector<WeightedStack> collect_stacks(const Analyzer& analyzer,
                                          FlameWeight weight) {
  const SessionData& data = analyzer.data();
  std::vector<WeightedStack> stacks;
  const auto access = data.cct.find_child(kRootNode, NodeKind::kAccess, 0);
  if (!access) return stacks;

  std::vector<std::string> labels = {data.node_label(*access)};
  // Explicit DFS keeping the label stack in sync with the node path.
  struct Frame {
    NodeId node;
    std::vector<NodeId> children;
    std::size_t next = 0;
  };
  std::vector<Frame> walk;
  walk.push_back({*access, data.cct.children(*access), 0});
  while (!walk.empty()) {
    Frame& top = walk.back();
    if (top.next == 0 && top.node != *access) {
      const std::uint64_t w = node_weight(analyzer.merged(), top.node, weight);
      if (w > 0) stacks.push_back({labels, w});
    }
    if (top.next < top.children.size()) {
      const NodeId child = top.children[top.next++];
      labels.push_back(collapsed_escape(data.node_label(child)));
      walk.push_back({child, data.cct.children(child), 0});
      continue;
    }
    if (top.node != *access) labels.pop_back();
    walk.pop_back();
  }
  return stacks;
}

}  // namespace

std::string export_collapsed_stacks(const Analyzer& analyzer,
                                    const ExportOptions& options) {
  std::ostringstream os;
  for (const WeightedStack& stack : collect_stacks(analyzer, options.weight)) {
    for (std::size_t i = 0; i < stack.frames.size(); ++i) {
      os << (i == 0 ? "" : ";") << stack.frames[i];
    }
    os << " " << stack.weight << "\n";
  }
  return os.str();
}

std::string export_speedscope(const Analyzer& analyzer,
                              const ExportOptions& options) {
  const std::vector<WeightedStack> stacks =
      collect_stacks(analyzer, options.weight);

  // Frame table in first-use order (deterministic: stacks are pre-order).
  std::vector<std::string> frames;
  std::map<std::string, std::size_t> frame_index;
  std::uint64_t total = 0;
  for (const WeightedStack& stack : stacks) {
    total += stack.weight;
    for (const std::string& label : stack.frames) {
      if (frame_index.emplace(label, frames.size()).second) {
        frames.push_back(label);
      }
    }
  }

  std::ostringstream os;
  os << "{\n\"$schema\":\"https://www.speedscope.app/file-format-schema.json"
     << "\",\n\"name\":\"numaprof " << to_string(options.weight)
     << "\",\n\"activeProfileIndex\":0,\n\"exporter\":\"numaprof\","
     << "\n\"shared\":{\"frames\":[\n";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    os << (i == 0 ? "" : ",\n") << "  {\"name\":\"" << json_escape(frames[i])
       << "\"}";
  }
  os << "\n]},\n\"profiles\":[{\"type\":\"sampled\",\"name\":\""
     << to_string(options.weight) << "\",\"unit\":\"none\","
     << "\"startValue\":0,\"endValue\":" << total << ",\n\"samples\":[\n";
  for (std::size_t s = 0; s < stacks.size(); ++s) {
    os << (s == 0 ? "" : ",\n") << "  [";
    for (std::size_t i = 0; i < stacks[s].frames.size(); ++i) {
      os << (i == 0 ? "" : ",") << frame_index.at(stacks[s].frames[i]);
    }
    os << "]";
  }
  os << "\n],\n\"weights\":[";
  for (std::size_t s = 0; s < stacks.size(); ++s) {
    os << (s == 0 ? "" : ",") << stacks[s].weight;
  }
  os << "]\n}]\n}\n";
  return os.str();
}

}  // namespace numaprof::core
