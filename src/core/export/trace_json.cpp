// Chrome trace-event / Perfetto JSON exporter.
//
// One JSON object with a "traceEvents" array, one event per line (stable,
// diffable). Timestamps are virtual Cycles written as the trace format's
// ts field — the timeline is exact relative to the run; the absolute unit
// shown by the viewer is nominal. DegradationEvents and first-touch
// records carry no timestamp in the profile, so their instant events are
// placed at ORDINAL positions (trace begin + record index); their args
// carry the payload.
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/export/export.hpp"
#include "core/export/writer_util.hpp"
#include "core/trace.hpp"
#include "pmu/config.hpp"
#include "support/table.hpp"

namespace numaprof::core {
namespace {

using export_detail::json_escape;
using support::format_fixed;

constexpr int kPid = 0;

/// Severity bucket of a mismatch fraction, named like the ASCII timeline's
/// glyph legend so the two renderings agree.
std::string_view severity_name(double fraction) noexcept {
  if (fraction < 0.25) return "local";
  if (fraction < 0.75) return "mixed";
  return "remote-heavy";
}

struct ThreadWindow {
  std::uint64_t samples = 0;
  std::uint64_t mismatches = 0;
};

void metadata_event(std::ostringstream& os, bool& first, std::uint64_t tid,
                    std::string_view kind, std::string_view args_body) {
  os << (first ? "" : ",\n") << "  {\"ph\":\"M\",\"pid\":" << kPid
     << ",\"tid\":" << tid << ",\"name\":\"" << kind << "\",\"args\":{"
     << args_body << "}}";
  first = false;
}

}  // namespace

std::string export_trace_json(const Analyzer& analyzer,
                              const ExportOptions& options) {
  const SessionData& data = analyzer.data();
  const std::uint64_t threads = data.thread_count();
  const std::uint64_t phases_tid = threads;      // synthetic phase track
  const std::uint64_t health_tid = threads + 1;  // synthetic health track
  const std::uint32_t count =
      options.timeline_windows == 0 ? 1 : options.timeline_windows;

  std::ostringstream os;
  os << "{\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{"
     << "\"machine\":\"" << json_escape(data.machine_name) << "\","
     << "\"mechanism\":\"" << pmu::to_string(data.mechanism) << "\","
     << "\"requestedMechanism\":\""
     << pmu::to_string(data.requested_mechanism) << "\","
     << "\"samplingPeriod\":" << data.sampling_period << ","
     << "\"threads\":" << threads << ","
     << "\"timeUnit\":\"virtual cycles\","
     << "\"instantTimestamps\":\"ordinal\"},\n\"traceEvents\":[\n";
  bool first = true;

  metadata_event(os, first, 0, "process_name",
                 "\"name\":\"numaprof " + json_escape(data.machine_name) +
                     " (" + std::string(pmu::to_string(data.mechanism)) +
                     ")\"");
  for (std::uint64_t tid = 0; tid < threads; ++tid) {
    metadata_event(os, first, tid, "thread_name",
                   "\"name\":\"thread " + std::to_string(tid) + "\"");
    metadata_event(os, first, tid, "thread_sort_index",
                   "\"sort_index\":" + std::to_string(tid));
  }
  metadata_event(os, first, phases_tid, "thread_name",
                 "\"name\":\"phases\"");
  metadata_event(os, first, phases_tid, "thread_sort_index",
                 "\"sort_index\":" + std::to_string(phases_tid));
  metadata_event(os, first, health_tid, "thread_name",
                 "\"name\":\"collection health\"");
  metadata_event(os, first, health_tid, "thread_sort_index",
                 "\"sort_index\":" + std::to_string(health_tid));

  TraceAnalysis analysis(data.trace);
  const numasim::Cycles begin = analysis.begin();
  if (!analysis.empty()) {
    const std::vector<TraceWindow> windows = analysis.windows(count);
    const numasim::Cycles span =
        analysis.end() > begin ? analysis.end() - begin : 1;

    // Per-thread and per-domain window stats (TraceWindow aggregates over
    // all threads; the timeline tracks need the split). Same bucket-index
    // formula as TraceAnalysis::bucket so windows line up exactly.
    std::vector<std::vector<ThreadWindow>> per_thread(
        threads, std::vector<ThreadWindow>(count));
    std::vector<std::vector<std::uint64_t>> per_domain(
        count, std::vector<std::uint64_t>(data.domain_count, 0));
    for (const TraceEvent& e : data.trace) {
      auto index = static_cast<std::uint32_t>(
          static_cast<unsigned __int128>(e.time - begin) * count / (span + 1));
      index = index < count ? index : count - 1;
      if (e.tid < threads) {
        ThreadWindow& tw = per_thread[e.tid][index];
        ++tw.samples;
        tw.mismatches += e.mismatch ? 1 : 0;
      }
      if (e.home_domain < data.domain_count) {
        ++per_domain[index][e.home_domain];
      }
    }

    for (std::uint32_t w = 0; w < count; ++w) {
      const TraceWindow& window = windows[w];
      os << ",\n  {\"ph\":\"C\",\"pid\":" << kPid
         << ",\"tid\":0,\"ts\":" << window.begin
         << ",\"name\":\"mismatch fraction\",\"args\":{\"fraction\":"
         << format_fixed(window.mismatch_fraction(), 4) << "}}";
      os << ",\n  {\"ph\":\"C\",\"pid\":" << kPid
         << ",\"tid\":0,\"ts\":" << window.begin
         << ",\"name\":\"remote latency\",\"args\":{\"cycles\":"
         << format_fixed(window.remote_latency, 0) << "}}";
      os << ",\n  {\"ph\":\"C\",\"pid\":" << kPid
         << ",\"tid\":0,\"ts\":" << window.begin
         << ",\"name\":\"domain accesses\",\"args\":{";
      for (std::uint32_t dom = 0; dom < data.domain_count; ++dom) {
        os << (dom == 0 ? "" : ",") << "\"N" << dom
           << "\":" << per_domain[w][dom];
      }
      os << "}}";
      for (std::uint64_t tid = 0; tid < threads; ++tid) {
        const ThreadWindow& tw = per_thread[tid][w];
        if (tw.samples == 0) continue;
        const double fraction = static_cast<double>(tw.mismatches) /
                                static_cast<double>(tw.samples);
        os << ",\n  {\"ph\":\"X\",\"pid\":" << kPid << ",\"tid\":" << tid
           << ",\"ts\":" << window.begin
           << ",\"dur\":" << (window.end - window.begin) << ",\"name\":\""
           << severity_name(fraction) << "\",\"args\":{\"samples\":"
           << tw.samples << ",\"mismatches\":" << tw.mismatches
           << ",\"fraction\":" << format_fixed(fraction, 4) << "}}";
      }
    }

    for (const TracePhase& phase : analysis.phases(count)) {
      os << ",\n  {\"ph\":\"X\",\"pid\":" << kPid
         << ",\"tid\":" << phases_tid << ",\"ts\":" << phase.begin
         << ",\"dur\":" << (phase.end - phase.begin) << ",\"name\":\""
         << (phase.remote_heavy ? "remote-heavy phase" : "local phase")
         << "\",\"args\":{\"samples\":" << phase.samples << "}}";
    }
  }

  // Instant events at ordinal positions (the records carry no timestamp).
  std::uint64_t ordinal = 0;
  for (const DegradationEvent& e : data.degradations) {
    os << ",\n  {\"ph\":\"i\",\"pid\":" << kPid << ",\"tid\":" << health_tid
       << ",\"ts\":" << (begin + ordinal++) << ",\"s\":\"t\",\"name\":\"["
       << to_string(e.kind) << "] " << pmu::to_string(e.mechanism)
       << "\",\"args\":{\"value\":" << e.value << ",\"detail\":\""
       << json_escape(e.detail) << "\"}}";
  }
  ordinal = 0;
  for (const FirstTouchRecord& touch : data.first_touches) {
    const std::string variable =
        touch.variable < data.variables.size()
            ? data.variables[touch.variable].name
            : "variable " + std::to_string(touch.variable);
    os << ",\n  {\"ph\":\"i\",\"pid\":" << kPid << ",\"tid\":" << touch.tid
       << ",\"ts\":" << (begin + ordinal++) << ",\"s\":\"t\","
       << "\"name\":\"first touch " << json_escape(variable)
       << "\",\"args\":{\"domain\":" << touch.domain
       << ",\"page\":" << touch.page << "}}";
  }

  os << "\n]\n}\n";
  return os.str();
}

}  // namespace numaprof::core
