#include "core/export/schema.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

namespace numaprof::core {
namespace {

// Recursive-descent JSON parser. Unlike the telemetry-stream parser (which
// is line-scoped and throws kTelemetry), this one accepts whole documents
// and reports failures as messages so the checkers can accumulate them.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonNode> parse(std::string* error) {
    JsonNode root;
    if (!value(root)) {
      if (error != nullptr) *error = message_;
      return std::nullopt;
    }
    skip_space();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
      if (error != nullptr) *error = message_;
      return std::nullopt;
    }
    return root;
  }

 private:
  bool fail(const std::string& what) {
    if (message_.empty()) {
      message_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool string_value(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4U;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            pos_ += 4;
            // The exporters only escape control characters, so a plain
            // Latin-1 projection is enough for validation purposes.
            out.push_back(static_cast<char>(code & 0xFFU));
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number_value(JsonNode& node) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      pos_ = start;
      return fail("expected number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digit must follow decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("digit must follow exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    node.kind = JsonNode::Kind::kNumber;
    node.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                              nullptr);
    return true;
  }

  bool value(JsonNode& node) {
    skip_space();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    char c = text_[pos_];
    if (c == '{') return object_value(node);
    if (c == '[') return array_value(node);
    if (c == '"') {
      node.kind = JsonNode::Kind::kString;
      return string_value(node.string);
    }
    if (c == 't') {
      node.kind = JsonNode::Kind::kBool;
      node.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      node.kind = JsonNode::Kind::kBool;
      node.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      node.kind = JsonNode::Kind::kNull;
      return literal("null");
    }
    return number_value(node);
  }

  bool object_value(JsonNode& node) {
    node.kind = JsonNode::Kind::kObject;
    ++pos_;  // '{'
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_space();
      std::string key;
      if (!string_value(key)) return false;
      skip_space();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      JsonNode member;
      if (!value(member)) return false;
      node.members.emplace_back(std::move(key), std::move(member));
      skip_space();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array_value(JsonNode& node) {
    node.kind = JsonNode::Kind::kArray;
    ++pos_;  // '['
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonNode item;
      if (!value(item)) return false;
      node.items.push_back(std::move(item));
      skip_space();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

const JsonNode* require(const JsonNode& object, std::string_view key,
                        JsonNode::Kind kind, std::string_view where,
                        std::vector<std::string>& errors) {
  const JsonNode* member = object.find(key);
  if (member == nullptr) {
    errors.push_back(std::string(where) + ": missing \"" + std::string(key) +
                     "\"");
    return nullptr;
  }
  if (member->kind != kind) {
    errors.push_back(std::string(where) + ": \"" + std::string(key) +
                     "\" has wrong type");
    return nullptr;
  }
  return member;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

void check_trace_event(const JsonNode& event, std::size_t index,
                       std::vector<std::string>& errors) {
  std::string where = "traceEvents[" + std::to_string(index) + "]";
  if (event.kind != JsonNode::Kind::kObject) {
    errors.push_back(where + ": not an object");
    return;
  }
  const JsonNode* ph = require(event, "ph", JsonNode::Kind::kString, where,
                               errors);
  require(event, "name", JsonNode::Kind::kString, where, errors);
  require(event, "pid", JsonNode::Kind::kNumber, where, errors);
  if (ph == nullptr) return;
  // Phases the exporter emits; anything else is a bug, not a new feature.
  static const std::set<std::string> kKnown = {"M", "C", "X", "i"};
  if (kKnown.count(ph->string) == 0) {
    errors.push_back(where + ": unknown phase \"" + ph->string + "\"");
    return;
  }
  if (ph->string != "M") {
    require(event, "ts", JsonNode::Kind::kNumber, where, errors);
    require(event, "tid", JsonNode::Kind::kNumber, where, errors);
  }
  if (ph->string == "X") {
    require(event, "dur", JsonNode::Kind::kNumber, where, errors);
  }
  if (ph->string == "C" || ph->string == "M") {
    require(event, "args", JsonNode::Kind::kObject, where, errors);
  }
}

}  // namespace

const JsonNode* JsonNode::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<JsonNode> parse_json(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

std::vector<std::string> json_well_formed(std::string_view text) {
  std::string error;
  if (!parse_json(text, &error)) {
    return {error};
  }
  return {};
}

std::vector<std::string> check_trace_json(std::string_view text) {
  std::string parse_error;
  std::optional<JsonNode> root = parse_json(text, &parse_error);
  if (!root) return {parse_error};
  std::vector<std::string> errors;
  if (root->kind != JsonNode::Kind::kObject) {
    return {"trace: root is not an object"};
  }
  const JsonNode* events = require(*root, "traceEvents",
                                   JsonNode::Kind::kArray, "trace", errors);
  require(*root, "displayTimeUnit", JsonNode::Kind::kString, "trace", errors);
  if (events == nullptr) return errors;
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    check_trace_event(events->items[i], i, errors);
  }
  return errors;
}

std::vector<std::string> check_speedscope_json(std::string_view text) {
  std::string parse_error;
  std::optional<JsonNode> root = parse_json(text, &parse_error);
  if (!root) return {parse_error};
  std::vector<std::string> errors;
  if (root->kind != JsonNode::Kind::kObject) {
    return {"speedscope: root is not an object"};
  }
  const JsonNode* schema = require(*root, "$schema", JsonNode::Kind::kString,
                                   "speedscope", errors);
  if (schema != nullptr &&
      schema->string != "https://www.speedscope.app/file-format-schema.json") {
    errors.push_back("speedscope: unexpected $schema \"" + schema->string +
                     "\"");
  }
  std::size_t frame_count = 0;
  if (const JsonNode* shared = require(*root, "shared",
                                       JsonNode::Kind::kObject, "speedscope",
                                       errors)) {
    if (const JsonNode* frames = require(*shared, "frames",
                                         JsonNode::Kind::kArray,
                                         "speedscope.shared", errors)) {
      frame_count = frames->items.size();
      for (std::size_t i = 0; i < frames->items.size(); ++i) {
        const JsonNode& frame = frames->items[i];
        std::string where = "speedscope.shared.frames[" + std::to_string(i) +
                            "]";
        if (frame.kind != JsonNode::Kind::kObject) {
          errors.push_back(where + ": not an object");
          continue;
        }
        require(frame, "name", JsonNode::Kind::kString, where, errors);
      }
    }
  }
  const JsonNode* profiles = require(*root, "profiles", JsonNode::Kind::kArray,
                                     "speedscope", errors);
  if (profiles == nullptr) return errors;
  if (profiles->items.empty()) {
    errors.push_back("speedscope: \"profiles\" is empty");
  }
  for (std::size_t p = 0; p < profiles->items.size(); ++p) {
    const JsonNode& profile = profiles->items[p];
    std::string where = "speedscope.profiles[" + std::to_string(p) + "]";
    if (profile.kind != JsonNode::Kind::kObject) {
      errors.push_back(where + ": not an object");
      continue;
    }
    const JsonNode* type = require(profile, "type", JsonNode::Kind::kString,
                                   where, errors);
    if (type != nullptr && type->string != "sampled") {
      errors.push_back(where + ": type is not \"sampled\"");
    }
    require(profile, "name", JsonNode::Kind::kString, where, errors);
    require(profile, "unit", JsonNode::Kind::kString, where, errors);
    require(profile, "startValue", JsonNode::Kind::kNumber, where, errors);
    require(profile, "endValue", JsonNode::Kind::kNumber, where, errors);
    const JsonNode* samples = require(profile, "samples",
                                      JsonNode::Kind::kArray, where, errors);
    const JsonNode* weights = require(profile, "weights",
                                      JsonNode::Kind::kArray, where, errors);
    if (samples == nullptr || weights == nullptr) continue;
    if (samples->items.size() != weights->items.size()) {
      errors.push_back(where + ": samples/weights length mismatch");
    }
    for (std::size_t s = 0; s < samples->items.size(); ++s) {
      const JsonNode& stack = samples->items[s];
      if (stack.kind != JsonNode::Kind::kArray) {
        errors.push_back(where + ".samples[" + std::to_string(s) +
                         "]: not an array");
        continue;
      }
      for (const JsonNode& frame : stack.items) {
        if (frame.kind != JsonNode::Kind::kNumber || frame.number < 0 ||
            frame.number >= static_cast<double>(frame_count)) {
          errors.push_back(where + ".samples[" + std::to_string(s) +
                           "]: frame index out of range");
          break;
        }
      }
    }
  }
  return errors;
}

std::vector<std::string> check_collapsed_stacks(std::string_view text) {
  std::vector<std::string> errors;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;
    if (line.empty()) continue;
    std::string where = "collapsed line " + std::to_string(line_number);
    std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0 ||
        space + 1 >= line.size()) {
      errors.push_back(where + ": expected \"stack weight\"");
      continue;
    }
    std::string_view weight = line.substr(space + 1);
    bool numeric = true;
    for (char c : weight) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) numeric = false;
    }
    if (!numeric) {
      errors.push_back(where + ": weight is not a non-negative integer");
    }
    std::string_view stack = line.substr(0, space);
    if (stack.front() == ';' || stack.back() == ';' ||
        stack.find(";;") != std::string_view::npos) {
      errors.push_back(where + ": empty frame in stack");
    }
  }
  return errors;
}

std::vector<std::string> check_html_report(std::string_view text) {
  std::vector<std::string> errors;
  auto expect = [&](std::string_view needle, std::string_view what) {
    if (text.find(needle) == std::string_view::npos) {
      errors.push_back("html: missing " + std::string(what));
    }
  };
  if (text.rfind("<!DOCTYPE html>", 0) != 0) {
    errors.push_back("html: missing <!DOCTYPE html> preamble");
  }
  expect("<html", "<html> element");
  expect("</html>", "</html> close tag");
  // The five panes the issue requires, keyed by their section ids.
  expect("id=\"summary\"", "summary pane");
  expect("id=\"code-centric\"", "code-centric pane");
  expect("id=\"data-centric\"", "data-centric pane");
  expect("id=\"address-centric\"", "address-centric pane");
  expect("id=\"timeline\"", "timeline pane");
  expect("id=\"health\"", "collection-health pane");
  expect("<svg", "inline SVG plot");
  // Self-containment: no reference may leave the file.
  for (std::string_view needle :
       {std::string_view("src=\"http"), std::string_view("href=\"http"),
        std::string_view("src=\"//"), std::string_view("href=\"//"),
        std::string_view("url(http"), std::string_view("<script src"),
        std::string_view("<link rel=\"stylesheet\" href")}) {
    if (text.find(needle) != std::string_view::npos) {
      errors.push_back("html: external asset reference (" +
                       std::string(needle) + ")");
    }
  }
  return errors;
}

namespace {

bool known_sarif_level(const std::string& level) {
  return level == "none" || level == "note" || level == "warning" ||
         level == "error";
}

void check_sarif_result(const JsonNode& result, std::size_t index,
                        const std::vector<std::string>& rule_ids,
                        std::vector<std::string>& errors) {
  const std::string where = "sarif.results[" + std::to_string(index) + "]";
  if (result.kind != JsonNode::Kind::kObject) {
    errors.push_back(where + ": not an object");
    return;
  }
  const JsonNode* rule_id =
      require(result, "ruleId", JsonNode::Kind::kString, where, errors);
  if (const JsonNode* rule_index = result.find("ruleIndex")) {
    if (rule_index->kind != JsonNode::Kind::kNumber ||
        rule_index->number < 0 ||
        rule_index->number >= static_cast<double>(rule_ids.size())) {
      errors.push_back(where + ": ruleIndex out of range");
    } else if (rule_id != nullptr &&
               rule_ids[static_cast<std::size_t>(rule_index->number)] !=
                   rule_id->string) {
      errors.push_back(where + ": ruleIndex does not match ruleId \"" +
                       rule_id->string + "\"");
    }
  }
  if (const JsonNode* level =
          require(result, "level", JsonNode::Kind::kString, where, errors)) {
    if (!known_sarif_level(level->string)) {
      errors.push_back(where + ": unknown level \"" + level->string + "\"");
    }
  }
  if (const JsonNode* message = require(result, "message",
                                        JsonNode::Kind::kObject, where,
                                        errors)) {
    require(*message, "text", JsonNode::Kind::kString, where + ".message",
            errors);
  }
  const JsonNode* locations =
      require(result, "locations", JsonNode::Kind::kArray, where, errors);
  if (locations == nullptr) return;
  for (std::size_t l = 0; l < locations->items.size(); ++l) {
    const std::string lwhere = where + ".locations[" + std::to_string(l) + "]";
    const JsonNode& loc = locations->items[l];
    if (loc.kind != JsonNode::Kind::kObject) {
      errors.push_back(lwhere + ": not an object");
      continue;
    }
    const JsonNode* phys = require(loc, "physicalLocation",
                                   JsonNode::Kind::kObject, lwhere, errors);
    if (phys == nullptr) continue;
    if (const JsonNode* artifact =
            require(*phys, "artifactLocation", JsonNode::Kind::kObject,
                    lwhere, errors)) {
      require(*artifact, "uri", JsonNode::Kind::kString,
              lwhere + ".artifactLocation", errors);
    }
    if (const JsonNode* region = require(*phys, "region",
                                         JsonNode::Kind::kObject, lwhere,
                                         errors)) {
      const JsonNode* start = require(*region, "startLine",
                                      JsonNode::Kind::kNumber,
                                      lwhere + ".region", errors);
      if (start != nullptr && start->number < 1) {
        errors.push_back(lwhere + ".region: startLine < 1");
      }
    }
  }
}

}  // namespace

std::vector<std::string> check_sarif_json(std::string_view text) {
  std::string parse_error;
  std::optional<JsonNode> root = parse_json(text, &parse_error);
  if (!root) return {parse_error};
  std::vector<std::string> errors;
  if (root->kind != JsonNode::Kind::kObject) {
    return {"sarif: root is not an object"};
  }
  if (const JsonNode* version =
          require(*root, "version", JsonNode::Kind::kString, "sarif",
                  errors)) {
    if (version->string != "2.1.0") {
      errors.push_back("sarif: version is \"" + version->string +
                       "\", expected \"2.1.0\"");
    }
  }
  const JsonNode* runs =
      require(*root, "runs", JsonNode::Kind::kArray, "sarif", errors);
  if (runs == nullptr) return errors;
  if (runs->items.empty()) errors.push_back("sarif: \"runs\" is empty");
  for (std::size_t r = 0; r < runs->items.size(); ++r) {
    const std::string where = "sarif.runs[" + std::to_string(r) + "]";
    const JsonNode& run = runs->items[r];
    if (run.kind != JsonNode::Kind::kObject) {
      errors.push_back(where + ": not an object");
      continue;
    }
    std::vector<std::string> rule_ids;
    const JsonNode* tool =
        require(run, "tool", JsonNode::Kind::kObject, where, errors);
    const JsonNode* driver =
        tool == nullptr ? nullptr
                        : require(*tool, "driver", JsonNode::Kind::kObject,
                                  where + ".tool", errors);
    if (driver != nullptr) {
      require(*driver, "name", JsonNode::Kind::kString,
              where + ".tool.driver", errors);
      if (const JsonNode* rules =
              require(*driver, "rules", JsonNode::Kind::kArray,
                      where + ".tool.driver", errors)) {
        for (std::size_t i = 0; i < rules->items.size(); ++i) {
          const std::string rwhere =
              where + ".tool.driver.rules[" + std::to_string(i) + "]";
          const JsonNode& rule = rules->items[i];
          if (rule.kind != JsonNode::Kind::kObject) {
            errors.push_back(rwhere + ": not an object");
            rule_ids.emplace_back();
            continue;
          }
          const JsonNode* id =
              require(rule, "id", JsonNode::Kind::kString, rwhere, errors);
          rule_ids.push_back(id == nullptr ? std::string() : id->string);
          if (const JsonNode* config = rule.find("defaultConfiguration")) {
            const JsonNode* level =
                config->kind == JsonNode::Kind::kObject ? config->find("level")
                                                        : nullptr;
            if (level == nullptr ||
                level->kind != JsonNode::Kind::kString ||
                !known_sarif_level(level->string)) {
              errors.push_back(rwhere +
                               ": defaultConfiguration.level is not a known "
                               "level");
            }
          }
        }
      }
    }
    const JsonNode* results =
        require(run, "results", JsonNode::Kind::kArray, where, errors);
    if (results == nullptr) continue;
    for (std::size_t i = 0; i < results->items.size(); ++i) {
      check_sarif_result(results->items[i], i, rule_ids, errors);
    }
  }
  return errors;
}

std::vector<std::string> check_artifact(std::string_view filename,
                                        std::string_view bytes) {
  if (ends_with(filename, ".sarif") || ends_with(filename, ".sarif.json")) {
    return check_sarif_json(bytes);
  }
  if (ends_with(filename, ".trace.json")) return check_trace_json(bytes);
  if (ends_with(filename, ".speedscope.json")) {
    return check_speedscope_json(bytes);
  }
  if (ends_with(filename, ".collapsed.txt")) {
    return check_collapsed_stacks(bytes);
  }
  if (ends_with(filename, ".html")) return check_html_report(bytes);
  return {"unknown artifact kind for \"" + std::string(filename) + "\""};
}

}  // namespace numaprof::core
