// Exportable observability (the consumer-surface layer on top of the
// viewer): deterministic exporters that render one analyzed profile into
// standard interactive visualization formats.
//
//  - Chrome trace-event / Perfetto JSON: the recorded trace as per-thread
//    timeline tracks plus counter tracks (mismatch fraction, remote
//    latency, per-domain access counts) and instant events for
//    DegradationEvents and first-touch faults, so measurement health lands
//    on the same timeline as application behaviour. Load in
//    ui.perfetto.dev or chrome://tracing.
//  - Collapsed-stack flamegraphs over the CCT's [ACCESS] subtree, frames
//    weighted by NUMA cost (M_r, remote latency, or lpi_NUMA), in both
//    Brendan-Gregg collapsed format (flamegraph.pl) and speedscope JSON.
//  - A self-contained HTML report: program summary, code/data/address-
//    centric panes (the [min,max] range plot as inline SVG), the trace
//    timeline, and the collection-health pane in ONE file with no external
//    asset references.
//
// Determinism contract (extends docs/analyzer.md): every exporter is a
// pure function of the Analyzer — no wall-clock timestamps, only virtual
// Cycles — so artifacts are byte-identical across repeated runs and for
// any PipelineOptions::jobs. Failures surface as numaprof::Error with
// kind ErrorKind::kExport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"

namespace numaprof::core {

/// What to export. kAll expands to every artifact of the other kinds.
enum class ExportKind : std::uint8_t {
  kTraceJson,   // Chrome trace-event / Perfetto JSON ("trace")
  kFlamegraph,  // collapsed stacks + speedscope JSON ("flamegraph")
  kHtml,        // self-contained HTML report ("html")
  kAll,         // everything above ("all")
};

/// Number of ExportKind enumerators.
inline constexpr int kExportKindCount = 4;

std::string_view to_string(ExportKind k) noexcept;

/// Parses the CLI spelling (trace | flamegraph | html | all); nullopt for
/// anything else — the CLIs reject that with their usage string.
std::optional<ExportKind> parse_export_kind(std::string_view text) noexcept;

/// Frame weight of the flamegraph exporters (§4's NUMA-cost choices).
enum class FlameWeight : std::uint8_t {
  kMismatch,       // M_r: sampled remote accesses ("mismatch")
  kRemoteLatency,  // l^s_NUMA: sampled remote latency ("remote-latency")
  kLpi,            // lpi_NUMA x 1000 per context ("lpi")
};

/// Number of FlameWeight enumerators.
inline constexpr int kFlameWeightCount = 3;

std::string_view to_string(FlameWeight w) noexcept;

/// Parses the CLI spelling (mismatch | remote-latency | lpi).
std::optional<FlameWeight> parse_flame_weight(std::string_view text) noexcept;

struct ExportOptions {
  /// Windows of the trace-derived counter tracks and the HTML timeline.
  std::uint32_t timeline_windows = 64;
  /// Flamegraph frame weight.
  FlameWeight weight = FlameWeight::kRemoteLatency;
  /// Variables that get an address-centric SVG pane in the HTML report.
  std::size_t top_variables = 3;
  /// Rows of the HTML ranking tables.
  std::size_t table_rows = 20;
  /// Artifact file-name stem (write_exports / export_artifacts).
  std::string basename = "numaprof";
};

/// One rendered artifact: a relative file name plus its full content.
struct ExportArtifact {
  ExportKind kind = ExportKind::kTraceJson;
  std::string filename;
  std::string bytes;
};

/// Chrome trace-event JSON (one self-contained object; load in
/// ui.perfetto.dev or chrome://tracing). Works without a recorded trace —
/// the counter and per-thread tracks are empty then, but degradation and
/// first-touch instants still render.
std::string export_trace_json(const Analyzer& analyzer,
                              const ExportOptions& options = {});

/// Brendan-Gregg collapsed stacks ("frame;frame;frame weight" lines) over
/// the [ACCESS] subtree; empty string when nothing was sampled.
std::string export_collapsed_stacks(const Analyzer& analyzer,
                                    const ExportOptions& options = {});

/// speedscope JSON (https://speedscope.app file format) of the same
/// weighted stacks.
std::string export_speedscope(const Analyzer& analyzer,
                              const ExportOptions& options = {});

/// The self-contained HTML report (single file, inline CSS/SVG only).
std::string export_html(const Analyzer& analyzer,
                        const ExportOptions& options = {});

/// Renders every artifact of `kind` (kAll = all four) in deterministic
/// order: trace JSON, collapsed stacks, speedscope, HTML.
std::vector<ExportArtifact> export_artifacts(const Analyzer& analyzer,
                                             ExportKind kind,
                                             const ExportOptions& options = {});

/// Writes the artifacts of `kind` into `directory` (created if missing,
/// files overwritten); returns the paths written, in artifact order.
/// Throws numaprof::Error (kind kExport) when the directory cannot be
/// created or a file cannot be written.
std::vector<std::string> write_exports(const Analyzer& analyzer,
                                       ExportKind kind,
                                       const std::string& directory,
                                       const ExportOptions& options = {});

}  // namespace numaprof::core
