// Internal escaping helpers shared by the exporters. Not part of the
// public surface (include core/export/export.hpp instead).
#pragma once

#include <string>
#include <string_view>

namespace numaprof::core::export_detail {

/// Escapes `text` for use inside a JSON string literal (quotes, backslash,
/// and control characters; everything else passes through byte-for-byte).
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Escapes `text` for HTML text / attribute content.
inline std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Collapsed-stack frames may not contain the separators of the format.
inline std::string collapsed_escape(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == ';') c = ':';
    if (c == '\n') c = ' ';
  }
  return out;
}

}  // namespace numaprof::core::export_detail
