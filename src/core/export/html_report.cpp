// Self-contained HTML report generator.
//
// One file, inline CSS and inline SVG only — no scripts, no external
// references — so the report can be archived next to the profile, attached
// to a ticket, or opened from a CI artifact without a web server. The five
// panes mirror the viewer: program summary, code-centric, data-centric,
// address-centric (the Fig. 3 [min,max] range plot rendered as SVG),
// timeline, and collection health.
#include <sstream>
#include <string>
#include <vector>

#include "core/export/export.hpp"
#include "core/export/writer_util.hpp"
#include "core/trace.hpp"
#include "core/viewer.hpp"
#include "support/table.hpp"

namespace numaprof::core {
namespace {

using export_detail::html_escape;
using support::format_count;
using support::format_fixed;

void html_table(std::ostringstream& os, const support::Table& table) {
  os << "<table><thead><tr>";
  for (const std::string& cell : table.header()) {
    os << "<th>" << html_escape(cell) << "</th>";
  }
  os << "</tr></thead><tbody>\n";
  for (const std::vector<std::string>& row : table.rows()) {
    os << "<tr>";
    for (const std::string& cell : row) {
      os << "<td" << (support::looks_numeric(cell) ? " class=\"num\"" : "")
         << ">" << html_escape(cell) << "</td>";
    }
    os << "</tr>\n";
  }
  os << "</tbody></table>\n";
}

// Layout constants of the range plot (SVG user units).
constexpr double kPlotLeft = 64.0;    // label gutter
constexpr double kPlotWidth = 560.0;  // [0,1] span
constexpr double kRowHeight = 16.0;

/// The Fig. 3 plot: one horizontal bar per thread spanning the normalized
/// [min,max] of its accesses to the variable.
void range_plot_svg(std::ostringstream& os,
                    const std::vector<ThreadRange>& ranges) {
  const double height =
      kRowHeight * static_cast<double>(ranges.size()) + 24.0;
  os << "<svg viewBox=\"0 0 " << format_fixed(kPlotLeft + kPlotWidth + 8, 0)
     << " " << format_fixed(height, 0) << "\" role=\"img\">\n";
  os << "<line x1=\"" << format_fixed(kPlotLeft, 0) << "\" y1=\"0\" x2=\""
     << format_fixed(kPlotLeft, 0) << "\" y2=\""
     << format_fixed(height - 20.0, 0) << "\" class=\"axis\"/>\n";
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const ThreadRange& r = ranges[i];
    const double y = kRowHeight * static_cast<double>(i);
    const double x = kPlotLeft + r.lo * kPlotWidth;
    const double w = (r.hi - r.lo) * kPlotWidth;
    os << "<text x=\"" << format_fixed(kPlotLeft - 6.0, 0) << "\" y=\""
       << format_fixed(y + 12.0, 0) << "\" class=\"tid\">t" << r.tid
       << "</text>";
    os << "<rect x=\"" << format_fixed(x, 1) << "\" y=\""
       << format_fixed(y + 3.0, 0) << "\" width=\""
       << format_fixed(w < 2.0 ? 2.0 : w, 1)
       << "\" height=\"10\" class=\"range\"><title>thread " << r.tid << ": ["
       << format_fixed(r.lo, 3) << "," << format_fixed(r.hi, 3) << "] "
       << format_count(r.count) << " samples</title></rect>\n";
  }
  os << "<text x=\"" << format_fixed(kPlotLeft, 0) << "\" y=\""
     << format_fixed(height - 6.0, 0) << "\" class=\"tick\">0.0</text>"
     << "<text x=\"" << format_fixed(kPlotLeft + kPlotWidth - 16.0, 0)
     << "\" y=\"" << format_fixed(height - 6.0, 0)
     << "\" class=\"tick\">1.0</text>\n</svg>\n";
}

}  // namespace

std::string export_html(const Analyzer& analyzer,
                        const ExportOptions& options) {
  const SessionData& data = analyzer.data();
  Viewer viewer(analyzer);
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>numaprof report: "
     << html_escape(data.machine_name) << "</title>\n<style>\n"
     << "body{font:14px/1.4 sans-serif;margin:1.5em auto;max-width:72em;"
     << "color:#222;padding:0 1em}\n"
     << "h1{font-size:1.4em}h2{font-size:1.1em;border-bottom:1px solid #ccc;"
     << "padding-bottom:.2em;margin-top:1.6em}\n"
     << "pre{background:#f6f6f6;padding:.8em;overflow-x:auto}\n"
     << "table{border-collapse:collapse;margin:.5em 0}\n"
     << "th,td{border:1px solid #ccc;padding:.2em .5em;text-align:left}\n"
     << "td.num{text-align:right;font-variant-numeric:tabular-nums}\n"
     << "svg{max-width:100%;background:#fafafa;border:1px solid #eee}\n"
     << "svg .range{fill:#4878a8}svg .axis{stroke:#888}\n"
     << "svg text{font:10px sans-serif;fill:#444}\n"
     << "svg .tid{text-anchor:end}\n"
     << "footer{margin-top:2em;color:#777;font-size:.85em}\n"
     << "</style>\n</head>\n<body>\n"
     << "<h1>numaprof report: " << html_escape(data.machine_name)
     << "</h1>\n";

  os << "<section id=\"summary\">\n<h2>Program summary</h2>\n<pre>"
     << html_escape(viewer.program_summary()) << "</pre>\n";
  html_table(os, viewer.domain_balance_table());
  os << "</section>\n";

  os << "<section id=\"code-centric\">\n<h2>Code-centric view</h2>\n";
  html_table(os, viewer.code_centric_table(options.table_rows));
  os << "</section>\n";

  os << "<section id=\"data-centric\">\n<h2>Data-centric view</h2>\n";
  html_table(os, viewer.data_centric_table(options.table_rows));
  os << "</section>\n";

  os << "<section id=\"address-centric\">\n"
     << "<h2>Address-centric view</h2>\n"
     << "<p>Per-thread normalized [min,max] accessed range per variable "
     << "(hot bins only).</p>\n";
  std::size_t plotted = 0;
  for (const VariableReport& report : analyzer.variables()) {
    if (plotted >= options.top_variables) break;
    if (report.id >= data.variables.size()) continue;
    const std::vector<ThreadRange> ranges =
        data.address_centric.thread_ranges(data.variables[report.id]);
    if (ranges.empty()) continue;
    ++plotted;
    os << "<h3>" << html_escape(report.name) << " ("
       << to_string(report.kind) << ", " << format_count(report.samples)
       << " samples)</h3>\n";
    range_plot_svg(os, ranges);
  }
  if (plotted == 0) {
    // Keep the pane (and an SVG element) present even on empty profiles so
    // the report's structure — and its validator — never depends on data.
    os << "<svg viewBox=\"0 0 632 24\" role=\"img\"><text x=\"8\" y=\"16\">"
       << "no sampled variables</text></svg>\n";
  }
  os << "</section>\n";

  os << "<section id=\"timeline\">\n<h2>Timeline</h2>\n";
  TraceAnalysis analysis(data.trace);
  if (analysis.empty()) {
    os << "<p>No trace recorded (run with record_trace to add the time "
       << "axis).</p>\n";
  } else {
    os << "<p>Mismatch fraction over virtual time ("
       << options.timeline_windows << " windows; ' ' none, '.' &lt;25%, "
       << "'-' &lt;50%, '+' &lt;75%, '#' &ge;75%):</p>\n<pre>"
     << html_escape(viewer.trace_timeline(options.timeline_windows))
       << "</pre>\n";
    support::Table phases({"phase", "begin", "end", "kind", "samples"});
    std::size_t index = 0;
    for (const TracePhase& phase : analysis.phases(options.timeline_windows)) {
      phases.add_row({std::to_string(index++), std::to_string(phase.begin),
                      std::to_string(phase.end),
                      phase.remote_heavy ? "remote-heavy" : "local",
                      format_count(phase.samples)});
    }
    html_table(os, phases);
  }
  os << "</section>\n";

  os << "<section id=\"health\">\n<h2>Collection health</h2>\n";
  const std::string health = viewer.collection_health();
  if (health.empty()) {
    os << "<p>Collected exactly as configured; no degradation recorded."
       << "</p>\n";
  } else {
    os << "<pre>" << html_escape(health) << "</pre>\n";
  }
  os << "</section>\n";

  os << "<footer>Generated by numaprof. Deterministic: byte-identical for "
     << "any --jobs value and across repeated runs (virtual time only)."
     << "</footer>\n</body>\n</html>\n";
  return os.str();
}

}  // namespace numaprof::core
