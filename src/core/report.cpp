#include "core/report.hpp"

#include <filesystem>
#include <fstream>

#include "core/trace.hpp"

namespace numaprof::core {

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::string& contents) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("report: cannot write " + path.string());
  }
  os << contents;
}

/// File-system-safe variable name.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "unnamed" : out;
}

}  // namespace

std::string write_report(const Analyzer& analyzer,
                         const std::string& directory,
                         const ReportOptions& options) {
  const fs::path root(directory);
  fs::create_directories(root);
  const Viewer viewer(analyzer);
  const SessionData& data = analyzer.data();

  // Main report.
  std::string report = viewer.program_summary();
  const std::string health = viewer.collection_health();
  if (!health.empty()) {
    report += "\n== collection health ==\n" + health;
  }
  report += "\n== data-centric ranking ==\n";
  report += viewer.data_centric_table(options.table_rows).to_text();
  report += "\n== code-centric ranking ==\n";
  report += viewer.code_centric_table(options.table_rows).to_text();
  report += "\n== per-domain request balance ==\n";
  report += viewer.domain_balance_table().to_text();
  // (The request balance reflects sampled TRAFFIC; a numastat-style page
  // PLACEMENT histogram is available via
  // simos::PageTable::placement_histogram on a live machine.)
  report += "\n== program structure (augmented CCT) ==\n";
  report += viewer.cct_tree();
  const std::string timeline = viewer.trace_timeline(options.timeline_windows);
  if (!timeline.empty()) {
    report += "\n== time-varying behaviour ==\n" + timeline;
  }

  const Advisor advisor(analyzer);
  report += "\n== recommendations ==\n";
  for (const Recommendation& rec :
       advisor.recommend_all(options.top_variables)) {
    report += rec.variable_name + ": " + std::string(to_string(rec.action)) +
              "\n  " + rec.rationale + "\n";
    for (const FirstTouchSite& site : rec.first_touch_sites) {
      report += "  first touch: " + data.path_string(site.node) + "\n";
    }
  }
  write_file(root / "report.txt", report);

  // Machine-readable rankings.
  write_file(root / "data_centric.csv",
             viewer.data_centric_table(options.table_rows).to_csv());
  write_file(root / "code_centric.csv",
             viewer.code_centric_table(options.table_rows).to_csv());
  write_file(root / "domains.csv", viewer.domain_balance_table().to_csv());
  if (!timeline.empty()) write_file(root / "timeline.txt", timeline);

  // Per-variable detail directories.
  std::size_t emitted = 0;
  for (const VariableReport& var : analyzer.variables()) {
    if (emitted++ >= options.top_variables) break;
    const fs::path dir = root / ("var_" + sanitize(var.name));
    fs::create_directories(dir);
    write_file(dir / "ranges.csv",
               viewer.address_centric_table(var.id).to_csv());
    write_file(dir / "ranges.txt", viewer.address_centric_plot(var.id));
    write_file(dir / "first_touch.txt",
               viewer.first_touch_table(var.id).to_text());
    write_file(dir / "data_sources.txt",
               viewer.data_source_table(var.id).to_text());
  }

  return (root / "report.txt").string();
}

}  // namespace numaprof::core
