// Address-centric attribution (§5.2): per-thread accessed address ranges,
// binned, per calling context.
//
// For each sampled access the tracker updates the [min,max] accessed range
// of the touched variable — in the whole-program context AND in every
// enclosing frame on the call path ("update the lower and upper bounds of x
// accessed for each procedure along the call path"). A variable wider than
// five pages is split into bins (default 5, NUMAPROF_BINS overrides); each
// bin is a synthetic variable with its own attribution, so hot sub-ranges
// are distinguishable from cold ones, and per-thread patterns are computed
// from hot bins only.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/datacentric.hpp"
#include "simos/types.hpp"
#include "simrt/frame.hpp"

namespace numaprof::core {

/// Context sentinel: statistics aggregated over the whole program rather
/// than one frame.
inline constexpr simrt::FrameId kWholeProgram = simrt::kInvalidFrame;

/// Variables whose extent exceeds this many pages get binned (§5.2).
inline constexpr std::uint64_t kBinPageThreshold = 5;

struct BinStats {
  simos::VAddr lo = ~0ULL;  // min accessed address
  simos::VAddr hi = 0;      // max accessed address (inclusive)
  std::uint64_t count = 0;
  double latency = 0.0;

  void update(simos::VAddr addr, double access_latency) noexcept {
    lo = addr < lo ? addr : lo;
    hi = addr > hi ? addr : hi;
    ++count;
    latency += access_latency;
  }
  /// [min,max] merge — the custom reduction hpcprof needed (§7.2).
  void merge(const BinStats& other) noexcept {
    lo = other.lo < lo ? other.lo : lo;
    hi = other.hi > hi ? other.hi : hi;
    count += other.count;
    latency += other.latency;
  }
};

/// One record key: (context frame, variable, bin, thread).
struct BinKey {
  simrt::FrameId context = kWholeProgram;
  VariableId variable = 0;
  std::uint32_t bin = 0;
  simrt::ThreadId tid = 0;

  bool operator==(const BinKey&) const = default;
};

struct BinKeyHash {
  std::size_t operator()(const BinKey& k) const noexcept {
    std::uint64_t h = k.context;
    h = h * 0x9e3779b97f4a7c15ULL + k.variable;
    h = h * 0x9e3779b97f4a7c15ULL + k.bin;
    h = h * 0x9e3779b97f4a7c15ULL + k.tid;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Per-thread accessed range of a variable in one context, normalized to
/// the variable's extent ([0,1]) — one row of the hpcviewer address-
/// centric plot (Fig. 3 top right).
struct ThreadRange {
  simrt::ThreadId tid = 0;
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  double latency = 0.0;
};

class AddressCentric {
 public:
  explicit AddressCentric(std::uint32_t default_bins = 5)
      : default_bins_(default_bins == 0 ? 1 : default_bins) {}

  /// Records one sampled access. `stack` is the sample's call path.
  void record(std::span<const simrt::FrameId> stack, const Variable& variable,
              simrt::ThreadId tid, simos::VAddr addr, double latency);

  /// Bin count used for `variable` (1 below the page threshold).
  std::uint32_t bins_for(const Variable& variable) const noexcept;

  /// Bin index of `addr` within `variable`.
  std::uint32_t bin_of(const Variable& variable,
                       simos::VAddr addr) const noexcept;

  /// Per-thread normalized ranges for (variable, context), computed over
  /// the *hot* bins: the smallest count-descending set of bins covering at
  /// least `hot_fraction` of the thread's accesses. Sorted by tid.
  std::vector<ThreadRange> thread_ranges(
      const Variable& variable,
      simrt::FrameId context = kWholeProgram,
      double hot_fraction = 0.9) const;

  /// Raw per-bin stats for (variable, context, tid); index = bin.
  std::vector<BinStats> bins(const Variable& variable, simrt::FrameId context,
                             simrt::ThreadId tid) const;

  /// [min,max]-merged accessed range over ALL threads for (variable,
  /// context): the cross-thread reduction of §7.2. nullopt if unsampled.
  std::optional<BinStats> merged_range(const Variable& variable,
                                       simrt::FrameId context) const;

  /// Total sampled latency attributed to (variable, context) — the weight
  /// used to pick which context's pattern should guide optimization (§5.2,
  /// the AMG parallel-region analysis).
  double context_latency(const Variable& variable,
                         simrt::FrameId context) const;

  /// Contexts (frames) with samples for `variable`, with their aggregate
  /// latency, descending.
  std::vector<std::pair<simrt::FrameId, double>> contexts_of(
      const Variable& variable) const;

  /// Iterates every (key, stats) entry (serialization support).
  void for_each(
      const std::function<void(const BinKey&, const BinStats&)>& fn) const;

  /// Every entry in deterministic (context, variable, bin, tid) order. The
  /// serializer writes this order so a saved profile is byte-stable
  /// regardless of the hash map's insertion history (e.g. serial vs
  /// parallel merges producing the same entries).
  std::vector<std::pair<BinKey, BinStats>> sorted_entries() const;

  /// Inserts a raw entry (deserialization support).
  void insert(const BinKey& key, const BinStats& stats);

  /// Folds every entry of `other` into this tracker — the cross-thread
  /// half of the §7.2 reduction ([min,max] on bounds, sum on counts and
  /// latency, per key).
  void merge_from(const AddressCentric& other);

  std::size_t entry_count() const noexcept { return entries_.size(); }

 private:
  std::uint32_t default_bins_;
  std::unordered_map<BinKey, BinStats, BinKeyHash> entries_;
};

}  // namespace numaprof::core
