#include "core/profile_io.hpp"

#include <algorithm>
#include <filesystem>
#include <tuple>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/format/format.hpp"
#include "support/threadpool.hpp"

namespace numaprof::core {

namespace {

constexpr char kHex[] = "0123456789abcdef";

/// A record line in the format is at least this wide; reserve() for a
/// claimed count is clamped to what the remaining bytes could possibly
/// hold, so a corrupt header cannot trigger a huge allocation.
constexpr std::uint64_t kMinBytesPerRecord = 4;

bool needs_escape(char c) noexcept {
  return c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
         static_cast<unsigned char>(c) < 0x20;
}

}  // namespace

ProfileError::ProfileError(std::string field, std::size_t line,
                           const std::string& message)
    : Error(ErrorKind::kProfile, /*file=*/{}, field, line,
            "profile parse error: " + field + " (line " +
                std::to_string(line) + "): " + message) {}

std::string escape_field(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (needs_escape(c)) {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out = "%00";  // empty fields must still tokenize
  return out;
}

std::string unescape_field(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%') {
      if (i + 2 >= escaped.size()) {
        throw ProfileError("string", 0, "truncated escape");
      }
      const auto digit = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        throw ProfileError("string", 0, "bad escape digit");
      };
      const int value = digit(escaped[i + 1]) * 16 + digit(escaped[i + 2]);
      if (value != 0) out.push_back(static_cast<char>(value));
      i += 2;
    } else {
      out.push_back(escaped[i]);
    }
  }
  return out;
}

// --- text writer -----------------------------------------------------

namespace {

void save_profile_text(const SessionData& data, std::ostream& os) {
  os << "numaprof-profile " << kProfileFormatVersion << "\n";
  os << "machine " << data.domain_count << " " << data.core_count << " "
     << escape_field(data.machine_name) << "\n";
  os << "sampling " << static_cast<int>(data.mechanism) << " "
     << data.sampling_period << " " << data.pebs_ll_events << "\n";
  os << "requested " << static_cast<int>(data.requested_mechanism) << "\n";

  os << "frames " << data.frames.size() << "\n";
  for (const simrt::FrameInfo& f : data.frames) {
    os << static_cast<int>(f.kind) << " " << f.line << " "
       << escape_field(f.name) << " " << escape_field(f.file) << "\n";
  }

  os << "cct " << data.cct.size() << "\n";
  // Node 0 is the root; emit children in id order so reconstruction by
  // sequential child() calls reproduces identical ids.
  for (NodeId id = 1; id < data.cct.size(); ++id) {
    const CctNode& n = data.cct.node(id);
    os << n.parent << " " << static_cast<int>(n.kind) << " " << n.key << "\n";
  }

  os << "variables " << data.variables.size() << "\n";
  for (const Variable& v : data.variables) {
    os << static_cast<int>(v.kind) << " " << v.start << " " << v.size << " "
       << v.page_count << " " << v.variable_node << " " << v.alloc_tid << " "
       << (v.live ? 1 : 0) << " " << escape_field(v.name) << "\n";
  }

  os << "threads " << data.totals.size() << "\n";
  for (std::size_t tid = 0; tid < data.totals.size(); ++tid) {
    const ThreadTotals& t = data.totals[tid];
    os << t.samples << " " << t.memory_samples << " " << t.match << " "
       << t.mismatch << " " << t.remote_latency << " " << t.total_latency
       << " " << t.l3_miss_samples << " " << t.remote_l3_miss_samples << " "
       << t.instructions << " " << t.memory_instructions;
    for (const auto v : t.per_domain) os << " " << v;
    os << "\n";

    const MetricStore empty(data.domain_count);
    const MetricStore& store =
        tid < data.stores.size() ? data.stores[tid] : empty;
    const auto nodes = store.nodes();
    os << "metrics " << nodes.size() << " " << store.width() << "\n";
    for (const NodeId node : nodes) {
      os << node;
      for (std::uint32_t m = 0; m < store.width(); ++m) {
        os << " " << store.get(node, m);
      }
      os << "\n";
    }
  }

  os << "addrcentric " << data.address_centric.entry_count() << "\n";
  // Deterministic key order: the same entries always serialize to the same
  // bytes, independent of the hash map's insertion history.
  for (const auto& [key, s] : data.address_centric.sorted_entries()) {
    os << key.context << " " << key.variable << " " << key.bin << " "
       << key.tid << " " << s.lo << " " << s.hi << " " << s.count << " "
       << s.latency << "\n";
  }

  os << "firsttouch " << data.first_touches.size() << "\n";
  // Canonical record order: a live snapshot logs first touches in global
  // chronological order, while shard merging concatenates each thread's
  // records.  Sorting makes both serialize to the same bytes.
  std::vector<FirstTouchRecord> touches = data.first_touches;
  std::sort(touches.begin(), touches.end(),
            [](const FirstTouchRecord& a, const FirstTouchRecord& b) {
              return std::tie(a.variable, a.page, a.tid, a.domain, a.node) <
                     std::tie(b.variable, b.page, b.tid, b.domain, b.node);
            });
  for (const FirstTouchRecord& r : touches) {
    os << r.variable << " " << r.tid << " " << r.domain << " " << r.node
       << " " << r.page << "\n";
  }

  os << "trace " << data.trace.size() << "\n";
  for (const TraceEvent& e : data.trace) {
    os << e.time << " " << e.tid << " " << e.variable << " "
       << e.home_domain << " " << (e.mismatch ? 1 : 0) << " "
       << (e.remote ? 1 : 0) << " " << e.latency << "\n";
  }

  os << "degradations " << data.degradations.size() << "\n";
  for (const DegradationEvent& e : data.degradations) {
    os << static_cast<int>(e.kind) << " " << static_cast<int>(e.mechanism)
       << " " << e.value << " " << escape_field(e.detail) << "\n";
  }
  // Optional section: written only when a fault plan was active, so
  // fault-free profiles (and their goldens) are byte-identical to before
  // the section existed.
  if (!data.fault_context.empty()) {
    os << "faultplan " << escape_field(data.fault_context) << "\n";
  }
  os << "end\n";
}

}  // namespace

// --- text reader -----------------------------------------------------

namespace {

/// Line-oriented tokenizer over the profile stream. Tracks the 1-based
/// line number (for ProfileError context) and the bytes consumed (to bound
/// reserve() calls against what the stream could actually contain).
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {
    const std::streampos pos = is.tellg();
    if (pos != std::streampos(-1)) {
      is.seekg(0, std::ios::end);
      const std::streampos end = is.tellg();
      is.clear();
      is.seekg(pos);
      if (end != std::streampos(-1) && end >= pos) {
        total_bytes_ = static_cast<std::uint64_t>(end - pos);
      }
    }
    is_.clear();
  }

  /// Advances to the next non-blank line; false at EOF.
  bool next_line() {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_;
      consumed_ += line.size() + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      tokens_.clear();
      tokens_.str(line);
      return true;
    }
    return false;
  }

  std::size_t line() const noexcept { return line_; }

  template <typename T>
  T value(const char* field) {
    T v{};
    if (!(tokens_ >> v)) fail_at(field, "bad or missing value");
    return v;
  }

  std::string token(const char* field) { return value<std::string>(field); }

  std::string unescaped(const char* field) {
    const std::string raw = token(field);
    try {
      return unescape_field(raw);
    } catch (const ProfileError& e) {
      fail_at(field, e.what());
    }
  }

  /// Upper bound on how many records could still follow, for reserve().
  std::size_t reserve_bound(std::size_t count) const {
    if (!total_bytes_) return std::min<std::size_t>(count, 4096);
    const std::uint64_t remaining =
        *total_bytes_ > consumed_ ? *total_bytes_ - consumed_ : 0;
    return static_cast<std::size_t>(std::min<std::uint64_t>(
        count, remaining / kMinBytesPerRecord + 1));
  }

  [[noreturn]] void fail_at(const char* field,
                            const std::string& message) const {
    throw ProfileError(field, line_, message);
  }

 private:
  std::istream& is_;
  std::size_t line_ = 0;
  std::uint64_t consumed_ = 0;
  std::optional<std::uint64_t> total_bytes_;
  std::istringstream tokens_;
};

template <typename E>
E read_enum(Reader& r, const char* field, int enumerators) {
  const long long raw = r.value<long long>(field);
  if (raw < 0 || raw >= enumerators) {
    r.fail_at(field, "enum value " + std::to_string(raw) +
                         " out of range [0, " +
                         std::to_string(enumerators - 1) + "]");
  }
  return static_cast<E>(raw);
}

std::size_t read_count(Reader& r, const char* field,
                       const LoadOptions& options) {
  const auto raw = r.value<std::uint64_t>(field);
  if (raw > options.max_count) {
    r.fail_at(field, "count " + std::to_string(raw) + " exceeds limit " +
                         std::to_string(options.max_count));
  }
  return static_cast<std::size_t>(raw);
}

class Loader {
 public:
  Loader(std::istream& is, const LoadOptions& options)
      : r_(is), options_(options) {}

  LoadResult run() {
    parse_header();
    bool saw_end = false;
    bool skipping = false;
    while (r_.next_line()) {
      const std::string tag = r_.token("section tag");
      if (tag == "end") {
        saw_end = true;
        break;
      }
      if (!is_section(tag)) {
        if (!options_.lenient) {
          r_.fail_at("section tag", "unknown section '" + tag + "'");
        }
        if (!skipping) {
          diagnose(r_.line(), "section tag",
                   "unrecognized content skipped starting at '" + tag + "'");
          skipping = true;
        }
        continue;
      }
      try {
        parse_section(tag);
        skipping = false;
      } catch (const ProfileError& e) {
        if (!options_.lenient) throw;
        diagnose(e.line(), e.field(), e.what());
        skipping = true;
      }
    }
    if (!saw_end) {
      if (!options_.lenient) {
        r_.fail_at("end", "truncated profile: missing end marker");
      }
      diagnose(r_.line(), "end", "truncated profile: missing end marker");
    }
    finalize();
    result_.complete = saw_end && result_.diagnostics.empty();
    return std::move(result_);
  }

 private:
  SessionData& data() noexcept { return result_.data; }

  void diagnose(std::size_t line, std::string field, std::string message) {
    result_.diagnostics.push_back(
        Diagnostic{line, std::move(field), std::move(message)});
  }

  static bool is_section(const std::string& tag) {
    static const char* kTags[] = {"machine",    "sampling",  "requested",
                                  "frames",     "cct",       "variables",
                                  "threads",    "addrcentric",
                                  "firsttouch", "trace",     "degradations",
                                  "faultplan"};
    return std::find_if(std::begin(kTags), std::end(kTags),
                        [&](const char* t) { return tag == t; }) !=
           std::end(kTags);
  }

  void parse_header() {
    if (!r_.next_line()) r_.fail_at("magic", "empty stream");
    if (r_.token("magic") != "numaprof-profile") {
      r_.fail_at("magic", "not a numaprof profile");
    }
    const int version = r_.value<int>("version");
    if (version < kMinProfileFormatVersion ||
        version > kProfileFormatVersion) {
      r_.fail_at("version",
                 "unsupported format version " + std::to_string(version));
    }
  }

  void parse_section(const std::string& tag) {
    if (tag == "machine") parse_machine();
    else if (tag == "sampling") parse_sampling();
    else if (tag == "requested") parse_requested();
    else if (tag == "frames") parse_frames();
    else if (tag == "cct") parse_cct();
    else if (tag == "variables") parse_variables();
    else if (tag == "threads") parse_threads();
    else if (tag == "addrcentric") parse_addrcentric();
    else if (tag == "firsttouch") parse_firsttouch();
    else if (tag == "trace") parse_trace();
    else if (tag == "degradations") parse_degradations();
    else if (tag == "faultplan") parse_faultplan();
  }

  void parse_machine() {
    if (!data().totals.empty() || !data().stores.empty()) {
      // Per-thread stores are sized by domain_count; redefining the
      // machine after thread data would silently misalign every metric.
      r_.fail_at("machine", "machine section after thread data");
    }
    data().domain_count = r_.value<std::uint32_t>("domain_count");
    if (data().domain_count == 0 ||
        data().domain_count > options_.max_count) {
      r_.fail_at("domain_count", "domain count out of range");
    }
    data().core_count = r_.value<std::uint32_t>("core_count");
    data().machine_name = r_.unescaped("machine_name");
  }

  void parse_sampling() {
    data().mechanism =
        read_enum<pmu::Mechanism>(r_, "mechanism", pmu::kMechanismCount);
    if (!saw_requested_) data().requested_mechanism = data().mechanism;
    data().sampling_period = r_.value<std::uint64_t>("period");
    data().pebs_ll_events = r_.value<std::uint64_t>("pebs_ll_events");
  }

  void parse_requested() {
    data().requested_mechanism = read_enum<pmu::Mechanism>(
        r_, "requested mechanism", pmu::kMechanismCount);
    saw_requested_ = true;
  }

  void parse_frames() {
    const std::size_t count = read_count(r_, "frame count", options_);
    data().frames.reserve(r_.reserve_bound(count));
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) r_.fail_at("frame", "truncated frames section");
      simrt::FrameInfo f;
      f.kind =
          read_enum<simrt::FrameKind>(r_, "frame kind", simrt::kFrameKindCount);
      f.line = r_.value<std::uint32_t>("frame line");
      f.name = r_.unescaped("frame name");
      f.file = r_.unescaped("frame file");
      data().frames.push_back(std::move(f));
    }
  }

  void parse_cct() {
    const std::size_t count = read_count(r_, "cct size", options_);
    for (std::size_t id = 1; id < count; ++id) {
      if (!r_.next_line()) r_.fail_at("cct node", "truncated cct section");
      const auto parent = r_.value<NodeId>("cct parent");
      if (parent >= data().cct.size()) {
        r_.fail_at("cct parent", "parent id out of range");
      }
      const auto kind = read_enum<NodeKind>(r_, "cct kind", kNodeKindCount);
      const auto key = r_.value<std::uint64_t>("cct key");
      const NodeId created = data().cct.child(parent, kind, key);
      if (created != id) r_.fail_at("cct node", "node ids out of order");
    }
  }

  void parse_variables() {
    const std::size_t count = read_count(r_, "variable count", options_);
    data().variables.reserve(r_.reserve_bound(count));
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) {
        r_.fail_at("variable", "truncated variables section");
      }
      Variable v;
      v.id = static_cast<VariableId>(data().variables.size());
      v.kind = read_enum<VariableKind>(r_, "var kind", kVariableKindCount);
      v.start = r_.value<simos::VAddr>("var start");
      v.size = r_.value<std::uint64_t>("var size");
      v.page_count = r_.value<std::uint64_t>("var pages");
      v.variable_node = r_.value<NodeId>("var node");
      if (v.variable_node >= data().cct.size()) {
        r_.fail_at("var node", "variable node out of range");
      }
      v.alloc_tid = r_.value<simrt::ThreadId>("var tid");
      v.live = r_.value<int>("var live") != 0;
      v.name = r_.unescaped("var name");
      data().variables.push_back(std::move(v));
    }
  }

  void parse_threads() {
    const std::size_t count = read_count(r_, "thread count", options_);
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) {
        r_.fail_at("thread totals", "truncated threads section");
      }
      ThreadTotals t;
      t.samples = r_.value<std::uint64_t>("samples");
      t.memory_samples = r_.value<std::uint64_t>("memory samples");
      t.match = r_.value<std::uint64_t>("match");
      t.mismatch = r_.value<std::uint64_t>("mismatch");
      t.remote_latency = r_.value<double>("remote latency");
      t.total_latency = r_.value<double>("total latency");
      t.l3_miss_samples = r_.value<std::uint64_t>("l3 misses");
      t.remote_l3_miss_samples = r_.value<std::uint64_t>("remote l3");
      t.instructions = r_.value<std::uint64_t>("instructions");
      t.memory_instructions = r_.value<std::uint64_t>("mem instructions");
      t.per_domain.resize(data().domain_count);
      for (auto& v : t.per_domain) v = r_.value<std::uint64_t>("domain");

      if (!r_.next_line() || r_.token("metrics tag") != "metrics") {
        r_.fail_at("metrics tag", "expected 'metrics' after thread totals");
      }
      const std::size_t metric_nodes =
          read_count(r_, "metric nodes", options_);
      const auto width = r_.value<std::uint32_t>("metric width");
      MetricStore store(data().domain_count);
      if (width != store.width()) {
        r_.fail_at("metric width", "width " + std::to_string(width) +
                                       " does not match machine (" +
                                       std::to_string(store.width()) + ")");
      }
      for (std::size_t n = 0; n < metric_nodes; ++n) {
        if (!r_.next_line()) {
          r_.fail_at("metric node", "truncated metrics block");
        }
        const auto node = r_.value<NodeId>("metric node");
        if (node >= data().cct.size()) {
          r_.fail_at("metric node", "node out of range");
        }
        for (std::uint32_t m = 0; m < width; ++m) {
          const auto value = r_.value<double>("metric value");
          if (value != 0.0) store.add(node, m, value);
        }
      }
      // Commit totals and store together so the two stay aligned even if
      // a later thread record is damaged.
      data().totals.push_back(std::move(t));
      data().stores.push_back(std::move(store));
    }
  }

  void parse_addrcentric() {
    const std::size_t count = read_count(r_, "addr entries", options_);
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) {
        r_.fail_at("addr entry", "truncated addrcentric section");
      }
      BinKey key;
      key.context = r_.value<simrt::FrameId>("ctx");
      key.variable = r_.value<VariableId>("var");
      key.bin = r_.value<std::uint32_t>("bin");
      key.tid = r_.value<simrt::ThreadId>("tid");
      BinStats stats;
      stats.lo = r_.value<simos::VAddr>("lo");
      stats.hi = r_.value<simos::VAddr>("hi");
      stats.count = r_.value<std::uint64_t>("count");
      stats.latency = r_.value<double>("latency");
      data().address_centric.insert(key, stats);
    }
  }

  void parse_firsttouch() {
    const std::size_t count = read_count(r_, "firsttouch count", options_);
    data().first_touches.reserve(r_.reserve_bound(count));
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) {
        r_.fail_at("firsttouch", "truncated firsttouch section");
      }
      FirstTouchRecord rec;
      rec.variable = r_.value<VariableId>("ft var");
      rec.tid = r_.value<simrt::ThreadId>("ft tid");
      rec.domain = r_.value<std::uint32_t>("ft domain");
      rec.node = r_.value<NodeId>("ft node");
      if (rec.node >= data().cct.size()) {
        r_.fail_at("ft node", "first-touch node out of range");
      }
      rec.page = r_.value<std::uint64_t>("ft page");
      data().first_touches.push_back(rec);
    }
  }

  void parse_trace() {
    const std::size_t count = read_count(r_, "trace count", options_);
    data().trace.reserve(r_.reserve_bound(count));
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) r_.fail_at("trace event", "truncated trace");
      TraceEvent e;
      e.time = r_.value<numasim::Cycles>("trace time");
      e.tid = r_.value<simrt::ThreadId>("trace tid");
      e.variable = r_.value<VariableId>("trace var");
      e.home_domain = r_.value<std::uint32_t>("trace home");
      e.mismatch = r_.value<int>("trace mismatch") != 0;
      e.remote = r_.value<int>("trace remote") != 0;
      e.latency = r_.value<std::uint32_t>("trace latency");
      data().trace.push_back(e);
    }
  }

  void parse_degradations() {
    const std::size_t count = read_count(r_, "degradation count", options_);
    data().degradations.reserve(r_.reserve_bound(count));
    for (std::size_t i = 0; i < count; ++i) {
      if (!r_.next_line()) {
        r_.fail_at("degradation", "truncated degradations section");
      }
      DegradationEvent e;
      e.kind = read_enum<DegradationKind>(r_, "degradation kind",
                                          kDegradationKindCount);
      e.mechanism = read_enum<pmu::Mechanism>(r_, "degradation mechanism",
                                              pmu::kMechanismCount);
      e.value = r_.value<std::uint64_t>("degradation value");
      e.detail = r_.unescaped("degradation detail");
      data().degradations.push_back(std::move(e));
    }
  }

  void parse_faultplan() {
    data().fault_context = r_.unescaped("fault context");
  }

  /// Lenient loads can lose whole sections; restore the invariants the
  /// analyzer relies on (totals and stores the same length, per-domain
  /// vectors sized to the machine).
  void finalize() {
    while (data().stores.size() < data().totals.size()) {
      data().stores.emplace_back(data().domain_count);
    }
    while (data().totals.size() < data().stores.size()) {
      ThreadTotals t;
      t.per_domain.assign(data().domain_count, 0);
      data().totals.push_back(std::move(t));
    }
    for (ThreadTotals& t : data().totals) {
      t.per_domain.resize(data().domain_count, 0);
    }
  }

  Reader r_;
  LoadOptions options_;
  LoadResult result_;
  bool saw_requested_ = false;
};

LoadResult load_profile_text(std::istream& is, const LoadOptions& options) {
  return Loader(is, options).run();
}

}  // namespace

// --- ProfileReader / ProfileWriter -----------------------------------

ProfileFormat ProfileReader::detect(std::string_view prefix) noexcept {
  return format::looks_binary(prefix) ? ProfileFormat::kBinary
                                      : ProfileFormat::kText;
}

LoadResult ProfileReader::read(std::string_view bytes) const {
  if (detect(bytes) == ProfileFormat::kBinary) {
    return format::load_binary_profile(bytes, options_);
  }
  std::istringstream is{std::string(bytes)};
  return load_profile_text(is, options_);
}

LoadResult ProfileReader::read(std::istream& is) const {
  // One peeked byte decides: no text profile can start with the binary
  // magic's first byte (0x89 is not printable ASCII).
  const int first = is.peek();
  if (first == static_cast<int>(format::kBinaryMagic[0])) {
    std::ostringstream buffered;
    buffered << is.rdbuf();
    const std::string bytes = std::move(buffered).str();
    return format::load_binary_profile(bytes, options_);
  }
  return load_profile_text(is, options_);
}

LoadResult ProfileReader::read_file(const std::string& path) const {
  {
    std::ifstream sniff(path, std::ios::binary);
    if (!sniff) throw std::runtime_error("cannot open for read: " + path);
    char prefix[sizeof(format::kBinaryMagic)] = {};
    sniff.read(prefix, sizeof(prefix));
    const auto got = static_cast<std::size_t>(sniff.gcount());
    if (detect(std::string_view(prefix, got)) == ProfileFormat::kBinary) {
      const format::MappedFile map(path);
      return format::load_binary_profile(map.bytes(), options_);
    }
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_profile_text(is, options_);
}

void ProfileWriter::write(const SessionData& data, std::ostream& os) const {
  if (format_ == ProfileFormat::kBinary) {
    std::string out;
    format::write_binary_profile(data, out);
    os.write(out.data(), static_cast<std::streamsize>(out.size()));
  } else {
    save_profile_text(data, os);
  }
}

std::string ProfileWriter::bytes(const SessionData& data) const {
  if (format_ == ProfileFormat::kBinary) {
    std::string out;
    format::write_binary_profile(data, out);
    return out;
  }
  std::ostringstream os;
  save_profile_text(data, os);
  return std::move(os).str();
}

void ProfileWriter::write_file(const SessionData& data,
                               const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write(data, os);
}

// --- per-thread shards and the analyzer merge ------------------------

std::vector<std::string> ProfileWriter::thread_shards(
    const SessionData& data) const {
  const std::size_t threads = std::max<std::size_t>(data.totals.size(), 1);
  std::vector<std::string> shards;
  shards.reserve(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    SessionData shard = data;
    // Blank out every other thread's measurements; the zeroed slots keep
    // thread ids aligned so the merge is a plain element-wise sum.
    while (shard.stores.size() < shard.totals.size()) {
      shard.stores.emplace_back(shard.domain_count);
    }
    for (std::size_t t = 0; t < shard.totals.size(); ++t) {
      if (t == tid) continue;
      ThreadTotals zero;
      zero.per_domain.assign(shard.domain_count, 0);
      shard.totals[t] = std::move(zero);
      shard.stores[t] = MetricStore(shard.domain_count);
    }
    AddressCentric filtered;
    data.address_centric.for_each([&](const BinKey& key, const BinStats& s) {
      if (key.tid == tid) filtered.insert(key, s);
    });
    shard.address_centric = std::move(filtered);
    std::erase_if(shard.first_touches, [&](const FirstTouchRecord& r) {
      return r.tid != tid;
    });
    std::erase_if(shard.trace,
                  [&](const TraceEvent& e) { return e.tid != tid; });
    if (tid != 0) {
      // Run-level absolutes and collection history live in shard 0 only,
      // so the merge neither double-counts nor duplicates them.
      shard.pebs_ll_events = 0;
      shard.degradations.clear();
    }
    shards.push_back(bytes(shard));
  }
  return shards;
}

std::vector<std::string> ProfileWriter::write_thread_shards(
    const SessionData& data, const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const std::vector<std::string> shards = thread_shards(data);
  std::vector<std::string> paths;
  paths.reserve(shards.size());
  for (std::size_t tid = 0; tid < shards.size(); ++tid) {
    const std::string path =
        (fs::path(directory) / ("thread_" + std::to_string(tid) + ".prof"))
            .string();
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot open for write: " + path);
    os << shards[tid];
    paths.push_back(path);
  }
  return paths;
}

// --- deprecated free-function shims -----------------------------------
// Each forwards to the objects with ProfileFormat::kText, preserving the
// exact pre-redesign behavior (these functions never spoke binary).

void save_profile(const SessionData& data, std::ostream& os) {
  save_profile_text(data, os);
}

void save_profile_file(const SessionData& data, const std::string& path) {
  ProfileWriter(ProfileFormat::kText).write_file(data, path);
}

std::vector<std::string> serialize_thread_shards(const SessionData& data) {
  return ProfileWriter(ProfileFormat::kText).thread_shards(data);
}

std::vector<std::string> save_thread_shards(const SessionData& data,
                                            const std::string& directory) {
  return ProfileWriter(ProfileFormat::kText)
      .write_thread_shards(data, directory);
}

SessionData load_profile(std::istream& is) {
  return load_profile_text(is, LoadOptions{}).data;
}

SessionData load_profile_file(const std::string& path) {
  return ProfileReader().read_file(path).data;
}

LoadResult load_profile(std::istream& is, const LoadOptions& options) {
  return load_profile_text(is, options);
}

LoadResult load_profile_file(const std::string& path,
                             const LoadOptions& options) {
  return ProfileReader(options).read_file(path);
}

namespace {

/// Non-empty reason when `other` cannot be merged into `base`.
std::string incompatibility(const SessionData& base,
                            const SessionData& other) {
  const auto mismatch = [](const char* what, auto a, auto b) {
    return std::string(what) + " mismatch (" + std::to_string(a) + " vs " +
           std::to_string(b) + ")";
  };
  if (other.domain_count != base.domain_count) {
    return mismatch("domain count", base.domain_count, other.domain_count);
  }
  if (other.frames.size() != base.frames.size()) {
    return mismatch("frame count", base.frames.size(), other.frames.size());
  }
  if (other.cct.size() != base.cct.size()) {
    return mismatch("cct size", base.cct.size(), other.cct.size());
  }
  if (other.variables.size() != base.variables.size()) {
    return mismatch("variable count", base.variables.size(),
                    other.variables.size());
  }
  if (other.mechanism != base.mechanism) {
    return "mechanism mismatch (" + std::string(to_string(base.mechanism)) +
           " vs " + std::string(to_string(other.mechanism)) + ")";
  }
  return {};
}

void merge_totals(ThreadTotals& into, const ThreadTotals& from,
                  std::uint32_t domain_count) {
  into.samples += from.samples;
  into.memory_samples += from.memory_samples;
  into.match += from.match;
  into.mismatch += from.mismatch;
  into.remote_latency += from.remote_latency;
  into.total_latency += from.total_latency;
  into.l3_miss_samples += from.l3_miss_samples;
  into.remote_l3_miss_samples += from.remote_l3_miss_samples;
  into.instructions += from.instructions;
  into.memory_instructions += from.memory_instructions;
  into.per_domain.resize(domain_count, 0);
  for (std::size_t d = 0; d < from.per_domain.size() && d < domain_count;
       ++d) {
    into.per_domain[d] += from.per_domain[d];
  }
}

void merge_session(SessionData& base, SessionData&& other) {
  const std::size_t threads =
      std::max(base.totals.size(), other.totals.size());
  {
    ThreadTotals zero;
    zero.per_domain.assign(base.domain_count, 0);
    base.totals.resize(threads, zero);
  }
  while (base.stores.size() < threads) {
    base.stores.emplace_back(base.domain_count);
  }
  for (std::size_t tid = 0; tid < other.totals.size(); ++tid) {
    merge_totals(base.totals[tid], other.totals[tid], base.domain_count);
  }
  for (std::size_t tid = 0;
       tid < other.stores.size() && tid < base.stores.size(); ++tid) {
    base.stores[tid].merge(other.stores[tid]);
  }
  base.address_centric.merge_from(other.address_centric);
  base.first_touches.insert(base.first_touches.end(),
                            other.first_touches.begin(),
                            other.first_touches.end());
  base.trace.insert(base.trace.end(), other.trace.begin(),
                    other.trace.end());
  base.pebs_ll_events += other.pebs_ll_events;
  // Collection history is carried by the first shard only (shards of one
  // run replicate it); incompatible histories were already screened out.
}

/// The load policy implied by the pipeline-level knobs.
LoadOptions load_options_of(const PipelineOptions& options) {
  LoadOptions load;
  load.lenient = options.lenient;
  load.max_count = options.max_count;
  return load;
}

/// Fails the merge on a quorum shortfall (checked in both modes).
void check_quorum(const MergeSummary& summary,
                  const PipelineOptions& options) {
  const double fraction = static_cast<double>(summary.files_merged) /
                          static_cast<double>(summary.files_total);
  if (fraction < options.quorum) {
    throw ProfileError(
        "quorum", 0,
        "only " + std::to_string(summary.files_merged) + " of " +
            std::to_string(summary.files_total) +
            " profiles merged, below the required quorum");
  }
}

/// Surfaces skipped inputs as degradation events in the merged data.
void record_skips(MergeResult& result) {
  for (const SkippedProfile& skip : result.summary.skipped) {
    result.data.degradations.push_back(
        DegradationEvent{.kind = DegradationKind::kProfileFileSkipped,
                         .mechanism = result.data.mechanism,
                         .value = 0,
                         .detail = skip.path + ": " + skip.reason});
  }
}

/// The `jobs == 1` reference path: load and fold one file at a time, in
/// input order. Parallel merges are defined by equivalence to this.
MergeResult merge_files_serial(const std::vector<std::string>& paths,
                               const PipelineOptions& options) {
  MergeResult result;
  MergeSummary& summary = result.summary;
  summary.files_total = paths.size();
  const LoadOptions load = load_options_of(options);

  bool have_base = false;
  for (const std::string& path : paths) {
    LoadResult loaded;
    try {
      loaded = ProfileReader(load).read_file(path);
    } catch (const ProfileError& e) {
      if (!options.lenient) {
        throw ProfileError(e.field(), e.line(), path + ": " + e.what());
      }
      summary.skipped.push_back(SkippedProfile{path, e.what()});
      continue;
    } catch (const std::exception& e) {
      if (!options.lenient) {
        throw ProfileError("file", 0, path + ": " + e.what());
      }
      summary.skipped.push_back(SkippedProfile{path, e.what()});
      continue;
    }
    for (Diagnostic& d : loaded.diagnostics) {
      summary.diagnostics.push_back(
          Diagnostic{d.line, path + ": " + d.field, std::move(d.message)});
    }
    if (!have_base) {
      result.data = std::move(loaded.data);
      have_base = true;
      ++summary.files_merged;
      continue;
    }
    const std::string reason = incompatibility(result.data, loaded.data);
    if (!reason.empty()) {
      if (!options.lenient) {
        throw ProfileError("merge", 0, path + ": " + reason);
      }
      summary.skipped.push_back(SkippedProfile{path, reason});
      continue;
    }
    merge_session(result.data, std::move(loaded.data));
    ++summary.files_merged;
  }

  if (!have_base) {
    throw ProfileError(
        "merge", 0,
        "no loadable profile among " + std::to_string(paths.size()) +
            " input files");
  }
  check_quorum(summary, options);
  record_skips(result);
  return result;
}

/// The parallel pipeline (§7.2 at scale): every input file parses as its
/// own task; screening (skips, diagnostics, base selection, compatibility)
/// then runs serially in input order so the bookkeeping matches the serial
/// path exactly; finally the surviving sessions fold into the base with
/// per-thread measurement columns parallelized — each column sums its
/// sessions in index order, so every scalar sees the identical addition
/// sequence as merge_files_serial and the result is bitwise identical.
MergeResult merge_files_parallel(const std::vector<std::string>& paths,
                                 const PipelineOptions& options) {
  MergeResult result;
  MergeSummary& summary = result.summary;
  summary.files_total = paths.size();
  const LoadOptions load = load_options_of(options);

  struct LoadSlot {
    LoadResult loaded;
    std::exception_ptr error;
  };
  std::vector<LoadSlot> slots(paths.size());
  std::optional<support::ThreadPool> owned;
  support::ThreadPool* pool = options.pool;
  if (pool == nullptr) pool = &owned.emplace(options.jobs);
  pool->for_each_index(paths.size(), [&](std::size_t i) {
    try {
      slots[i].loaded = ProfileReader(load).read_file(paths[i]);
    } catch (...) {
      slots[i].error = std::current_exception();
    }
  });

  // In-order screening, identical bookkeeping to the serial loop. In
  // strict mode the FIRST failing input (by position, not by completion
  // time) throws, exactly as the lazy serial loop would.
  bool have_base = false;
  std::vector<SessionData> sessions;
  sessions.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string& path = paths[i];
    LoadSlot& slot = slots[i];
    if (slot.error) {
      try {
        std::rethrow_exception(slot.error);
      } catch (const ProfileError& e) {
        if (!options.lenient) {
          throw ProfileError(e.field(), e.line(), path + ": " + e.what());
        }
        summary.skipped.push_back(SkippedProfile{path, e.what()});
      } catch (const std::exception& e) {
        if (!options.lenient) {
          throw ProfileError("file", 0, path + ": " + e.what());
        }
        summary.skipped.push_back(SkippedProfile{path, e.what()});
      }
      continue;
    }
    for (Diagnostic& d : slot.loaded.diagnostics) {
      summary.diagnostics.push_back(
          Diagnostic{d.line, path + ": " + d.field, std::move(d.message)});
    }
    if (!have_base) {
      result.data = std::move(slot.loaded.data);
      have_base = true;
      ++summary.files_merged;
      continue;
    }
    const std::string reason = incompatibility(result.data, slot.loaded.data);
    if (!reason.empty()) {
      if (!options.lenient) {
        throw ProfileError("merge", 0, path + ": " + reason);
      }
      summary.skipped.push_back(SkippedProfile{path, reason});
      continue;
    }
    sessions.push_back(std::move(slot.loaded.data));
    ++summary.files_merged;
  }

  if (!have_base) {
    throw ProfileError(
        "merge", 0,
        "no loadable profile among " + std::to_string(paths.size()) +
            " input files");
  }
  check_quorum(summary, options);

  // Fold. Per-thread totals and metric stores are independent columns:
  // parallelize across thread index, folding sessions in order within
  // each column (the same per-element addition order as the serial path).
  SessionData& base = result.data;
  std::size_t threads = base.totals.size();
  for (const SessionData& s : sessions) {
    threads = std::max(threads, s.totals.size());
  }
  {
    ThreadTotals zero;
    zero.per_domain.assign(base.domain_count, 0);
    base.totals.resize(threads, zero);
  }
  while (base.stores.size() < threads) {
    base.stores.emplace_back(base.domain_count);
  }
  support::parallel_for(
      pool, threads, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t tid = begin; tid < end; ++tid) {
          for (const SessionData& s : sessions) {
            if (tid < s.totals.size()) {
              merge_totals(base.totals[tid], s.totals[tid],
                           base.domain_count);
            }
            if (tid < s.stores.size()) {
              base.stores[tid].merge(s.stores[tid]);
            }
          }
        }
      });
  // The remaining sections are cheap appends/map-folds; keep them serial
  // and in input order so even hash-map iteration history matches the
  // serial path.
  for (SessionData& s : sessions) {
    base.address_centric.merge_from(s.address_centric);
    base.first_touches.insert(base.first_touches.end(),
                              s.first_touches.begin(), s.first_touches.end());
    base.trace.insert(base.trace.end(), s.trace.begin(), s.trace.end());
    base.pebs_ll_events += s.pebs_ll_events;
  }

  record_skips(result);
  return result;
}

}  // namespace

MergeResult merge_profile_files(const std::vector<std::string>& paths,
                                const PipelineOptions& options) {
  if (paths.empty()) {
    throw ProfileError("merge", 0, "no input profiles");
  }
  const unsigned jobs = options.pool ? options.pool->jobs() : options.jobs;
  if (jobs <= 1 || paths.size() == 1) {
    return merge_files_serial(paths, options);
  }
  return merge_files_parallel(paths, options);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
MergeResult merge_profile_files(const std::vector<std::string>& paths,
                                const MergeOptions& options) {
  return merge_profile_files(paths, options.pipeline());
}
#pragma GCC diagnostic pop

}  // namespace numaprof::core
