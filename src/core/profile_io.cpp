#include "core/profile_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace numaprof::core {

namespace {

constexpr char kHex[] = "0123456789abcdef";

bool needs_escape(char c) noexcept {
  return c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
         static_cast<unsigned char>(c) < 0x20;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("profile parse error: " + what);
}

std::string expect_tag(std::istream& is, const char* tag) {
  std::string token;
  if (!(is >> token) || token != tag) {
    fail(std::string("expected '") + tag + "', got '" + token + "'");
  }
  return token;
}

template <typename T>
T read_value(std::istream& is, const char* what) {
  T value{};
  if (!(is >> value)) fail(std::string("bad value for ") + what);
  return value;
}

}  // namespace

std::string escape_field(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (needs_escape(c)) {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out = "%00";  // empty fields must still tokenize
  return out;
}

std::string unescape_field(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%') {
      if (i + 2 >= escaped.size()) fail("truncated escape");
      const auto digit = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        fail("bad escape digit");
      };
      const int value = digit(escaped[i + 1]) * 16 + digit(escaped[i + 2]);
      if (value != 0) out.push_back(static_cast<char>(value));
      i += 2;
    } else {
      out.push_back(escaped[i]);
    }
  }
  return out;
}

void save_profile(const SessionData& data, std::ostream& os) {
  os << "numaprof-profile " << kProfileFormatVersion << "\n";
  os << "machine " << data.domain_count << " " << data.core_count << " "
     << escape_field(data.machine_name) << "\n";
  os << "sampling " << static_cast<int>(data.mechanism) << " "
     << data.sampling_period << " " << data.pebs_ll_events << "\n";

  os << "frames " << data.frames.size() << "\n";
  for (const simrt::FrameInfo& f : data.frames) {
    os << static_cast<int>(f.kind) << " " << f.line << " "
       << escape_field(f.name) << " " << escape_field(f.file) << "\n";
  }

  os << "cct " << data.cct.size() << "\n";
  // Node 0 is the root; emit children in id order so reconstruction by
  // sequential child() calls reproduces identical ids.
  for (NodeId id = 1; id < data.cct.size(); ++id) {
    const CctNode& n = data.cct.node(id);
    os << n.parent << " " << static_cast<int>(n.kind) << " " << n.key << "\n";
  }

  os << "variables " << data.variables.size() << "\n";
  for (const Variable& v : data.variables) {
    os << static_cast<int>(v.kind) << " " << v.start << " " << v.size << " "
       << v.page_count << " " << v.variable_node << " " << v.alloc_tid << " "
       << (v.live ? 1 : 0) << " " << escape_field(v.name) << "\n";
  }

  os << "threads " << data.totals.size() << "\n";
  for (std::size_t tid = 0; tid < data.totals.size(); ++tid) {
    const ThreadTotals& t = data.totals[tid];
    os << t.samples << " " << t.memory_samples << " " << t.match << " "
       << t.mismatch << " " << t.remote_latency << " " << t.total_latency
       << " " << t.l3_miss_samples << " " << t.remote_l3_miss_samples << " "
       << t.instructions << " " << t.memory_instructions;
    for (const auto v : t.per_domain) os << " " << v;
    os << "\n";

    const MetricStore empty(data.domain_count);
    const MetricStore& store =
        tid < data.stores.size() ? data.stores[tid] : empty;
    const auto nodes = store.nodes();
    os << "metrics " << nodes.size() << " " << store.width() << "\n";
    for (const NodeId node : nodes) {
      os << node;
      for (std::uint32_t m = 0; m < store.width(); ++m) {
        os << " " << store.get(node, m);
      }
      os << "\n";
    }
  }

  os << "addrcentric " << data.address_centric.entry_count() << "\n";
  data.address_centric.for_each([&](const BinKey& key, const BinStats& s) {
    os << key.context << " " << key.variable << " " << key.bin << " "
       << key.tid << " " << s.lo << " " << s.hi << " " << s.count << " "
       << s.latency << "\n";
  });

  os << "firsttouch " << data.first_touches.size() << "\n";
  for (const FirstTouchRecord& r : data.first_touches) {
    os << r.variable << " " << r.tid << " " << r.domain << " " << r.node
       << " " << r.page << "\n";
  }

  os << "trace " << data.trace.size() << "\n";
  for (const TraceEvent& e : data.trace) {
    os << e.time << " " << e.tid << " " << e.variable << " "
       << e.home_domain << " " << (e.mismatch ? 1 : 0) << " "
       << (e.remote ? 1 : 0) << " " << e.latency << "\n";
  }
  os << "end\n";
}

SessionData load_profile(std::istream& is) {
  expect_tag(is, "numaprof-profile");
  const int version = read_value<int>(is, "version");
  if (version != kProfileFormatVersion) fail("unsupported format version");

  SessionData data;
  expect_tag(is, "machine");
  data.domain_count = read_value<std::uint32_t>(is, "domain_count");
  data.core_count = read_value<std::uint32_t>(is, "core_count");
  data.machine_name =
      unescape_field(read_value<std::string>(is, "machine_name"));

  expect_tag(is, "sampling");
  data.mechanism =
      static_cast<pmu::Mechanism>(read_value<int>(is, "mechanism"));
  data.sampling_period = read_value<std::uint64_t>(is, "period");
  data.pebs_ll_events = read_value<std::uint64_t>(is, "pebs_ll_events");

  expect_tag(is, "frames");
  const auto frame_count = read_value<std::size_t>(is, "frame count");
  data.frames.reserve(frame_count);
  for (std::size_t i = 0; i < frame_count; ++i) {
    simrt::FrameInfo f;
    f.kind = static_cast<simrt::FrameKind>(read_value<int>(is, "frame kind"));
    f.line = read_value<std::uint32_t>(is, "frame line");
    f.name = unescape_field(read_value<std::string>(is, "frame name"));
    f.file = unescape_field(read_value<std::string>(is, "frame file"));
    data.frames.push_back(std::move(f));
  }

  expect_tag(is, "cct");
  const auto node_count = read_value<std::size_t>(is, "cct size");
  for (std::size_t id = 1; id < node_count; ++id) {
    const auto parent = read_value<NodeId>(is, "cct parent");
    const auto kind = static_cast<NodeKind>(read_value<int>(is, "cct kind"));
    const auto key = read_value<std::uint64_t>(is, "cct key");
    const NodeId created = data.cct.child(parent, kind, key);
    if (created != id) fail("cct node ids out of order");
  }

  expect_tag(is, "variables");
  const auto var_count = read_value<std::size_t>(is, "variable count");
  data.variables.reserve(var_count);
  for (std::size_t i = 0; i < var_count; ++i) {
    Variable v;
    v.id = static_cast<VariableId>(i);
    v.kind = static_cast<VariableKind>(read_value<int>(is, "var kind"));
    v.start = read_value<simos::VAddr>(is, "var start");
    v.size = read_value<std::uint64_t>(is, "var size");
    v.page_count = read_value<std::uint64_t>(is, "var pages");
    v.variable_node = read_value<NodeId>(is, "var node");
    if (v.variable_node >= data.cct.size()) fail("variable node out of range");
    v.alloc_tid = read_value<simrt::ThreadId>(is, "var tid");
    v.live = read_value<int>(is, "var live") != 0;
    v.name = unescape_field(read_value<std::string>(is, "var name"));
    data.variables.push_back(std::move(v));
  }

  expect_tag(is, "threads");
  const auto thread_count = read_value<std::size_t>(is, "thread count");
  for (std::size_t tid = 0; tid < thread_count; ++tid) {
    ThreadTotals t;
    t.samples = read_value<std::uint64_t>(is, "samples");
    t.memory_samples = read_value<std::uint64_t>(is, "memory samples");
    t.match = read_value<std::uint64_t>(is, "match");
    t.mismatch = read_value<std::uint64_t>(is, "mismatch");
    t.remote_latency = read_value<double>(is, "remote latency");
    t.total_latency = read_value<double>(is, "total latency");
    t.l3_miss_samples = read_value<std::uint64_t>(is, "l3 misses");
    t.remote_l3_miss_samples = read_value<std::uint64_t>(is, "remote l3");
    t.instructions = read_value<std::uint64_t>(is, "instructions");
    t.memory_instructions = read_value<std::uint64_t>(is, "mem instructions");
    t.per_domain.resize(data.domain_count);
    for (auto& v : t.per_domain) v = read_value<std::uint64_t>(is, "domain");
    data.totals.push_back(std::move(t));

    expect_tag(is, "metrics");
    const auto metric_nodes = read_value<std::size_t>(is, "metric nodes");
    const auto width = read_value<std::uint32_t>(is, "metric width");
    MetricStore store(data.domain_count);
    if (width != store.width()) fail("metric width mismatch");
    for (std::size_t n = 0; n < metric_nodes; ++n) {
      const auto node = read_value<NodeId>(is, "metric node");
      if (node >= data.cct.size()) fail("metric node out of range");
      for (std::uint32_t m = 0; m < width; ++m) {
        const auto value = read_value<double>(is, "metric value");
        if (value != 0.0) store.add(node, m, value);
      }
    }
    data.stores.push_back(std::move(store));
  }

  expect_tag(is, "addrcentric");
  const auto entry_count = read_value<std::size_t>(is, "addr entries");
  for (std::size_t i = 0; i < entry_count; ++i) {
    BinKey key;
    key.context = read_value<simrt::FrameId>(is, "ctx");
    key.variable = read_value<VariableId>(is, "var");
    key.bin = read_value<std::uint32_t>(is, "bin");
    key.tid = read_value<simrt::ThreadId>(is, "tid");
    BinStats stats;
    stats.lo = read_value<simos::VAddr>(is, "lo");
    stats.hi = read_value<simos::VAddr>(is, "hi");
    stats.count = read_value<std::uint64_t>(is, "count");
    stats.latency = read_value<double>(is, "latency");
    data.address_centric.insert(key, stats);
  }

  expect_tag(is, "firsttouch");
  const auto ft_count = read_value<std::size_t>(is, "firsttouch count");
  for (std::size_t i = 0; i < ft_count; ++i) {
    FirstTouchRecord r;
    r.variable = read_value<VariableId>(is, "ft var");
    r.tid = read_value<simrt::ThreadId>(is, "ft tid");
    r.domain = read_value<std::uint32_t>(is, "ft domain");
    r.node = read_value<NodeId>(is, "ft node");
    if (r.node >= data.cct.size()) fail("first-touch node out of range");
    r.page = read_value<std::uint64_t>(is, "ft page");
    data.first_touches.push_back(r);
  }

  expect_tag(is, "trace");
  const auto trace_count = read_value<std::size_t>(is, "trace count");
  data.trace.reserve(trace_count);
  for (std::size_t i = 0; i < trace_count; ++i) {
    TraceEvent e;
    e.time = read_value<numasim::Cycles>(is, "trace time");
    e.tid = read_value<simrt::ThreadId>(is, "trace tid");
    e.variable = read_value<VariableId>(is, "trace var");
    e.home_domain = read_value<std::uint32_t>(is, "trace home");
    e.mismatch = read_value<int>(is, "trace mismatch") != 0;
    e.remote = read_value<int>(is, "trace remote") != 0;
    e.latency = read_value<std::uint32_t>(is, "trace latency");
    data.trace.push_back(e);
  }
  expect_tag(is, "end");
  return data;
}

void save_profile_file(const SessionData& data, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_profile(data, os);
}

SessionData load_profile_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_profile(is);
}

}  // namespace numaprof::core
