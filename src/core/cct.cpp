#include "core/cct.hpp"

#include <algorithm>

namespace numaprof::core {

Cct::Cct() {
  nodes_.push_back(CctNode{.parent = kRootNode,
                           .kind = NodeKind::kRoot,
                           .key = 0,
                           .depth = 0});
  edges_.emplace_back();
}

NodeId Cct::child(NodeId parent, NodeKind kind, std::uint64_t key) {
  ensure_edges();
  auto& index = edges_.at(parent);
  const std::uint64_t ck = child_key(kind, key);
  const auto it = index.find(ck);
  if (it != index.end()) return it->second;

  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(CctNode{.parent = parent,
                           .kind = kind,
                           .key = key,
                           .depth = nodes_[parent].depth + 1});
  edges_.emplace_back();
  edges_[parent].emplace(ck, id);
  return id;
}

void Cct::assign_columns(std::span<const NodeId> parents,
                         std::span<const std::uint8_t> kinds,
                         std::span<const std::uint64_t> keys) {
  const std::size_t count = parents.size();
  nodes_.clear();
  nodes_.reserve(count + 1);
  nodes_.push_back(CctNode{.parent = kRootNode,
                           .kind = NodeKind::kRoot,
                           .key = 0,
                           .depth = 0});
  for (std::size_t i = 0; i < count; ++i) {
    nodes_.push_back(CctNode{.parent = parents[i],
                             .kind = static_cast<NodeKind>(kinds[i]),
                             .key = keys[i],
                             .depth = nodes_[parents[i]].depth + 1});
  }
  edges_.clear();
  edges_valid_ = false;
}

void Cct::ensure_edges() const {
  if (edges_valid_) return;
  edges_.clear();
  edges_.resize(nodes_.size());
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    const CctNode& n = nodes_[id];
    edges_[n.parent].emplace(child_key(n.kind, n.key), id);
  }
  edges_valid_ = true;
}

std::optional<NodeId> Cct::find_child(NodeId parent, NodeKind kind,
                                      std::uint64_t key) const {
  ensure_edges();
  const auto& index = edges_.at(parent);
  const auto it = index.find(child_key(kind, key));
  if (it == index.end()) return std::nullopt;
  return it->second;
}

NodeId Cct::extend(NodeId base, std::span<const simrt::FrameId> frames) {
  NodeId current = base;
  for (const simrt::FrameId frame : frames) {
    current = child(current, NodeKind::kFrame, frame);
  }
  return current;
}

std::vector<NodeId> Cct::path_to(NodeId id) const {
  std::vector<NodeId> path;
  for (NodeId cursor = id; cursor != kRootNode;
       cursor = nodes_[cursor].parent) {
    path.push_back(cursor);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Cct::visit(NodeId id, const std::function<void(NodeId)>& fn) const {
  ensure_edges();
  fn(id);
  for (const auto& [key, chid] : edges_.at(id)) visit(chid, fn);
}

std::vector<NodeId> Cct::children(NodeId id) const {
  ensure_edges();
  std::vector<NodeId> result;
  result.reserve(edges_.at(id).size());
  for (const auto& [key, chid] : edges_.at(id)) result.push_back(chid);
  std::sort(result.begin(), result.end());
  return result;
}

bool Cct::is_ancestor(NodeId ancestor, NodeId id) const {
  NodeId cursor = id;
  while (true) {
    if (cursor == ancestor) return true;
    if (cursor == kRootNode) return false;
    cursor = nodes_[cursor].parent;
  }
}

}  // namespace numaprof::core
