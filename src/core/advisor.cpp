#include "core/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace numaprof::core {

std::string_view to_string(PatternKind k) noexcept {
  switch (k) {
    case PatternKind::kUnsampled: return "unsampled";
    case PatternKind::kSingleThread: return "single-thread";
    case PatternKind::kBlocked: return "blocked";
    case PatternKind::kStaggeredOverlap: return "staggered-overlap";
    case PatternKind::kFullRange: return "full-range";
    case PatternKind::kIrregular: return "irregular";
  }
  return "?";
}

std::string_view to_string(Action a) noexcept {
  switch (a) {
    case Action::kNone: return "none";
    case Action::kBlockwiseFirstTouch: return "blockwise-first-touch";
    case Action::kInterleave: return "interleave";
    case Action::kRegroupAos: return "regroup-AoS+parallel-init";
    case Action::kColocate: return "colocate-single-domain";
    case Action::kPadAlign: return "pad-align-to-cache-line";
  }
  return "?";
}

std::string_view to_string(LintKind k) noexcept {
  switch (k) {
    case LintKind::kSerialFirstTouch: return "serial-first-touch";
    case LintKind::kFalseSharing: return "false-sharing-layout";
    case LintKind::kStackEscape: return "stack-escape";
    case LintKind::kInterleaveMisuse: return "interleave-misuse";
    case LintKind::kCrossSerialInit: return "cross-fn-serial-first-touch";
    case LintKind::kScheduleMismatch: return "schedule-mismatch";
    case LintKind::kAliasHiddenInit: return "alias-hidden-first-touch";
    case LintKind::kReadMostly: return "read-mostly-replicable";
  }
  return "?";
}

std::string_view to_string(FusionConfidence c) noexcept {
  switch (c) {
    case FusionConfidence::kConfirmed: return "confirmed";
    case FusionConfidence::kStaticOnly: return "static-only";
    case FusionConfidence::kDynamicOnly: return "dynamic-only";
  }
  return "?";
}

PatternAnalysis Advisor::classify(VariableId variable,
                                  simrt::FrameId context) const {
  const SessionData& d = analyzer_->data();
  const Variable& var = d.variables.at(variable);
  auto ranges = d.address_centric.thread_ranges(var, context);

  // Drop threads with negligible traffic (below 2% of the busiest thread):
  // a master thread touching one element shouldn't distort the pattern.
  std::uint64_t max_count = 0;
  for (const ThreadRange& r : ranges) max_count = std::max(max_count, r.count);
  std::erase_if(ranges, [&](const ThreadRange& r) {
    return r.count * 50 < max_count;
  });

  PatternAnalysis p;
  p.threads = static_cast<std::uint32_t>(ranges.size());
  if (ranges.empty()) return p;
  if (ranges.size() == 1) {
    p.kind = PatternKind::kSingleThread;
    p.mean_width = ranges[0].hi - ranges[0].lo;
    p.coverage = p.mean_width;
    p.monotonic_fraction = 1.0;
    return p;
  }

  // Ranges arrive sorted by tid. Compute widths, adjacent overlap, and
  // midpoint monotonicity.
  double width_sum = 0.0;
  for (const ThreadRange& r : ranges) width_sum += r.hi - r.lo;
  p.mean_width = width_sum / static_cast<double>(ranges.size());

  double overlap_sum = 0.0;
  std::uint32_t ascending = 0;
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    const ThreadRange& a = ranges[i];
    const ThreadRange& b = ranges[i + 1];
    const double inter =
        std::max(0.0, std::min(a.hi, b.hi) - std::max(a.lo, b.lo));
    const double smaller = std::max(1e-9, std::min(a.hi - a.lo, b.hi - b.lo));
    overlap_sum += std::min(1.0, inter / smaller);
    const double mid_a = (a.lo + a.hi) / 2;
    const double mid_b = (b.lo + b.hi) / 2;
    if (mid_b >= mid_a - 1e-9) ++ascending;
  }
  const auto pairs = static_cast<double>(ranges.size() - 1);
  p.mean_overlap = overlap_sum / pairs;
  p.monotonic_fraction = static_cast<double>(ascending) / pairs;

  // Coverage: union of [lo,hi] intervals.
  auto sorted = ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const ThreadRange& a, const ThreadRange& b) {
              return a.lo < b.lo;
            });
  double covered = 0.0;
  double cursor = 0.0;
  for (const ThreadRange& r : sorted) {
    const double lo = std::max(r.lo, cursor);
    if (r.hi > lo) {
      covered += r.hi - lo;
      cursor = r.hi;
    }
  }
  p.coverage = covered;

  // Midpoint spread separates staggered wide ranges (Blackscholes: every
  // thread wide but consistently shifted, Fig. 8) from true full-range
  // access (every thread the same span).
  const double mid_first = (ranges.front().lo + ranges.front().hi) / 2;
  const double mid_last = (ranges.back().lo + ranges.back().hi) / 2;
  const double spread = mid_last - mid_first;

  if (p.mean_width >= 0.8 && spread < 0.05) {
    p.kind = PatternKind::kFullRange;
  } else if (p.monotonic_fraction >= 0.8 && p.mean_overlap <= 0.35 &&
             (p.coverage >= 0.5 || spread >= 0.5)) {
    // Disjoint ascending blocks. Sparse sampling can leave each thread's
    // observed range a sliver of its true block (low coverage), but the
    // midpoints still span the variable — spread rescues that case.
    p.kind = PatternKind::kBlocked;
  } else if (p.monotonic_fraction >= 0.8 && p.mean_overlap > 0.35 &&
             spread >= 0.05) {
    p.kind = PatternKind::kStaggeredOverlap;
  } else if (p.mean_width >= 0.8) {
    p.kind = PatternKind::kFullRange;  // wide but unordered
  } else {
    p.kind = PatternKind::kIrregular;
  }
  return p;
}

double Advisor::variable_context_weight(VariableId variable,
                                        simrt::FrameId context) const {
  const SessionData& d = analyzer_->data();
  double latency = 0.0;
  double count = 0.0;
  d.address_centric.for_each([&](const BinKey& key, const BinStats& stats) {
    if (key.variable != variable || key.context != context) return;
    latency += stats.latency;
    count += static_cast<double>(stats.count);
  });
  // Latency-weighted when the mechanism reports latency (§5.2: "use
  // aggregate latency measurements attributed to a context as a guide");
  // sample counts otherwise (MRK, Soft-IBS).
  return latency > 0.0 ? latency : count;
}

std::pair<simrt::FrameId, double> Advisor::guiding_context(
    VariableId variable, double min_share) const {
  const PatternAnalysis whole = classify(variable, kWholeProgram);
  // Blocked / single-thread whole-program patterns are already maximally
  // actionable. Anything weaker may be a *mixture* of per-region patterns
  // (Fig. 4 vs Fig. 5): a blocked hot region smeared by a cheap
  // full-range region looks full-range (or staggered) overall, so drill
  // into contexts and adopt a pattern only if it is strictly stronger.
  if (whole.kind == PatternKind::kBlocked ||
      whole.kind == PatternKind::kSingleThread) {
    return {kWholeProgram, 1.0};
  }
  const bool accept_staggered = whole.kind != PatternKind::kStaggeredOverlap;

  // Drill into the calling contexts, heaviest first, and adopt the first
  // strongly-actionable pattern carrying at least `min_share` of the
  // variable's cost (Fig. 5 / Fig. 7).
  const SessionData& d = analyzer_->data();
  const double total = variable_context_weight(variable, kWholeProgram);
  if (total <= 0.0) return {kWholeProgram, 1.0};

  std::map<simrt::FrameId, double> weights;
  d.address_centric.for_each([&](const BinKey& key, const BinStats& stats) {
    if (key.variable != variable || key.context == kWholeProgram) return;
    weights[key.context] += stats.latency > 0.0
                                ? stats.latency
                                : static_cast<double>(stats.count);
  });
  std::vector<std::pair<simrt::FrameId, double>> ordered(weights.begin(),
                                                         weights.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [context, weight] : ordered) {
    const double share = weight / total;
    if (share < min_share) break;  // ordered descending: no later context fits
    // Skip frames that are just enclosing wrappers with the same smeared
    // mix; adopt the first context whose pattern is strongly actionable.
    const PatternAnalysis p = classify(variable, context);
    if (p.kind == PatternKind::kBlocked ||
        p.kind == PatternKind::kSingleThread ||
        (accept_staggered && p.kind == PatternKind::kStaggeredOverlap)) {
      return {context, share};
    }
  }
  return {kWholeProgram, 1.0};
}

Recommendation Advisor::recommend(VariableId variable) const {
  const SessionData& d = analyzer_->data();
  Recommendation rec;
  rec.variable = variable;
  rec.variable_name = d.variables.at(variable).name;
  rec.whole_program = classify(variable, kWholeProgram);
  rec.severity_warrants = analyzer_->program().warrants_optimization;
  rec.first_touch_sites = d.first_touch_sites(variable);

  const auto [context, share] = guiding_context(variable);
  rec.guiding_context = context;
  rec.guiding_context_share = share;
  rec.guiding =
      context == kWholeProgram ? rec.whole_program : classify(variable, context);

  std::ostringstream why;
  switch (rec.guiding.kind) {
    case PatternKind::kBlocked:
      rec.action = Action::kBlockwiseFirstTouch;
      why << "threads access disjoint ascending blocks; distribute the "
             "variable block-wise by adjusting the first-touch code";
      break;
    case PatternKind::kStaggeredOverlap:
      rec.action = Action::kRegroupAos;
      why << "per-thread ranges ascend but overlap heavily, indicating "
             "interleaved per-thread sections; regroup into an array of "
             "structures and parallelize the initialization loop";
      break;
    case PatternKind::kFullRange:
      rec.action = Action::kInterleave;
      why << "every thread touches (nearly) the whole variable; interleaved "
             "page allocation balances requests across domains";
      break;
    case PatternKind::kSingleThread:
      rec.action = Action::kColocate;
      why << "a single thread performs the accesses; co-locate the variable "
             "with that thread's NUMA domain";
      break;
    case PatternKind::kIrregular:
      rec.action = Action::kInterleave;
      why << "no regular pattern even per calling context; interleaving "
             "avoids concentrating requests on one domain (low confidence)";
      break;
    case PatternKind::kUnsampled:
      rec.action = Action::kNone;
      why << "no samples for this variable";
      break;
  }
  if (context != kWholeProgram) {
    why << " (pattern taken from context '" << d.frame_name(context)
        << "', carrying " << static_cast<int>(share * 100)
        << "% of this variable's NUMA cost)";
  }
  if (!rec.severity_warrants) {
    why << "; NOTE: program lpi_NUMA is below the 0.1 threshold, so this "
           "optimization is unlikely to improve end-to-end performance";
  }
  rec.rationale = why.str();
  return rec;
}

std::vector<Recommendation> Advisor::recommend_all(std::size_t top_n) const {
  std::vector<Recommendation> recs;
  for (const VariableReport& report : analyzer_->variables()) {
    if (recs.size() >= top_n) break;
    recs.push_back(recommend(report.id));
  }
  return recs;
}

namespace {

/// AMG decorates per-level variables "x_vec_L2"; they join their base
/// name's static finding (same source line, another coarsening level).
std::string strip_level_suffix(std::string_view name) {
  const std::size_t pos = name.rfind("_L");
  if (pos == std::string_view::npos || pos + 2 >= name.size()) {
    return std::string(name);
  }
  for (std::size_t i = pos + 2; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::string(name);
  }
  return std::string(name.substr(0, pos));
}

/// Kind priority when several static findings name one variable: the
/// first-touch bug class carries the actionable fix, layout issues next.
int lint_kind_rank(LintKind k) noexcept {
  switch (k) {
    case LintKind::kSerialFirstTouch: return 0;
    case LintKind::kCrossSerialInit: return 1;
    case LintKind::kAliasHiddenInit: return 2;
    case LintKind::kScheduleMismatch: return 3;
    case LintKind::kStackEscape: return 4;
    case LintKind::kInterleaveMisuse: return 5;
    case LintKind::kFalseSharing: return 6;
    case LintKind::kReadMostly: return 7;
  }
  return 8;
}

const StaticFinding& representative(const std::vector<StaticFinding>& group) {
  const StaticFinding* best = &group.front();
  for (const StaticFinding& f : group) {
    if (lint_kind_rank(f.kind) < lint_kind_rank(best->kind)) best = &f;
  }
  return *best;
}

}  // namespace

std::vector<FusedFinding> fuse_findings(const Advisor& advisor,
                                        const std::vector<StaticFinding>& statics,
                                        const FusionOptions& options) {
  // Group static findings by variable, preserving source order.
  std::vector<std::string> static_order;
  std::map<std::string, std::vector<StaticFinding>> by_name;
  for (const StaticFinding& f : statics) {
    auto [it, inserted] = by_name.try_emplace(f.variable);
    if (inserted) static_order.push_back(f.variable);
    it->second.push_back(f);
  }

  std::vector<FusedFinding> fused;
  std::map<std::string, bool> static_used;

  for (const Recommendation& rec : advisor.recommend_all(options.top_n)) {
    FusedFinding f;
    f.variable = rec.variable_name;
    f.dynamic_evidence = rec;
    f.severity_warrants = rec.severity_warrants;

    auto it = by_name.find(rec.variable_name);
    if (it == by_name.end()) it = by_name.find(strip_level_suffix(rec.variable_name));

    std::ostringstream why;
    if (it != by_name.end()) {
      // Static + dynamic witnesses for the same variable.
      static_used[it->first] = true;
      f.confidence = FusionConfidence::kConfirmed;
      f.static_evidence = it->second;
      const StaticFinding& rep = representative(it->second);
      f.patterns_agree = rep.suggested == rec.action ||
                         rep.expected == rec.guiding.kind;
      // The run's observed pattern is ground truth for WHERE the data
      // should live; the source is ground truth for WHERE to apply the
      // edit — except when the run only ever saw one thread (or nothing
      // actionable), where the static structure fills the gap.
      const bool dynamic_actionable =
          rec.action != Action::kNone &&
          rec.guiding.kind != PatternKind::kSingleThread;
      f.action = dynamic_actionable ? rec.action : rep.suggested;
      why << to_string(rep.kind) << " at " << rep.file << ":" << rep.line
          << " corroborated by the profile (observed "
          << to_string(rec.guiding.kind) << ")";
      if (f.patterns_agree) {
        why << "; static and dynamic evidence agree on "
            << to_string(f.action);
      } else if (dynamic_actionable) {
        why << "; dynamic evidence prefers " << to_string(rec.action)
            << " over the static suggestion " << to_string(rep.suggested);
      } else {
        why << "; run saw too little to act on, using the static suggestion "
            << to_string(rep.suggested);
      }
    } else {
      f.confidence = FusionConfidence::kDynamicOnly;
      if (rec.guiding.kind == PatternKind::kSingleThread) {
        // A single observed thread with no static evidence of sharing is
        // not worth a placement fix: first touch already homed the pages
        // with their only user.
        f.action = Action::kNone;
        why << "only one thread observed and no static finding names this "
               "variable; no fix recommended";
      } else {
        f.action = rec.action;
        why << "profile-only evidence (observed "
            << to_string(rec.guiding.kind)
            << "); no static finding names this variable";
      }
    }
    if (!f.severity_warrants) {
      why << "; program lpi_NUMA is below the " << kLpiThreshold
          << " threshold, fix unlikely to pay off";
    }
    f.rationale = why.str();
    fused.push_back(std::move(f));
  }

  // Static findings the profile never corroborated, in source order.
  for (const std::string& name : static_order) {
    if (static_used[name]) continue;
    const std::vector<StaticFinding>& group = by_name[name];
    FusedFinding f;
    f.variable = name;
    f.confidence = FusionConfidence::kStaticOnly;
    f.static_evidence = group;
    const StaticFinding& rep = representative(group);
    f.action = rep.suggested;
    std::ostringstream why;
    why << to_string(rep.kind) << " at " << rep.file << ":" << rep.line
        << " not corroborated by the profile (variable unsampled or below "
           "the top-" << options.top_n << " NUMA cost cut)";
    f.rationale = why.str();
    fused.push_back(std::move(f));
  }
  // Confidence-rank: confirmed, then dynamic-only, then static-only; the
  // stable sort preserves dynamic rank / source order within each band.
  const auto band = [](const FusedFinding& f) {
    switch (f.confidence) {
      case FusionConfidence::kConfirmed: return 0;
      case FusionConfidence::kDynamicOnly: return 1;
      case FusionConfidence::kStaticOnly: return 2;
    }
    return 3;
  };
  std::stable_sort(fused.begin(), fused.end(),
                   [&](const FusedFinding& a, const FusedFinding& b) {
                     return band(a) < band(b);
                   });
  return fused;
}

}  // namespace numaprof::core
