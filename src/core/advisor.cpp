#include "core/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace numaprof::core {

std::string_view to_string(PatternKind k) noexcept {
  switch (k) {
    case PatternKind::kUnsampled: return "unsampled";
    case PatternKind::kSingleThread: return "single-thread";
    case PatternKind::kBlocked: return "blocked";
    case PatternKind::kStaggeredOverlap: return "staggered-overlap";
    case PatternKind::kFullRange: return "full-range";
    case PatternKind::kIrregular: return "irregular";
  }
  return "?";
}

std::string_view to_string(Action a) noexcept {
  switch (a) {
    case Action::kNone: return "none";
    case Action::kBlockwiseFirstTouch: return "blockwise-first-touch";
    case Action::kInterleave: return "interleave";
    case Action::kRegroupAos: return "regroup-AoS+parallel-init";
    case Action::kColocate: return "colocate-single-domain";
  }
  return "?";
}

PatternAnalysis Advisor::classify(VariableId variable,
                                  simrt::FrameId context) const {
  const SessionData& d = analyzer_->data();
  const Variable& var = d.variables.at(variable);
  auto ranges = d.address_centric.thread_ranges(var, context);

  // Drop threads with negligible traffic (below 2% of the busiest thread):
  // a master thread touching one element shouldn't distort the pattern.
  std::uint64_t max_count = 0;
  for (const ThreadRange& r : ranges) max_count = std::max(max_count, r.count);
  std::erase_if(ranges, [&](const ThreadRange& r) {
    return r.count * 50 < max_count;
  });

  PatternAnalysis p;
  p.threads = static_cast<std::uint32_t>(ranges.size());
  if (ranges.empty()) return p;
  if (ranges.size() == 1) {
    p.kind = PatternKind::kSingleThread;
    p.mean_width = ranges[0].hi - ranges[0].lo;
    p.coverage = p.mean_width;
    p.monotonic_fraction = 1.0;
    return p;
  }

  // Ranges arrive sorted by tid. Compute widths, adjacent overlap, and
  // midpoint monotonicity.
  double width_sum = 0.0;
  for (const ThreadRange& r : ranges) width_sum += r.hi - r.lo;
  p.mean_width = width_sum / static_cast<double>(ranges.size());

  double overlap_sum = 0.0;
  std::uint32_t ascending = 0;
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    const ThreadRange& a = ranges[i];
    const ThreadRange& b = ranges[i + 1];
    const double inter =
        std::max(0.0, std::min(a.hi, b.hi) - std::max(a.lo, b.lo));
    const double smaller = std::max(1e-9, std::min(a.hi - a.lo, b.hi - b.lo));
    overlap_sum += std::min(1.0, inter / smaller);
    const double mid_a = (a.lo + a.hi) / 2;
    const double mid_b = (b.lo + b.hi) / 2;
    if (mid_b >= mid_a - 1e-9) ++ascending;
  }
  const auto pairs = static_cast<double>(ranges.size() - 1);
  p.mean_overlap = overlap_sum / pairs;
  p.monotonic_fraction = static_cast<double>(ascending) / pairs;

  // Coverage: union of [lo,hi] intervals.
  auto sorted = ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const ThreadRange& a, const ThreadRange& b) {
              return a.lo < b.lo;
            });
  double covered = 0.0;
  double cursor = 0.0;
  for (const ThreadRange& r : sorted) {
    const double lo = std::max(r.lo, cursor);
    if (r.hi > lo) {
      covered += r.hi - lo;
      cursor = r.hi;
    }
  }
  p.coverage = covered;

  // Midpoint spread separates staggered wide ranges (Blackscholes: every
  // thread wide but consistently shifted, Fig. 8) from true full-range
  // access (every thread the same span).
  const double mid_first = (ranges.front().lo + ranges.front().hi) / 2;
  const double mid_last = (ranges.back().lo + ranges.back().hi) / 2;
  const double spread = mid_last - mid_first;

  if (p.mean_width >= 0.8 && spread < 0.05) {
    p.kind = PatternKind::kFullRange;
  } else if (p.monotonic_fraction >= 0.8 && p.mean_overlap <= 0.35 &&
             (p.coverage >= 0.5 || spread >= 0.5)) {
    // Disjoint ascending blocks. Sparse sampling can leave each thread's
    // observed range a sliver of its true block (low coverage), but the
    // midpoints still span the variable — spread rescues that case.
    p.kind = PatternKind::kBlocked;
  } else if (p.monotonic_fraction >= 0.8 && p.mean_overlap > 0.35 &&
             spread >= 0.05) {
    p.kind = PatternKind::kStaggeredOverlap;
  } else if (p.mean_width >= 0.8) {
    p.kind = PatternKind::kFullRange;  // wide but unordered
  } else {
    p.kind = PatternKind::kIrregular;
  }
  return p;
}

double Advisor::variable_context_weight(VariableId variable,
                                        simrt::FrameId context) const {
  const SessionData& d = analyzer_->data();
  double latency = 0.0;
  double count = 0.0;
  d.address_centric.for_each([&](const BinKey& key, const BinStats& stats) {
    if (key.variable != variable || key.context != context) return;
    latency += stats.latency;
    count += static_cast<double>(stats.count);
  });
  // Latency-weighted when the mechanism reports latency (§5.2: "use
  // aggregate latency measurements attributed to a context as a guide");
  // sample counts otherwise (MRK, Soft-IBS).
  return latency > 0.0 ? latency : count;
}

std::pair<simrt::FrameId, double> Advisor::guiding_context(
    VariableId variable, double min_share) const {
  const PatternAnalysis whole = classify(variable, kWholeProgram);
  // Blocked / single-thread whole-program patterns are already maximally
  // actionable. Anything weaker may be a *mixture* of per-region patterns
  // (Fig. 4 vs Fig. 5): a blocked hot region smeared by a cheap
  // full-range region looks full-range (or staggered) overall, so drill
  // into contexts and adopt a pattern only if it is strictly stronger.
  if (whole.kind == PatternKind::kBlocked ||
      whole.kind == PatternKind::kSingleThread) {
    return {kWholeProgram, 1.0};
  }
  const bool accept_staggered = whole.kind != PatternKind::kStaggeredOverlap;

  // Drill into the calling contexts, heaviest first, and adopt the first
  // strongly-actionable pattern carrying at least `min_share` of the
  // variable's cost (Fig. 5 / Fig. 7).
  const SessionData& d = analyzer_->data();
  const double total = variable_context_weight(variable, kWholeProgram);
  if (total <= 0.0) return {kWholeProgram, 1.0};

  std::map<simrt::FrameId, double> weights;
  d.address_centric.for_each([&](const BinKey& key, const BinStats& stats) {
    if (key.variable != variable || key.context == kWholeProgram) return;
    weights[key.context] += stats.latency > 0.0
                                ? stats.latency
                                : static_cast<double>(stats.count);
  });
  std::vector<std::pair<simrt::FrameId, double>> ordered(weights.begin(),
                                                         weights.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [context, weight] : ordered) {
    const double share = weight / total;
    if (share < min_share) break;  // ordered descending: no later context fits
    // Skip frames that are just enclosing wrappers with the same smeared
    // mix; adopt the first context whose pattern is strongly actionable.
    const PatternAnalysis p = classify(variable, context);
    if (p.kind == PatternKind::kBlocked ||
        p.kind == PatternKind::kSingleThread ||
        (accept_staggered && p.kind == PatternKind::kStaggeredOverlap)) {
      return {context, share};
    }
  }
  return {kWholeProgram, 1.0};
}

Recommendation Advisor::recommend(VariableId variable) const {
  const SessionData& d = analyzer_->data();
  Recommendation rec;
  rec.variable = variable;
  rec.variable_name = d.variables.at(variable).name;
  rec.whole_program = classify(variable, kWholeProgram);
  rec.severity_warrants = analyzer_->program().warrants_optimization;
  rec.first_touch_sites = d.first_touch_sites(variable);

  const auto [context, share] = guiding_context(variable);
  rec.guiding_context = context;
  rec.guiding_context_share = share;
  rec.guiding =
      context == kWholeProgram ? rec.whole_program : classify(variable, context);

  std::ostringstream why;
  switch (rec.guiding.kind) {
    case PatternKind::kBlocked:
      rec.action = Action::kBlockwiseFirstTouch;
      why << "threads access disjoint ascending blocks; distribute the "
             "variable block-wise by adjusting the first-touch code";
      break;
    case PatternKind::kStaggeredOverlap:
      rec.action = Action::kRegroupAos;
      why << "per-thread ranges ascend but overlap heavily, indicating "
             "interleaved per-thread sections; regroup into an array of "
             "structures and parallelize the initialization loop";
      break;
    case PatternKind::kFullRange:
      rec.action = Action::kInterleave;
      why << "every thread touches (nearly) the whole variable; interleaved "
             "page allocation balances requests across domains";
      break;
    case PatternKind::kSingleThread:
      rec.action = Action::kColocate;
      why << "a single thread performs the accesses; co-locate the variable "
             "with that thread's NUMA domain";
      break;
    case PatternKind::kIrregular:
      rec.action = Action::kInterleave;
      why << "no regular pattern even per calling context; interleaving "
             "avoids concentrating requests on one domain (low confidence)";
      break;
    case PatternKind::kUnsampled:
      rec.action = Action::kNone;
      why << "no samples for this variable";
      break;
  }
  if (context != kWholeProgram) {
    why << " (pattern taken from context '" << d.frame_name(context)
        << "', carrying " << static_cast<int>(share * 100)
        << "% of this variable's NUMA cost)";
  }
  if (!rec.severity_warrants) {
    why << "; NOTE: program lpi_NUMA is below the 0.1 threshold, so this "
           "optimization is unlikely to improve end-to-end performance";
  }
  rec.rationale = why.str();
  return rec;
}

std::vector<Recommendation> Advisor::recommend_all(std::size_t top_n) const {
  std::vector<Recommendation> recs;
  for (const VariableReport& report : analyzer_->variables()) {
    if (recs.size() >= top_n) break;
    recs.push_back(recommend(report.id));
  }
  return recs;
}

}  // namespace numaprof::core
