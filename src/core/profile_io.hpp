// Profile serialization: the on-disk handoff between the online profiler
// (hpcrun writes per-thread measurement files) and the offline analyzer
// (hpcprof reads and merges them), §7. A SessionData round-trips through
// either of two encodings behind one pair of objects:
//   ProfileWriter — emits the line-oriented text format (the lossless
//                   interchange encoding, docs/format.md) or the
//                   mmap-able columnar binary format (docs/format.md),
//                   selected by ProfileFormat;
//   ProfileReader — autodetects the encoding from magic bytes, so every
//                   consumer accepts either; binary files are loaded
//                   through a zero-copy memory map.
//
// Both loaders treat their input as UNTRUSTED: every enum is range-
// checked, every count is bounded before memory is reserved, and every
// cross-section reference (CCT nodes, frames) is validated. Two load
// modes exist:
//   strict  — the default: any malformed field throws a ProfileError
//             naming the field and line (byte offset, for binary);
//   lenient — damage is recorded as Diagnostics, the damaged section is
//             skipped, and a consistent partial SessionData is returned
//             (§7.2 merges thousands of per-thread files; one bad file
//             must not kill the run).
// merge_profile_files() is the analyzer-side multi-file merge with a
// per-file quorum summary; ProfileWriter::write_thread_shards() writes
// the per-thread measurement files it consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "core/session.hpp"
#include "support/error.hpp"

namespace numaprof::core {

/// Current format version; load_profile also accepts the previous version
/// (which simply lacks the collection-health sections).
inline constexpr int kProfileFormatVersion = 3;
inline constexpr int kMinProfileFormatVersion = 2;

/// A typed parse error carrying the offending field and 1-based line
/// (numaprof::Error with kind ErrorKind::kProfile).
class ProfileError : public numaprof::Error {
 public:
  ProfileError(std::string field, std::size_t line,
               const std::string& message);
};

struct LoadOptions {
  /// false: throw ProfileError at the first malformed field. true: record
  /// a Diagnostic, skip to the next section, return partial data.
  bool lenient = false;
  /// Hard ceiling on any one section's element count. A corrupt header
  /// claiming a gigantic count is rejected before any reserve() happens.
  std::size_t max_count = std::size_t(1) << 22;
};

/// One recorded problem from a lenient load.
struct Diagnostic {
  std::size_t line = 0;
  std::string field;
  std::string message;
};

struct LoadResult {
  SessionData data;
  std::vector<Diagnostic> diagnostics;
  /// True when the stream parsed to its "end" marker with no diagnostics.
  bool complete = true;
};

/// Reads profiles in either encoding, autodetecting from magic bytes: a
/// stream/file/buffer beginning with the binary magic (docs/format.md)
/// loads through the columnar binary loader (memory-mapped when given a
/// path), anything else through the text loader. Construct from a
/// LoadOptions for explicit strict/lenient policy, or from the pipeline's
/// PipelineOptions (which carries the same knobs).
class ProfileReader {
 public:
  ProfileReader() = default;
  explicit ProfileReader(const LoadOptions& options) : options_(options) {}
  explicit ProfileReader(const PipelineOptions& options)
      : options_{.lenient = options.lenient, .max_count = options.max_count} {}

  /// The encoding `prefix` (the first bytes of a profile) begins with.
  /// Binary requires the full 8-byte magic; everything else is text —
  /// the text loader produces the precise error for non-profiles.
  static ProfileFormat detect(std::string_view prefix) noexcept;

  /// Loads from a stream (text streams parse incrementally; binary
  /// streams are buffered first). Strict mode throws ProfileError.
  LoadResult read(std::istream& is) const;

  /// Loads from an in-memory profile; binary input is parsed zero-copy.
  LoadResult read(std::string_view bytes) const;

  /// Loads from a file; binary files are memory-mapped.
  LoadResult read_file(const std::string& path) const;

  const LoadOptions& options() const noexcept { return options_; }

 private:
  LoadOptions options_;
};

/// Writes profiles in the configured encoding (text by default; binary
/// when constructed with ProfileFormat::kBinary or a PipelineOptions
/// whose `format` says so). Both encodings are byte-deterministic: equal
/// sessions produce equal bytes, with canonical record orders.
class ProfileWriter {
 public:
  ProfileWriter() = default;
  explicit ProfileWriter(ProfileFormat format) : format_(format) {}
  explicit ProfileWriter(const PipelineOptions& options)
      : format_(options.format) {}

  void write(const SessionData& data, std::ostream& os) const;

  /// The complete serialized profile as one buffer.
  std::string bytes(const SessionData& data) const;

  void write_file(const SessionData& data, const std::string& path) const;

  /// Serializes one measurement shard per thread WITHOUT touching the
  /// filesystem: element `tid` is a complete profile (in this writer's
  /// format) carrying the shared program structure plus only that
  /// thread's measurements. This is what the ingestion client
  /// (ingest/client.hpp) streams to numaprofd.
  std::vector<std::string> thread_shards(const SessionData& data) const;

  /// Writes one measurement file per thread into `directory`
  /// (thread_<tid>.prof): exactly the thread_shards() payloads, so
  /// merge_profile_files() can reassemble the session by summation.
  /// Returns the paths written.
  std::vector<std::string> write_thread_shards(
      const SessionData& data, const std::string& directory) const;

  ProfileFormat format() const noexcept { return format_; }

 private:
  ProfileFormat format_ = ProfileFormat::kText;
};

/// DEPRECATED free-function shims (PR 4 pattern: one release with a
/// warning before removal). They predate ProfileReader/ProfileWriter and
/// always speak TEXT — binary-aware callers must use the objects.
[[deprecated("use numaprof::ProfileWriter::write instead")]]
void save_profile(const SessionData& data, std::ostream& os);
[[deprecated("use numaprof::ProfileWriter::write_file instead")]]
void save_profile_file(const SessionData& data, const std::string& path);
[[deprecated("use numaprof::ProfileWriter::thread_shards instead")]]
std::vector<std::string> serialize_thread_shards(const SessionData& data);
[[deprecated("use numaprof::ProfileWriter::write_thread_shards instead")]]
std::vector<std::string> save_thread_shards(const SessionData& data,
                                            const std::string& directory);
[[deprecated("use numaprof::ProfileReader::read instead")]]
SessionData load_profile(std::istream& is);
[[deprecated("use numaprof::ProfileReader::read_file instead")]]
SessionData load_profile_file(const std::string& path);
[[deprecated("use numaprof::ProfileReader::read instead")]]
LoadResult load_profile(std::istream& is, const LoadOptions& options);
[[deprecated("use numaprof::ProfileReader::read_file instead")]]
LoadResult load_profile_file(const std::string& path,
                             const LoadOptions& options);

/// DEPRECATED shim kept so pre-PipelineOptions call sites still compile;
/// new code passes numaprof::PipelineOptions (core/options.hpp) instead.
struct [[deprecated(
    "use numaprof::PipelineOptions instead")]] MergeOptions {
  LoadOptions load;
  /// Minimum fraction of input files that must merge successfully; below
  /// this quorum the merge throws even in lenient mode (a run built from
  /// too few shards would silently misrepresent the program).
  double min_quorum = 0.5;
  /// Parallelism of the merge: 1 (the default) is the serial reference
  /// path; N > 1 parses the input files on N participants and folds
  /// per-thread measurement columns in thread-index order — never in
  /// completion order — so the merged session (skips, diagnostics, quorum
  /// behavior included) is bitwise identical to the serial result.
  unsigned jobs = 1;

  PipelineOptions pipeline() const {
    PipelineOptions options;
    options.jobs = jobs;
    options.lenient = load.lenient;
    options.quorum = min_quorum;
    options.max_count = load.max_count;
    return options;
  }
};

struct SkippedProfile {
  std::string path;
  std::string reason;
};

/// Per-file accounting of an analyzer merge.
struct MergeSummary {
  std::size_t files_total = 0;
  std::size_t files_merged = 0;
  std::vector<SkippedProfile> skipped;
  /// Lenient per-file diagnostics; `field` is prefixed with the file path.
  std::vector<Diagnostic> diagnostics;
};

struct MergeResult {
  SessionData data;
  MergeSummary summary;
};

/// Loads and merges per-thread measurement files (§7.2). In strict mode
/// the first unreadable file throws a ProfileError naming the field/line;
/// in lenient mode unreadable or structurally incompatible files are
/// skipped, recorded in the summary, AND surfaced as kProfileFileSkipped
/// degradation events in the merged SessionData so reports show them.
/// `options.lint_paths` is not consumed here (the merge has no source
/// view); CLIs act on it after merging.
MergeResult merge_profile_files(const std::vector<std::string>& paths,
                                const PipelineOptions& options = {});

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
/// DEPRECATED compat overload; forwards to the PipelineOptions form.
[[deprecated("use the numaprof::PipelineOptions overload instead")]]
MergeResult merge_profile_files(const std::vector<std::string>& paths,
                                const MergeOptions& options);
#pragma GCC diagnostic pop

/// Percent-escaping for strings embedded in the profile format (escapes
/// '%', whitespace, and control characters).
std::string escape_field(std::string_view raw);
std::string unescape_field(std::string_view escaped);

}  // namespace numaprof::core
