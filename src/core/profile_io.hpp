// Profile serialization: the on-disk handoff between the online profiler
// (hpcrun writes per-thread measurement files) and the offline analyzer
// (hpcprof reads and merges them), §7. A SessionData round-trips through a
// line-oriented text format; strings are percent-escaped.
#pragma once

#include <iosfwd>
#include <string>

#include "core/session.hpp"

namespace numaprof::core {

/// Current format version; load_profile rejects others.
inline constexpr int kProfileFormatVersion = 2;

void save_profile(const SessionData& data, std::ostream& os);
void save_profile_file(const SessionData& data, const std::string& path);

/// Throws std::runtime_error on malformed input.
SessionData load_profile(std::istream& is);
SessionData load_profile_file(const std::string& path);

/// Percent-escaping for strings embedded in the profile format (escapes
/// '%', whitespace, and control characters).
std::string escape_field(std::string_view raw);
std::string unescape_field(std::string_view escaped);

}  // namespace numaprof::core
