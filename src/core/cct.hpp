// Augmented calling context tree (CCT), §7.1.
//
// hpcrun records "a mixture of variable allocation paths, memory access
// call paths, and first touch call paths", with dummy nodes separating the
// segments recorded for different purposes. This CCT reproduces that: frame
// nodes form call paths; kAllocation/kAccess/kFirstTouch dummy nodes mark
// what the subtree below them represents; kVariable and kBin nodes hang
// data-centric attribution off allocation paths.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "simrt/frame.hpp"

namespace numaprof::core {

using NodeId = std::uint32_t;
inline constexpr NodeId kRootNode = 0;

enum class NodeKind : std::uint8_t {
  kRoot,
  kFrame,       // a function / loop / parallel-region in a call path
  kAllocation,  // dummy: children form the allocation call path segment
  kAccess,      // dummy: children form memory-access call path segments
  kFirstTouch,  // dummy: children form first-touch call path segments
  kVariable,    // data-centric anchor (key = VariableId)
  kBin,         // address-range bin of a variable (key = bin index), §5.2
};

/// Number of NodeKind enumerators (deserializers validate against this).
inline constexpr int kNodeKindCount = 7;

struct CctNode {
  NodeId parent = kRootNode;
  NodeKind kind = NodeKind::kRoot;
  std::uint64_t key = 0;  // FrameId / VariableId / bin index, per kind
  std::uint32_t depth = 0;
};

class Cct {
 public:
  Cct();

  /// Finds or creates the child of `parent` with (kind, key).
  NodeId child(NodeId parent, NodeKind kind, std::uint64_t key);

  /// Bulk-loads the whole tree from parallel columns describing nodes
  /// 1..N (node 0 is the implied root): element i gives node i+1. This is
  /// the binary loader's path: one reserve, no per-node hash-map churn —
  /// the child index materializes lazily on first lookup, and it never
  /// materializes at all for trees that are only merged, not walked.
  /// Every parent must be < its node id (the columns are topologically
  /// ordered, as the writer emits them); kinds must be valid NodeKind
  /// values. Depth is recomputed here. Replaces any existing contents.
  void assign_columns(std::span<const NodeId> parents,
                      std::span<const std::uint8_t> kinds,
                      std::span<const std::uint64_t> keys);

  /// Lookup without creation (for read-only consumers like the viewer).
  std::optional<NodeId> find_child(NodeId parent, NodeKind kind,
                                   std::uint64_t key) const;

  /// Extends `base` by a call path (root-to-leaf frame ids), creating frame
  /// nodes as needed; returns the leaf's node.
  NodeId extend(NodeId base, std::span<const simrt::FrameId> frames);

  const CctNode& node(NodeId id) const { return nodes_.at(id); }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Root-to-node path of ids (includes `id`, excludes the root).
  std::vector<NodeId> path_to(NodeId id) const;

  /// Depth-first visit of the subtree at `id` (pre-order, includes `id`).
  void visit(NodeId id, const std::function<void(NodeId)>& fn) const;

  /// All direct children of `id`.
  std::vector<NodeId> children(NodeId id) const;

  /// True when `ancestor` is on the root path of `id` (or equal).
  bool is_ancestor(NodeId ancestor, NodeId id) const;

 private:
  static std::uint64_t child_key(NodeKind kind, std::uint64_t key) noexcept {
    return (static_cast<std::uint64_t>(kind) << 56) | (key & 0x00ff'ffff'ffff'ffffULL);
  }

  /// Materializes edges_ from nodes_ when a bulk load left it stale.
  /// Inserting nodes 1..N in id order replays the exact per-parent
  /// insertion history of incremental child() construction, so hash-map
  /// iteration order (and thus visit order) is identical whether a tree
  /// was built node-by-node or bulk-loaded. NOT thread-safe: the first
  /// read-side lookup after a bulk load mutates the cached index.
  void ensure_edges() const;

  std::vector<CctNode> nodes_;
  // Per-parent child index; node ids are dense so a vector of maps works.
  // Lazily rebuilt (see ensure_edges) after assign_columns.
  mutable std::vector<std::unordered_map<std::uint64_t, NodeId>> edges_;
  mutable bool edges_valid_ = true;
};

}  // namespace numaprof::core
