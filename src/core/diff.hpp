// Profile differencing: quantify what a NUMA fix changed.
//
// The §8 workflow ends with "apply the fix, re-measure, verify": every
// case study compares M_l/M_r, latency shares, and lpi_NUMA before and
// after an optimization. This module automates that comparison between two
// profiles of the same program (e.g. baseline vs block-wise LULESH),
// matching variables by name and reporting per-variable and program-level
// deltas.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "support/table.hpp"

namespace numaprof::core {

struct VariableDelta {
  std::string name;
  VariableKind kind = VariableKind::kUnknown;
  // move_pages-based remote shares of the variable's own accesses.
  double mismatch_fraction_before = 0.0;
  double mismatch_fraction_after = 0.0;
  // Shares of program remote latency (0 when no latency support).
  double remote_share_before = 0.0;
  double remote_share_after = 0.0;
  bool only_before = false;  // variable vanished (e.g. freed earlier)
  bool only_after = false;

  /// A fix "resolved" the variable when its remote-access share of its own
  /// traffic collapsed (mismatch fraction dropped below half its previous
  /// value and below 30%).
  bool resolved() const noexcept {
    return mismatch_fraction_before > 0.0 &&
           mismatch_fraction_after < 0.3 &&
           mismatch_fraction_after < 0.5 * mismatch_fraction_before;
  }
};

struct DiffReport {
  std::optional<double> lpi_before;
  std::optional<double> lpi_after;
  double mismatch_fraction_before = 0.0;  // program-level M_r share
  double mismatch_fraction_after = 0.0;
  std::vector<VariableDelta> variables;  // by |mismatch delta|, descending

  /// Variables whose NUMA placement the fix repaired.
  std::vector<std::string> resolved_variables() const;
};

/// Compares two analyzed profiles of (assumed) the same program.
DiffReport diff_profiles(const Analyzer& before, const Analyzer& after);

/// Renders the report as an aligned table plus a verdict line.
std::string render_diff(const DiffReport& report);

}  // namespace numaprof::core
