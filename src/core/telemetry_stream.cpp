#include "core/telemetry_stream.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "simrt/thread.hpp"
#include "support/error.hpp"

namespace numaprof::core {
namespace {

using support::TelemetryCounter;
using support::TelemetryEvent;
using support::TelemetryEventKind;
using support::TelemetrySnapshot;
using support::ThreadTelemetry;

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_counters(std::ostream& os,
                    const std::array<std::uint64_t,
                                     support::kTelemetryCounterCount>& c) {
  os << '{';
  for (std::size_t i = 0; i < support::kTelemetryCounterCount; ++i) {
    if (i) os << ',';
    write_json_string(os, to_string(static_cast<TelemetryCounter>(i)));
    os << ':' << c[i];
  }
  os << '}';
}

void write_u64_array(std::ostream& os, const std::vector<std::uint64_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << ']';
}

void write_hot_array(std::ostream& os,
                     const std::vector<support::HotCounter>& rows) {
  os << '[';
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const support::HotCounter& row = rows[i];
    if (i) os << ',';
    os << "{\"key\":" << row.key << ",\"domain\":" << row.domain
       << ",\"count\":" << row.count << ",\"mismatch\":" << row.mismatch
       << ",\"label\":";
    write_json_string(os, row.label);
    os << '}';
  }
  os << ']';
}

// ---------------------------------------------------------------------
// A minimal JSON reader for the trace schema. Each JSONL line is parsed
// independently; errors carry the 1-based line number.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string file, std::size_t line)
      : text_(text), file_(std::move(file)), line_(line) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error(ErrorKind::kTelemetry, file_, "telemetry", line_,
                "telemetry trace parse error (line " + std::to_string(line_) +
                    "): " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of line");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      literal("null");
      return {};
    }
    return parse_number();
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("malformed literal");
    }
    pos_ += word.size();
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("malformed \\u escape");
          }
          // The writer only emits \u00xx for control bytes.
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  std::string_view text_;
  std::string file_;
  std::size_t line_ = 0;
  std::size_t pos_ = 0;
};

[[noreturn]] void trace_error(const std::string& file, std::size_t line,
                              const std::string& message) {
  throw Error(ErrorKind::kTelemetry, file, "telemetry", line,
              "telemetry trace parse error (line " + std::to_string(line) +
                  "): " + message);
}

std::uint64_t as_u64(const JsonValue& v, const std::string& file,
                     std::size_t line, const char* what) {
  if (v.kind != JsonValue::Kind::kNumber || v.number < 0) {
    trace_error(file, line, std::string(what) + " must be a non-negative number");
  }
  return static_cast<std::uint64_t>(v.number);
}

std::vector<std::uint64_t> as_u64_array(const JsonValue& v,
                                        const std::string& file,
                                        std::size_t line, const char* what) {
  if (v.kind != JsonValue::Kind::kArray) {
    trace_error(file, line, std::string(what) + " must be an array");
  }
  std::vector<std::uint64_t> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) out.push_back(as_u64(e, file, line, what));
  return out;
}

std::vector<support::HotCounter> as_hot_array(const JsonValue& v,
                                              const std::string& file,
                                              std::size_t line,
                                              const char* what) {
  if (v.kind != JsonValue::Kind::kArray) {
    trace_error(file, line, std::string(what) + " must be an array");
  }
  std::vector<support::HotCounter> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    if (e.kind != JsonValue::Kind::kObject) {
      trace_error(file, line, std::string(what) + " entries must be objects");
    }
    support::HotCounter row;
    if (const JsonValue* key = e.find("key")) {
      row.key = as_u64(*key, file, line, "key");
    }
    if (const JsonValue* domain = e.find("domain")) {
      row.domain =
          static_cast<std::uint32_t>(as_u64(*domain, file, line, "domain"));
    }
    if (const JsonValue* count = e.find("count")) {
      row.count = as_u64(*count, file, line, "count");
    }
    if (const JsonValue* mismatch = e.find("mismatch")) {
      row.mismatch = as_u64(*mismatch, file, line, "mismatch");
    }
    if (const JsonValue* label = e.find("label")) {
      if (label->kind != JsonValue::Kind::kString) {
        trace_error(file, line,
                    std::string(what) + " labels must be strings");
      }
      row.label = label->string;
    }
    out.push_back(std::move(row));
  }
  return out;
}

bool counter_from_string(std::string_view name, TelemetryCounter& out) {
  for (std::size_t i = 0; i < support::kTelemetryCounterCount; ++i) {
    const auto c = static_cast<TelemetryCounter>(i);
    if (to_string(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

bool event_kind_from_string(std::string_view name, TelemetryEventKind& out) {
  for (std::size_t i = 0; i < support::kTelemetryEventKindCount; ++i) {
    const auto k = static_cast<TelemetryEventKind>(i);
    if (to_string(k) == name) {
      out = k;
      return true;
    }
  }
  return false;
}

bool mechanism_from_string(std::string_view name, pmu::Mechanism& out) {
  for (int i = 0; i < pmu::kMechanismCount; ++i) {
    const auto m = static_cast<pmu::Mechanism>(i);
    if (pmu::to_string(m) == name) {
      out = m;
      return true;
    }
  }
  return false;
}

void fold_counters(
    const JsonValue& object,
    std::array<std::uint64_t, support::kTelemetryCounterCount>& out,
    const std::string& file, std::size_t line) {
  if (object.kind != JsonValue::Kind::kObject) {
    trace_error(file, line, "counter block must be an object");
  }
  for (const auto& [key, value] : object.object) {
    TelemetryCounter c{};
    // Unknown counters are skipped so newer traces load in older readers.
    if (!counter_from_string(key, c)) continue;
    out[static_cast<std::size_t>(c)] = as_u64(value, file, line, key.c_str());
  }
}

TelemetrySnapshot parse_snapshot_line(const JsonValue& root,
                                      const std::string& file,
                                      std::size_t line) {
  TelemetrySnapshot snap;
  if (const JsonValue* seq = root.find("seq")) {
    snap.sequence = as_u64(*seq, file, line, "seq");
  }
  if (const JsonValue* t = root.find("t")) {
    snap.time = as_u64(*t, file, line, "t");
  }
  if (const JsonValue* totals = root.find("totals")) {
    fold_counters(*totals, snap.totals, file, line);
  }
  if (const JsonValue* match = root.find("domain-match")) {
    snap.domain_match = as_u64_array(*match, file, line, "domain-match");
  }
  if (const JsonValue* mismatch = root.find("domain-mismatch")) {
    snap.domain_mismatch =
        as_u64_array(*mismatch, file, line, "domain-mismatch");
  }
  if (const JsonValue* pages = root.find("hot-pages")) {
    snap.hot_pages = as_hot_array(*pages, file, line, "hot-pages");
  }
  if (const JsonValue* vars = root.find("hot-vars")) {
    snap.hot_vars = as_hot_array(*vars, file, line, "hot-vars");
  }
  if (const JsonValue* threads = root.find("threads")) {
    if (threads->kind != JsonValue::Kind::kArray) {
      trace_error(file, line, "threads must be an array");
    }
    for (const JsonValue& row : threads->array) {
      if (row.kind != JsonValue::Kind::kObject) {
        trace_error(file, line, "thread rows must be objects");
      }
      ThreadTelemetry thread;
      if (const JsonValue* tid = row.find("tid")) {
        thread.tid =
            static_cast<std::uint32_t>(as_u64(*tid, file, line, "tid"));
      }
      if (const JsonValue* counters = row.find("counters")) {
        fold_counters(*counters, thread.counters, file, line);
      }
      if (const JsonValue* match = row.find("domain-match")) {
        thread.domain_match = as_u64_array(*match, file, line, "domain-match");
      }
      if (const JsonValue* mismatch = row.find("domain-mismatch")) {
        thread.domain_mismatch =
            as_u64_array(*mismatch, file, line, "domain-mismatch");
      }
      if (const JsonValue* paths = row.find("hot-paths")) {
        thread.hot_paths = as_hot_array(*paths, file, line, "hot-paths");
      }
      snap.threads.push_back(std::move(thread));
    }
  }
  return snap;
}

TelemetryEvent parse_event_line(const JsonValue& root, const std::string& file,
                                std::size_t line) {
  TelemetryEvent event;
  const JsonValue* kind = root.find("kind");
  if (kind == nullptr || kind->kind != JsonValue::Kind::kString) {
    trace_error(file, line, "event lines require a string \"kind\"");
  }
  if (!event_kind_from_string(kind->string, event.kind)) {
    trace_error(file, line, "unknown event kind \"" + kind->string + "\"");
  }
  if (const JsonValue* t = root.find("t")) {
    event.time = as_u64(*t, file, line, "t");
  }
  if (const JsonValue* tid = root.find("tid")) {
    event.tid = static_cast<std::uint32_t>(as_u64(*tid, file, line, "tid"));
  }
  if (const JsonValue* value = root.find("value")) {
    event.value = as_u64(*value, file, line, "value");
  }
  if (const JsonValue* detail = root.find("detail")) {
    if (detail->kind != JsonValue::Kind::kString) {
      trace_error(file, line, "detail must be a string");
    }
    event.set_detail(detail->string);
  }
  return event;
}

}  // namespace

const support::TelemetrySnapshot& TelemetryTrace::final_snapshot() const {
  static const TelemetrySnapshot kEmpty{};
  return snapshots.empty() ? kEmpty : snapshots.back();
}

std::string format_status_line(const TelemetrySnapshot& snapshot,
                               pmu::Mechanism mechanism) {
  return format_status_line(snapshot, mechanism, nullptr);
}

std::string format_status_line(const TelemetrySnapshot& snapshot,
                               pmu::Mechanism mechanism,
                               const TelemetrySnapshot* previous) {
  // Interval delta + per-kilocycle rate for one cumulative counter. The
  // elapsed-cycles guard is load-bearing: a flush right after a periodic
  // emit produces two snapshots with the SAME timestamp, and dividing by
  // that zero interval used to print inf/nan rates.
  const auto delta_suffix = [&](TelemetryCounter c, bool with_rate) {
    if (previous == nullptr) return std::string();
    const std::uint64_t cur = snapshot.total(c);
    const std::uint64_t prev = previous->total(c);
    const std::uint64_t delta = cur >= prev ? cur - prev : 0;
    std::string out = " (+" + std::to_string(delta);
    if (with_rate && snapshot.time > previous->time) {
      const auto elapsed =
          static_cast<double>(snapshot.time - previous->time);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.1f/kc",
                    static_cast<double>(delta) * 1000.0 / elapsed);
      out += buf;
    }
    return out + ")";
  };
  std::ostringstream os;
  os << "[telemetry #" << snapshot.sequence << " t=" << snapshot.time << "] "
     << pmu::to_string(mechanism)
     << " threads=" << snapshot.threads.size()
     << " samples=" << snapshot.total(TelemetryCounter::kSamples)
     << delta_suffix(TelemetryCounter::kSamples, true)
     << " mem=" << snapshot.total(TelemetryCounter::kMemorySamples)
     << delta_suffix(TelemetryCounter::kMemorySamples, false)
     << " drop=" << percent(snapshot.drop_fraction())
     << " traps=" << snapshot.total(TelemetryCounter::kFirstTouchTraps)
     << " heap=" << snapshot.total(TelemetryCounter::kHeapRegistrations);
  const std::uint64_t match = snapshot.total(TelemetryCounter::kMatchSamples);
  const std::uint64_t mismatch =
      snapshot.total(TelemetryCounter::kMismatchSamples);
  os << " M_l/M_r=" << match << "/" << mismatch;
  if (!snapshot.events.empty()) os << " events=" << snapshot.events.size();
  return os.str();
}

std::vector<std::string> format_event_lines(
    const std::vector<TelemetryEvent>& events) {
  // Identical repeated events collapse into one row with a repeat count.
  std::vector<std::pair<const TelemetryEvent*, std::size_t>> event_rows;
  for (const TelemetryEvent& event : events) {
    const auto same = [&event](const auto& row) {
      const TelemetryEvent& seen = *row.first;
      return seen.kind == event.kind && seen.time == event.time &&
             seen.tid == event.tid && seen.value == event.value &&
             seen.detail_view() == event.detail_view();
    };
    if (auto it = std::find_if(event_rows.begin(), event_rows.end(), same);
        it != event_rows.end()) {
      ++it->second;
    } else {
      event_rows.emplace_back(&event, 1);
    }
  }
  std::vector<std::string> lines;
  lines.reserve(event_rows.size());
  for (const auto& [event, repeats] : event_rows) {
    std::ostringstream os;
    os << "  [" << to_string(event->kind) << "] t=" << event->time
       << " tid=" << event->tid;
    if (event->value != 0) os << " (" << event->value << ")";
    if (!event->detail_view().empty()) os << ": " << event->detail_view();
    if (repeats > 1) os << " (x" << repeats << ")";
    lines.push_back(std::move(os).str());
  }
  return lines;
}

namespace {

void write_snapshot_jsonl_impl(const TelemetrySnapshot& snapshot,
                               const pmu::Mechanism* mechanism,
                               std::ostream& os) {
  os << "{\"type\":\"snapshot\",\"v\":2,\"seq\":" << snapshot.sequence
     << ",\"t\":" << snapshot.time;
  if (mechanism != nullptr) {
    os << ",\"mechanism\":";
    write_json_string(os, pmu::to_string(*mechanism));
  }
  os << ",\"totals\":";
  write_counters(os, snapshot.totals);
  os << ",\"domain-match\":";
  write_u64_array(os, snapshot.domain_match);
  os << ",\"domain-mismatch\":";
  write_u64_array(os, snapshot.domain_mismatch);
  os << ",\"hot-pages\":";
  write_hot_array(os, snapshot.hot_pages);
  os << ",\"hot-vars\":";
  write_hot_array(os, snapshot.hot_vars);
  os << ",\"threads\":[";
  for (std::size_t i = 0; i < snapshot.threads.size(); ++i) {
    const ThreadTelemetry& thread = snapshot.threads[i];
    if (i) os << ',';
    os << "{\"tid\":" << thread.tid << ",\"counters\":";
    write_counters(os, thread.counters);
    os << ",\"domain-match\":";
    write_u64_array(os, thread.domain_match);
    os << ",\"domain-mismatch\":";
    write_u64_array(os, thread.domain_mismatch);
    os << ",\"hot-paths\":";
    write_hot_array(os, thread.hot_paths);
    os << '}';
  }
  os << "]}\n";
  for (const TelemetryEvent& event : snapshot.events) {
    os << "{\"type\":\"event\",\"t\":" << event.time
       << ",\"tid\":" << event.tid << ",\"kind\":";
    write_json_string(os, to_string(event.kind));
    os << ",\"value\":" << event.value << ",\"detail\":";
    write_json_string(os, event.detail_view());
    os << "}\n";
  }
}

}  // namespace

void write_snapshot_jsonl(const TelemetrySnapshot& snapshot,
                          pmu::Mechanism mechanism, std::ostream& os) {
  write_snapshot_jsonl_impl(snapshot, &mechanism, os);
}

void write_snapshot_jsonl(const TelemetrySnapshot& snapshot,
                          std::ostream& os) {
  write_snapshot_jsonl_impl(snapshot, nullptr, os);
}

bool append_trace_line(TelemetryTrace& trace, std::string_view line,
                       std::size_t lineno, const std::string& file) {
  if (line.empty()) return false;
  JsonParser parser(line, file, lineno);
  const JsonValue root = parser.parse();
  if (root.kind != JsonValue::Kind::kObject) {
    trace_error(file, lineno, "every trace line must be a JSON object");
  }
  const JsonValue* type = root.find("type");
  if (type == nullptr || type->kind != JsonValue::Kind::kString) {
    trace_error(file, lineno, "trace lines require a string \"type\"");
  }
  if (type->string == "snapshot") {
    if (const JsonValue* mech = root.find("mechanism")) {
      if (mech->kind != JsonValue::Kind::kString ||
          !mechanism_from_string(mech->string, trace.mechanism)) {
        trace_error(file, lineno, "unknown mechanism");
      }
      trace.has_mechanism = true;
    }
    trace.snapshots.push_back(parse_snapshot_line(root, file, lineno));
    return true;
  }
  if (type->string == "event") {
    trace.events.push_back(parse_event_line(root, file, lineno));
  }
  // Unknown line types are skipped (forward compatibility).
  return false;
}

TelemetryTrace load_telemetry_trace(std::istream& is) {
  TelemetryTrace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    append_trace_line(trace, line, lineno);
  }
  return trace;
}

TelemetryTrace load_telemetry_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw Error(ErrorKind::kTelemetry, path, "telemetry", 0,
                "cannot open telemetry trace: " + path);
  }
  try {
    return load_telemetry_trace(is);
  } catch (const Error& e) {
    if (!e.file().empty()) throw;
    throw Error(e.kind(), path, e.field(), e.line(),
                std::string(e.what()) + " [" + path + "]");
  }
}

namespace {

/// DegradationKinds that the live telemetry layer also observes, paired
/// with the TelemetryEventKind(s) that report them. kSampleFaults and
/// kProfileFileSkipped have no event-kind counterpart (the former is a
/// counter, the latter happens offline) and are cross-checked separately.
struct CrossCheckRow {
  const char* label;
  TelemetryEventKind event_kind;
  std::vector<DegradationKind> profile_kinds;
};

const std::vector<CrossCheckRow>& cross_check_rows() {
  static const std::vector<CrossCheckRow> rows = {
      {"mechanism-unavailable", TelemetryEventKind::kMechanismUnavailable,
       {DegradationKind::kMechanismUnavailable}},
      {"mechanism-fallback", TelemetryEventKind::kMechanismFallback,
       {DegradationKind::kMechanismFallback}},
      {"period-retune", TelemetryEventKind::kPeriodRetune,
       {DegradationKind::kPeriodRetuneStarvation,
        DegradationKind::kPeriodRetuneOverhead}},
  };
  return rows;
}

}  // namespace

std::string render_health_pane(const TelemetryTrace& trace,
                               const SessionData* profile) {
  std::ostringstream os;
  const TelemetrySnapshot& last = trace.final_snapshot();
  os << "-- measurement health --\n";
  if (trace.has_mechanism) {
    os << "mechanism: " << pmu::to_string(trace.mechanism) << "\n";
  }
  os << "snapshots: " << trace.snapshots.size() << " (final t=" << last.time
     << ")\n";
  os << "threads observed: " << last.threads.size() << "\n";
  os << "samples: " << last.total(TelemetryCounter::kSamples) << " (memory "
     << last.total(TelemetryCounter::kMemorySamples) << ", dropped "
     << last.total(TelemetryCounter::kDroppedSamples) << " ["
     << percent(last.drop_fraction()) << "], corrupted "
     << last.total(TelemetryCounter::kCorruptedSamples) << ")\n";
  os << "first-touch traps: "
     << last.total(TelemetryCounter::kFirstTouchTraps) << "\n";
  os << "heap tracker: " << last.total(TelemetryCounter::kHeapRegistrations)
     << " registered, " << last.total(TelemetryCounter::kHeapFrees)
     << " freed\n";
  os << "instructions: " << last.total(TelemetryCounter::kInstructions)
     << "\n";
  const std::uint64_t match = last.total(TelemetryCounter::kMatchSamples);
  const std::uint64_t mismatch =
      last.total(TelemetryCounter::kMismatchSamples);
  os << "sampled accesses: M_l " << match << ", M_r " << mismatch;
  if (match + mismatch > 0) {
    os << " (remote "
       << percent(static_cast<double>(mismatch) /
                  static_cast<double>(match + mismatch))
       << ")";
  }
  os << "\n";
  const std::size_t domains =
      std::max(last.domain_match.size(), last.domain_mismatch.size());
  for (std::size_t d = 0; d < domains; ++d) {
    const std::uint64_t dm =
        d < last.domain_match.size() ? last.domain_match[d] : 0;
    const std::uint64_t dr =
        d < last.domain_mismatch.size() ? last.domain_mismatch[d] : 0;
    os << "  domain " << d << ": M_l " << dm << ", M_r " << dr << "\n";
  }
  os << "telemetry events dropped: "
     << last.total(TelemetryCounter::kEventsDropped) << "\n";

  // Identical repeated events collapse into one "(xN)" row — the same
  // format_event_lines the live status-line sink prints through (the raw
  // total in the heading and the cross-check below still count every
  // occurrence).
  os << "events (" << trace.events.size() << "):\n";
  for (const std::string& line : format_event_lines(trace.events)) {
    os << line << "\n";
  }

  if (profile != nullptr) {
    os << "degradation cross-check:\n";
    std::array<std::size_t, support::kTelemetryEventKindCount> streamed{};
    for (const TelemetryEvent& event : trace.events) {
      ++streamed[static_cast<std::size_t>(event.kind)];
    }
    std::array<std::size_t, static_cast<std::size_t>(kDegradationKindCount)>
        recorded{};
    for (const DegradationEvent& event : profile->degradations) {
      ++recorded[static_cast<std::size_t>(event.kind)];
    }
    bool all_ok = true;
    for (const CrossCheckRow& row : cross_check_rows()) {
      const std::size_t from_stream =
          streamed[static_cast<std::size_t>(row.event_kind)];
      std::size_t from_profile = 0;
      for (const DegradationKind kind : row.profile_kinds) {
        from_profile += recorded[static_cast<std::size_t>(kind)];
      }
      const bool ok = from_stream == from_profile;
      all_ok = all_ok && ok;
      os << "  " << row.label << ": telemetry " << from_stream
         << ", profile " << from_profile << (ok ? " [ok]" : " [!]") << "\n";
    }
    const std::uint64_t faulted =
        last.total(TelemetryCounter::kDroppedSamples) +
        last.total(TelemetryCounter::kCorruptedSamples);
    const std::size_t fault_events = recorded[static_cast<std::size_t>(
        DegradationKind::kSampleFaults)];
    const bool faults_ok = (faulted > 0) == (fault_events > 0);
    all_ok = all_ok && faults_ok;
    os << "  sample-faults: telemetry counters " << faulted
       << ", profile events " << fault_events
       << (faults_ok ? " [ok]" : " [!]") << "\n";
    os << "  verdict: "
       << (all_ok ? "telemetry stream and profile degradations agree"
                  : "MISMATCH between telemetry stream and profile (see [!])")
       << "\n";
  }
  return os.str();
}

void TelemetryStreamer::on_exec(const simrt::SimThread& thread,
                                std::uint64_t count) {
  since_emit_ += count;
  last_time_ = std::max(last_time_, static_cast<std::uint64_t>(thread.now()));
  if (config_.interval_instructions > 0 &&
      since_emit_ >= config_.interval_instructions) {
    emit(last_time_);
  }
}

void TelemetryStreamer::on_access(const simrt::SimThread& thread,
                                  const simrt::AccessEvent& /*event*/) {
  since_emit_ += 1;
  last_time_ = std::max(last_time_, static_cast<std::uint64_t>(thread.now()));
  if (config_.interval_instructions > 0 &&
      since_emit_ >= config_.interval_instructions) {
    emit(last_time_);
  }
}

void TelemetryStreamer::flush(std::uint64_t time) {
  // The final partial interval is emitted exactly once: with nothing
  // accumulated since the last emit (second flush in a row, or a flush
  // landing exactly on an interval boundary) there is no partial interval
  // to report, so the flush is a no-op.
  if (emitted_ > 0 && since_emit_ == 0) return;
  emit(std::max(time, last_time_));
}

void TelemetryStreamer::emit(std::uint64_t time) {
  since_emit_ = 0;
  TelemetrySnapshot snapshot = hub_->snapshot(time);
  ++emitted_;
  if (config_.status != nullptr) {
    *config_.status << format_status_line(snapshot, config_.mechanism,
                                          has_previous_ ? &previous_
                                                        : nullptr)
                    << "\n";
    // Event echo below the status line, with identical repeats collapsed
    // into "(xN)" exactly like the health pane — a stalled client
    // re-publishing one event cannot scroll the terminal.
    for (const std::string& line : format_event_lines(snapshot.events)) {
      *config_.status << line << "\n";
    }
  }
  if (config_.jsonl != nullptr) {
    write_snapshot_jsonl(snapshot, config_.mechanism, *config_.jsonl);
  }
  previous_ = std::move(snapshot);
  has_previous_ = true;
}

}  // namespace numaprof::core
