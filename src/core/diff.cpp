#include "core/diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace numaprof::core {

namespace {

double mismatch_fraction(const VariableReport& r) noexcept {
  const auto total = r.match + r.mismatch;
  return total ? static_cast<double>(r.mismatch) / static_cast<double>(total)
               : 0.0;
}

double program_mismatch_fraction(const ProgramSummary& p) noexcept {
  const auto total = p.match + p.mismatch;
  return total ? static_cast<double>(p.mismatch) / static_cast<double>(total)
               : 0.0;
}

}  // namespace

std::vector<std::string> DiffReport::resolved_variables() const {
  std::vector<std::string> names;
  for (const VariableDelta& delta : variables) {
    if (!delta.only_before && !delta.only_after && delta.resolved()) {
      names.push_back(delta.name);
    }
  }
  return names;
}

DiffReport diff_profiles(const Analyzer& before, const Analyzer& after) {
  DiffReport report;
  report.lpi_before = before.program().lpi;
  report.lpi_after = after.program().lpi;
  report.mismatch_fraction_before =
      program_mismatch_fraction(before.program());
  report.mismatch_fraction_after = program_mismatch_fraction(after.program());

  // Index both sides by variable name (the stable identity across runs;
  // allocation order and addresses may differ).
  std::map<std::string, const VariableReport*> lhs, rhs;
  for (const VariableReport& r : before.variables()) lhs.emplace(r.name, &r);
  for (const VariableReport& r : after.variables()) rhs.emplace(r.name, &r);

  for (const auto& [name, b] : lhs) {
    VariableDelta delta;
    delta.name = name;
    delta.kind = b->kind;
    delta.mismatch_fraction_before = mismatch_fraction(*b);
    delta.remote_share_before = b->remote_latency_share;
    const auto it = rhs.find(name);
    if (it == rhs.end()) {
      delta.only_before = true;
    } else {
      delta.mismatch_fraction_after = mismatch_fraction(*it->second);
      delta.remote_share_after = it->second->remote_latency_share;
    }
    report.variables.push_back(std::move(delta));
  }
  for (const auto& [name, a] : rhs) {
    if (lhs.contains(name)) continue;
    VariableDelta delta;
    delta.name = name;
    delta.kind = a->kind;
    delta.mismatch_fraction_after = mismatch_fraction(*a);
    delta.remote_share_after = a->remote_latency_share;
    delta.only_after = true;
    report.variables.push_back(std::move(delta));
  }

  std::sort(report.variables.begin(), report.variables.end(),
            [](const VariableDelta& a, const VariableDelta& b) {
              const double da = std::abs(a.mismatch_fraction_before -
                                         a.mismatch_fraction_after);
              const double db = std::abs(b.mismatch_fraction_before -
                                         b.mismatch_fraction_after);
              return da > db;
            });
  return report;
}

std::string render_diff(const DiffReport& report) {
  using support::format_fixed;
  using support::format_percent;

  std::ostringstream os;
  os << "=== profile diff (before -> after) ===\n";
  const auto lpi_str = [](const std::optional<double>& lpi) {
    return lpi ? format_fixed(*lpi, 3) : std::string("n/a");
  };
  os << "lpi_NUMA: " << lpi_str(report.lpi_before) << " -> "
     << lpi_str(report.lpi_after) << "\n"
     << "program M_r share: " << format_percent(report.mismatch_fraction_before)
     << " -> " << format_percent(report.mismatch_fraction_after) << "\n";

  support::Table table({"variable", "kind", "M_r share before",
                        "M_r share after", "remote-latency share", "status"});
  for (const VariableDelta& d : report.variables) {
    std::string status = "unchanged";
    if (d.only_before) {
      status = "gone";
    } else if (d.only_after) {
      status = "new";
    } else if (d.resolved()) {
      status = "RESOLVED";
    } else if (d.mismatch_fraction_after >
               d.mismatch_fraction_before + 0.1) {
      status = "regressed";
    } else if (d.mismatch_fraction_after + 0.1 <
               d.mismatch_fraction_before) {
      status = "improved";
    }
    table.add_row({d.name, std::string(to_string(d.kind)),
                   d.only_after ? "-" : format_percent(d.mismatch_fraction_before),
                   d.only_before ? "-" : format_percent(d.mismatch_fraction_after),
                   format_percent(d.remote_share_before) + " -> " +
                       format_percent(d.remote_share_after),
                   status});
  }
  os << table.to_text();

  const auto resolved = report.resolved_variables();
  os << "resolved variables: ";
  if (resolved.empty()) {
    os << "(none)";
  } else {
    for (std::size_t i = 0; i < resolved.size(); ++i) {
      if (i != 0) os << ", ";
      os << resolved[i];
    }
  }
  os << "\n";
  return os.str();
}

}  // namespace numaprof::core
