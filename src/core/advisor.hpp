// Optimization advisor: turns address-centric patterns into the concrete
// NUMA fixes the paper's case studies apply (§8).
//
// The paper's tool surfaces the per-thread access-range plot and leaves the
// inference to the analyst; this module encodes that inference:
//  - blocked, disjoint, tid-ascending ranges  -> block-wise distribution at
//    the first-touch site (LULESH z/nodelist, AMG RAP_diag_* in their hot
//    parallel region);
//  - ascending but heavily overlapping ranges -> the data is an SoA layout
//    interleaving per-thread sections; regroup into an array of structures
//    and parallelize initialization (Blackscholes buffer, UMT STime);
//  - every thread spanning the whole range    -> interleaved allocation
//    (the two remaining AMG variables);
//  - irregular whole-program pattern          -> re-classify inside the
//    dominant calling context (the Fig. 4 vs Fig. 5 insight);
//  - severity gate: recommendations are tagged not-worthwhile when
//    lpi_NUMA is below the 0.1 threshold (Blackscholes, §8.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace numaprof::core {

enum class PatternKind : std::uint8_t {
  kUnsampled,
  kSingleThread,      // one thread does (nearly) all accesses
  kBlocked,           // disjoint ascending blocks, one per thread
  kStaggeredOverlap,  // ascending but heavily overlapping ranges
  kFullRange,         // every thread touches ~the whole variable
  kIrregular,
};

std::string_view to_string(PatternKind k) noexcept;

enum class Action : std::uint8_t {
  kNone,                 // below severity threshold or nothing to do
  kBlockwiseFirstTouch,  // distribute blocks via a parallel first touch
  kInterleave,           // numactl-style page interleaving
  kRegroupAos,           // regroup sections into an array-of-structures,
                         // then parallel first touch
  kColocate,             // bind the variable to its single user's domain
  kPadAlign,             // pad/align per-thread data to cache-line size
                         // (false-sharing layouts; static-analysis only)
};

std::string_view to_string(Action a) noexcept;

struct PatternAnalysis {
  PatternKind kind = PatternKind::kUnsampled;
  std::uint32_t threads = 0;
  double mean_width = 0.0;       // avg normalized range width
  double mean_overlap = 0.0;     // avg adjacent-pair overlap fraction
  double coverage = 0.0;         // union of ranges / full extent
  double monotonic_fraction = 0.0;  // adjacent pairs ascending by midpoint
};

struct Recommendation {
  VariableId variable = 0;
  std::string variable_name;
  PatternAnalysis whole_program;
  PatternAnalysis guiding;          // the pattern the advice is based on
  simrt::FrameId guiding_context = kWholeProgram;
  double guiding_context_share = 1.0;  // its share of the variable's cost
  Action action = Action::kNone;
  bool severity_warrants = false;   // program lpi over threshold (§4.2)
  std::string rationale;
  std::vector<FirstTouchSite> first_touch_sites;  // where to edit (§6)
};

class Advisor {
 public:
  explicit Advisor(const Analyzer& analyzer) : analyzer_(&analyzer) {}

  /// Classifies the per-thread access pattern of (variable, context).
  PatternAnalysis classify(VariableId variable,
                           simrt::FrameId context = kWholeProgram) const;

  /// Full recommendation with automatic context selection.
  Recommendation recommend(VariableId variable) const;

  /// Recommendations for the top-N variables by NUMA cost.
  std::vector<Recommendation> recommend_all(std::size_t top_n = 10) const;

  /// The context whose pattern should guide optimization: the whole
  /// program when its pattern is regular; otherwise the most expensive
  /// calling context whose pattern IS regular and whose cost share is at
  /// least `min_share` (the §8.2 drill-down). Returns context + its share.
  std::pair<simrt::FrameId, double> guiding_context(
      VariableId variable, double min_share = 0.5) const;

 private:
  double variable_context_weight(VariableId variable,
                                 simrt::FrameId context) const;

  const Analyzer* analyzer_;
};

// --- Static findings + fusion with dynamic evidence (numalint) ----------
//
// The numalint static pass (src/lint) discovers NUMA antipatterns in the
// source before any profiling run; the fusion layer below joins those
// findings with the data-centric dynamic evidence by variable name so the
// advisor can rank a recommendation by how many independent witnesses
// support it. Static findings reuse the Action/PatternKind vocabulary so
// that "what the source says should happen" and "what the run observed"
// are directly comparable.

/// The static antipattern catalog (see docs/lint.md). L1-L4 come from the
/// per-TU token-shape recognizers; L5-L8 come from the interprocedural
/// dataflow engine (src/lint/dataflow) and can cross function and file
/// boundaries.
enum class LintKind : std::uint8_t {
  kSerialFirstTouch,   // L1: serial init, parallel consumption (§6, §8.1/8.2)
  kFalseSharing,       // L2: per-thread-written fields packed in one line
  kStackEscape,        // L3: stack array escapes into a parallel region (§6)
  kInterleaveMisuse,   // L4: interleaving an array with natural block
                       //     locality (the §8.1 POWER7 regression)
  kCrossSerialInit,    // L5: serial first touch reached through a call
                       //     chain or another translation unit
  kScheduleMismatch,   // L6: parallel init and parallel consumption
                       //     partition iterations differently, so the
                       //     first-touch thread != the consuming thread
  kAliasHiddenInit,    // L7: first touch through a pointer alias/wrapper,
                       //     invisible at the allocation site
  kReadMostly,         // L8: written once serially, read by all threads
                       //     across the whole extent: replication or
                       //     interleaving candidate
};

/// Number of LintKind enumerators.
inline constexpr int kLintKindCount = 8;

std::string_view to_string(LintKind k) noexcept;

/// One statically-discovered antipattern instance.
struct StaticFinding {
  std::string file;
  std::uint32_t line = 0;       // anchor: the serial first-touch site (L1),
                                // the escaping access (L3), else the decl
  std::uint32_t decl_line = 0;  // where the variable is declared/bound
  std::string variable;         // source-level name ("x", "RAP_diag_i")
  LintKind kind = LintKind::kSerialFirstTouch;
  /// The per-thread access pattern the source structure predicts a
  /// profiling run would observe for this variable.
  PatternKind expected = PatternKind::kIrregular;
  Action suggested = Action::kNone;
  std::string message;
};

/// How strongly a fused recommendation is supported.
enum class FusionConfidence : std::uint8_t {
  kConfirmed,    // static finding + dynamic evidence agree on the variable
  kStaticOnly,   // in the source, but the profile never sampled it
  kDynamicOnly,  // in the profile, but no static finding names it
};

/// Number of FusionConfidence enumerators.
inline constexpr int kFusionConfidenceCount = 3;

std::string_view to_string(FusionConfidence c) noexcept;

/// One confidence-ranked, fused recommendation.
struct FusedFinding {
  std::string variable;
  FusionConfidence confidence = FusionConfidence::kStaticOnly;
  Action action = Action::kNone;
  /// Program lpi_NUMA over the 0.1 threshold (§4.2); always false for
  /// static-only findings (no run to judge severity from).
  bool severity_warrants = false;
  /// Static expected pattern/action matches what the run observed.
  bool patterns_agree = false;
  std::vector<StaticFinding> static_evidence;
  std::optional<Recommendation> dynamic_evidence;
  std::string rationale;
};

struct FusionOptions {
  std::size_t top_n = 10;  // dynamic recommendations considered
};

/// Joins static findings with the advisor's dynamic recommendations by
/// variable name (AMG level-decorated names like "x_vec_L2" join their
/// base name). Confirmed findings come first in dynamic rank order, then
/// dynamic-only, then static-only in source order. Strictly additive: the
/// plain Advisor output is not consulted differently than recommend_all.
std::vector<FusedFinding> fuse_findings(const Advisor& advisor,
                                        const std::vector<StaticFinding>& statics,
                                        const FusionOptions& options = {});

}  // namespace numaprof::core
