#include "core/profiler.hpp"

#include "pmu/mechanisms.hpp"
#include "simos/numa_api.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry.hpp"

namespace numaprof::core {

Profiler::Profiler(simrt::Machine& machine, ProfilerConfig config)
    : machine_(machine),
      config_(config),
      requested_mechanism_(config.event.mechanism),
      registry_(cct_, machine.memory()),
      addr_(ProfilerConfig::resolve_bins(config.address_bins)) {
  access_dummy_ = cct_.child(kRootNode, NodeKind::kAccess, 0);
  first_touch_dummy_ = cct_.child(kRootNode, NodeKind::kFirstTouch, 0);
  if (config_.telemetry != nullptr) {
    config_.telemetry->set_domain_count(machine.topology().domain_count);
  }

  support::FaultPlan& plan =
      config_.faults ? *config_.faults : support::global_fault_plan();
  if (config_.enable_fallback) {
    pmu::MechanismFallback fb =
        pmu::make_sampler_with_fallback(config_.event, plan);
    sampler_ = std::move(fb.sampler);
    for (const pmu::Mechanism m : fb.unavailable) {
      degradations_.push_back(DegradationEvent{
          .kind = DegradationKind::kMechanismUnavailable,
          .mechanism = m,
          .value = 0,
          .detail = std::string(pmu::to_string(m)) +
                    " failed its availability probe"});
      publish_telemetry_event(support::TelemetryEventKind::kMechanismUnavailable,
                              static_cast<std::uint64_t>(m),
                              degradations_.back().detail);
    }
    if (fb.degraded()) {
      degradations_.push_back(DegradationEvent{
          .kind = DegradationKind::kMechanismFallback,
          .mechanism = fb.used,
          .value = 0,
          .detail = "requested " + std::string(pmu::to_string(fb.requested)) +
                    ", collecting with " + std::string(pmu::to_string(fb.used))});
      publish_telemetry_event(support::TelemetryEventKind::kMechanismFallback,
                              static_cast<std::uint64_t>(fb.used),
                              degradations_.back().detail);
    }
  } else {
    sampler_ = pmu::make_sampler(config_.event);
    if (plan.enabled()) sampler_->set_fault_plan(&plan);
  }

  sampler_->set_sink([this](const pmu::Sample& s) { on_sample(s); });
  sampler_->set_telemetry(config_.telemetry);
  machine_.add_observer(*sampler_);
  if (config_.enable_watchdog) {
    watchdog_ = std::make_unique<pmu::SamplingWatchdog>(*sampler_,
                                                        config_.watchdog);
    watchdog_->set_telemetry(config_.telemetry);
    machine_.add_observer(*watchdog_);
  }
  machine_.add_observer(*this);
  if (config_.track_first_touch) {
    machine_.set_protect_on_alloc(true);
    machine_.set_fault_handler(
        [this](const simrt::FaultEvent& f) { on_fault(f); });
  }
  running_ = true;
}

Profiler::~Profiler() {
  if (running_) stop();
}

void Profiler::stop() {
  if (!running_) return;
  machine_.remove_observer(*sampler_);
  if (watchdog_) machine_.remove_observer(*watchdog_);
  machine_.remove_observer(*this);
  if (config_.track_first_touch) {
    machine_.set_protect_on_alloc(false);
    machine_.set_fault_handler({});
  }
  // Read the "conventional PMU counters": absolute instruction and memory
  // access counts per thread (the I and I_MEM of Eq. 1).
  for (simrt::ThreadId tid = 0; tid < machine_.thread_count(); ++tid) {
    ThreadTotals& t = totals_of(tid);
    const simrt::SimThread& thread = machine_.thread(tid);
    t.instructions = thread.instructions();
    t.memory_instructions = thread.memory_accesses();
  }
  running_ = false;
}

MetricStore& Profiler::store_of(simrt::ThreadId tid) {
  while (stores_.size() <= tid) {
    stores_.emplace_back(machine_.topology().domain_count);
  }
  return stores_[tid];
}

ThreadTotals& Profiler::totals_of(simrt::ThreadId tid) {
  while (totals_.size() <= tid) {
    ThreadTotals t;
    t.per_domain.assign(machine_.topology().domain_count, 0);
    totals_.push_back(std::move(t));
  }
  return totals_[tid];
}

void Profiler::on_alloc(const simrt::AllocEvent& event) {
  registry_.on_alloc(event);
  if (config_.telemetry != nullptr) {
    config_.telemetry->ring(event.tid).add(
        support::TelemetryCounter::kHeapRegistrations);
  }
}

void Profiler::on_free(const simrt::FreeEvent& event) {
  registry_.on_free(event);
  if (config_.telemetry != nullptr) {
    config_.telemetry->ring(event.tid).add(
        support::TelemetryCounter::kHeapFrees);
  }
}

void Profiler::publish_telemetry_event(support::TelemetryEventKind kind,
                                       std::uint64_t value,
                                       std::string_view detail) {
  if (config_.telemetry == nullptr) return;
  support::TelemetryEvent event;
  event.kind = kind;
  event.tid = 0;
  event.time = machine_.elapsed();
  event.value = value;
  event.set_detail(detail);
  config_.telemetry->ring(0).publish(event);
}

void Profiler::record_at(MetricStore& store, NodeId node, bool mismatch,
                         bool remote, const pmu::Sample& sample,
                         std::uint32_t home_domain) {
  store.add(node, kSamples, 1);
  store.add(node, kMemorySamples, 1);
  store.add(node, mismatch ? kNumaMismatch : kNumaMatch, 1);
  store.add(node, domain_metric(home_domain), 1);
  if (sample.latency) {
    const auto latency = static_cast<double>(*sample.latency);
    store.add(node, kTotalLatency, latency);
    if (remote) store.add(node, kRemoteLatency, latency);
  }
  if (sample.l3_miss) {
    store.add(node, kL3MissSamples, 1);
    if (mismatch) store.add(node, kRemoteL3MissSamples, 1);
  }
  if (sample.data_source) {
    store.add(node, source_metric(*sample.data_source), 1);
  }
}

void Profiler::on_sample(const pmu::Sample& sample) {
  MetricStore& store = store_of(sample.tid);
  ThreadTotals& totals = totals_of(sample.tid);
  ++totals.samples;

  // Code-centric attribution: the sample's call path under [ACCESS].
  const NodeId code_leaf = cct_.extend(access_dummy_, sample.stack);
  if (!sample.is_memory) {
    // A sampled non-memory instruction (IBS/PEBS): contributes to I^s only.
    store.add(code_leaf, kSamples, 1);
    return;
  }
  ++totals.memory_samples;

  // Domain classification (§4.1): move_pages for the data's domain,
  // numa_node_of_cpu for the sampling CPU's domain.
  const auto home = simos::domain_of_addr(machine_.memory().page_table(),
                                          sample.addr);
  const numasim::DomainId thread_domain =
      simos::numa_node_of_cpu(machine_.topology(), sample.core);
  const numasim::DomainId home_domain = home.value_or(thread_domain);
  const bool mismatch = home_domain != thread_domain;
  // Latency remoteness prefers the PMU data source when present: a sample
  // served from a private cache is NOT remote traffic even if move_pages
  // says the page lives elsewhere (the §4.1 bias the latency metrics fix).
  const bool remote = sample.data_source
                          ? numasim::is_remote(*sample.data_source)
                          : mismatch;

  record_at(store, code_leaf, mismatch, remote, sample, home_domain);

  // Data-centric attribution: variable node + its address-range bin node
  // (bins are synthetic variables, §5.2).
  const VariableId vid = registry_.resolve(sample.addr);
  const Variable& var = registry_.variable(vid);
  record_at(store, var.variable_node, mismatch, remote, sample, home_domain);
  if (addr_.bins_for(var) > 1) {
    const NodeId bin_node = cct_.child(var.variable_node, NodeKind::kBin,
                                       addr_.bin_of(var, sample.addr));
    record_at(store, bin_node, mismatch, remote, sample, home_domain);
  }

  // Whole-program totals.
  mismatch ? ++totals.mismatch : ++totals.match;
  totals.per_domain[home_domain] += 1;
  if (config_.telemetry != nullptr) {
    support::TelemetryRing& ring = config_.telemetry->ring(sample.tid);
    ring.add(mismatch ? support::TelemetryCounter::kMismatchSamples
                      : support::TelemetryCounter::kMatchSamples);
    ring.add_domain_sample(home_domain, mismatch);
    if (sample.latency) {
      ring.add(support::TelemetryCounter::kLatencyCycles, *sample.latency);
      if (mismatch) {
        ring.add(support::TelemetryCounter::kRemoteLatencyCycles,
                 *sample.latency);
      }
    }
    // Bounded top-K hot tables behind the numa_top panes: the touched
    // page and variable per home domain, and this thread's call path.
    ring.add_hot(support::HotTableKind::kPages, simos::page_of(sample.addr),
                 home_domain, mismatch);
    ring.add_hot(support::HotTableKind::kVariables, vid, home_domain,
                 mismatch, var.name);
    // Paths are per-thread, not per-domain: domain 0 keeps each leaf in
    // one slot.
    ring.add_hot(support::HotTableKind::kPaths, code_leaf, 0, mismatch,
                 hot_path_label(code_leaf, sample.stack));
  }
  if (sample.latency) {
    const auto latency = static_cast<double>(*sample.latency);
    totals.total_latency += latency;
    if (remote) totals.remote_latency += latency;
  }
  if (sample.l3_miss) {
    ++totals.l3_miss_samples;
    if (mismatch) ++totals.remote_l3_miss_samples;
  }

  // Address-centric attribution (§5.2).
  addr_.record(sample.stack, var, sample.tid, sample.addr,
               sample.latency ? static_cast<double>(*sample.latency) : 0.0);

  // Optional trace event (time-varying analysis, core/trace.hpp).
  if (config_.record_trace && trace_.size() < config_.trace_capacity) {
    trace_.push_back(TraceEvent{
        .time = sample.time,
        .tid = sample.tid,
        .variable = vid,
        .home_domain = home_domain,
        .mismatch = mismatch,
        .remote = remote,
        .latency = static_cast<std::uint32_t>(sample.latency.value_or(0))});
  }
}

void Profiler::on_fault(const simrt::FaultEvent& fault) {
  // The simulated SIGSEGV handler of §6: code-centric attribution from the
  // signal context, data-centric from the faulting address, then restore
  // permissions so the access can retry.
  auto& page_table = machine_.memory().page_table();
  const simos::PageId page = simos::page_of(fault.addr);
  page_table.unprotect(page);

  const VariableId vid = registry_.resolve(fault.addr);
  const NodeId leaf = cct_.extend(first_touch_dummy_, fault.stack);
  const NodeId node = cct_.child(leaf, NodeKind::kVariable, vid);

  MetricStore& store = store_of(fault.tid);
  store.add(node, kFirstTouches, 1);
  store.add(registry_.variable(vid).variable_node, kFirstTouches, 1);

  const numasim::DomainId touch_domain =
      simos::numa_node_of_cpu(machine_.topology(), fault.core);
  first_touches_.push_back(FirstTouchRecord{.variable = vid,
                                            .tid = fault.tid,
                                            .domain = touch_domain,
                                            .node = node,
                                            .page = page});
  if (config_.telemetry != nullptr) {
    support::TelemetryRing& ring = config_.telemetry->ring(fault.tid);
    ring.add(support::TelemetryCounter::kFirstTouchTraps);
    // First touch fixes the page's home domain — seed the hot tables so
    // numa_top shows the page/variable before any samples land on it.
    ring.add_hot(support::HotTableKind::kPages, page, touch_domain, false);
    ring.add_hot(support::HotTableKind::kVariables, vid, touch_domain, false,
                 registry_.variable(vid).name);
  }
}

std::string_view Profiler::hot_path_label(
    NodeId leaf, std::span<const simrt::FrameId> stack) {
  const auto cached = hot_path_labels_.find(leaf);
  if (cached != hot_path_labels_.end()) return cached->second;
  // The last three frames identify the path tightly enough for a terminal
  // column; a ".." prefix marks truncation.
  constexpr std::size_t kTailFrames = 3;
  std::string label;
  if (stack.size() > kTailFrames) label = "..";
  const std::size_t first =
      stack.size() > kTailFrames ? stack.size() - kTailFrames : 0;
  for (std::size_t i = first; i < stack.size(); ++i) {
    if (!label.empty()) label += '>';
    label += machine_.frames().info(stack[i]).name;
  }
  if (label.empty()) label = "(no stack)";
  return hot_path_labels_.emplace(leaf, std::move(label)).first->second;
}

SessionData Profiler::snapshot() {
  if (running_) stop();
  SessionData data;
  data.machine_name = machine_.topology().name;
  data.domain_count = machine_.topology().domain_count;
  data.core_count = machine_.topology().core_count();
  data.mechanism = sampler_->mechanism();
  data.requested_mechanism = requested_mechanism_;
  data.sampling_period = sampler_->config().period;
  data.degradations = degradations_;
  if (watchdog_) {
    for (const pmu::WatchdogEvent& e : watchdog_->events()) {
      data.degradations.push_back(DegradationEvent{
          .kind = e.starvation ? DegradationKind::kPeriodRetuneStarvation
                               : DegradationKind::kPeriodRetuneOverhead,
          .mechanism = sampler_->mechanism(),
          .value = e.new_period,
          .detail = "period " + std::to_string(e.old_period) + " -> " +
                    std::to_string(e.new_period) + " after " +
                    std::to_string(e.instructions) + " instructions"});
    }
  }
  if (sampler_->dropped_samples() + sampler_->corrupted_samples() > 0) {
    data.degradations.push_back(DegradationEvent{
        .kind = DegradationKind::kSampleFaults,
        .mechanism = sampler_->mechanism(),
        .value = sampler_->dropped_samples() + sampler_->corrupted_samples(),
        .detail = std::to_string(sampler_->dropped_samples()) +
                  " samples dropped, " +
                  std::to_string(sampler_->corrupted_samples()) +
                  " corrupted by fault injection"});
  }

  const auto& frames = machine_.frames();
  data.frames.reserve(frames.size());
  for (simrt::FrameId f = 0; f < frames.size(); ++f) {
    data.frames.push_back(frames.info(f));
  }
  data.cct = cct_;
  data.variables = registry_.all();
  data.stores = stores_;
  data.totals = totals_;
  data.address_centric = addr_;
  data.first_touches = first_touches_;
  data.trace = trace_;
  if (const auto* pebs_ll =
          dynamic_cast<const pmu::PebsLlSampler*>(sampler_.get())) {
    data.pebs_ll_events = pebs_ll->events_counted();
  }
  const support::FaultPlan& plan =
      config_.faults ? *config_.faults : support::global_fault_plan();
  if (plan.enabled()) {
    // Stamp every degradation with the plan that provoked it: the report
    // alone (spec + RNG seed) is enough to reproduce the failure.
    const std::string suffix = plan.context_suffix();
    for (DegradationEvent& e : data.degradations) e.detail += suffix;
    data.fault_context = plan.describe();
  }
  return data;
}

}  // namespace numaprof::core
