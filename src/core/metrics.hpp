// NUMA metrics (§4) and per-(node, thread) metric storage.
//
// Fixed metrics follow the paper's viewer columns: NUMA_MATCH (M_l),
// NUMA_MISMATCH (M_r), sampled-latency totals, sample counts; per-domain
// access counts (NUMA_NODE<k>) are appended dynamically based on the
// machine's domain count. Derived metrics (lpi_NUMA, Eqs. 1-3) are computed
// from these by free functions so any view can evaluate them over any
// context.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/cct.hpp"
#include "numasim/types.hpp"
#include "support/threadpool.hpp"

namespace numaprof::core {

/// Fixed metric slots. Per-domain slots follow these, one per NUMA domain.
enum Metric : std::uint32_t {
  kNumaMatch = 0,       // M_l: sampled accesses to the local domain
  kNumaMismatch,        // M_r: sampled accesses to a remote domain
  kSamples,             // I^s: all sampled instructions (memory or not)
  kMemorySamples,       // sampled memory accesses
  kRemoteLatency,       // l^s_NUMA: summed latency of sampled remote accesses
  kTotalLatency,        // summed latency of all sampled accesses
  kL3MissSamples,       // sampled accesses that missed L3 (MRK's event)
  kRemoteL3MissSamples, // ... of those, how many were remote
  kFirstTouches,        // first-touch faults attributed here
  // Data-source breakdown (available when the mechanism reports data
  // sources — IBS and PEBS-LL; §8.3 uses these to identify where buffer's
  // accesses were served from). One slot per numasim::DataSource value.
  kSourceL1,
  kSourceL2,
  kSourceLocalL3,
  kSourceRemoteL3,
  kSourceLocalDram,
  kSourceRemoteDram,
  kFixedMetricCount,
};

/// Metric slot for a data source value.
constexpr std::uint32_t source_metric(numasim::DataSource s) noexcept {
  return kSourceL1 + static_cast<std::uint32_t>(s);
}

/// Human-readable metric names; `domain_count` extends with NUMA_NODE<k>.
std::vector<std::string> metric_names(std::uint32_t domain_count);

/// Index of the NUMA_NODE<domain> slot.
constexpr std::uint32_t domain_metric(std::uint32_t domain) noexcept {
  return kFixedMetricCount + domain;
}

/// Dense per-node metric vectors for ONE thread's profile (hpcrun keeps
/// per-thread profiles; the analyzer merges them, §7.2).
class MetricStore {
 public:
  explicit MetricStore(std::uint32_t domain_count)
      : width_(kFixedMetricCount + domain_count) {}

  std::uint32_t width() const noexcept { return width_; }

  /// NUMA domains this store was sized for (width minus the fixed slots).
  std::uint32_t domain_count() const noexcept {
    return width_ - kFixedMetricCount;
  }

  void add(NodeId node, std::uint32_t metric, double value);
  double get(NodeId node, std::uint32_t metric) const;

  /// Bulk row access for the columnar (de)serializers: `row` is the dense
  /// width()-wide metric vector of `node` (empty span when the node has no
  /// recorded metrics), and set_row() installs one wholesale — the binary
  /// loader feeds decoded metric columns straight in, bypassing the
  /// per-cell add() path. `values.size()` must equal width().
  std::span<const double> row(NodeId node) const;
  void set_row(NodeId node, std::span<const double> values);
  bool has(NodeId node) const { return node < values_.size() && !values_[node].empty(); }

  /// One past the highest node slot allocated (rows may be empty).
  std::size_t node_capacity() const noexcept { return values_.size(); }

  /// Nodes with any recorded metric.
  std::vector<NodeId> nodes() const;

  /// Accumulates `other` into this store (the sum half of the §7.2 merge).
  void merge(const MetricStore& other);

  /// Folds every store in `parts` into this one, parallelized across node
  /// ROWS: each row's metric values are summed over `parts` in vector
  /// order, exactly the per-element addition order of calling merge() on
  /// each part sequentially — so the result is bitwise identical to the
  /// serial fold for ANY pool size (including null = serial).
  void merge_all(const std::vector<const MetricStore*>& parts,
                 support::ThreadPool* pool);

 private:
  std::uint32_t width_;
  // Indexed by NodeId; empty inner vector = untouched node. NodeIds are
  // dense and shared across threads (one Cct per profiling session).
  std::vector<std::vector<double>> values_;
};

/// Inclusive metric: sums `metric` over the subtree rooted at `node`.
double inclusive(const Cct& cct, const MetricStore& store, NodeId node,
                 std::uint32_t metric);

/// lpi_NUMA over a context (Eq. 2, the IBS form): accumulated sampled
/// remote latency divided by sampled instruction count in that context.
/// Returns 0 when no samples landed there.
double lpi_numa(double remote_latency, double sampled_instructions) noexcept;

/// lpi_NUMA via Eq. 3 (the PEBS-LL form): average latency per sampled
/// remote event, scaled by the absolute qualifying-event count estimate and
/// divided by the absolute instruction count.
double lpi_numa_pebs_ll(double sampled_remote_latency,
                        double sampled_remote_events,
                        double sampled_total_events,
                        double absolute_event_count,
                        double absolute_instructions) noexcept;

/// The paper's severity rule of thumb: lpi_NUMA above 0.1 cycles per
/// instruction warrants NUMA optimization (§4.2).
inline constexpr double kLpiThreshold = 0.1;

}  // namespace numaprof::core
