#include "core/analyzer.hpp"

#include <algorithm>

#include "core/profile_io.hpp"
#include "pmu/config.hpp"
#include "support/stats.hpp"

namespace numaprof::core {

Analyzer::Analyzer(const SessionData& data, const PipelineOptions& options)
    : data_(&data), merged_(data.domain_count) {
  validate_stores();
  merge_stores(options);
  build_program_summary();
  build_variable_reports();
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
Analyzer::Analyzer(const SessionData& data, const AnalyzerOptions& options)
    : Analyzer(data, options.pipeline()) {}
#pragma GCC diagnostic pop

void Analyzer::validate_stores() const {
  for (std::size_t tid = 0; tid < data_->stores.size(); ++tid) {
    const std::uint32_t domains = data_->stores[tid].domain_count();
    if (domains != data_->domain_count) {
      throw ProfileError(
          "stores", 0,
          "thread " + std::to_string(tid) + " metric store covers " +
              std::to_string(domains) + " domains but the session has " +
              std::to_string(data_->domain_count));
    }
  }
}

void Analyzer::merge_stores(const PipelineOptions& options) {
  const unsigned jobs = options.pool ? options.pool->jobs() : options.jobs;
  if (jobs <= 1 || data_->stores.size() <= 1) {
    for (const MetricStore& store : data_->stores) merged_.merge(store);
    return;
  }
  std::vector<const MetricStore*> parts;
  parts.reserve(data_->stores.size());
  for (const MetricStore& store : data_->stores) parts.push_back(&store);
  if (options.pool) {
    merged_.merge_all(parts, options.pool);
  } else {
    support::ThreadPool pool(jobs);
    merged_.merge_all(parts, &pool);
  }
}

void Analyzer::build_program_summary() {
  ProgramSummary& p = program_;
  p.per_domain.assign(data_->domain_count, 0);
  for (const ThreadTotals& t : data_->totals) {
    p.samples += t.samples;
    p.memory_samples += t.memory_samples;
    p.match += t.match;
    p.mismatch += t.mismatch;
    p.remote_latency += t.remote_latency;
    p.total_latency += t.total_latency;
    p.l3_miss_samples += t.l3_miss_samples;
    p.remote_l3_miss_samples += t.remote_l3_miss_samples;
    p.instructions += t.instructions;
    p.memory_instructions += t.memory_instructions;
    for (std::size_t d = 0; d < t.per_domain.size() && d < p.per_domain.size();
         ++d) {
      p.per_domain[d] += t.per_domain[d];
    }
  }

  const pmu::Capabilities caps = pmu::capabilities_of(data_->mechanism);
  if (caps.reports_latency) {
    if (data_->mechanism == pmu::Mechanism::kPebsLl) {
      // Eq. 3: event-sampling mechanisms scale by the absolute qualifying-
      // event count and the conventional instruction counter.
      double remote_samples = 0.0;
      for (const ThreadTotals& t : data_->totals) {
        remote_samples += static_cast<double>(t.mismatch);
      }
      p.lpi = lpi_numa_pebs_ll(
          p.remote_latency, remote_samples,
          static_cast<double>(p.memory_samples),
          static_cast<double>(data_->pebs_ll_events),
          static_cast<double>(p.instructions));
    } else {
      // Eq. 2: instruction-sampling mechanisms divide accumulated sampled
      // remote latency by the number of sampled instructions.
      p.lpi = lpi_numa(p.remote_latency, static_cast<double>(p.samples));
    }
    p.warrants_optimization = *p.lpi > kLpiThreshold;
  }

  if (p.total_latency > 0.0) {
    p.remote_latency_fraction = p.remote_latency / p.total_latency;
  }
  // Eq. 1 decomposition: sampled remote accesses estimate I_NUMA, sampled
  // memory accesses estimate I_MEM (both within the sample population);
  // the absolute counters supply I_MEM / I.
  if (p.mismatch > 0) {
    p.avg_remote_latency =
        p.remote_latency / static_cast<double>(p.mismatch);
  }
  if (p.memory_samples > 0) {
    p.remote_access_fraction = static_cast<double>(p.mismatch) /
                               static_cast<double>(p.memory_samples);
  }
  if (p.instructions > 0) {
    p.memory_fraction = static_cast<double>(p.memory_instructions) /
                        static_cast<double>(p.instructions);
  }
  if (p.l3_miss_samples > 0) {
    p.remote_l3_fraction = static_cast<double>(p.remote_l3_miss_samples) /
                           static_cast<double>(p.l3_miss_samples);
  }
  p.domain_imbalance = support::imbalance(p.per_domain);
  if (!p.lpi) {
    // Without latency, fall back to the M_r share as the severity signal:
    // "unless M_r << M_l ... the code region may suffer" (§4.1).
    const std::uint64_t accesses = p.match + p.mismatch;
    p.warrants_optimization =
        accesses > 0 &&
        static_cast<double>(p.mismatch) > 0.3 * static_cast<double>(accesses);
  }
}

void Analyzer::build_variable_reports() {
  reports_.clear();
  for (const Variable& var : data_->variables) {
    VariableReport r = report(var.id);
    if (r.samples == 0 && r.first_touch_pages == 0) continue;
    reports_.push_back(std::move(r));
  }
  const bool have_latency = program_.remote_latency > 0.0;
  std::sort(reports_.begin(), reports_.end(),
            [have_latency](const VariableReport& a, const VariableReport& b) {
              if (have_latency &&
                  a.remote_latency_share != b.remote_latency_share) {
                return a.remote_latency_share > b.remote_latency_share;
              }
              return a.mismatch > b.mismatch;
            });
}

VariableReport Analyzer::report(VariableId id) const {
  const Variable& var = data_->variables.at(id);
  const NodeId node = var.variable_node;

  VariableReport r;
  r.id = id;
  r.name = var.name;
  r.kind = var.kind;
  r.samples = static_cast<std::uint64_t>(merged_.get(node, kMemorySamples));
  r.match = static_cast<std::uint64_t>(merged_.get(node, kNumaMatch));
  r.mismatch = static_cast<std::uint64_t>(merged_.get(node, kNumaMismatch));
  r.remote_latency = merged_.get(node, kRemoteLatency);
  r.total_latency = merged_.get(node, kTotalLatency);
  r.per_domain.resize(data_->domain_count);
  for (std::uint32_t d = 0; d < data_->domain_count; ++d) {
    r.per_domain[d] =
        static_cast<std::uint64_t>(merged_.get(node, domain_metric(d)));
  }
  if (program_.remote_latency > 0.0) {
    r.remote_latency_share = r.remote_latency / program_.remote_latency;
  }
  if (program_.mismatch > 0) {
    r.mismatch_share = static_cast<double>(r.mismatch) /
                       static_cast<double>(program_.mismatch);
  }
  if (program_.l3_miss_samples > 0) {
    r.l3_share = merged_.get(node, kL3MissSamples) /
                 static_cast<double>(program_.l3_miss_samples);
  }
  if (pmu::capabilities_of(data_->mechanism).reports_latency &&
      r.samples > 0) {
    r.lpi = lpi_numa(r.remote_latency, static_cast<double>(r.samples));
  }
  r.first_touch_pages =
      static_cast<std::uint64_t>(merged_.get(node, kFirstTouches));

  // Single-home detection: NUMA_NODE<d> == M_l + M_r for exactly one d.
  const std::uint64_t accesses = r.match + r.mismatch;
  if (accesses > 0) {
    for (std::uint32_t d = 0; d < data_->domain_count; ++d) {
      if (r.per_domain[d] == accesses) {
        r.single_home_domain = d;
        break;
      }
    }
  }
  return r;
}

std::optional<double> Analyzer::region_lpi(NodeId node) const {
  if (!pmu::capabilities_of(data_->mechanism).reports_latency) {
    return std::nullopt;
  }
  const double samples = inclusive(data_->cct, merged_, node, kSamples);
  if (samples <= 0.0) return std::nullopt;
  return inclusive(data_->cct, merged_, node, kRemoteLatency) / samples;
}

std::optional<NodeId> Analyzer::find_region(std::string_view frame_name) const {
  const auto access =
      data_->cct.find_child(kRootNode, NodeKind::kAccess, 0);
  if (!access) return std::nullopt;
  std::optional<NodeId> found;
  data_->cct.visit(*access, [&](NodeId id) {
    if (found) return;
    const CctNode& n = data_->cct.node(id);
    if (n.kind != NodeKind::kFrame) return;
    const auto frame = static_cast<simrt::FrameId>(n.key);
    if (frame < data_->frames.size() &&
        data_->frames[frame].name == frame_name) {
      found = id;
    }
  });
  return found;
}

double Analyzer::kind_remote_share(VariableKind kind) const {
  const bool have_latency = program_.remote_latency > 0.0;
  double share = 0.0;
  for (const VariableReport& r : reports_) {
    if (r.kind != kind) continue;
    share += have_latency
                 ? r.remote_latency_share
                 : (program_.mismatch > 0 ? r.mismatch_share : 0.0);
  }
  return share;
}

}  // namespace numaprof::core
