// The mmap-able columnar binary profile format (docs/format.md).
//
// A binary profile is a 32-byte header, a CRC-protected section table,
// and 8-byte-aligned section payloads, each with its own CRC32 (the
// ingest transport's checksum, shared via support/hash.hpp). Sections
// store columns, not records: the CCT is three parallel arrays (parent,
// kind, key), metrics are dense f64 rows per thread, and every list
// section leads with its element count — so the loader can bound every
// reserve(), memory-map the file, and hand whole columns to
// Cct::assign_columns / MetricStore::set_row without re-lexing a byte.
//
// All integers are little-endian; doubles travel as the little-endian
// bytes of their IEEE-754 bit pattern. The writer is byte-deterministic:
// sections are emitted in id order with canonical record orders (the
// text writer's sorted firsttouch / addrcentric orders), and padding is
// always zero. The text format (docs/format.md) remains the
// lossless interchange encoding; this one is the fast path.
//
// File layout:
//   0   8  magic 89 4E 50 42 46 0D 0A 1A ("\x89NPBF\r\n\x1a", PNG-style)
//   8   4  u32 format version
//   12  4  u32 section count
//   16  8  u64 file size in bytes
//   24  4  u32 CRC32 of the section table bytes
//   28  4  u32 CRC32 of header bytes [0, 28)
//   32      section table: count x {u32 id, u32 crc, u64 offset, u64 len}
//   ...     payloads, each at an 8-aligned offset, zero padding between
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/profile_io.hpp"
#include "core/session.hpp"

namespace numaprof::core::format {

inline constexpr unsigned char kBinaryMagic[8] = {0x89, 'N',  'P',  'B',
                                                  'F',  0x0D, 0x0A, 0x1A};
inline constexpr std::uint32_t kBinaryFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kTableEntryBytes = 24;

/// Section ids; files store sections in this order. Every section is
/// always present (empty lists serialize a zero count) so the layout —
/// and therefore the whole file — is deterministic.
enum class SectionId : std::uint32_t {
  kMeta = 1,         // machine, mechanisms, period, absolutes, fault plan
  kFrames = 2,       // frame columns + name/file string blob
  kCct = 3,          // parent / key / kind parallel arrays (node 0 implied)
  kVariables = 4,    // variable columns + name blob
  kThreads = 5,      // per-thread whole-program totals, columnar
  kMetrics = 6,      // per thread: node ids + dense f64 metric rows
  kAddrCentric = 7,  // sorted (context, variable, bin, tid) bin stats
  kFirstTouch = 8,   // canonically sorted first-touch records
  kTrace = 9,        // per-sample trace events
  kDegradations = 10,  // collection-health events + detail blob
};
inline constexpr std::uint32_t kSectionCount = 10;

std::string_view to_string(SectionId id) noexcept;

/// True when `prefix` begins with the full 8-byte binary magic.
bool looks_binary(std::string_view prefix) noexcept;

/// Serializes `data` as one complete binary profile, appended to `out`.
/// Byte-deterministic: equal sessions produce equal bytes.
void write_binary_profile(const SessionData& data, std::string& out);

/// Parses a complete in-memory (or memory-mapped) binary profile.
/// Strict mode throws ProfileError whose field is "<section>/<field>"
/// and whose line slot carries the BYTE OFFSET of the damage; lenient
/// mode records a Diagnostic per damaged section, keeps every section
/// that checksums and validates, and returns consistent partial data
/// (truncate-to-valid-section recovery, matching the text loader).
LoadResult load_binary_profile(std::string_view bytes,
                               const LoadOptions& options);

/// A read-only memory-mapped file (falls back to reading the file into a
/// private buffer when mmap is unavailable). The view stays valid for
/// the object's lifetime.
class MappedFile {
 public:
  /// Throws std::runtime_error when the file cannot be opened or read.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view bytes() const noexcept { return view_; }
  bool is_mapped() const noexcept { return mapped_ != nullptr; }

 private:
  void* mapped_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::string buffer_;  // fallback storage when not mapped
  std::string_view view_;
};

}  // namespace numaprof::core::format
