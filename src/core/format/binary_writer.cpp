// The byte-deterministic columnar writer (docs/format.md). Sections are
// built as standalone payloads first — so each CRC covers exactly its
// payload bytes — then laid out at 8-aligned offsets behind the header
// and section table. Record orders are canonical: firsttouch records are
// sorted the way the text writer sorts them, address-centric entries use
// AddressCentric::sorted_entries(), metric rows ascend by node id.
#include <algorithm>
#include <tuple>

#include "core/format/codec.hpp"
#include "core/format/format.hpp"
#include "support/hash.hpp"

namespace numaprof::core::format {

namespace {

std::string meta_section(const SessionData& data) {
  std::string out;
  put_u32(out, data.domain_count);
  put_u32(out, data.core_count);
  put_u32(out, static_cast<std::uint32_t>(data.mechanism));
  put_u32(out, static_cast<std::uint32_t>(data.requested_mechanism));
  put_u64(out, data.sampling_period);
  put_u64(out, data.pebs_ll_events);
  put_u32(out, static_cast<std::uint32_t>(data.machine_name.size()));
  put_u32(out, static_cast<std::uint32_t>(data.fault_context.size()));
  out.append(data.machine_name);
  out.append(data.fault_context);
  return out;
}

std::string frames_section(const SessionData& data) {
  std::string out;
  const std::size_t count = data.frames.size();
  put_u64(out, count);
  for (const simrt::FrameInfo& f : data.frames) put_u32(out, f.line);
  for (const simrt::FrameInfo& f : data.frames) {
    put_u32(out, static_cast<std::uint32_t>(f.name.size()));
  }
  for (const simrt::FrameInfo& f : data.frames) {
    put_u32(out, static_cast<std::uint32_t>(f.file.size()));
  }
  for (const simrt::FrameInfo& f : data.frames) {
    put_u8(out, static_cast<std::uint8_t>(f.kind));
  }
  for (const simrt::FrameInfo& f : data.frames) {
    out.append(f.name);
    out.append(f.file);
  }
  return out;
}

std::string cct_section(const SessionData& data) {
  std::string out;
  // Node 0 is the implied root; columns describe nodes 1..N-1 in id
  // order, so parents are always < their node's id.
  const std::size_t count = data.cct.size() - 1;
  put_u64(out, count);
  for (NodeId id = 1; id <= count; ++id) {
    put_u64(out, data.cct.node(id).key);
  }
  for (NodeId id = 1; id <= count; ++id) {
    put_u32(out, data.cct.node(id).parent);
  }
  for (NodeId id = 1; id <= count; ++id) {
    put_u8(out, static_cast<std::uint8_t>(data.cct.node(id).kind));
  }
  return out;
}

std::string variables_section(const SessionData& data) {
  std::string out;
  put_u64(out, data.variables.size());
  for (const Variable& v : data.variables) put_u64(out, v.start);
  for (const Variable& v : data.variables) put_u64(out, v.size);
  for (const Variable& v : data.variables) put_u64(out, v.page_count);
  for (const Variable& v : data.variables) put_u32(out, v.variable_node);
  for (const Variable& v : data.variables) put_u32(out, v.alloc_tid);
  for (const Variable& v : data.variables) {
    put_u32(out, static_cast<std::uint32_t>(v.name.size()));
  }
  for (const Variable& v : data.variables) {
    put_u8(out, static_cast<std::uint8_t>(v.kind));
  }
  for (const Variable& v : data.variables) put_u8(out, v.live ? 1 : 0);
  for (const Variable& v : data.variables) out.append(v.name);
  return out;
}

std::string threads_section(const SessionData& data) {
  std::string out;
  const std::size_t threads = data.totals.size();
  put_u64(out, threads);
  put_u32(out, data.domain_count);
  put_u32(out, 0);  // reserved; keeps the u64 columns 8-aligned
  const auto column = [&](auto member) {
    for (const ThreadTotals& t : data.totals) put_u64(out, t.*member);
  };
  column(&ThreadTotals::samples);
  column(&ThreadTotals::memory_samples);
  column(&ThreadTotals::match);
  column(&ThreadTotals::mismatch);
  column(&ThreadTotals::l3_miss_samples);
  column(&ThreadTotals::remote_l3_miss_samples);
  column(&ThreadTotals::instructions);
  column(&ThreadTotals::memory_instructions);
  for (const ThreadTotals& t : data.totals) put_f64(out, t.remote_latency);
  for (const ThreadTotals& t : data.totals) put_f64(out, t.total_latency);
  // Per-domain sampled access counts, thread-major; short vectors (from
  // lenient text loads) pad with zero so the matrix is always dense.
  for (const ThreadTotals& t : data.totals) {
    for (std::uint32_t d = 0; d < data.domain_count; ++d) {
      put_u64(out, d < t.per_domain.size() ? t.per_domain[d] : 0);
    }
  }
  return out;
}

std::string metrics_section(const SessionData& data) {
  std::string out;
  const MetricStore empty(data.domain_count);
  const std::uint32_t width = empty.width();
  const std::size_t threads = data.totals.size();
  put_u64(out, threads);
  put_u32(out, width);
  put_u32(out, 0);  // reserved; keeps per-thread blocks 8-aligned
  for (std::size_t tid = 0; tid < threads; ++tid) {
    const MetricStore& store =
        tid < data.stores.size() ? data.stores[tid] : empty;
    const auto nodes = store.nodes();
    put_u64(out, nodes.size());
    for (const NodeId node : nodes) put_u32(out, node);
    pad_to(out, 8);
    for (const NodeId node : nodes) {
      const std::span<const double> row = store.row(node);
      for (std::uint32_t m = 0; m < width; ++m) {
        put_f64(out, m < row.size() ? row[m] : 0.0);
      }
    }
  }
  return out;
}

std::string addrcentric_section(const SessionData& data) {
  std::string out;
  const auto entries = data.address_centric.sorted_entries();
  put_u64(out, entries.size());
  for (const auto& [key, s] : entries) put_u64(out, s.lo);
  for (const auto& [key, s] : entries) put_u64(out, s.hi);
  for (const auto& [key, s] : entries) put_u64(out, s.count);
  for (const auto& [key, s] : entries) put_f64(out, s.latency);
  for (const auto& [key, s] : entries) put_u32(out, key.context);
  for (const auto& [key, s] : entries) put_u32(out, key.variable);
  for (const auto& [key, s] : entries) put_u32(out, key.bin);
  for (const auto& [key, s] : entries) put_u32(out, key.tid);
  return out;
}

std::string firsttouch_section(const SessionData& data) {
  std::string out;
  // Canonical record order, identical to the text writer: a live
  // snapshot logs touches chronologically while shard merges concatenate
  // per-thread; sorting makes both serialize to the same bytes.
  std::vector<FirstTouchRecord> touches = data.first_touches;
  std::sort(touches.begin(), touches.end(),
            [](const FirstTouchRecord& a, const FirstTouchRecord& b) {
              return std::tie(a.variable, a.page, a.tid, a.domain, a.node) <
                     std::tie(b.variable, b.page, b.tid, b.domain, b.node);
            });
  put_u64(out, touches.size());
  for (const FirstTouchRecord& r : touches) put_u64(out, r.page);
  for (const FirstTouchRecord& r : touches) put_u32(out, r.variable);
  for (const FirstTouchRecord& r : touches) put_u32(out, r.tid);
  for (const FirstTouchRecord& r : touches) put_u32(out, r.domain);
  for (const FirstTouchRecord& r : touches) put_u32(out, r.node);
  return out;
}

std::string trace_section(const SessionData& data) {
  std::string out;
  put_u64(out, data.trace.size());
  for (const TraceEvent& e : data.trace) put_u64(out, e.time);
  for (const TraceEvent& e : data.trace) put_u32(out, e.tid);
  for (const TraceEvent& e : data.trace) put_u32(out, e.variable);
  for (const TraceEvent& e : data.trace) put_u32(out, e.home_domain);
  for (const TraceEvent& e : data.trace) put_u32(out, e.latency);
  for (const TraceEvent& e : data.trace) put_u8(out, e.mismatch ? 1 : 0);
  for (const TraceEvent& e : data.trace) put_u8(out, e.remote ? 1 : 0);
  return out;
}

std::string degradations_section(const SessionData& data) {
  std::string out;
  put_u64(out, data.degradations.size());
  for (const DegradationEvent& e : data.degradations) put_u64(out, e.value);
  for (const DegradationEvent& e : data.degradations) {
    put_u32(out, static_cast<std::uint32_t>(e.detail.size()));
  }
  for (const DegradationEvent& e : data.degradations) {
    put_u8(out, static_cast<std::uint8_t>(e.kind));
  }
  for (const DegradationEvent& e : data.degradations) {
    put_u8(out, static_cast<std::uint8_t>(e.mechanism));
  }
  for (const DegradationEvent& e : data.degradations) out.append(e.detail);
  return out;
}

}  // namespace

void write_binary_profile(const SessionData& data, std::string& out) {
  struct Section {
    SectionId id;
    std::string payload;
  };
  Section sections[] = {
      {SectionId::kMeta, meta_section(data)},
      {SectionId::kFrames, frames_section(data)},
      {SectionId::kCct, cct_section(data)},
      {SectionId::kVariables, variables_section(data)},
      {SectionId::kThreads, threads_section(data)},
      {SectionId::kMetrics, metrics_section(data)},
      {SectionId::kAddrCentric, addrcentric_section(data)},
      {SectionId::kFirstTouch, firsttouch_section(data)},
      {SectionId::kTrace, trace_section(data)},
      {SectionId::kDegradations, degradations_section(data)},
  };

  // Lay out payloads: each starts at the next 8-aligned offset behind
  // the header + table.
  const std::size_t table_bytes = kSectionCount * kTableEntryBytes;
  std::size_t offset = kHeaderBytes + table_bytes;
  std::string table;
  table.reserve(table_bytes);
  for (const Section& s : sections) {
    offset = (offset + 7) & ~std::size_t(7);
    put_u32(table, static_cast<std::uint32_t>(s.id));
    put_u32(table, support::crc32(s.payload));
    put_u64(table, offset);
    put_u64(table, s.payload.size());
    offset += s.payload.size();
  }
  const std::uint64_t file_size = offset;

  std::string header;
  header.reserve(kHeaderBytes);
  header.append(reinterpret_cast<const char*>(kBinaryMagic),
                sizeof(kBinaryMagic));
  put_u32(header, kBinaryFormatVersion);
  put_u32(header, kSectionCount);
  put_u64(header, file_size);
  put_u32(header, support::crc32(table));
  put_u32(header, support::crc32(header));

  // Alignment is relative to the profile's own first byte (`out` may
  // already hold unrelated content — this function appends).
  const std::size_t start = out.size();
  out.reserve(start + file_size);
  out.append(header);
  out.append(table);
  for (const Section& s : sections) {
    while ((out.size() - start) % 8 != 0) out.push_back('\0');
    out.append(s.payload);
  }
}

}  // namespace numaprof::core::format
