// The mmap-friendly binary loader (docs/format.md).
//
// The input is UNTRUSTED, exactly like the text loader's: every count is
// bounded (by LoadOptions::max_count AND by the bytes actually present)
// before any reserve(), every enum is range-checked, every cross-section
// reference is validated, and every payload must match its table CRC32.
// Strict mode throws a ProfileError whose field is "<section>/<field>"
// and whose line slot carries the absolute byte offset of the damage.
// Lenient mode recovers section-by-section: a damaged section becomes a
// Diagnostic and is dropped wholesale (decoders build into temporaries
// and commit only on success), everything that checksums and validates
// is kept, and the same finalize() invariants as the text loader repair
// the survivors into consistent partial data.
//
// Decoded columns are handed to the session as spans — straight into the
// mapped bytes when host endianness and alignment allow (the zero-copy
// path), staged through a support::Arena otherwise — and feed the bulk
// Cct::assign_columns / MetricStore::set_row entry points, so loading
// never builds the CCT node-by-node.
#include <array>
#include <optional>
#include <utility>

#include "core/format/codec.hpp"
#include "core/format/format.hpp"
#include "support/hash.hpp"

namespace numaprof::core::format {

namespace {

/// Upper bound on the section count field; version 1 defines 10 section
/// ids, and even future versions have no business approaching this.
constexpr std::uint32_t kMaxSectionCount = 256;

struct SectionRef {
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  bool present = false;
};

class BinaryLoader {
 public:
  BinaryLoader(std::string_view bytes, const LoadOptions& options)
      : bytes_(bytes), options_(options) {}

  LoadResult run() {
    parse_header();
    parse_table();
    decode_sections();
    finalize();
    result_.complete = result_.diagnostics.empty();
    return std::move(result_);
  }

 private:
  SessionData& data() noexcept { return result_.data; }

  void diagnose(std::size_t offset, std::string field, std::string message) {
    result_.diagnostics.push_back(
        Diagnostic{offset, std::move(field), std::move(message)});
  }

  [[noreturn]] static void fail(std::string_view field, std::size_t offset,
                                const std::string& message) {
    throw ProfileError(std::string(field), offset, message);
  }

  /// Header and section-table damage throws in BOTH modes (as the text
  /// loader's header does): with the table gone there is nothing to
  /// recover section-by-section. The one exception is truncation AFTER
  /// the table — lenient mode clips to the bytes present and salvages
  /// every section that still fits (truncate-to-valid-section).
  void parse_header() {
    if (bytes_.size() < kHeaderBytes) {
      fail("header/magic", 0,
           "not a binary profile: " + std::to_string(bytes_.size()) +
               " bytes is shorter than the header");
    }
    if (!looks_binary(bytes_)) {
      fail("header/magic", 0, "not a binary numaprof profile");
    }
    const std::uint32_t stored_crc = get_u32(bytes_, 28);
    if (support::crc32(bytes_.substr(0, 28)) != stored_crc) {
      fail("header/crc", 28, "header checksum mismatch");
    }
    const std::uint32_t version = get_u32(bytes_, 8);
    if (version != kBinaryFormatVersion) {
      fail("header/version", 8,
           "unsupported binary format version " + std::to_string(version));
    }
    section_count_ = get_u32(bytes_, 12);
    if (section_count_ > kMaxSectionCount) {
      fail("header/section_count", 12,
           "implausible section count " + std::to_string(section_count_));
    }
    const std::uint64_t file_size = get_u64(bytes_, 16);
    if (file_size < kHeaderBytes + section_count_ * kTableEntryBytes) {
      fail("header/file_size", 16, "file size smaller than header + table");
    }
    if (bytes_.size() < file_size) {
      if (!options_.lenient) {
        fail("header/file_size", 16,
             "truncated: header claims " + std::to_string(file_size) +
                 " bytes, stream has " + std::to_string(bytes_.size()));
      }
      diagnose(16, "header/file_size",
               "truncated: header claims " + std::to_string(file_size) +
                   " bytes, stream has " + std::to_string(bytes_.size()) +
                   "; recovering sections that fit");
      limit_ = bytes_.size();
    } else {
      // Trailing bytes beyond file_size are ignored, like text content
      // after the "end" marker.
      limit_ = static_cast<std::size_t>(file_size);
    }
  }

  void parse_table() {
    const std::size_t table_at = kHeaderBytes;
    const std::size_t table_bytes = section_count_ * kTableEntryBytes;
    if (table_at + table_bytes > limit_) {
      fail("table", table_at, "truncated inside the section table");
    }
    const std::string_view table = bytes_.substr(table_at, table_bytes);
    const std::uint32_t stored_crc = get_u32(bytes_, 24);
    if (support::crc32(table) != stored_crc) {
      fail("table/crc", 24, "section table checksum mismatch");
    }
    for (std::uint32_t i = 0; i < section_count_; ++i) {
      const std::size_t at = i * kTableEntryBytes;
      const std::uint32_t id = get_u32(table, at);
      const std::uint32_t crc = get_u32(table, at + 4);
      const std::uint64_t offset = get_u64(table, at + 8);
      const std::uint64_t length = get_u64(table, at + 16);
      const std::size_t entry_offset = table_at + at;
      if (id == 0 || id > kSectionCount) {
        if (!options_.lenient) {
          fail("table/id", entry_offset,
               "unknown section id " + std::to_string(id));
        }
        diagnose(entry_offset, "table/id",
                 "unknown section id " + std::to_string(id) + " skipped");
        continue;
      }
      SectionRef& ref = refs_[id];
      if (ref.present) {
        if (!options_.lenient) {
          fail("table/id", entry_offset,
               "duplicate section " + std::string(to_string(SectionId(id))));
        }
        diagnose(entry_offset, "table/id",
                 "duplicate section " +
                     std::string(to_string(SectionId(id))) +
                     " ignored (first wins)");
        continue;
      }
      ref.crc = crc;
      ref.offset = offset;
      ref.length = length;
      ref.present = true;
    }
  }

  /// Returns the verified payload of `id`, or nullopt when the section
  /// is absent or damaged (lenient) — strict mode throws instead.
  std::optional<std::string_view> payload_of(SectionId id) {
    const std::string name(to_string(id));
    SectionRef& ref = refs_[static_cast<std::uint32_t>(id)];
    if (!ref.present) {
      if (!options_.lenient) {
        fail(name + "/missing", 0, "section not present in the table");
      }
      diagnose(0, name + "/missing", "section not present in the table");
      return std::nullopt;
    }
    if (ref.offset > limit_ || ref.length > limit_ - ref.offset) {
      if (!options_.lenient) {
        fail(name + "/bounds", static_cast<std::size_t>(ref.offset),
             "section extends past the available bytes");
      }
      diagnose(static_cast<std::size_t>(ref.offset), name + "/bounds",
               "section extends past the available bytes; dropped");
      return std::nullopt;
    }
    const std::string_view payload =
        bytes_.substr(static_cast<std::size_t>(ref.offset),
                      static_cast<std::size_t>(ref.length));
    if (support::crc32(payload) != ref.crc) {
      if (!options_.lenient) {
        fail(name + "/crc", static_cast<std::size_t>(ref.offset),
             "section checksum mismatch");
      }
      diagnose(static_cast<std::size_t>(ref.offset), name + "/crc",
               "section checksum mismatch; dropped");
      return std::nullopt;
    }
    return payload;
  }

  /// Runs one section decoder with section-level atomicity: in lenient
  /// mode a decode failure is recorded and the section dropped.
  template <typename Fn>
  void decode(SectionId id, Fn&& fn) {
    const std::optional<std::string_view> payload = payload_of(id);
    if (!payload) return;
    Cursor cursor(*payload,
                  static_cast<std::size_t>(
                      refs_[static_cast<std::uint32_t>(id)].offset),
                  to_string(id));
    try {
      fn(cursor);
    } catch (const ProfileError& e) {
      if (!options_.lenient) throw;
      diagnose(e.line(), e.field(), e.what());
    }
  }

  void decode_sections() {
    // Fixed id order regardless of file order: later sections validate
    // against earlier ones (metric node ids against the CCT, metric
    // width against the machine's domain count).
    decode(SectionId::kMeta, [&](Cursor& c) { decode_meta(c); });
    decode(SectionId::kFrames, [&](Cursor& c) { decode_frames(c); });
    decode(SectionId::kCct, [&](Cursor& c) { decode_cct(c); });
    decode(SectionId::kVariables, [&](Cursor& c) { decode_variables(c); });
    decode(SectionId::kThreads, [&](Cursor& c) { decode_threads(c); });
    decode(SectionId::kMetrics, [&](Cursor& c) { decode_metrics(c); });
    decode(SectionId::kAddrCentric,
           [&](Cursor& c) { decode_addrcentric(c); });
    decode(SectionId::kFirstTouch, [&](Cursor& c) { decode_firsttouch(c); });
    decode(SectionId::kTrace, [&](Cursor& c) { decode_trace(c); });
    decode(SectionId::kDegradations,
           [&](Cursor& c) { decode_degradations(c); });
  }

  void decode_meta(Cursor& c) {
    const std::uint32_t domains = c.u32("domain_count");
    if (domains == 0 || domains > options_.max_count) {
      c.fail("domain_count", "domain count out of range");
    }
    const std::uint32_t cores = c.u32("core_count");
    const std::uint32_t mechanism = c.u32("mechanism");
    if (mechanism >= pmu::kMechanismCount) {
      c.fail("mechanism", "enum value " + std::to_string(mechanism) +
                              " out of range");
    }
    const std::uint32_t requested = c.u32("requested_mechanism");
    if (requested >= pmu::kMechanismCount) {
      c.fail("requested_mechanism",
             "enum value " + std::to_string(requested) + " out of range");
    }
    const std::uint64_t period = c.u64("period");
    const std::uint64_t pebs_ll = c.u64("pebs_ll_events");
    const std::uint32_t name_len = c.u32("machine_name");
    const std::uint32_t fault_len = c.u32("fault_context");
    const std::string_view name = c.raw(name_len, "machine_name");
    const std::string_view fault = c.raw(fault_len, "fault_context");

    data().domain_count = domains;
    data().core_count = cores;
    data().mechanism = static_cast<pmu::Mechanism>(mechanism);
    data().requested_mechanism = static_cast<pmu::Mechanism>(requested);
    data().sampling_period = period;
    data().pebs_ll_events = pebs_ll;
    data().machine_name.assign(name);
    data().fault_context.assign(fault);
  }

  void decode_frames(Cursor& c) {
    // Per frame: u32 line + u32 name_len + u32 file_len + u8 kind.
    const std::size_t count = checked_count(c, options_, 13, "count");
    const auto lines = c.column<std::uint32_t>(count, "line", arena_);
    const auto name_lens = c.column<std::uint32_t>(count, "name_len", arena_);
    const auto file_lens = c.column<std::uint32_t>(count, "file_len", arena_);
    const auto kinds = c.bytes_column(count, "kind");
    std::vector<simrt::FrameInfo> frames;
    frames.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (kinds[i] >= simrt::kFrameKindCount) {
        c.fail("kind", "enum value " + std::to_string(kinds[i]) +
                           " out of range");
      }
      simrt::FrameInfo f;
      f.kind = static_cast<simrt::FrameKind>(kinds[i]);
      f.line = lines[i];
      f.name.assign(c.raw(name_lens[i], "name"));
      f.file.assign(c.raw(file_lens[i], "file"));
      frames.push_back(std::move(f));
    }
    data().frames = std::move(frames);
  }

  void decode_cct(Cursor& c) {
    // Per node: u64 key + u32 parent + u8 kind.
    const std::size_t count = checked_count(c, options_, 13, "count");
    const auto keys = c.column<std::uint64_t>(count, "key", arena_);
    const auto parents = c.column<NodeId>(count, "parent", arena_);
    const auto kinds = c.bytes_column(count, "kind");
    for (std::size_t i = 0; i < count; ++i) {
      // Column element i describes node i+1; topological order means the
      // parent id must already exist.
      if (parents[i] > i) {
        c.fail("parent", "parent " + std::to_string(parents[i]) +
                             " of node " + std::to_string(i + 1) +
                             " out of order");
      }
      if (kinds[i] >= kNodeKindCount) {
        c.fail("kind", "enum value " + std::to_string(kinds[i]) +
                           " out of range");
      }
    }
    data().cct.assign_columns(parents, kinds, keys);
  }

  void decode_variables(Cursor& c) {
    // Per variable: 3 x u64 + 3 x u32 + 2 x u8.
    const std::size_t count = checked_count(c, options_, 38, "count");
    const auto starts = c.column<std::uint64_t>(count, "start", arena_);
    const auto sizes = c.column<std::uint64_t>(count, "size", arena_);
    const auto pages = c.column<std::uint64_t>(count, "pages", arena_);
    const auto nodes = c.column<NodeId>(count, "node", arena_);
    const auto tids = c.column<std::uint32_t>(count, "tid", arena_);
    const auto name_lens = c.column<std::uint32_t>(count, "name_len", arena_);
    const auto kinds = c.bytes_column(count, "kind");
    const auto lives = c.bytes_column(count, "live");
    std::vector<Variable> variables;
    variables.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (kinds[i] >= kVariableKindCount) {
        c.fail("kind", "enum value " + std::to_string(kinds[i]) +
                           " out of range");
      }
      if (nodes[i] >= data().cct.size()) {
        c.fail("node", "variable node out of range");
      }
      Variable v;
      v.id = static_cast<VariableId>(i);
      v.kind = static_cast<VariableKind>(kinds[i]);
      v.start = starts[i];
      v.size = sizes[i];
      v.page_count = pages[i];
      v.variable_node = nodes[i];
      v.alloc_tid = tids[i];
      v.live = lives[i] != 0;
      v.name.assign(c.raw(name_lens[i], "name"));
      variables.push_back(std::move(v));
    }
    data().variables = std::move(variables);
  }

  void decode_threads(Cursor& c) {
    // Per thread: 8 x u64 + 2 x f64 (the per-domain matrix follows).
    const std::size_t count = checked_count(c, options_, 80, "count");
    const std::uint32_t domains = c.u32("domain_count");
    if (domains != data().domain_count) {
      c.fail("domain_count",
             "domain count " + std::to_string(domains) +
                 " does not match machine (" +
                 std::to_string(data().domain_count) + ")");
    }
    c.u32("reserved");
    const auto samples = c.column<std::uint64_t>(count, "samples", arena_);
    const auto mem = c.column<std::uint64_t>(count, "memory_samples", arena_);
    const auto match = c.column<std::uint64_t>(count, "match", arena_);
    const auto mismatch = c.column<std::uint64_t>(count, "mismatch", arena_);
    const auto l3 = c.column<std::uint64_t>(count, "l3_miss", arena_);
    const auto rl3 = c.column<std::uint64_t>(count, "remote_l3_miss", arena_);
    const auto instr = c.column<std::uint64_t>(count, "instructions", arena_);
    const auto mem_instr =
        c.column<std::uint64_t>(count, "memory_instructions", arena_);
    const auto remote_lat = c.column<double>(count, "remote_latency", arena_);
    const auto total_lat = c.column<double>(count, "total_latency", arena_);
    const auto per_domain = c.column<std::uint64_t>(
        count * data().domain_count, "per_domain", arena_);
    std::vector<ThreadTotals> totals;
    totals.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      ThreadTotals t;
      t.samples = samples[i];
      t.memory_samples = mem[i];
      t.match = match[i];
      t.mismatch = mismatch[i];
      t.l3_miss_samples = l3[i];
      t.remote_l3_miss_samples = rl3[i];
      t.instructions = instr[i];
      t.memory_instructions = mem_instr[i];
      t.remote_latency = remote_lat[i];
      t.total_latency = total_lat[i];
      const auto row = per_domain.subspan(i * data().domain_count,
                                          data().domain_count);
      t.per_domain.assign(row.begin(), row.end());
      totals.push_back(std::move(t));
    }
    data().totals = std::move(totals);
  }

  void decode_metrics(Cursor& c) {
    const std::size_t count = checked_count(c, options_, 8, "thread_count");
    const std::uint32_t width = c.u32("width");
    const MetricStore reference(data().domain_count);
    if (width != reference.width()) {
      c.fail("width", "width " + std::to_string(width) +
                          " does not match machine (" +
                          std::to_string(reference.width()) + ")");
    }
    c.u32("reserved");
    std::vector<MetricStore> stores;
    stores.reserve(count);
    for (std::size_t tid = 0; tid < count; ++tid) {
      // Per row: u32 node id + width x f64 values.
      const std::size_t rows = checked_count(
          c, options_, 4 + std::size_t(width) * 8, "node_count");
      const auto nodes = c.column<NodeId>(rows, "node", arena_);
      c.align(8, "row_padding");
      const auto values = c.column<double>(rows * width, "values", arena_);
      MetricStore store(data().domain_count);
      for (std::size_t n = 0; n < rows; ++n) {
        if (nodes[n] >= data().cct.size()) {
          c.fail("node", "node out of range");
        }
        if (n > 0 && nodes[n] <= nodes[n - 1]) {
          c.fail("node", "node ids not strictly ascending");
        }
        store.set_row(nodes[n], values.subspan(n * width, width));
      }
      stores.push_back(std::move(store));
    }
    data().stores = std::move(stores);
  }

  void decode_addrcentric(Cursor& c) {
    // Per entry: 3 x u64 + 1 x f64 + 4 x u32.
    const std::size_t count = checked_count(c, options_, 48, "count");
    const auto lo = c.column<std::uint64_t>(count, "lo", arena_);
    const auto hi = c.column<std::uint64_t>(count, "hi", arena_);
    const auto counts = c.column<std::uint64_t>(count, "access_count", arena_);
    const auto latency = c.column<double>(count, "latency", arena_);
    const auto contexts = c.column<std::uint32_t>(count, "context", arena_);
    const auto variables = c.column<std::uint32_t>(count, "variable", arena_);
    const auto bins = c.column<std::uint32_t>(count, "bin", arena_);
    const auto tids = c.column<std::uint32_t>(count, "tid", arena_);
    AddressCentric entries;
    for (std::size_t i = 0; i < count; ++i) {
      BinKey key;
      key.context = contexts[i];
      key.variable = variables[i];
      key.bin = bins[i];
      key.tid = tids[i];
      BinStats stats;
      stats.lo = lo[i];
      stats.hi = hi[i];
      stats.count = counts[i];
      stats.latency = latency[i];
      entries.insert(key, stats);
    }
    data().address_centric = std::move(entries);
  }

  void decode_firsttouch(Cursor& c) {
    // Per record: u64 page + 4 x u32.
    const std::size_t count = checked_count(c, options_, 24, "count");
    const auto pages = c.column<std::uint64_t>(count, "page", arena_);
    const auto variables = c.column<std::uint32_t>(count, "variable", arena_);
    const auto tids = c.column<std::uint32_t>(count, "tid", arena_);
    const auto domains = c.column<std::uint32_t>(count, "domain", arena_);
    const auto nodes = c.column<NodeId>(count, "node", arena_);
    std::vector<FirstTouchRecord> touches;
    touches.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (nodes[i] >= data().cct.size()) {
        c.fail("node", "first-touch node out of range");
      }
      touches.push_back(FirstTouchRecord{.variable = variables[i],
                                         .tid = tids[i],
                                         .domain = domains[i],
                                         .node = nodes[i],
                                         .page = pages[i]});
    }
    data().first_touches = std::move(touches);
  }

  void decode_trace(Cursor& c) {
    // Per event: u64 time + 4 x u32 + 2 x u8.
    const std::size_t count = checked_count(c, options_, 26, "count");
    const auto times = c.column<std::uint64_t>(count, "time", arena_);
    const auto tids = c.column<std::uint32_t>(count, "tid", arena_);
    const auto variables = c.column<std::uint32_t>(count, "variable", arena_);
    const auto homes = c.column<std::uint32_t>(count, "home_domain", arena_);
    const auto latencies = c.column<std::uint32_t>(count, "latency", arena_);
    const auto mismatches = c.bytes_column(count, "mismatch");
    const auto remotes = c.bytes_column(count, "remote");
    std::vector<TraceEvent> trace;
    trace.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      trace.push_back(TraceEvent{.time = times[i],
                                 .tid = tids[i],
                                 .variable = variables[i],
                                 .home_domain = homes[i],
                                 .mismatch = mismatches[i] != 0,
                                 .remote = remotes[i] != 0,
                                 .latency = latencies[i]});
    }
    data().trace = std::move(trace);
  }

  void decode_degradations(Cursor& c) {
    // Per event: u64 value + u32 detail_len + 2 x u8.
    const std::size_t count = checked_count(c, options_, 14, "count");
    const auto values = c.column<std::uint64_t>(count, "value", arena_);
    const auto detail_lens =
        c.column<std::uint32_t>(count, "detail_len", arena_);
    const auto kinds = c.bytes_column(count, "kind");
    const auto mechanisms = c.bytes_column(count, "mechanism");
    std::vector<DegradationEvent> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (kinds[i] >= kDegradationKindCount) {
        c.fail("kind", "enum value " + std::to_string(kinds[i]) +
                           " out of range");
      }
      if (mechanisms[i] >= pmu::kMechanismCount) {
        c.fail("mechanism", "enum value " + std::to_string(mechanisms[i]) +
                                " out of range");
      }
      DegradationEvent e;
      e.kind = static_cast<DegradationKind>(kinds[i]);
      e.mechanism = static_cast<pmu::Mechanism>(mechanisms[i]);
      e.value = values[i];
      e.detail.assign(c.raw(detail_lens[i], "detail"));
      events.push_back(std::move(e));
    }
    data().degradations = std::move(events);
  }

  /// Lenient loads can lose whole sections; restore the invariants the
  /// analyzer relies on (totals and stores the same length, per-domain
  /// vectors sized to the machine) — the text loader's finalize().
  void finalize() {
    while (data().stores.size() < data().totals.size()) {
      data().stores.emplace_back(data().domain_count);
    }
    while (data().totals.size() < data().stores.size()) {
      ThreadTotals t;
      t.per_domain.assign(data().domain_count, 0);
      data().totals.push_back(std::move(t));
    }
    for (ThreadTotals& t : data().totals) {
      t.per_domain.resize(data().domain_count, 0);
    }
  }

  std::string_view bytes_;
  LoadOptions options_;
  LoadResult result_;
  support::Arena arena_;
  std::uint32_t section_count_ = 0;
  std::size_t limit_ = 0;
  std::array<SectionRef, kSectionCount + 1> refs_{};  // indexed by id
};

}  // namespace

LoadResult load_binary_profile(std::string_view bytes,
                               const LoadOptions& options) {
  return BinaryLoader(bytes, options).run();
}

}  // namespace numaprof::core::format
