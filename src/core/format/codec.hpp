// Little-endian byte codec shared by the binary profile writer and
// loader (internal to src/core/format — not part of the public surface).
//
// The writer side is append-only and byte-deterministic; the reader side
// is a bounds-checked cursor that throws ProfileError on any overrun, so
// a truncated or hostile payload can never read out of bounds. Column
// accessors hand back zero-copy spans into the underlying (memory-
// mapped) bytes when the platform representation matches the wire format
// (little-endian, aligned); otherwise they decode element-by-element
// into an arena.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "core/profile_io.hpp"
#include "support/arena.hpp"

namespace numaprof::core::format {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Pads `out` with zero bytes until its size is a multiple of `align`.
inline void pad_to(std::string& out, std::size_t align) {
  while (out.size() % align != 0) out.push_back('\0');
}

inline std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

inline std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

/// Bounds-checked forward cursor over one section's payload. `base` is
/// the payload's offset within the whole file, so errors report absolute
/// byte offsets; `section` names the section in every error field.
class Cursor {
 public:
  Cursor(std::string_view payload, std::size_t base, std::string_view section)
      : payload_(payload), base_(base), section_(section) {}

  std::size_t offset() const noexcept { return base_ + at_; }
  std::size_t remaining() const noexcept { return payload_.size() - at_; }

  [[noreturn]] void fail(std::string_view field,
                         const std::string& message) const {
    throw ProfileError(std::string(section_) + "/" + std::string(field),
                       offset(), message);
  }

  std::uint8_t u8(std::string_view field) {
    need(1, field);
    const auto v = static_cast<std::uint8_t>(
        static_cast<unsigned char>(payload_[at_]));
    at_ += 1;
    return v;
  }

  std::uint32_t u32(std::string_view field) {
    need(4, field);
    const std::uint32_t v = get_u32(payload_, at_);
    at_ += 4;
    return v;
  }

  std::uint64_t u64(std::string_view field) {
    need(8, field);
    const std::uint64_t v = get_u64(payload_, at_);
    at_ += 8;
    return v;
  }

  double f64(std::string_view field) {
    return std::bit_cast<double>(u64(field));
  }

  std::string_view raw(std::size_t count, std::string_view field) {
    need(count, field);
    const std::string_view v = payload_.substr(at_, count);
    at_ += count;
    return v;
  }

  /// Skips the zero padding the writer emitted to align the next column.
  /// Alignment is relative to the FILE, which works because every
  /// section payload starts at an 8-aligned file offset.
  void align(std::size_t alignment, std::string_view field) {
    while (offset() % alignment != 0) {
      if (u8(field) != 0) fail(field, "nonzero alignment padding");
    }
  }

  /// A whole column of `count` fixed-width elements. Zero-copy when the
  /// bytes are usable in place (little-endian host, aligned mapping);
  /// otherwise decoded into `arena`. T is u32/u64/double.
  template <typename T>
  std::span<const T> column(std::size_t count, std::string_view field,
                            support::Arena& arena) {
    align(alignof(T), field);
    const std::string_view bytes = raw(count * sizeof(T), field);
    if constexpr (std::endian::native == std::endian::little) {
      if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(T) == 0) {
        return std::span<const T>(reinterpret_cast<const T*>(bytes.data()),
                                  count);
      }
    }
    std::span<T> staged = arena.make_span<T>(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t raw_bits = 0;
      if constexpr (sizeof(T) == 4) {
        raw_bits = get_u32(bytes, i * 4);
        staged[i] = std::bit_cast<T>(static_cast<std::uint32_t>(raw_bits));
      } else {
        raw_bits = get_u64(bytes, i * 8);
        staged[i] = std::bit_cast<T>(raw_bits);
      }
    }
    return staged;
  }

  /// A u8 column: always a direct view (bytes need no decoding).
  std::span<const std::uint8_t> bytes_column(std::size_t count,
                                             std::string_view field) {
    const std::string_view v = raw(count, field);
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(v.data()), count);
  }

 private:
  void need(std::size_t count, std::string_view field) const {
    if (count > remaining()) {
      fail(field, "truncated: need " + std::to_string(count) +
                      " bytes, have " + std::to_string(remaining()));
    }
  }

  std::string_view payload_;
  std::size_t at_ = 0;
  std::size_t base_;
  std::string_view section_;
};

/// Bounds a claimed element count the same way the text loader does: a
/// corrupt header claiming a gigantic count must be rejected before any
/// reserve() happens. Binary records have a known minimum width, so the
/// remaining payload also caps the claim.
inline std::size_t checked_count(Cursor& c, const LoadOptions& options,
                                 std::size_t min_bytes_per_record,
                                 std::string_view field) {
  const std::uint64_t raw_count = c.u64(field);
  if (raw_count > options.max_count) {
    c.fail(field, "count " + std::to_string(raw_count) + " exceeds limit " +
                      std::to_string(options.max_count));
  }
  if (min_bytes_per_record > 0 &&
      raw_count > c.remaining() / min_bytes_per_record) {
    c.fail(field, "count " + std::to_string(raw_count) +
                      " exceeds remaining payload");
  }
  return static_cast<std::size_t>(raw_count);
}

}  // namespace numaprof::core::format
