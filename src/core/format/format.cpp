#include "core/format/format.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define NUMAPROF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace numaprof::core::format {

std::string_view to_string(SectionId id) noexcept {
  switch (id) {
    case SectionId::kMeta: return "meta";
    case SectionId::kFrames: return "frames";
    case SectionId::kCct: return "cct";
    case SectionId::kVariables: return "variables";
    case SectionId::kThreads: return "threads";
    case SectionId::kMetrics: return "metrics";
    case SectionId::kAddrCentric: return "addrcentric";
    case SectionId::kFirstTouch: return "firsttouch";
    case SectionId::kTrace: return "trace";
    case SectionId::kDegradations: return "degradations";
  }
  return "unknown";
}

bool looks_binary(std::string_view prefix) noexcept {
  const std::size_t n =
      prefix.size() < sizeof(kBinaryMagic) ? prefix.size() : sizeof(kBinaryMagic);
  if (n == 0) return false;
  return std::memcmp(prefix.data(), kBinaryMagic, n) == 0 &&
         prefix.size() >= sizeof(kBinaryMagic);
}

MappedFile::MappedFile(const std::string& path) {
#ifdef NUMAPROF_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        view_ = std::string_view();
        return;
      }
      void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (mem != MAP_FAILED) {
        mapped_ = mem;
        mapped_size_ = size;
        view_ = std::string_view(static_cast<const char*>(mem), size);
        return;
      }
    } else {
      ::close(fd);
    }
  }
#endif
  // Fallback (non-regular file, mmap failure, or no mmap at all): slurp.
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream contents;
  contents << is.rdbuf();
  buffer_ = std::move(contents).str();
  view_ = buffer_;
}

MappedFile::~MappedFile() {
#ifdef NUMAPROF_HAVE_MMAP
  if (mapped_ != nullptr) ::munmap(mapped_, mapped_size_);
#endif
}

}  // namespace numaprof::core::format
