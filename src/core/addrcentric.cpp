#include "core/addrcentric.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace numaprof::core {

std::uint32_t AddressCentric::bins_for(const Variable& variable) const noexcept {
  return variable.page_count > kBinPageThreshold ? default_bins_ : 1;
}

std::uint32_t AddressCentric::bin_of(const Variable& variable,
                                     simos::VAddr addr) const noexcept {
  const std::uint64_t extent = variable.extent_bytes();
  if (extent == 0 || addr < variable.start) return 0;
  const std::uint64_t offset = addr - variable.start;
  if (offset >= extent) return bins_for(variable) - 1;
  const std::uint32_t bins = bins_for(variable);
  return static_cast<std::uint32_t>(offset * bins / extent);
}

void AddressCentric::record(std::span<const simrt::FrameId> stack,
                            const Variable& variable, simrt::ThreadId tid,
                            simos::VAddr addr, double latency) {
  const std::uint32_t bin = bin_of(variable, addr);
  const auto touch = [&](simrt::FrameId context) {
    entries_[BinKey{.context = context,
                    .variable = variable.id,
                    .bin = bin,
                    .tid = tid}]
        .update(addr, latency);
  };
  touch(kWholeProgram);
  // Every procedure/loop/region along the call path gets its own bounds
  // update (§5.2). Duplicate frames (recursion) are touched once.
  simrt::FrameId previous = kWholeProgram;
  for (const simrt::FrameId frame : stack) {
    if (frame != previous) touch(frame);
    previous = frame;
  }
}

std::vector<BinStats> AddressCentric::bins(const Variable& variable,
                                           simrt::FrameId context,
                                           simrt::ThreadId tid) const {
  std::vector<BinStats> result(bins_for(variable));
  for (std::uint32_t b = 0; b < result.size(); ++b) {
    const auto it = entries_.find(BinKey{
        .context = context, .variable = variable.id, .bin = b, .tid = tid});
    if (it != entries_.end()) result[b] = it->second;
  }
  return result;
}

std::vector<ThreadRange> AddressCentric::thread_ranges(
    const Variable& variable, simrt::FrameId context,
    double hot_fraction) const {
  // Gather per-thread bin stats for this (variable, context).
  std::map<simrt::ThreadId, std::vector<std::pair<std::uint32_t, BinStats>>>
      per_thread;
  for (const auto& [key, stats] : entries_) {
    if (key.variable != variable.id || key.context != context) continue;
    per_thread[key.tid].emplace_back(key.bin, stats);
  }

  const double extent = static_cast<double>(variable.extent_bytes());
  std::vector<ThreadRange> result;
  result.reserve(per_thread.size());
  for (auto& [tid, bin_list] : per_thread) {
    // Hot bins: count-descending prefix covering >= hot_fraction of the
    // thread's sampled accesses. Cold bins (stray accesses) are ignored so
    // the reported pattern reflects where the thread's traffic really goes.
    std::sort(bin_list.begin(), bin_list.end(),
              [](const auto& a, const auto& b) {
                if (a.second.count != b.second.count)
                  return a.second.count > b.second.count;
                return a.first < b.first;
              });
    std::uint64_t total = 0;
    for (const auto& [bin, stats] : bin_list) total += stats.count;

    ThreadRange range{.tid = tid};
    BinStats merged;
    std::uint64_t covered = 0;
    for (const auto& [bin, stats] : bin_list) {
      merged.merge(stats);
      covered += stats.count;
      if (static_cast<double>(covered) >=
          hot_fraction * static_cast<double>(total)) {
        break;
      }
    }
    range.count = total;
    range.latency = merged.latency;
    if (extent > 0 && merged.count > 0 && merged.hi >= variable.start) {
      range.lo = static_cast<double>(merged.lo - variable.start) / extent;
      range.hi = static_cast<double>(merged.hi - variable.start) / extent;
      range.lo = std::clamp(range.lo, 0.0, 1.0);
      range.hi = std::clamp(range.hi, 0.0, 1.0);
    }
    result.push_back(range);
  }
  return result;
}

std::optional<BinStats> AddressCentric::merged_range(
    const Variable& variable, simrt::FrameId context) const {
  BinStats merged;
  bool any = false;
  for (const auto& [key, stats] : entries_) {
    if (key.variable != variable.id || key.context != context) continue;
    merged.merge(stats);
    any = true;
  }
  if (!any) return std::nullopt;
  return merged;
}

double AddressCentric::context_latency(const Variable& variable,
                                       simrt::FrameId context) const {
  double total = 0.0;
  for (const auto& [key, stats] : entries_) {
    if (key.variable == variable.id && key.context == context) {
      total += stats.latency;
    }
  }
  return total;
}

std::vector<std::pair<simrt::FrameId, double>> AddressCentric::contexts_of(
    const Variable& variable) const {
  std::map<simrt::FrameId, double> latencies;
  for (const auto& [key, stats] : entries_) {
    if (key.variable != variable.id || key.context == kWholeProgram) continue;
    latencies[key.context] += stats.latency;
  }
  std::vector<std::pair<simrt::FrameId, double>> result(latencies.begin(),
                                                        latencies.end());
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return result;
}

void AddressCentric::for_each(
    const std::function<void(const BinKey&, const BinStats&)>& fn) const {
  for (const auto& [key, stats] : entries_) fn(key, stats);
}

std::vector<std::pair<BinKey, BinStats>> AddressCentric::sorted_entries()
    const {
  std::vector<std::pair<BinKey, BinStats>> result(entries_.begin(),
                                                  entries_.end());
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              const BinKey& x = a.first;
              const BinKey& y = b.first;
              return std::tie(x.context, x.variable, x.bin, x.tid) <
                     std::tie(y.context, y.variable, y.bin, y.tid);
            });
  return result;
}

void AddressCentric::insert(const BinKey& key, const BinStats& stats) {
  entries_[key].merge(stats);
}

void AddressCentric::merge_from(const AddressCentric& other) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (const auto& [key, stats] : other.entries_) entries_[key].merge(stats);
}

}  // namespace numaprof::core
