// The presentation layer (hpcviewer analogue, §7.2).
//
// Renders the three views as text tables / ASCII plots / CSV:
//  - program summary with lpi_NUMA and the 0.1 rule-of-thumb verdict,
//  - code-centric: call paths ranked by NUMA cost,
//  - data-centric: variables ranked by remote-latency (or M_r) share,
//  - address-centric: the novel per-thread normalized [min,max] range plot
//    of Fig. 3 (top right), per calling context,
//  - first-touch report: where each variable's pages were first touched.
#pragma once

#include <cstdint>
#include <string>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "support/table.hpp"

namespace numaprof::core {

class Viewer {
 public:
  explicit Viewer(const Analyzer& analyzer) : analyzer_(&analyzer) {}

  /// Whole-program metrics + severity verdict.
  std::string program_summary() const;

  /// How the data was collected when that differs from how it was meant to
  /// be collected: mechanism fallbacks, watchdog period retunes, injected
  /// sample faults, and profile files skipped by the analyzer merge. Empty
  /// when the run was not degraded (the common case).
  std::string collection_health() const;

  /// Variables ranked by NUMA cost. Columns mirror the paper's metric pane
  /// (NUMA_MATCH, NUMA_MISMATCH, NUMA_NODE<k>, latency shares, lpi).
  support::Table data_centric_table(std::size_t top_n = 20) const;

  /// Call-path contexts under [ACCESS] ranked by NUMA cost.
  support::Table code_centric_table(std::size_t top_n = 20) const;

  /// Per-thread address-range rows for (variable, context).
  support::Table address_centric_table(
      VariableId variable, simrt::FrameId context = kWholeProgram) const;

  /// ASCII rendition of the Fig. 3 plot: one bar per thread spanning the
  /// normalized [min,max] of its accesses to the variable.
  std::string address_centric_plot(VariableId variable,
                                   simrt::FrameId context = kWholeProgram,
                                   std::uint32_t width = 64) const;

  /// First-touch sites for a variable (merged call paths, §6).
  support::Table first_touch_table(VariableId variable) const;

  /// Memory request balance: sampled accesses per NUMA domain (§4.1).
  support::Table domain_balance_table() const;

  /// Data-source breakdown for a variable (IBS/PEBS-LL only): where its
  /// sampled accesses were satisfied (§8.3's "data source metrics").
  support::Table data_source_table(VariableId variable) const;

  /// ASCII timeline of the run's mismatch fraction over virtual time
  /// (requires a recorded trace; empty string otherwise).
  std::string trace_timeline(std::uint32_t windows = 64) const;

  /// The hpcviewer "program structure" pane (Fig. 3 bottom left): the
  /// augmented CCT as an indented tree annotated with INCLUSIVE metric
  /// values. Children are sorted by metric, subtrees below `min_share` of
  /// the root's inclusive value are pruned, depth is capped.
  std::string cct_tree(std::uint32_t metric = kMemorySamples,
                       NodeId root = kRootNode, std::size_t max_depth = 10,
                       double min_share = 0.01) const;

 private:
  const Analyzer* analyzer_;
};

/// Renders confidence-ranked fused findings (core::fuse_findings) as the
/// "-- fused findings --" pane: one block per finding with the confidence
/// tag, the chosen action, and both evidence trails.
std::string render_fused_findings(const std::vector<FusedFinding>& fused);

/// The same fused findings as one machine-readable JSON document (stable
/// keys; numa_lint --export json emits this).
std::string render_fused_findings_json(const std::vector<FusedFinding>& fused);

}  // namespace numaprof::core
