#include "core/viewer.hpp"

#include <algorithm>
#include <sstream>

#include "core/export/writer_util.hpp"
#include "pmu/config.hpp"

namespace numaprof::core {

namespace {

using support::format_count;
using support::format_fixed;
using support::format_percent;

std::string lpi_cell(const std::optional<double>& lpi) {
  return lpi ? format_fixed(*lpi, 3) : "n/a";
}

}  // namespace

std::string Viewer::program_summary() const {
  const ProgramSummary& p = analyzer_->program();
  const SessionData& d = analyzer_->data();
  std::ostringstream os;
  os << "=== NUMA profile: " << d.machine_name << " ===\n"
     << "mechanism: " << pmu::to_string(d.mechanism);
  if (d.requested_mechanism != d.mechanism) {
    // Label the data with how it was ACTUALLY collected, not how the run
    // was configured — a fallback changes what the metrics mean.
    os << " (requested " << pmu::to_string(d.requested_mechanism)
       << ", degraded)";
  }
  os << "  period: " << d.sampling_period
     << "  threads: " << d.thread_count() << "\n"
     << "instructions (I): " << format_count(p.instructions)
     << "  memory (I_MEM): " << format_count(p.memory_instructions)
     << "  sampled (I^s): " << format_count(p.samples) << "\n"
     << "M_l (NUMA_MATCH): " << format_count(p.match)
     << "  M_r (NUMA_MISMATCH): " << format_count(p.mismatch) << "\n";
  if (p.total_latency > 0.0) {
    os << "sampled latency: " << format_fixed(p.total_latency, 0)
       << " cycles, remote fraction: "
       << format_percent(p.remote_latency_fraction) << "\n";
  }
  if (p.l3_miss_samples > 0) {
    os << "L3-miss samples: " << format_count(p.l3_miss_samples)
       << ", remote: " << format_percent(p.remote_l3_fraction) << "\n";
  }
  os << "domain imbalance (max/mean requests): "
     << format_fixed(p.domain_imbalance, 2) << "\n";
  if (p.lpi) {
    // Eq. 1's three factors.
    os << "lpi decomposition (Eq. 1): " << format_fixed(p.avg_remote_latency, 1)
       << " cyc/remote x " << format_percent(p.remote_access_fraction)
       << " remote x " << format_percent(p.memory_fraction)
       << " memory/insn\n";
  }
  os << "lpi_NUMA: " << lpi_cell(p.lpi);
  if (p.lpi) {
    os << " cycles/insn (threshold " << format_fixed(kLpiThreshold, 1)
       << ") -> "
       << (p.warrants_optimization ? "WARRANTS NUMA optimization"
                                   : "NUMA optimization NOT worthwhile");
  } else {
    os << " (mechanism reports no latency) -> "
       << (p.warrants_optimization
               ? "high M_r share suggests NUMA problems"
               : "M_r share low; likely no NUMA problem");
  }
  os << "\n";
  return os.str();
}

std::string Viewer::collection_health() const {
  const SessionData& d = analyzer_->data();
  if (!d.degraded()) return {};
  std::ostringstream os;
  if (d.requested_mechanism != d.mechanism) {
    os << "requested " << pmu::to_string(d.requested_mechanism)
       << ", collected with " << pmu::to_string(d.mechanism) << "\n";
  }
  if (!d.fault_context.empty()) {
    os << "active fault plan: " << d.fault_context << "\n";
  }
  // Identical events collapse into one row with a repeat count: a retry
  // loop that degrades the same way 50 times is one fact about the run,
  // not 50 rows drowning out the rest of the pane.
  std::size_t skipped_files = 0;
  std::vector<std::pair<const DegradationEvent*, std::size_t>> rows;
  for (const DegradationEvent& e : d.degradations) {
    if (e.kind == DegradationKind::kProfileFileSkipped) ++skipped_files;
    const auto same = [&e](const auto& row) {
      const DegradationEvent& seen = *row.first;
      return seen.kind == e.kind && seen.mechanism == e.mechanism &&
             seen.value == e.value && seen.detail == e.detail;
    };
    if (auto it = std::find_if(rows.begin(), rows.end(), same);
        it != rows.end()) {
      ++it->second;
    } else {
      rows.emplace_back(&e, 1);
    }
  }
  // Ingest-side degradations have no PMU mechanism to name; their rows
  // skip it instead of blaming whatever mechanism the struct defaulted to.
  const auto from_ingest = [](DegradationKind k) {
    return k == DegradationKind::kIngestShardMissing ||
           k == DegradationKind::kIngestShardCorrupt ||
           k == DegradationKind::kIngestClientEvicted ||
           k == DegradationKind::kIngestWalDegraded;
  };
  for (const auto& [event, repeats] : rows) {
    os << "[" << to_string(event->kind) << "]";
    if (!from_ingest(event->kind)) {
      os << " " << pmu::to_string(event->mechanism);
      if (event->value != 0) os << " (" << event->value << ")";
    }
    os << ": " << event->detail;
    if (repeats > 1) os << " (x" << repeats << ")";
    os << "\n";
  }
  if (skipped_files > 0) {
    os << skipped_files
       << " per-thread profile file(s) skipped during the merge; metrics "
          "are computed from the remaining files\n";
  }
  return os.str();
}

support::Table Viewer::data_centric_table(std::size_t top_n) const {
  const SessionData& d = analyzer_->data();
  std::vector<std::string> header = {"variable",  "kind",    "samples",
                                     "M_l",       "M_r",     "rem.lat%",
                                     "M_r%",      "lpi",     "home"};
  for (std::uint32_t dom = 0; dom < d.domain_count; ++dom) {
    header.push_back("N" + std::to_string(dom));
  }
  support::Table table(std::move(header));
  std::size_t emitted = 0;
  for (const VariableReport& r : analyzer_->variables()) {
    if (emitted++ >= top_n) break;
    std::vector<std::string> row = {
        r.name,
        std::string(to_string(r.kind)),
        format_count(r.samples),
        format_count(r.match),
        format_count(r.mismatch),
        format_percent(r.remote_latency_share),
        format_percent(r.mismatch_share),
        lpi_cell(r.lpi),
        r.single_home_domain ? "domain " + std::to_string(*r.single_home_domain)
                             : "spread",
    };
    for (std::uint32_t dom = 0; dom < d.domain_count; ++dom) {
      row.push_back(format_count(r.per_domain[dom]));
    }
    table.add_row(std::move(row));
  }
  return table;
}

support::Table Viewer::code_centric_table(std::size_t top_n) const {
  const SessionData& d = analyzer_->data();
  const MetricStore& merged = analyzer_->merged();

  struct Row {
    NodeId node;
    double remote_latency;
    double mismatch;
    double samples;
  };
  std::vector<Row> rows;
  const auto access = d.cct.find_child(kRootNode, NodeKind::kAccess, 0);
  if (access) {
    d.cct.visit(*access, [&](NodeId id) {
      if (d.cct.node(id).kind != NodeKind::kFrame) return;
      const double samples = merged.get(id, kMemorySamples);
      if (samples <= 0) return;
      rows.push_back(Row{.node = id,
                         .remote_latency = merged.get(id, kRemoteLatency),
                         .mismatch = merged.get(id, kNumaMismatch),
                         .samples = samples});
    });
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.remote_latency != b.remote_latency)
      return a.remote_latency > b.remote_latency;
    return a.mismatch > b.mismatch;
  });

  support::Table table({"call path", "samples", "M_l", "M_r", "rem.latency",
                        "lpi"});
  for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
    const Row& r = rows[i];
    const double match = merged.get(r.node, kNumaMatch);
    const double sampled = merged.get(r.node, kSamples);
    table.add_row({
        d.path_string(r.node),
        format_count(static_cast<std::uint64_t>(r.samples)),
        format_count(static_cast<std::uint64_t>(match)),
        format_count(static_cast<std::uint64_t>(r.mismatch)),
        format_fixed(r.remote_latency, 0),
        sampled > 0 ? format_fixed(r.remote_latency / sampled, 3) : "n/a",
    });
  }
  return table;
}

support::Table Viewer::address_centric_table(VariableId variable,
                                             simrt::FrameId context) const {
  const SessionData& d = analyzer_->data();
  const Variable& var = d.variables.at(variable);
  support::Table table({"thread", "lo", "hi", "samples", "latency"});
  for (const ThreadRange& range :
       d.address_centric.thread_ranges(var, context)) {
    table.add_row({std::to_string(range.tid), format_fixed(range.lo, 4),
                   format_fixed(range.hi, 4), format_count(range.count),
                   format_fixed(range.latency, 0)});
  }
  return table;
}

std::string Viewer::address_centric_plot(VariableId variable,
                                         simrt::FrameId context,
                                         std::uint32_t width) const {
  const SessionData& d = analyzer_->data();
  const Variable& var = d.variables.at(variable);
  const auto ranges = d.address_centric.thread_ranges(var, context);

  std::ostringstream os;
  os << "address-centric view: " << var.name << " ("
     << to_string(var.kind) << ", " << var.page_count << " pages)"
     << "  context: " << d.frame_name(context) << "\n"
     << "normalized address range [0,1], one row per thread\n";
  for (const ThreadRange& r : ranges) {
    auto lo_col = static_cast<std::uint32_t>(r.lo * (width - 1));
    auto hi_col = static_cast<std::uint32_t>(r.hi * (width - 1));
    lo_col = std::min(lo_col, width - 1);
    hi_col = std::min(std::max(hi_col, lo_col), width - 1);
    std::string bar(width, '.');
    for (std::uint32_t c = lo_col; c <= hi_col; ++c) bar[c] = '#';
    os << "t" << (r.tid < 10 ? "  " : r.tid < 100 ? " " : "") << r.tid << " |"
       << bar << "| [" << format_fixed(r.lo, 2) << ","
       << format_fixed(r.hi, 2) << "] n=" << r.count << "\n";
  }
  return os.str();
}

support::Table Viewer::first_touch_table(VariableId variable) const {
  const SessionData& d = analyzer_->data();
  support::Table table({"first-touch call path", "pages", "threads",
                        "domains"});
  for (const FirstTouchSite& site : d.first_touch_sites(variable)) {
    std::string threads;
    for (const auto tid : site.threads) {
      if (!threads.empty()) threads += ",";
      threads += std::to_string(tid);
      if (threads.size() > 24) {
        threads += ",...";
        break;
      }
    }
    std::string domains;
    for (const auto dom : site.domains) {
      if (!domains.empty()) domains += ",";
      domains += std::to_string(dom);
    }
    table.add_row({d.path_string(site.node), format_count(site.pages),
                   threads, domains});
  }
  return table;
}

support::Table Viewer::domain_balance_table() const {
  const ProgramSummary& p = analyzer_->program();
  support::Table table({"domain", "sampled requests", "share"});
  std::uint64_t total = 0;
  for (const auto v : p.per_domain) total += v;
  for (std::size_t dom = 0; dom < p.per_domain.size(); ++dom) {
    table.add_row({std::to_string(dom), format_count(p.per_domain[dom]),
                   total ? format_percent(static_cast<double>(p.per_domain[dom]) /
                                          static_cast<double>(total))
                         : "0%"});
  }
  return table;
}

support::Table Viewer::data_source_table(VariableId variable) const {
  const SessionData& d = analyzer_->data();
  const MetricStore& merged = analyzer_->merged();
  const NodeId node = d.variables.at(variable).variable_node;

  support::Table table({"data source", "sampled accesses", "share"});
  double total = 0.0;
  for (int s = 0; s < 6; ++s) {
    total += merged.get(node, kSourceL1 + s);
  }
  for (int s = 0; s < 6; ++s) {
    const auto source = static_cast<numasim::DataSource>(s);
    const double count = merged.get(node, source_metric(source));
    table.add_row({std::string(numasim::to_string(source)),
                   format_count(static_cast<std::uint64_t>(count)),
                   total > 0 ? format_percent(count / total) : "n/a"});
  }
  return table;
}

std::string Viewer::cct_tree(std::uint32_t metric, NodeId root,
                             std::size_t max_depth, double min_share) const {
  const SessionData& d = analyzer_->data();
  const MetricStore& merged = analyzer_->merged();
  const auto names = metric_names(d.domain_count);
  std::ostringstream os;
  os << "CCT (inclusive " << names.at(metric) << ")\n";
  const double total = inclusive(d.cct, merged, root, metric);
  if (total <= 0.0) {
    os << "  (no samples)\n";
    return os.str();
  }

  struct Entry {
    NodeId node;
    std::size_t depth;
  };
  // Explicit stack for pre-order traversal with sorted children.
  std::vector<Entry> stack = {{root, 0}};
  while (!stack.empty()) {
    const Entry entry = stack.back();
    stack.pop_back();
    const double value = inclusive(d.cct, merged, entry.node, metric);
    if (value < min_share * total) continue;
    os << std::string(entry.depth * 2, ' ') << d.node_label(entry.node)
       << "  " << format_fixed(value, 0) << " ("
       << format_percent(value / total) << ")\n";
    if (entry.depth + 1 > max_depth) continue;
    auto children = d.cct.children(entry.node);
    std::sort(children.begin(), children.end(),
              [&](NodeId a, NodeId b) {
                return inclusive(d.cct, merged, a, metric) <
                       inclusive(d.cct, merged, b, metric);
              });  // ascending: stack pops largest first
    for (const NodeId child : children) {
      stack.push_back({child, entry.depth + 1});
    }
  }
  return os.str();
}

std::string Viewer::trace_timeline(std::uint32_t windows) const {
  const SessionData& d = analyzer_->data();
  if (d.trace.empty()) return {};
  const TraceAnalysis analysis(d.trace);
  std::ostringstream os;
  os << "trace timeline (" << windows
     << " windows, char = M_r share: ' '<none '.'<25% '-'<50% '+'<75% "
        "'#'>=75%)\n|"
     << analysis.timeline(windows) << "|\n";
  return os.str();
}

std::string render_fused_findings(const std::vector<FusedFinding>& fused) {
  std::ostringstream os;
  os << "-- fused findings (static lint x dynamic profile) --\n";
  if (fused.empty()) {
    os << "none\n";
    return os.str();
  }
  for (const FusedFinding& f : fused) {
    os << "[" << to_string(f.confidence) << "] " << f.variable << ": "
       << to_string(f.action);
    if (f.confidence == FusionConfidence::kConfirmed) {
      os << (f.patterns_agree ? " (patterns agree)" : " (patterns disagree)");
    }
    os << "\n  " << f.rationale << "\n";
    for (const StaticFinding& s : f.static_evidence) {
      os << "  static: " << s.file << ":" << s.line << " ["
         << to_string(s.kind) << "] expects " << to_string(s.expected)
         << ", suggests " << to_string(s.suggested) << "\n";
    }
    if (f.dynamic_evidence.has_value()) {
      os << "  dynamic: observed " << to_string(f.dynamic_evidence->guiding.kind)
         << " across " << f.dynamic_evidence->guiding.threads << " thread"
         << (f.dynamic_evidence->guiding.threads == 1 ? "" : "s")
         << (f.severity_warrants ? "" : ", below severity threshold") << "\n";
    }
  }
  return os.str();
}

std::string render_fused_findings_json(
    const std::vector<FusedFinding>& fused) {
  std::ostringstream os;
  os << "{\"fused\":[";
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const FusedFinding& f = fused[i];
    os << (i == 0 ? "" : ",") << "\n{\"variable\":\""
       << export_detail::json_escape(f.variable) << "\",\"confidence\":\""
       << to_string(f.confidence) << "\",\"action\":\"" << to_string(f.action)
       << "\",\"severity-warrants\":" << (f.severity_warrants ? "true" : "false")
       << ",\"patterns-agree\":" << (f.patterns_agree ? "true" : "false")
       << ",\"rationale\":\"" << export_detail::json_escape(f.rationale)
       << "\",\"static-evidence\":[";
    for (std::size_t s = 0; s < f.static_evidence.size(); ++s) {
      const StaticFinding& evidence = f.static_evidence[s];
      os << (s == 0 ? "" : ",") << "{\"file\":\""
         << export_detail::json_escape(evidence.file)
         << "\",\"line\":" << evidence.line << ",\"kind\":\""
         << to_string(evidence.kind) << "\",\"expected\":\""
         << to_string(evidence.expected) << "\",\"suggested\":\""
         << to_string(evidence.suggested) << "\"}";
    }
    os << "]";
    if (f.dynamic_evidence.has_value()) {
      const Recommendation& rec = *f.dynamic_evidence;
      os << ",\"dynamic-evidence\":{\"pattern\":\""
         << to_string(rec.guiding.kind) << "\",\"threads\":"
         << rec.guiding.threads << ",\"context-share\":"
         << format_fixed(rec.guiding_context_share, 4) << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace numaprof::core
