#include "core/trace.hpp"

#include <algorithm>
#include <functional>

namespace numaprof::core {

TraceAnalysis::TraceAnalysis(const std::vector<TraceEvent>& events)
    : events_(&events) {
  for (const TraceEvent& e : events) {
    if (begin_ == 0 || e.time < begin_) begin_ = e.time;
    end_ = std::max(end_, e.time);
  }
}

std::vector<TraceWindow> TraceAnalysis::bucket(
    std::uint32_t count,
    const std::function<bool(const TraceEvent&)>& filter) const {
  if (count == 0) count = 1;
  std::vector<TraceWindow> windows(count);
  const numasim::Cycles span = end_ > begin_ ? end_ - begin_ : 1;
  for (std::uint32_t w = 0; w < count; ++w) {
    windows[w].begin = begin_ + span * w / count;
    windows[w].end = begin_ + span * (w + 1) / count;
  }
  for (const TraceEvent& e : *events_) {
    if (!filter(e)) continue;
    auto index = static_cast<std::uint32_t>(
        static_cast<unsigned __int128>(e.time - begin_) * count / (span + 1));
    index = std::min(index, count - 1);
    TraceWindow& window = windows[index];
    ++window.samples;
    window.mismatches += e.mismatch;
    window.total_latency += e.latency;
    if (e.remote) window.remote_latency += e.latency;
  }
  return windows;
}

std::vector<TraceWindow> TraceAnalysis::windows(std::uint32_t count) const {
  return bucket(count, [](const TraceEvent&) { return true; });
}

std::vector<TraceWindow> TraceAnalysis::windows_for(
    VariableId variable, std::uint32_t count) const {
  return bucket(count, [variable](const TraceEvent& e) {
    return e.variable == variable;
  });
}

std::vector<TracePhase> TraceAnalysis::phases(std::uint32_t window_count,
                                              double threshold) const {
  std::vector<TracePhase> result;
  for (const TraceWindow& window : windows(window_count)) {
    const bool heavy =
        window.samples > 0 && window.mismatch_fraction() > threshold;
    if (!result.empty() &&
        (window.samples == 0 || result.back().remote_heavy == heavy)) {
      // Extend the current phase (sample-less windows are neutral).
      result.back().end = window.end;
      result.back().samples += window.samples;
      continue;
    }
    if (window.samples == 0 && result.empty()) continue;
    result.push_back(TracePhase{.begin = window.begin,
                                .end = window.end,
                                .remote_heavy = heavy,
                                .samples = window.samples});
  }
  return result;
}

std::string TraceAnalysis::timeline(std::uint32_t window_count) const {
  std::string line;
  line.reserve(window_count);
  for (const TraceWindow& window : windows(window_count)) {
    if (window.samples == 0) {
      line.push_back(' ');
    } else {
      const double f = window.mismatch_fraction();
      line.push_back(f < 0.25 ? '.' : f < 0.5 ? '-' : f < 0.75 ? '+' : '#');
    }
  }
  return line;
}

}  // namespace numaprof::core
