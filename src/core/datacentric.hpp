// Data-centric attribution (§5.1): resolving sampled addresses to program
// variables and anchoring them in the augmented CCT.
//
// Heap variables are discovered through the allocation wrapper (each keeps
// its full allocation call path, as HPCToolkit attributes "each sampled
// heap variable access to the full calling context where the heap variable
// was allocated"). Static variables come from the executable's symbol
// table. Stack accesses resolve to per-thread stack pseudo-variables —
// plus named stack variables registered explicitly, implementing the
// paper's future-work item of monitoring stack data directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cct.hpp"
#include "simos/address_space.hpp"
#include "simrt/events.hpp"

namespace numaprof::core {

using VariableId = std::uint32_t;

enum class VariableKind : std::uint8_t {
  kHeap,
  kStatic,
  kStack,    // a thread's anonymous stack segment
  kStackVar, // an explicitly registered (named) stack variable
  kUnknown,
};

/// Number of VariableKind enumerators (deserializers validate against this).
inline constexpr int kVariableKindCount = 5;

std::string_view to_string(VariableKind k) noexcept;

struct Variable {
  VariableId id = 0;
  VariableKind kind = VariableKind::kUnknown;
  std::string name;
  simos::VAddr start = 0;
  std::uint64_t size = 0;        // bytes
  std::uint64_t page_count = 0;  // extent in pages
  NodeId variable_node = kRootNode;  // kVariable node in the CCT
  simrt::ThreadId alloc_tid = 0;     // heap only
  bool live = true;                  // heap only; false after free

  std::uint64_t extent_bytes() const noexcept {
    return page_count * simos::kPageBytes;
  }
};

class VariableRegistry {
 public:
  /// `space` supplies static symbols and stack layout; `cct` hosts the
  /// allocation-path and variable nodes.
  VariableRegistry(Cct& cct, const simos::AddressSpace& space);

  /// Heap allocation (from the wrapper). Builds the CCT segment
  ///   root -> [ALLOCATION] -> alloc call path -> [VARIABLE var].
  VariableId on_alloc(const simrt::AllocEvent& event);

  /// Heap free: the variable's metrics persist, but its address range no
  /// longer resolves (the pages may be reused by a later allocation).
  void on_free(const simrt::FreeEvent& event);

  /// Registers a named stack variable (paper §10 future work, implemented
  /// here): [addr, addr+size) on thread `tid`'s stack.
  VariableId register_stack_variable(std::string name, simrt::ThreadId tid,
                                     simos::VAddr addr, std::uint64_t size);

  /// Resolves an effective address to a variable, lazily materializing
  /// static / stack / unknown pseudo-variables on first contact.
  VariableId resolve(simos::VAddr addr);

  const Variable& variable(VariableId id) const { return variables_.at(id); }
  const std::vector<Variable>& all() const noexcept { return variables_; }
  std::size_t size() const noexcept { return variables_.size(); }

  /// First variable with this name (nullopt if none). Names of heap
  /// variables default to the wrapper-provided source name.
  std::optional<VariableId> find_by_name(std::string_view name) const;

  /// The CCT node of the allocation *call path leaf* for a heap variable
  /// (the "operator new[]" line of Fig. 3), i.e. the parent of its
  /// kVariable node.
  NodeId allocation_site(VariableId id) const;

 private:
  VariableId create(Variable var);
  VariableId resolve_static(simos::VAddr addr);
  VariableId resolve_stack(simos::VAddr addr);

  Cct& cct_;
  const simos::AddressSpace& space_;
  std::vector<Variable> variables_;
  std::map<simos::VAddr, VariableId> live_heap_;        // start -> id
  std::map<simos::VAddr, VariableId> named_stack_;      // start -> id
  std::map<std::string, VariableId> static_by_name_;
  std::map<simrt::ThreadId, VariableId> stack_by_tid_;
  std::optional<VariableId> unknown_;
};

}  // namespace numaprof::core
