// The online profiler (hpcrun analogue, §7.1).
//
// Profiler wires a sampling mechanism to a simulated machine and performs
// the three tasks of §7.1: (1) configure the PMU (the chosen Sampler),
// (2) attribute address samples to code and data in the augmented CCT, and
// (3) accumulate NUMA metrics (M_l, M_r, per-domain counts, latency, and
// address-centric summaries). It also implements the §6 first-touch
// pinpointing protocol via allocation wrappers + page protection + the
// simulated SIGSEGV handler.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/session.hpp"
#include "pmu/sampler.hpp"
#include "pmu/watchdog.hpp"
#include "simrt/machine.hpp"
#include "support/env.hpp"

namespace numaprof::support {
class FaultPlan;
class TelemetryHub;
enum class TelemetryEventKind : std::uint8_t;
}

namespace numaprof::core {

struct ProfilerConfig {
  pmu::EventConfig event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  /// Protect new heap blocks and trap first touches (§6).
  bool track_first_touch = true;
  /// Bins per large variable; 0 = read NUMAPROF_BINS (default 5), §5.2.
  std::uint32_t address_bins = 0;
  /// Record a per-sample trace for time-varying analysis (core/trace.hpp).
  bool record_trace = false;
  /// Trace events kept at most (oldest runs are never dropped — recording
  /// simply stops at the cap, which keeps memory bounded like hpcrun's
  /// trace buffers).
  std::size_t trace_capacity = 1 << 20;
  /// Probe mechanism availability and degrade along the fallback chain
  /// instead of failing outright; every substitution is recorded as a
  /// DegradationEvent. A no-op unless the fault plan injects init failures.
  bool enable_fallback = true;
  /// Attach the sampling watchdog (period retuning on starvation/runaway
  /// overhead). Off by default: retunes change sample counts, which would
  /// perturb runs that expect an exact configured period.
  bool enable_watchdog = false;
  pmu::WatchdogConfig watchdog;
  /// Fault plan consulted for init failures and per-sample faults.
  /// nullptr = the process-global plan (configured via NUMAPROF_FAULTS).
  support::FaultPlan* faults = nullptr;
  /// Live telemetry hub (support/telemetry.hpp): the sampler, watchdog,
  /// first-touch trapper, and heap tracker publish their health counters
  /// and events into it as they happen. nullptr = no telemetry. The hub
  /// must outlive the profiler.
  support::TelemetryHub* telemetry = nullptr;

  static std::uint32_t resolve_bins(std::uint32_t requested) {
    if (requested != 0) return requested;
    return static_cast<std::uint32_t>(
        support::env_int_or("NUMAPROF_BINS", 5, 1));
  }
};

class Profiler final : public simrt::MachineObserver {
 public:
  /// Attaches to `machine` immediately; profiling is active until stop()
  /// or destruction. The machine must outlive the profiler.
  Profiler(simrt::Machine& machine, ProfilerConfig config);
  ~Profiler() override;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void stop();  // detach observers; finalizes instruction counters
  bool running() const noexcept { return running_; }

  // --- Component access (live views) ---
  Cct& cct() noexcept { return cct_; }
  const Cct& cct() const noexcept { return cct_; }
  VariableRegistry& variables() noexcept { return registry_; }
  const VariableRegistry& variables() const noexcept { return registry_; }
  const AddressCentric& address_centric() const noexcept { return addr_; }
  const pmu::Sampler& sampler() const noexcept { return *sampler_; }
  /// How collection degraded so far (fallbacks at construction; watchdog
  /// retunes and sample-fault counts are appended at snapshot()).
  const std::vector<DegradationEvent>& degradations() const noexcept {
    return degradations_;
  }
  pmu::Mechanism requested_mechanism() const noexcept {
    return requested_mechanism_;
  }
  const std::vector<FirstTouchRecord>& first_touches() const noexcept {
    return first_touches_;
  }
  const std::vector<TraceEvent>& trace() const noexcept { return trace_; }
  const ThreadTotals& totals(simrt::ThreadId tid) const {
    return totals_.at(tid);
  }
  std::size_t thread_count() const noexcept { return totals_.size(); }

  /// Snapshots everything into a SessionData for offline analysis,
  /// serialization, and viewing. Implicitly stop()s a running profiler so
  /// instruction counters are final.
  SessionData snapshot();

  // --- MachineObserver (allocation wrappers, §6) ---
  void on_alloc(const simrt::AllocEvent& event) override;
  void on_free(const simrt::FreeEvent& event) override;

 private:
  void on_sample(const pmu::Sample& sample);
  void on_fault(const simrt::FaultEvent& fault);
  void publish_telemetry_event(support::TelemetryEventKind kind,
                               std::uint64_t value, std::string_view detail);
  /// Rendered tail of the call path under `leaf`, cached per CCT node so
  /// the hot-path telemetry table costs one map lookup per sample.
  std::string_view hot_path_label(NodeId leaf,
                                  std::span<const simrt::FrameId> stack);
  MetricStore& store_of(simrt::ThreadId tid);
  ThreadTotals& totals_of(simrt::ThreadId tid);
  void record_at(MetricStore& store, NodeId node, bool mismatch, bool remote,
                 const pmu::Sample& sample, std::uint32_t home_domain);

  simrt::Machine& machine_;
  ProfilerConfig config_;
  std::unique_ptr<pmu::Sampler> sampler_;
  std::unique_ptr<pmu::SamplingWatchdog> watchdog_;
  pmu::Mechanism requested_mechanism_;
  std::vector<DegradationEvent> degradations_;
  Cct cct_;
  VariableRegistry registry_;
  AddressCentric addr_;
  std::vector<MetricStore> stores_;       // per thread
  std::vector<ThreadTotals> totals_;      // per thread
  std::vector<FirstTouchRecord> first_touches_;
  std::vector<TraceEvent> trace_;
  std::unordered_map<NodeId, std::string> hot_path_labels_;
  NodeId access_dummy_;
  NodeId first_touch_dummy_;
  bool running_ = false;
};

}  // namespace numaprof::core
