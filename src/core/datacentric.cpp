#include "core/datacentric.hpp"

namespace numaprof::core {

std::string_view to_string(VariableKind k) noexcept {
  switch (k) {
    case VariableKind::kHeap: return "heap";
    case VariableKind::kStatic: return "static";
    case VariableKind::kStack: return "stack";
    case VariableKind::kStackVar: return "stack-var";
    case VariableKind::kUnknown: return "unknown";
  }
  return "?";
}

VariableRegistry::VariableRegistry(Cct& cct, const simos::AddressSpace& space)
    : cct_(cct), space_(space) {}

VariableId VariableRegistry::create(Variable var) {
  const auto id = static_cast<VariableId>(variables_.size());
  var.id = id;
  variables_.push_back(std::move(var));
  return id;
}

VariableId VariableRegistry::on_alloc(const simrt::AllocEvent& event) {
  Variable var;
  var.kind = VariableKind::kHeap;
  var.name = event.name.empty()
                 ? "heap#" + std::to_string(event.block.id)
                 : event.name;
  var.start = event.block.start;
  var.size = event.block.size;
  var.page_count = event.block.page_count;
  var.alloc_tid = event.tid;

  // Allocation-path CCT segment, separated by the [ALLOCATION] dummy node.
  const NodeId dummy = cct_.child(kRootNode, NodeKind::kAllocation, 0);
  const NodeId site = cct_.extend(dummy, event.stack);
  const VariableId id = create(std::move(var));
  variables_[id].variable_node = cct_.child(site, NodeKind::kVariable, id);
  live_heap_[event.block.start] = id;
  return id;
}

void VariableRegistry::on_free(const simrt::FreeEvent& event) {
  const auto it = live_heap_.find(event.block.start);
  if (it == live_heap_.end()) return;
  variables_[it->second].live = false;
  live_heap_.erase(it);
}

VariableId VariableRegistry::register_stack_variable(std::string name,
                                                     simrt::ThreadId tid,
                                                     simos::VAddr addr,
                                                     std::uint64_t size) {
  Variable var;
  var.kind = VariableKind::kStackVar;
  var.name = std::move(name);
  var.start = addr;
  var.size = size;
  var.page_count = simos::pages_covering(addr, size);
  var.alloc_tid = tid;
  const VariableId id = create(std::move(var));
  variables_[id].variable_node = cct_.child(kRootNode, NodeKind::kVariable, id);
  named_stack_[addr] = id;
  return id;
}

VariableId VariableRegistry::resolve(simos::VAddr addr) {
  switch (space_.segment_of(addr)) {
    case simos::Segment::kHeap: {
      auto it = live_heap_.upper_bound(addr);
      if (it != live_heap_.begin()) {
        --it;
        const Variable& var = variables_[it->second];
        if (addr < var.start + var.extent_bytes()) return it->second;
      }
      break;  // heap address outside any live block -> unknown
    }
    case simos::Segment::kStatic:
      return resolve_static(addr);
    case simos::Segment::kStack:
      return resolve_stack(addr);
    case simos::Segment::kUnknown:
      break;
  }
  if (!unknown_) {
    Variable var;
    var.kind = VariableKind::kUnknown;
    var.name = "<unknown>";
    var.page_count = 1;
    unknown_ = create(std::move(var));
    variables_[*unknown_].variable_node =
        cct_.child(kRootNode, NodeKind::kVariable, *unknown_);
  }
  return *unknown_;
}

VariableId VariableRegistry::resolve_static(simos::VAddr addr) {
  const simos::StaticSymbol* symbol = space_.find_static(addr);
  if (symbol == nullptr) {
    // Static segment but no symbol: treat as unknown.
    if (!unknown_) {
      Variable var;
      var.kind = VariableKind::kUnknown;
      var.name = "<unknown>";
      var.page_count = 1;
      unknown_ = create(std::move(var));
      variables_[*unknown_].variable_node =
          cct_.child(kRootNode, NodeKind::kVariable, *unknown_);
    }
    return *unknown_;
  }
  const auto it = static_by_name_.find(symbol->name);
  if (it != static_by_name_.end()) return it->second;

  Variable var;
  var.kind = VariableKind::kStatic;
  var.name = symbol->name;
  var.start = symbol->start;
  var.size = symbol->size;
  var.page_count = symbol->page_count;
  const VariableId id = create(std::move(var));
  variables_[id].variable_node = cct_.child(kRootNode, NodeKind::kVariable, id);
  static_by_name_[variables_[id].name] = id;
  return id;
}

VariableId VariableRegistry::resolve_stack(simos::VAddr addr) {
  // Named stack variables take precedence over the anonymous segment.
  {
    auto it = named_stack_.upper_bound(addr);
    if (it != named_stack_.begin()) {
      --it;
      const Variable& var = variables_[it->second];
      if (addr < var.start + var.size) return it->second;
    }
  }
  const auto tid = static_cast<simrt::ThreadId>(
      (addr - simos::kStackBase) / simos::kStackBytesPerThread);
  const auto it = stack_by_tid_.find(tid);
  if (it != stack_by_tid_.end()) return it->second;

  Variable var;
  var.kind = VariableKind::kStack;
  var.name = "stack(thread " + std::to_string(tid) + ")";
  var.start = simos::kStackBase +
              static_cast<simos::VAddr>(tid) * simos::kStackBytesPerThread;
  var.size = simos::kStackBytesPerThread;
  var.page_count = simos::kStackBytesPerThread / simos::kPageBytes;
  var.alloc_tid = tid;
  const VariableId id = create(std::move(var));
  variables_[id].variable_node = cct_.child(kRootNode, NodeKind::kVariable, id);
  stack_by_tid_[tid] = id;
  return id;
}

std::optional<VariableId> VariableRegistry::find_by_name(
    std::string_view name) const {
  for (const Variable& var : variables_) {
    if (var.name == name) return var.id;
  }
  return std::nullopt;
}

NodeId VariableRegistry::allocation_site(VariableId id) const {
  const Variable& var = variables_.at(id);
  return cct_.node(var.variable_node).parent;
}

}  // namespace numaprof::core
