#include "core/metrics.hpp"

#include <algorithm>

namespace numaprof::core {

std::vector<std::string> metric_names(std::uint32_t domain_count) {
  std::vector<std::string> names = {
      "NUMA_MATCH",    "NUMA_MISMATCH",  "SAMPLES",
      "MEM_SAMPLES",   "REMOTE_LATENCY", "TOTAL_LATENCY",
      "L3MISS",        "REMOTE_L3MISS",  "FIRST_TOUCH",
      "SRC_L1",        "SRC_L2",         "SRC_LOCAL_L3",
      "SRC_REMOTE_L3", "SRC_LOCAL_DRAM", "SRC_REMOTE_DRAM",
  };
  for (std::uint32_t d = 0; d < domain_count; ++d) {
    names.push_back("NUMA_NODE" + std::to_string(d));
  }
  return names;
}

void MetricStore::add(NodeId node, std::uint32_t metric, double value) {
  // size_t arithmetic: node + 1 must not wrap when node == max NodeId.
  if (node >= values_.size()) {
    values_.resize(static_cast<std::size_t>(node) + 1);
  }
  auto& row = values_[node];
  if (row.empty()) row.resize(width_, 0.0);
  row[metric] += value;
}

double MetricStore::get(NodeId node, std::uint32_t metric) const {
  if (node >= values_.size() || values_[node].empty()) return 0.0;
  return values_[node][metric];
}

std::span<const double> MetricStore::row(NodeId node) const {
  if (node >= values_.size() || values_[node].empty()) return {};
  return values_[node];
}

void MetricStore::set_row(NodeId node, std::span<const double> values) {
  if (node >= values_.size()) {
    values_.resize(static_cast<std::size_t>(node) + 1);
  }
  values_[node].assign(values.begin(), values.end());
}

std::vector<NodeId> MetricStore::nodes() const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < values_.size(); ++id) {
    if (!values_[id].empty()) result.push_back(id);
  }
  return result;
}

void MetricStore::merge(const MetricStore& other) {
  if (other.values_.size() > values_.size()) {
    values_.resize(other.values_.size());
  }
  for (NodeId id = 0; id < other.values_.size(); ++id) {
    if (other.values_[id].empty()) continue;
    auto& row = values_[id];
    if (row.empty()) row.resize(width_, 0.0);
    for (std::uint32_t m = 0; m < width_ && m < other.width_; ++m) {
      row[m] += other.values_[id][m];
    }
  }
}

void MetricStore::merge_all(const std::vector<const MetricStore*>& parts,
                            support::ThreadPool* pool) {
  std::size_t rows = values_.size();
  for (const MetricStore* part : parts) {
    rows = std::max(rows, part->values_.size());
  }
  if (rows == 0) return;
  values_.resize(rows);
  support::parallel_for(
      pool, rows, 256, [&](std::size_t begin, std::size_t end) {
        for (std::size_t id = begin; id < end; ++id) {
          auto& row = values_[id];
          for (const MetricStore* part : parts) {
            if (id >= part->values_.size() || part->values_[id].empty()) {
              continue;
            }
            if (row.empty()) row.resize(width_, 0.0);
            const auto& source = part->values_[id];
            const std::uint32_t width = std::min(width_, part->width_);
            for (std::uint32_t m = 0; m < width; ++m) row[m] += source[m];
          }
        }
      });
}

double inclusive(const Cct& cct, const MetricStore& store, NodeId node,
                 std::uint32_t metric) {
  // Bin nodes REFINE their parent variable's attribution (each sample is
  // recorded at both the variable node and its bin, §5.2), so descending
  // into them would double-count. They still answer for themselves when
  // the query starts at a bin.
  double total = store.get(node, metric);
  for (const NodeId child : cct.children(node)) {
    if (cct.node(child).kind == NodeKind::kBin) continue;
    total += inclusive(cct, store, child, metric);
  }
  return total;
}

double lpi_numa(double remote_latency, double sampled_instructions) noexcept {
  if (sampled_instructions <= 0.0) return 0.0;
  return remote_latency / sampled_instructions;
}

double lpi_numa_pebs_ll(double sampled_remote_latency,
                        double sampled_remote_events,
                        double sampled_total_events,
                        double absolute_event_count,
                        double absolute_instructions) noexcept {
  if (sampled_remote_events <= 0.0 || sampled_total_events <= 0.0 ||
      absolute_instructions <= 0.0) {
    return 0.0;
  }
  // Average latency per sampled remote event (l^s / E^s)...
  const double mean_remote_latency =
      sampled_remote_latency / sampled_remote_events;
  // ...times the absolute remote event estimate: the free-running counter
  // gives total qualifying events; the sampled remote fraction apportions.
  const double remote_fraction = sampled_remote_events / sampled_total_events;
  const double absolute_remote_events = absolute_event_count * remote_fraction;
  return mean_remote_latency * absolute_remote_events / absolute_instructions;
}

}  // namespace numaprof::core
