// Sinks for the live telemetry layer (support/telemetry.hpp).
//
// Two renderings of the same TelemetrySnapshot stream:
//   - a human-readable status line (`--telemetry-interval` on the profiler
//     examples prints one per interval while the workload runs);
//   - a machine-readable JSONL trace: one `snapshot` object per interval
//     plus one `event` object per discrete occurrence, in publication
//     order. `analyze_profile --telemetry <trace>` reloads the trace and
//     renders the "measurement health" pane, cross-checking the streamed
//     events against the DegradationEvents recorded in the merged profile.
// The JSONL schema is documented in docs/api.md; keys reuse the stable
// kebab-case names of support::to_string(TelemetryCounter/EventKind).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "pmu/sample.hpp"
#include "simrt/events.hpp"
#include "support/telemetry.hpp"

namespace numaprof::core {

/// One reloaded `--telemetry` trace: every snapshot and every event in
/// file order, plus the mechanism named by the stream.
struct TelemetryTrace {
  pmu::Mechanism mechanism = pmu::Mechanism::kIbs;
  bool has_mechanism = false;
  std::vector<support::TelemetrySnapshot> snapshots;
  std::vector<support::TelemetryEvent> events;

  /// The cumulative state at end of run (zero snapshot if the trace is
  /// empty).
  const support::TelemetrySnapshot& final_snapshot() const;
};

/// One-line live health summary:
///   `[telemetry #3 t=24000] ibs threads=4 samples=1204 mem=881 ...`
/// With `previous` (the preceding snapshot of the same stream), the
/// samples/mem columns also carry interval deltas and a per-kilocycle
/// rate: `samples=1204 (+402 3.4/kc) mem=881 (+210)`. A zero-length
/// interval (same timestamp, e.g. a flush right after a periodic emit)
/// prints the delta but omits the rate — never `inf`/`nan`.
std::string format_status_line(const support::TelemetrySnapshot& snapshot,
                               pmu::Mechanism mechanism);
std::string format_status_line(const support::TelemetrySnapshot& snapshot,
                               pmu::Mechanism mechanism,
                               const support::TelemetrySnapshot* previous);

/// The health pane's event log body: one "  [kind] t=... tid=..." line per
/// distinct event, with identical repeats collapsed into "(xN)". Shared by
/// render_health_pane and the live status-line sink so a stalled client
/// re-publishing the same event cannot scroll the terminal.
std::vector<std::string> format_event_lines(
    const std::vector<support::TelemetryEvent>& events);

/// Appends one `snapshot` JSONL object (schema v2: per-domain hot-page /
/// hot-variable rows and per-thread hot call paths ride along), then one
/// `event` object per event drained into this snapshot. The overload
/// without a mechanism omits the "mechanism" key (used by sinks that do
/// not know it, e.g. numaprofd --telemetry-out).
void write_snapshot_jsonl(const support::TelemetrySnapshot& snapshot,
                          pmu::Mechanism mechanism, std::ostream& os);
void write_snapshot_jsonl(const support::TelemetrySnapshot& snapshot,
                          std::ostream& os);

/// Parses a JSONL trace written by write_snapshot_jsonl. Unknown keys are
/// ignored (forward compatibility); malformed lines throw numaprof::Error
/// with kind kTelemetry naming the 1-based line.
TelemetryTrace load_telemetry_trace(std::istream& is);
TelemetryTrace load_telemetry_trace_file(const std::string& path);

/// Parses ONE trace line (1-based `lineno` for error messages) into
/// `trace`, the incremental unit behind load_telemetry_trace and
/// `numa_top --follow` (which tails a growing JSONL file). Returns true
/// when the line added a snapshot, false for events / blank / unknown
/// line types.
bool append_trace_line(TelemetryTrace& trace, std::string_view line,
                       std::size_t lineno, const std::string& file = {});

/// The "-- measurement health --" pane: end-of-run totals, drop fractions,
/// per-domain M_l/M_r, the event log, and — when `profile` is non-null —
/// a cross-check of streamed events against the profile's recorded
/// DegradationEvents. Deterministic: byte-identical output for identical
/// inputs.
std::string render_health_pane(const TelemetryTrace& trace,
                               const SessionData* profile = nullptr);

/// Machine observer that emits a telemetry snapshot every
/// `interval_instructions` retired instructions (virtual time advances
/// only inside the simulator, so instruction count is the natural
/// interval unit). Attach alongside the profiler; call flush() after
/// run() for the final partial interval.
class TelemetryStreamer final : public simrt::MachineObserver {
 public:
  struct Config {
    std::uint64_t interval_instructions = 100000;
    /// Live status lines (nullptr: none).
    std::ostream* status = nullptr;
    /// JSONL trace (nullptr: none).
    std::ostream* jsonl = nullptr;
    pmu::Mechanism mechanism = pmu::Mechanism::kIbs;
  };

  TelemetryStreamer(support::TelemetryHub& hub, Config config)
      : hub_(&hub), config_(config) {}

  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;

  /// Emits the final partial interval exactly once: a flush with nothing
  /// accumulated since the last emit (including a second flush in a row)
  /// is a no-op, so shutdown paths may flush defensively without
  /// duplicating the final snapshot.
  void flush(std::uint64_t time);

  std::uint64_t snapshots_emitted() const noexcept { return emitted_; }

 private:
  void emit(std::uint64_t time);

  support::TelemetryHub* hub_;
  Config config_;
  std::uint64_t since_emit_ = 0;
  std::uint64_t last_time_ = 0;
  std::uint64_t emitted_ = 0;
  /// Previous emitted snapshot, for the status line's rate columns.
  support::TelemetrySnapshot previous_;
  bool has_previous_ = false;
};

}  // namespace numaprof::core
