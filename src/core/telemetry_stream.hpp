// Sinks for the live telemetry layer (support/telemetry.hpp).
//
// Two renderings of the same TelemetrySnapshot stream:
//   - a human-readable status line (`--telemetry-interval` on the profiler
//     examples prints one per interval while the workload runs);
//   - a machine-readable JSONL trace: one `snapshot` object per interval
//     plus one `event` object per discrete occurrence, in publication
//     order. `analyze_profile --telemetry <trace>` reloads the trace and
//     renders the "measurement health" pane, cross-checking the streamed
//     events against the DegradationEvents recorded in the merged profile.
// The JSONL schema is documented in docs/api.md; keys reuse the stable
// kebab-case names of support::to_string(TelemetryCounter/EventKind).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "pmu/sample.hpp"
#include "simrt/events.hpp"
#include "support/telemetry.hpp"

namespace numaprof::core {

/// One reloaded `--telemetry` trace: every snapshot and every event in
/// file order, plus the mechanism named by the stream.
struct TelemetryTrace {
  pmu::Mechanism mechanism = pmu::Mechanism::kIbs;
  bool has_mechanism = false;
  std::vector<support::TelemetrySnapshot> snapshots;
  std::vector<support::TelemetryEvent> events;

  /// The cumulative state at end of run (zero snapshot if the trace is
  /// empty).
  const support::TelemetrySnapshot& final_snapshot() const;
};

/// One-line live health summary:
///   `[telemetry #3 t=24000] ibs samples=1204 (+402/s.mem 881) drop=0.0% ...`
std::string format_status_line(const support::TelemetrySnapshot& snapshot,
                               pmu::Mechanism mechanism);

/// Appends one `snapshot` JSONL object, then one `event` object per event
/// drained into this snapshot.
void write_snapshot_jsonl(const support::TelemetrySnapshot& snapshot,
                          pmu::Mechanism mechanism, std::ostream& os);

/// Parses a JSONL trace written by write_snapshot_jsonl. Unknown keys are
/// ignored (forward compatibility); malformed lines throw numaprof::Error
/// with kind kTelemetry naming the line.
TelemetryTrace load_telemetry_trace(std::istream& is);
TelemetryTrace load_telemetry_trace_file(const std::string& path);

/// The "-- measurement health --" pane: end-of-run totals, drop fractions,
/// per-domain M_l/M_r, the event log, and — when `profile` is non-null —
/// a cross-check of streamed events against the profile's recorded
/// DegradationEvents. Deterministic: byte-identical output for identical
/// inputs.
std::string render_health_pane(const TelemetryTrace& trace,
                               const SessionData* profile = nullptr);

/// Machine observer that emits a telemetry snapshot every
/// `interval_instructions` retired instructions (virtual time advances
/// only inside the simulator, so instruction count is the natural
/// interval unit). Attach alongside the profiler; call flush() after
/// run() for the final partial interval.
class TelemetryStreamer final : public simrt::MachineObserver {
 public:
  struct Config {
    std::uint64_t interval_instructions = 100000;
    /// Live status lines (nullptr: none).
    std::ostream* status = nullptr;
    /// JSONL trace (nullptr: none).
    std::ostream* jsonl = nullptr;
    pmu::Mechanism mechanism = pmu::Mechanism::kIbs;
  };

  TelemetryStreamer(support::TelemetryHub& hub, Config config)
      : hub_(&hub), config_(config) {}

  void on_exec(const simrt::SimThread& thread, std::uint64_t count) override;
  void on_access(const simrt::SimThread& thread,
                 const simrt::AccessEvent& event) override;

  /// Emits the final snapshot (even if the interval has not elapsed).
  void flush(std::uint64_t time);

  std::uint64_t snapshots_emitted() const noexcept { return emitted_; }

 private:
  void emit(std::uint64_t time);

  support::TelemetryHub* hub_;
  Config config_;
  std::uint64_t since_emit_ = 0;
  std::uint64_t last_time_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace numaprof::core
