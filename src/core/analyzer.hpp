// The offline analyzer (hpcprof analogue, §7.2).
//
// Merges per-thread profiles (sum reduction for counts and latency; the
// custom [min,max] reduction for address ranges lives in AddressCentric)
// and computes the derived metrics of §4: M_l/M_r ratios, per-domain
// request balance, and lpi_NUMA via Eq. 2 (IBS-style) or Eq. 3
// (PEBS-LL-style) depending on the mechanism's capabilities.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "core/session.hpp"
#include "support/threadpool.hpp"

namespace numaprof::core {

/// DEPRECATED shim kept so pre-PipelineOptions call sites still compile;
/// new code passes numaprof::PipelineOptions (core/options.hpp) instead.
struct [[deprecated(
    "use numaprof::PipelineOptions instead")]] AnalyzerOptions {
  /// Participants in the per-thread profile merge. 1 = the serial
  /// reference path. Any value produces bitwise-identical results: the
  /// merge parallelizes across metric ROWS and folds each row's values in
  /// thread-index order, never in completion order.
  unsigned jobs = 1;
  /// Reuse an existing pool instead of spawning one per Analyzer. When
  /// set, `jobs` is ignored in favor of the pool's size.
  support::ThreadPool* pool = nullptr;

  PipelineOptions pipeline() const {
    PipelineOptions options;
    options.jobs = jobs;
    options.pool = pool;
    return options;
  }
};

struct ProgramSummary {
  std::uint64_t samples = 0;          // I^s
  std::uint64_t memory_samples = 0;
  std::uint64_t match = 0;            // M_l
  std::uint64_t mismatch = 0;         // M_r
  double remote_latency = 0.0;        // l^s_NUMA
  double total_latency = 0.0;
  std::uint64_t l3_miss_samples = 0;
  std::uint64_t remote_l3_miss_samples = 0;
  std::vector<std::uint64_t> per_domain;
  std::uint64_t instructions = 0;     // absolute I
  std::uint64_t memory_instructions = 0;

  /// lpi_NUMA (cycles/instruction); nullopt when the mechanism reports no
  /// latency (MRK, PEBS, Soft-IBS).
  std::optional<double> lpi;
  /// Fraction of sampled latency caused by remote accesses (the "74.2% of
  /// the total latency is caused by remote NUMA domain accesses" figure).
  double remote_latency_fraction = 0.0;
  /// Fraction of sampled L3 misses that were remote (the MRK-view "66% of
  /// L3 cache misses access remote memory" figure).
  double remote_l3_fraction = 0.0;
  /// max/mean of per-domain request counts (§4.1 balance check).
  double domain_imbalance = 1.0;
  /// The §4.2 rule of thumb: lpi above 0.1 warrants optimization.
  bool warrants_optimization = false;

  /// Eq. 1's three-factor decomposition of lpi_NUMA:
  ///   lpi = (l_NUMA / I_NUMA) x (I_NUMA / I_MEM) x (I_MEM / I)
  /// i.e. average latency per remote access, remote fraction of memory
  /// accesses, and memory fraction of the instruction stream. Estimated
  /// from samples (first two factors) and the conventional counters (the
  /// third). All zero when the mechanism reports no latency.
  double avg_remote_latency = 0.0;   // l_NUMA / I_NUMA (cycles)
  double remote_access_fraction = 0.0;  // I_NUMA / I_MEM
  double memory_fraction = 0.0;         // I_MEM / I
};

struct VariableReport {
  VariableId id = 0;
  std::string name;
  VariableKind kind = VariableKind::kUnknown;
  std::uint64_t samples = 0;          // memory samples on this variable
  std::uint64_t match = 0;
  std::uint64_t mismatch = 0;
  double remote_latency = 0.0;
  double total_latency = 0.0;
  std::vector<std::uint64_t> per_domain;
  /// Share of the program's sampled remote latency (the "z accounts for
  /// 11.3% of the total latency caused by remote accesses" figure).
  double remote_latency_share = 0.0;
  /// Share of the program's M_r.
  double mismatch_share = 0.0;
  /// Share of the program's sampled L3 misses that hit this variable.
  double l3_share = 0.0;
  /// Per-variable lpi: sampled remote latency / sampled accesses on the
  /// variable (the "heap variables have an lpi_NUMA of 11.7" figure).
  std::optional<double> lpi;
  std::uint64_t first_touch_pages = 0;
  /// All accesses funneled to one domain? (the "all accesses to z come
  /// from NUMA domain 0" diagnosis — NUMA_NODE0 == M_l + M_r).
  std::optional<std::uint32_t> single_home_domain;
};

class Analyzer {
 public:
  /// Merges the session's per-thread stores (§7.2) and derives the §4
  /// metrics. Throws ProfileError if any store's domain count disagrees
  /// with the session's machine — merging mismatched widths would silently
  /// misattribute every per-domain column. Only the parallelism knobs of
  /// `options` (jobs, pool) are consumed at this stage.
  explicit Analyzer(const SessionData& data,
                    const PipelineOptions& options = {});

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  /// DEPRECATED compat overload; forwards to the PipelineOptions form.
  [[deprecated("use the numaprof::PipelineOptions overload instead")]]
  Analyzer(const SessionData& data, const AnalyzerOptions& options);
#pragma GCC diagnostic pop

  const ProgramSummary& program() const noexcept { return program_; }

  /// All variables with samples, by descending remote-latency share (or
  /// mismatch share when the mechanism has no latency).
  const std::vector<VariableReport>& variables() const noexcept {
    return reports_;
  }
  /// Report for one variable (zeroed report if unsampled).
  VariableReport report(VariableId id) const;

  /// Aggregate share of remote latency (or of M_r without latency) by
  /// variable kind — the "heap-allocated variables account for 61.8% of
  /// total memory latency caused by remote accesses" figures.
  double kind_remote_share(VariableKind kind) const;

  /// Sum-merged metric store over all threads (§7.2).
  const MetricStore& merged() const noexcept { return merged_; }

  /// lpi_NUMA of one CODE REGION: the CCT subtree rooted at `node`
  /// (inclusive sampled remote latency over inclusive sampled
  /// instructions) — "this metric can be computed for the whole program or
  /// any code region" (§4.2). nullopt when the mechanism reports no
  /// latency or the region has no samples.
  std::optional<double> region_lpi(NodeId node) const;

  /// Finds the [ACCESS]-subtree node of the first frame with this name
  /// (e.g. a parallel region), for region_lpi queries.
  std::optional<NodeId> find_region(std::string_view frame_name) const;

  const SessionData& data() const noexcept { return *data_; }

 private:
  void validate_stores() const;
  void merge_stores(const PipelineOptions& options);
  void build_program_summary();
  void build_variable_reports();

  const SessionData* data_;
  MetricStore merged_;
  ProgramSummary program_;
  std::vector<VariableReport> reports_;
};

}  // namespace numaprof::core
