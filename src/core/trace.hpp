// Trace-based measurement: time-varying NUMA behaviour (§10 future work
// item 3, implemented here as an extension).
//
// Profiles aggregate over the whole run; a trace keeps each memory
// sample's virtual timestamp so analysis can show HOW NUMA behaviour
// evolves — e.g. a local serial-initialization phase followed by a
// remote-heavy parallel phase, or a fix shifting the steady state. The
// recorder stores compact per-sample events; TraceAnalysis buckets them
// into fixed time windows and segments the run into phases.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/datacentric.hpp"
#include "numasim/types.hpp"

namespace numaprof::core {

/// One traced memory sample (compact; no call path — the profile already
/// has aggregated paths, the trace adds the time axis).
struct TraceEvent {
  numasim::Cycles time = 0;
  simrt::ThreadId tid = 0;
  VariableId variable = 0;
  std::uint32_t home_domain = 0;
  bool mismatch = false;       // move_pages-based M_r classification
  bool remote = false;         // data-source-based (latency) classification
  std::uint32_t latency = 0;   // 0 when the mechanism reports none
};

/// Statistics of one time window.
struct TraceWindow {
  numasim::Cycles begin = 0;
  numasim::Cycles end = 0;
  std::uint64_t samples = 0;
  std::uint64_t mismatches = 0;
  double remote_latency = 0.0;
  double total_latency = 0.0;

  double mismatch_fraction() const noexcept {
    return samples ? static_cast<double>(mismatches) /
                         static_cast<double>(samples)
                   : 0.0;
  }
};

/// A contiguous run of windows with homogeneous NUMA behaviour.
struct TracePhase {
  numasim::Cycles begin = 0;
  numasim::Cycles end = 0;
  bool remote_heavy = false;  // mismatch fraction above the threshold
  std::uint64_t samples = 0;
};

class TraceAnalysis {
 public:
  /// `events` must be available for the analysis' lifetime.
  explicit TraceAnalysis(const std::vector<TraceEvent>& events);

  bool empty() const noexcept { return events_->empty(); }
  numasim::Cycles begin() const noexcept { return begin_; }
  numasim::Cycles end() const noexcept { return end_; }

  /// Buckets the run into `count` equal windows of virtual time.
  std::vector<TraceWindow> windows(std::uint32_t count) const;

  /// Windows restricted to one variable's samples.
  std::vector<TraceWindow> windows_for(VariableId variable,
                                       std::uint32_t count) const;

  /// Merges consecutive windows into phases: a window is remote-heavy when
  /// its mismatch fraction exceeds `threshold`. Windows without samples
  /// extend the current phase.
  std::vector<TracePhase> phases(std::uint32_t window_count,
                                 double threshold = 0.5) const;

  /// ASCII timeline: one character per window encoding the mismatch
  /// fraction (' ' none, '.' <25%, '-' <50%, '+' <75%, '#' >=75%).
  std::string timeline(std::uint32_t window_count = 64) const;

 private:
  std::vector<TraceWindow> bucket(
      std::uint32_t count,
      const std::function<bool(const TraceEvent&)>& filter) const;

  const std::vector<TraceEvent>* events_;
  numasim::Cycles begin_ = 0;
  numasim::Cycles end_ = 0;
};

}  // namespace numaprof::core
