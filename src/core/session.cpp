#include "core/session.hpp"

#include <algorithm>
#include <map>

namespace numaprof::core {

std::string_view to_string(DegradationKind k) noexcept {
  switch (k) {
    case DegradationKind::kMechanismUnavailable: return "mechanism-unavailable";
    case DegradationKind::kMechanismFallback: return "mechanism-fallback";
    case DegradationKind::kPeriodRetuneStarvation:
      return "period-retune-starvation";
    case DegradationKind::kPeriodRetuneOverhead:
      return "period-retune-overhead";
    case DegradationKind::kSampleFaults: return "sample-faults";
    case DegradationKind::kProfileFileSkipped: return "profile-file-skipped";
    case DegradationKind::kIngestShardMissing: return "ingest-shard-missing";
    case DegradationKind::kIngestShardCorrupt: return "ingest-shard-corrupt";
    case DegradationKind::kIngestClientEvicted:
      return "ingest-client-evicted";
    case DegradationKind::kIngestWalDegraded: return "ingest-wal-degraded";
  }
  return "unknown";
}

std::vector<FirstTouchSite> SessionData::first_touch_sites(
    VariableId variable) const {
  // Merge records by CCT context: multiple threads initializing a variable
  // concurrently (a parallel first-touch loop) fold into one site listing
  // every touching thread and domain.
  std::map<NodeId, FirstTouchSite> by_node;
  for (const FirstTouchRecord& record : first_touches) {
    if (record.variable != variable) continue;
    FirstTouchSite& site = by_node[record.node];
    site.node = record.node;
    ++site.pages;
    site.threads.push_back(record.tid);
    site.domains.push_back(record.domain);
  }
  std::vector<FirstTouchSite> sites;
  sites.reserve(by_node.size());
  for (auto& [node, site] : by_node) {
    std::sort(site.threads.begin(), site.threads.end());
    site.threads.erase(
        std::unique(site.threads.begin(), site.threads.end()),
        site.threads.end());
    std::sort(site.domains.begin(), site.domains.end());
    site.domains.erase(
        std::unique(site.domains.begin(), site.domains.end()),
        site.domains.end());
    sites.push_back(std::move(site));
  }
  std::sort(sites.begin(), sites.end(),
            [](const FirstTouchSite& a, const FirstTouchSite& b) {
              return a.pages > b.pages;
            });
  return sites;
}

std::string SessionData::frame_name(simrt::FrameId frame) const {
  if (frame == kWholeProgram) return "<whole program>";
  if (frame >= frames.size()) return "<frame " + std::to_string(frame) + ">";
  return frames[frame].name;
}

std::string SessionData::node_label(NodeId node) const {
  const CctNode& n = cct.node(node);
  switch (n.kind) {
    case NodeKind::kRoot: return "<root>";
    case NodeKind::kFrame:
      return frame_name(static_cast<simrt::FrameId>(n.key));
    case NodeKind::kAllocation: return "[ALLOCATION]";
    case NodeKind::kAccess: return "[ACCESS]";
    case NodeKind::kFirstTouch: return "[FIRST-TOUCH]";
    case NodeKind::kVariable: {
      const auto var = static_cast<VariableId>(n.key);
      return var < variables.size() ? "VAR " + variables[var].name
                                    : "VAR #" + std::to_string(n.key);
    }
    case NodeKind::kBin: return "bin " + std::to_string(n.key);
  }
  return "?";
}

std::string SessionData::path_string(NodeId node) const {
  std::string out;
  for (const NodeId id : cct.path_to(node)) {
    if (cct.node(id).kind == NodeKind::kRoot) continue;
    if (!out.empty()) out += " > ";
    out += node_label(id);
  }
  return out.empty() ? "<root>" : out;
}

}  // namespace numaprof::core
