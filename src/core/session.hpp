// SessionData: everything a profiling run produces, decoupled from the live
// machine — the in-memory equivalent of hpcrun's measurement files. The
// offline analyzer, viewer, advisor, and (de)serializer all operate on this
// so that analysis of a live run and of a loaded profile share one code
// path (§7.2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/addrcentric.hpp"
#include "core/cct.hpp"
#include "core/datacentric.hpp"
#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "pmu/sample.hpp"
#include "simrt/frame.hpp"

namespace numaprof::core {

/// Whole-program counters for one thread (the "conventional PMU counter"
/// values of §4.2 plus sample aggregates).
struct ThreadTotals {
  std::uint64_t samples = 0;         // I^s: all sampled instructions
  std::uint64_t memory_samples = 0;
  std::uint64_t match = 0;           // M_l
  std::uint64_t mismatch = 0;        // M_r
  double remote_latency = 0.0;       // l^s_NUMA
  double total_latency = 0.0;
  std::uint64_t l3_miss_samples = 0;
  std::uint64_t remote_l3_miss_samples = 0;
  std::vector<std::uint64_t> per_domain;  // sampled accesses per home domain
  std::uint64_t instructions = 0;         // absolute I (counter)
  std::uint64_t memory_instructions = 0;  // absolute I_MEM (counter)
};

/// How a run's data collection degraded from the ideal configuration.
/// Reports surface these so a reader knows HOW the data was collected
/// before trusting it (NUMAscope/LIKWID-style graceful degradation).
enum class DegradationKind : std::uint8_t {
  kMechanismUnavailable,     // an availability probe failed
  kMechanismFallback,        // a substitute mechanism was used
  kPeriodRetuneStarvation,   // watchdog halved the period (no samples)
  kPeriodRetuneOverhead,     // watchdog doubled the period (runaway rate)
  kSampleFaults,             // injected sample drops/corruption occurred
  kProfileFileSkipped,       // analyzer merge skipped an unreadable file
  kIngestShardMissing,       // shard(s) lost in transport to the daemon
  kIngestShardCorrupt,       // corrupt frame region(s) skipped by ingest
  kIngestClientEvicted,      // a stalled recorder client was evicted
  kIngestWalDegraded,        // write-ahead log full; records not durable
};

/// Number of DegradationKind enumerators (deserializers validate this).
inline constexpr int kDegradationKindCount = 10;

std::string_view to_string(DegradationKind k) noexcept;

struct DegradationEvent {
  DegradationKind kind = DegradationKind::kMechanismFallback;
  pmu::Mechanism mechanism = pmu::Mechanism::kIbs;  // mechanism involved
  std::uint64_t value = 0;  // kind-specific (new period, dropped count, ...)
  std::string detail;       // human-readable context
};

/// One trapped first touch (§6).
struct FirstTouchRecord {
  VariableId variable = 0;
  simrt::ThreadId tid = 0;
  std::uint32_t domain = 0;   // domain of the touching thread
  NodeId node = kRootNode;    // CCT node: first-touch path -> variable
  std::uint64_t page = 0;     // faulting page id
};

/// A first-touch site after postmortem merging of per-thread call paths
/// (§6: "call paths of first touches to the same variable from different
/// threads are merged postmortemly").
struct FirstTouchSite {
  NodeId node = kRootNode;     // merged CCT context
  std::uint64_t pages = 0;     // pages first-touched from this site
  std::vector<simrt::ThreadId> threads;   // who touched (sorted, unique)
  std::vector<std::uint32_t> domains;     // where those threads ran
};

struct SessionData {
  // Machine description.
  std::string machine_name;
  std::uint32_t domain_count = 1;
  std::uint32_t core_count = 1;

  // Monitoring configuration. `mechanism` is what actually collected the
  // data; `requested_mechanism` is what the user asked for (they differ
  // after a fallback).
  pmu::Mechanism mechanism = pmu::Mechanism::kIbs;
  pmu::Mechanism requested_mechanism = pmu::Mechanism::kIbs;
  std::uint64_t sampling_period = 1;

  // Everything that went wrong (or was adapted) while collecting.
  std::vector<DegradationEvent> degradations;
  /// The fault plan active during collection (FaultPlan::describe()),
  /// empty when none was. Serialized with the profile so any degraded run
  /// names the exact plan — spec and RNG seed — that reproduces it.
  std::string fault_context;

  // Program structure.
  std::vector<simrt::FrameInfo> frames;
  Cct cct;
  std::vector<Variable> variables;

  // Per-thread measurements.
  std::vector<MetricStore> stores;
  std::vector<ThreadTotals> totals;

  // Address-centric data and first touches.
  AddressCentric address_centric;
  std::vector<FirstTouchRecord> first_touches;

  // Mechanism-specific absolutes.
  std::uint64_t pebs_ll_events = 0;  // free-running qualifying-event count

  // Optional per-sample trace (§10 future work, when the profiler was
  // configured with record_trace).
  std::vector<TraceEvent> trace;

  std::uint64_t thread_count() const noexcept { return totals.size(); }

  /// True when the data was NOT collected exactly as requested.
  bool degraded() const noexcept {
    return !degradations.empty() || requested_mechanism != mechanism;
  }

  std::uint64_t total_instructions() const noexcept {
    std::uint64_t total = 0;
    for (const auto& t : totals) total += t.instructions;
    return total;
  }

  /// Postmortem merge of first-touch call paths per variable (§6).
  std::vector<FirstTouchSite> first_touch_sites(VariableId variable) const;

  /// Frame display name (safe on kWholeProgram / out-of-range).
  std::string frame_name(simrt::FrameId frame) const;

  /// One node's display label ("[ALLOCATION]", a frame name, "VAR z", ...).
  std::string node_label(NodeId node) const;

  /// Renders a CCT node as a human-readable path string, e.g.
  /// "[ALLOCATION] main > solver > operator new[] > VAR z".
  std::string path_string(NodeId node) const;
};

}  // namespace numaprof::core
