// numaprof.hpp — the supported public surface of the numaprof toolkit.
//
// External consumers include THIS header and nothing else; everything it
// exports lives in namespace numaprof (directly or via the aliases below).
// Any symbol reachable only through other headers is an internal detail
// and may change without notice. CI compiles a minimal consumer TU against
// this header alone (tests/api_surface_check.cpp) so the surface cannot
// silently regress.
//
// Stability notes (see docs/api.md for the full policy):
//   [stable]     covered by the deprecation policy — breaking changes ship
//                a deprecated shim for at least one release first;
//   [evolving]   may gain members/overloads in any release; existing
//                spellings keep compiling;
//   [deprecated] already shimmed; slated for removal.
#pragma once

#include "core/analyzer.hpp"
#include "core/export/export.hpp"
#include "core/export/schema.hpp"
#include "core/options.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/session.hpp"
#include "core/telemetry_stream.hpp"
#include "core/viewer.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace numaprof {

// --- Options & errors ------------------------------------------------
// PipelineOptions [stable]: the one option block consumed by both the
// shard merge and the analyzer fold (declared in core/options.hpp).
// Error / ErrorKind / format_error [stable]: the one exception base and
// the one CLI formatter (declared in support/error.hpp).

// --- Measurement (online, §7.1) --------------------------------------
/// Session [stable]: everything one profiled run produced — machine
/// shape, CCT, per-thread metric stores, degradation record. The profile
/// serialization round-trips this type.
using Session = core::SessionData;
/// Profiler [evolving]: the online collector; attach to a simulated
/// machine, run the workload, snapshot() a Session.
using Profiler = core::Profiler;
/// ProfilerConfig [evolving]: mechanism/first-touch/watchdog/telemetry
/// knobs for Profiler.
using ProfilerConfig = core::ProfilerConfig;

// --- Analysis (offline, §7.2) ----------------------------------------
/// Analyzer [stable]: merges a Session's per-thread stores and derives
/// the §4 metrics. Construct with PipelineOptions.
using Analyzer = core::Analyzer;
/// Viewer [evolving]: renders an Analyzer as the paper's report panes.
using Viewer = core::Viewer;
/// MergeResult [stable]: merged Session plus per-file accounting.
using MergeResult = core::MergeResult;

/// merge_profile_files [stable]: loads and merges per-thread measurement
/// files under a PipelineOptions policy (jobs, lenient, quorum).
using core::merge_profile_files;

// --- Profile I/O -----------------------------------------------------
/// ProfileFormat [stable]: which encoding a writer emits — kText (the
/// lossless interchange format) or kBinary (the mmap-able columnar
/// format, docs/format.md). Declared in core/options.hpp because
/// PipelineOptions carries it.
/// ProfileReader [stable]: loads a Session from a stream, buffer, or
/// file, autodetecting the encoding from magic bytes; binary files are
/// memory-mapped and loaded zero-copy.
using ProfileReader = core::ProfileReader;
/// ProfileWriter [stable]: byte-deterministic writer in the configured
/// ProfileFormat; also produces the per-thread measurement shards the
/// ingestion client streams.
using ProfileWriter = core::ProfileWriter;
/// LoadOptions / LoadResult / Diagnostic [stable]: strict-vs-lenient
/// policy and the (data, diagnostics, complete) result of a load.
using LoadOptions = core::LoadOptions;
using LoadResult = core::LoadResult;
using Diagnostic = core::Diagnostic;
/// ProfileError [stable]: typed parse error naming the offending field
/// and line (text) or byte offset (binary).
using ProfileError = core::ProfileError;

// --- Live telemetry --------------------------------------------------
/// TelemetryHub / TelemetryRing / TelemetrySnapshot [evolving]: the
/// lock-free self-observability layer every measurement component
/// publishes into (support/telemetry.hpp).
using Telemetry = support::TelemetryHub;
using TelemetryConfig = support::TelemetryConfig;
using TelemetrySnapshot = support::TelemetrySnapshot;
using TelemetryCounter = support::TelemetryCounter;
using TelemetryEvent = support::TelemetryEvent;
using TelemetryEventKind = support::TelemetryEventKind;
/// TelemetryStreamer [evolving]: machine observer emitting periodic
/// snapshots as live status lines and/or a JSONL trace.
using TelemetryStreamer = core::TelemetryStreamer;
/// TelemetryTrace [evolving]: a reloaded JSONL trace; render_health_pane
/// cross-checks it against a Session's degradation record.
using TelemetryTrace = core::TelemetryTrace;
using core::format_status_line;
using core::load_telemetry_trace;
using core::load_telemetry_trace_file;
using core::render_health_pane;
using core::write_snapshot_jsonl;

// --- Exporters (core/export/) ----------------------------------------
/// ExportKind / FlameWeight / ExportOptions / ExportArtifact [evolving]:
/// deterministic artifact exporters — Chrome trace-event / Perfetto JSON,
/// collapsed-stack + speedscope flamegraphs, and the self-contained HTML
/// report. All pure functions of the Analyzer (byte-identical for any
/// --jobs value); failures throw Error with ErrorKind::kExport.
using ExportKind = core::ExportKind;
using FlameWeight = core::FlameWeight;
using ExportOptions = core::ExportOptions;
using ExportArtifact = core::ExportArtifact;
using core::export_artifacts;
using core::export_collapsed_stacks;
using core::export_html;
using core::export_speedscope;
using core::export_trace_json;
using core::parse_export_kind;
using core::parse_flame_weight;
using core::write_exports;

/// JsonNode / parse_json / check_* [evolving]: the bundled artifact
/// validators (core/export/schema.hpp) used by the tests and the
/// export_check CLI to vet every emitted artifact.
using JsonNode = core::JsonNode;
using core::check_artifact;
using core::check_collapsed_stacks;
using core::check_html_report;
using core::check_speedscope_json;
using core::check_trace_json;
using core::json_well_formed;
using core::parse_json;

// --- Deprecated shims ------------------------------------------------
// core::MergeOptions / core::AnalyzerOptions [deprecated]: superseded by
// PipelineOptions; they forward via .pipeline() and warn at compile time.

}  // namespace numaprof
