// numaprof::PipelineOptions — the one option block for the offline
// pipeline.
//
// The analyzer surface accreted piecemeal: core::MergeOptions configured
// the shard merge, core::AnalyzerOptions the per-thread store fold, and
// the CLIs grew ad-hoc flags on top. Both stages now consume this single
// struct; the old types survive only as thin deprecated shims
// (docs/api.md describes the deprecation policy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace numaprof::support {
class ThreadPool;
}

namespace numaprof {

/// On-disk profile encodings. Text is the lossless interchange format
/// (docs/format.md); binary is the mmap-able columnar format
/// (docs/format.md). Readers autodetect from magic bytes, so the field
/// only governs what writers EMIT.
enum class ProfileFormat : std::uint8_t {
  kText,
  kBinary,
};

struct PipelineOptions {
  /// Participants in every parallel stage (shard parsing, per-thread
  /// column folds, metric-row merges). 1 = the serial reference path; any
  /// value produces bitwise-identical results (docs/analyzer.md).
  unsigned jobs = 1;
  /// Reuse an existing pool instead of spawning one per stage. When set,
  /// `jobs` is ignored in favor of the pool's size.
  support::ThreadPool* pool = nullptr;
  /// Recover from damaged inputs: malformed sections become diagnostics,
  /// unreadable shard files are skipped (subject to `quorum`).
  bool lenient = false;
  /// Minimum fraction of input files that must merge successfully; below
  /// this the merge throws even in lenient mode.
  double quorum = 0.5;
  /// Hard ceiling on any one profile section's element count; corrupt
  /// headers claiming gigantic counts are rejected before any reserve().
  std::size_t max_count = std::size_t(1) << 22;
  /// Sources for the static NUMA-antipattern analyzer; when non-empty the
  /// CLIs append a fused-findings pane to their reports (docs/lint.md).
  std::vector<std::string> lint_paths;
  /// Directory for numalint's incremental per-file cache; empty disables
  /// caching. Entries are keyed by content hash, so stale files can never
  /// poison a run (docs/lint.md).
  std::string lint_cache_dir;
  /// Encoding used when this pipeline WRITES profiles (merged outputs,
  /// shards). Loads always autodetect, so mixed-format inputs merge fine.
  ProfileFormat format = ProfileFormat::kText;
};

}  // namespace numaprof
