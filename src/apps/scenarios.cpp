#include "apps/scenarios.hpp"

#include <string>

#include "apps/minigraph.hpp"
#include "apps/minijoin.hpp"
#include "apps/minikvcache.hpp"
#include "apps/miniorderbook.hpp"
#include "support/error.hpp"

namespace numaprof::apps {

namespace {

numasim::Cycles run_join(simrt::Machine& m, std::uint32_t threads, bool fixed,
                         const simos::PolicySpec& hot_policy) {
  JoinConfig cfg;
  cfg.threads = threads;
  cfg.fixed = fixed;
  cfg.hot_policy = hot_policy;
  return run_minijoin(m, cfg).total_cycles;
}

numasim::Cycles run_graph(simrt::Machine& m, std::uint32_t threads,
                          bool fixed, const simos::PolicySpec& hot_policy) {
  GraphConfig cfg;
  cfg.threads = threads;
  cfg.fixed = fixed;
  cfg.hot_policy = hot_policy;
  return run_minigraph(m, cfg).total_cycles;
}

numasim::Cycles run_orderbook(simrt::Machine& m, std::uint32_t threads,
                              bool fixed,
                              const simos::PolicySpec& hot_policy) {
  OrderBookConfig cfg;
  cfg.threads = threads;
  cfg.fixed = fixed;
  cfg.hot_policy = hot_policy;
  return run_miniorderbook(m, cfg).total_cycles;
}

numasim::Cycles run_kvcache(simrt::Machine& m, std::uint32_t threads,
                            bool fixed,
                            const simos::PolicySpec& hot_policy) {
  KvCacheConfig cfg;
  cfg.threads = threads;
  cfg.fixed = fixed;
  cfg.hot_policy = hot_policy;
  return run_minikvcache(m, cfg).total_cycles;
}

}  // namespace

const std::vector<Scenario>& matrix_scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"graph", "col_index", core::PatternKind::kBlocked,
       core::Action::kBlockwiseFirstTouch,
       "serial CSR build: one thread first-touches the whole adjacency",
       run_graph},
      {"join", "hashtable", core::PatternKind::kFullRange,
       core::Action::kInterleave,
       "serial build side: probes hash across a one-domain bucket array",
       run_join},
      {"kvcache", "values", core::PatternKind::kFullRange,
       core::Action::kInterleave,
       "serial warm-up + hot-key skew onto one loader-homed page",
       run_kvcache},
      {"orderbook", "book", core::PatternKind::kStaggeredOverlap,
       core::Action::kRegroupAos,
       "feed-thread SoA publish: consumers stride three remote sections",
       run_orderbook},
  };
  return kScenarios;
}

const Scenario& scenario_by_name(std::string_view name) {
  for (const Scenario& s : matrix_scenarios()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const Scenario& s : matrix_scenarios()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw Error(ErrorKind::kUsage, /*file=*/"", /*field=*/"scenario",
              /*line=*/0,
              "unknown matrix scenario '" + std::string(name) +
                  "' (known scenarios: " + known + ")");
}

}  // namespace numaprof::apps
