#include "apps/minijoin.hpp"

#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

struct Frames {
  FrameId main;
  FrameId alloc_table;
  FrameId alloc_keys;
  FrameId alloc_out;
  FrameId build_loop;
  FrameId probe_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "join.cc", 40);
  fr.alloc_table = f.intern("malloc(hashtable)", "join.cc", 55);
  fr.alloc_keys = f.intern("malloc(probe_keys)", "join.cc", 58);
  fr.alloc_out = f.intern("malloc(join_out)", "join.cc", 61);
  fr.build_loop = f.intern("build_table", "join.cc", 78,
                           simrt::FrameKind::kLoop);
  fr.probe_loop = f.intern("probe_partition", "join.cc", 120,
                           simrt::FrameKind::kLoop);
  return fr;
}

/// Fibonacci-style multiplicative hash: spreads sequential keys over the
/// whole bucket space deterministically.
constexpr std::uint64_t bucket_of(std::uint64_t key,
                                  std::uint64_t buckets) noexcept {
  return (key * 2654435761ull) % buckets;
}

}  // namespace

JoinRun run_minijoin(Machine& m, const JoinConfig& cfg) {
  const Frames fr = make_frames(m);
  JoinRun run;
  run.buckets = static_cast<std::uint64_t>(cfg.threads) *
                cfg.pages_per_thread * kElemsPerPage;
  const std::uint64_t keys = run.buckets;  // one probe key per bucket
  PhaseClock phase(m);

  const PolicySpec table_policy =
      cfg.fixed ? PolicySpec::first_touch() : cfg.hot_policy;
  const std::vector<FrameId> base = {fr.main};

  // --- Allocation + build side -----------------------------------------
  parallel_region(
      m, 1, "join_setup", base, [&](SimThread& t, std::uint32_t) -> Task {
        {
          ScopedFrame a(t, fr.alloc_table);
          run.hashtable = t.malloc(run.buckets * 8, "hashtable", table_policy);
        }
        {
          ScopedFrame a(t, fr.alloc_keys);
          run.probe_keys = t.malloc(keys * 8, "probe_keys");
        }
        {
          ScopedFrame a(t, fr.alloc_out);
          run.join_out = t.malloc(keys * 8, "join_out");
        }
        if (!cfg.fixed) {
          // Broken: the single-threaded build phase inserts every tuple,
          // first-touching the whole bucket array in the builder's domain.
          ScopedFrame build(t, fr.build_loop);
          store_lines(t, run.hashtable, 0, run.buckets);
        }
        co_return;
      });

  if (cfg.fixed) {
    // Radix-partitioned build: worker i owns bucket partition i and
    // first-touches exactly the buckets it will probe.
    parallel_region(
        m, cfg.threads, "build_partition._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame build(t, fr.build_loop);
          const Slice s = block_slice(run.buckets, index, cfg.threads);
          store_lines(t, run.hashtable, s.begin, s.end);
          co_return;
        });
  }
  run.build_cycles = phase.lap();

  // --- Probe phase ------------------------------------------------------
  parallel_region(
      m, cfg.threads, "probe._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice s = block_slice(keys, index, cfg.threads);
        const Slice part = block_slice(run.buckets, index, cfg.threads);
        const std::uint64_t part_size = part.end - part.begin;
        for (std::uint32_t pass = 0; pass < cfg.passes; ++pass) {
          ScopedFrame probe(t, fr.probe_loop);
          for (std::uint64_t k = s.begin; k < s.end; ++k) {
            t.load(elem_addr(run.probe_keys, k));
            // Shared build: the hash scatters the probe across the WHOLE
            // table. Partitioned build: only within this worker's buckets.
            const std::uint64_t h =
                cfg.fixed ? part.begin + bucket_of(k, part_size)
                          : bucket_of(k, run.buckets);
            t.load(elem_addr(run.hashtable, h));
            // Bucket chain: a second dependent lookup one slot over.
            t.load(elem_addr(run.hashtable,
                             h + 1 == (cfg.fixed ? part.end : run.buckets)
                                 ? h
                                 : h + 1));
            t.exec(2);  // key compare + tuple materialization
            if (k % kLineStride == 0) {
              t.store(elem_addr(run.join_out, k));
              co_await t.tick();
            }
          }
          co_await t.yield();  // pass barrier
        }
        co_return;
      });
  run.probe_cycles = phase.lap();
  run.total_cycles = run.build_cycles + run.probe_cycles;
  return run;
}

}  // namespace numaprof::apps
