#include "apps/minigraph.hpp"

#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

/// Out-degree of every vertex: edges = vertices * kDegree, and one vertex's
/// adjacency list spans exactly one cache line of col_index entries.
inline constexpr std::uint64_t kDegree = kLineStride;

struct Frames {
  FrameId main;
  FrameId alloc_col;
  FrameId alloc_rank;
  FrameId alloc_depth;
  FrameId build_loop;
  FrameId bfs_loop;
  FrameId pagerank_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "graph.cc", 30);
  fr.alloc_col = f.intern("malloc(col_index)", "graph.cc", 44);
  fr.alloc_rank = f.intern("malloc(rank)", "graph.cc", 47);
  fr.alloc_depth = f.intern("malloc(depth)", "graph.cc", 50);
  fr.build_loop = f.intern("build_csr", "graph.cc", 66,
                           simrt::FrameKind::kLoop);
  fr.bfs_loop = f.intern("bfs_level", "graph.cc", 98,
                         simrt::FrameKind::kLoop);
  fr.pagerank_loop = f.intern("pagerank_sweep", "graph.cc", 132,
                              simrt::FrameKind::kLoop);
  return fr;
}

/// Deterministic neighbor id for edge `e`: scatters rank[] chasing across
/// the whole vertex range (remote frontier chasing).
constexpr std::uint64_t neighbor_of(std::uint64_t e,
                                    std::uint64_t vertices) noexcept {
  return (e * 0x9E3779B97F4A7C15ull >> 17) % vertices;
}

}  // namespace

GraphRun run_minigraph(Machine& m, const GraphConfig& cfg) {
  const Frames fr = make_frames(m);
  GraphRun run;
  run.edges = static_cast<std::uint64_t>(cfg.threads) * cfg.pages_per_thread *
              kElemsPerPage;
  run.vertices = run.edges / kDegree;
  PhaseClock phase(m);

  const PolicySpec col_policy =
      cfg.fixed ? PolicySpec::first_touch() : cfg.hot_policy;
  const std::vector<FrameId> base = {fr.main};

  // --- Allocation + graph construction ---------------------------------
  parallel_region(
      m, 1, "graph_setup", base, [&](SimThread& t, std::uint32_t) -> Task {
        {
          ScopedFrame a(t, fr.alloc_col);
          run.col_index = t.malloc(run.edges * 8, "col_index", col_policy);
        }
        {
          ScopedFrame a(t, fr.alloc_rank);
          run.rank = t.malloc(run.vertices * 8, "rank");
        }
        {
          ScopedFrame a(t, fr.alloc_depth);
          run.depth = t.malloc(run.vertices * 8, "depth");
        }
        if (!cfg.fixed) {
          // Broken: one thread builds the whole CSR (and seeds the ranks),
          // homing every adjacency page in the builder's domain.
          ScopedFrame build(t, fr.build_loop);
          store_lines(t, run.col_index, 0, run.edges);
          store_lines(t, run.rank, 0, run.vertices);
          co_await t.tick();
          store_lines(t, run.depth, 0, run.vertices);
        }
        co_return;
      });

  if (cfg.fixed) {
    // The fix: construct (first-touch) each worker's vertex block — and
    // its adjacency slice — on the worker that will traverse it. rank is
    // seeded blockwise too, though chasing keeps most rank reads remote.
    parallel_region(
        m, cfg.threads, "build_csr._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame build(t, fr.build_loop);
          const Slice e = block_slice(run.edges, index, cfg.threads);
          const Slice v = block_slice(run.vertices, index, cfg.threads);
          store_lines(t, run.col_index, e.begin, e.end);
          store_lines(t, run.rank, v.begin, v.end);
          co_await t.tick();
          store_lines(t, run.depth, v.begin, v.end);
          co_return;
        });
  }
  run.build_cycles = phase.lap();

  // --- BFS levels: stream own adjacency block, mark depth --------------
  parallel_region(
      m, cfg.threads, "bfs._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice v = block_slice(run.vertices, index, cfg.threads);
        for (std::uint32_t level = 0; level < cfg.bfs_levels; ++level) {
          ScopedFrame bfs(t, fr.bfs_loop);
          for (std::uint64_t vertex = v.begin; vertex < v.end; ++vertex) {
            const std::uint64_t first_edge = vertex * kDegree;
            for (std::uint64_t e = first_edge; e < first_edge + kDegree;
                 ++e) {
              t.load(elem_addr(run.col_index, e));
            }
            t.exec(2);  // visited check + frontier push
            t.store(elem_addr(run.depth, vertex));
            co_await t.tick();
          }
          co_await t.yield();  // level barrier
        }
        co_return;
      });

  // --- PageRank sweeps: adjacency block-local, rank[] chased remotely --
  parallel_region(
      m, cfg.threads, "pagerank._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice v = block_slice(run.vertices, index, cfg.threads);
        for (std::uint32_t sweep = 0; sweep < cfg.pagerank_sweeps; ++sweep) {
          ScopedFrame pr(t, fr.pagerank_loop);
          for (std::uint64_t vertex = v.begin; vertex < v.end; ++vertex) {
            const std::uint64_t first_edge = vertex * kDegree;
            for (std::uint64_t e = first_edge; e < first_edge + kDegree;
                 ++e) {
              t.load(elem_addr(run.col_index, e));
              t.load(elem_addr(run.rank, neighbor_of(e, run.vertices)));
              t.exec(1);  // contribution accumulate
            }
            t.exec(3);  // damping + store of the new rank
            t.store(elem_addr(run.rank, vertex));
            co_await t.tick();
          }
          co_await t.yield();  // sweep barrier
        }
        co_return;
      });
  run.traverse_cycles = phase.lap();
  run.total_cycles = run.build_cycles + run.traverse_cycles;
  return run;
}

}  // namespace numaprof::apps
