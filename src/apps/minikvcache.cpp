#include "apps/minikvcache.hpp"

#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

struct Frames {
  FrameId main;
  FrameId alloc_values;
  FrameId alloc_state;
  FrameId warm_loop;
  FrameId serve_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "kvcache.cc", 20);
  fr.alloc_values = f.intern("malloc(values)", "kvcache.cc", 33);
  fr.alloc_state = f.intern("malloc(client_state)", "kvcache.cc", 36);
  fr.warm_loop = f.intern("warm_cache", "kvcache.cc", 54,
                          simrt::FrameKind::kLoop);
  fr.serve_loop = f.intern("serve_requests", "kvcache.cc", 88,
                           simrt::FrameKind::kLoop);
  return fr;
}

constexpr std::uint64_t key_of(std::uint64_t request,
                               std::uint64_t keyspace) noexcept {
  return (request * 0x9E3779B97F4A7C15ull >> 13) % keyspace;
}

}  // namespace

KvCacheRun run_minikvcache(Machine& m, const KvCacheConfig& cfg) {
  const Frames fr = make_frames(m);
  KvCacheRun run;
  run.keys = static_cast<std::uint64_t>(cfg.threads) * cfg.pages_per_thread *
             kElemsPerPage;
  // 16 hot keys packed into one line-aligned run in the middle of the heap
  // (so the hot page is not also the first-touch page of anything else).
  run.hot_key = (run.keys / 2) & ~(kLineStride - 1);
  PhaseClock phase(m);

  const PolicySpec values_policy =
      cfg.fixed ? PolicySpec::first_touch() : cfg.hot_policy;
  const std::vector<FrameId> base = {fr.main};

  // --- Allocation + warm-up (loader) -----------------------------------
  parallel_region(
      m, 1, "loader", base, [&](SimThread& t, std::uint32_t) -> Task {
        {
          ScopedFrame a(t, fr.alloc_values);
          run.values = t.malloc(run.keys * 8, "values", values_policy);
        }
        {
          ScopedFrame a(t, fr.alloc_state);
          run.client_state =
              t.malloc(cfg.threads * simos::kPageBytes, "client_state");
        }
        if (!cfg.fixed) {
          // Broken: one loader warms the whole cache, first-touching every
          // value page in its own domain.
          ScopedFrame warm(t, fr.warm_loop);
          store_lines(t, run.values, 0, run.keys);
        }
        co_return;
      });

  if (cfg.fixed) {
    // The fix: shard the cache — each client warms (first-touches) the
    // shard it will serve.
    parallel_region(
        m, cfg.threads, "warm_shard._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame warm(t, fr.warm_loop);
          const Slice s = block_slice(run.keys, index, cfg.threads);
          store_lines(t, run.values, s.begin, s.end);
          co_return;
        });
  }
  run.warm_cycles = phase.lap();

  // --- Serving: hashed gets/puts with hot-key skew ---------------------
  parallel_region(
      m, cfg.threads, "client._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice shard = block_slice(run.keys, index, cfg.threads);
        const std::uint64_t shard_size = shard.end - shard.begin;
        const std::uint64_t state_slot =
            static_cast<std::uint64_t>(index) * kElemsPerPage;
        for (std::uint32_t op = 0; op < cfg.ops_per_client; ++op) {
          const std::uint64_t request =
              static_cast<std::uint64_t>(index) * cfg.ops_per_client + op;
          std::uint64_t key;
          if (!cfg.fixed && op % cfg.hot_every == 0) {
            // The skew: a handful of celebrity keys takes a fixed cut of
            // every client's traffic (all on one page).
            key = run.hot_key + (request % 16);
          } else if (cfg.fixed) {
            // Sharded: this client only serves keys in its own shard.
            key = shard.begin + key_of(request, shard_size);
          } else {
            key = key_of(request, run.keys);
          }
          t.load(elem_addr(run.values, key));
          t.exec(2);  // hash + bookkeeping
          if (op % 4 == 3) {
            t.store(elem_addr(run.values, key));  // put
          }
          t.store(elem_addr(run.client_state, state_slot + (op % 8)));
          if (op % 16 == 0) co_await t.tick();
        }
        co_return;
      });
  run.serve_cycles = phase.lap();
  run.total_cycles = run.warm_cycles + run.serve_cycles;
  return run;
}

}  // namespace numaprof::apps
