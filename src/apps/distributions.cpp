#include "apps/distributions.hpp"

#include <vector>

#include "simos/numa_api.hpp"
#include "support/stats.hpp"

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

}  // namespace

std::string_view to_string(Distribution d) noexcept {
  switch (d) {
    case Distribution::kCentralized: return "centralized";
    case Distribution::kInterleaved: return "interleaved";
    case Distribution::kColocated: return "co-located";
  }
  return "?";
}

DistributionRun run_distribution(Machine& m, const DistributionConfig& cfg) {
  DistributionRun run;
  run.elements = static_cast<std::uint64_t>(cfg.threads) *
                 cfg.pages_per_thread * kElemsPerPage;
  auto& frames = m.frames();
  const FrameId main_f = frames.intern("main", "fig1.c", 10);
  const std::vector<FrameId> base = {main_f};

  PolicySpec policy = PolicySpec::first_touch();
  switch (cfg.distribution) {
    case Distribution::kCentralized:
      policy = PolicySpec::bind(0);
      break;
    case Distribution::kInterleaved:
      policy = PolicySpec::interleave();
      break;
    case Distribution::kColocated:
      policy = PolicySpec::first_touch();
      break;
  }

  parallel_region(m, 1, "allocate", base,
                  [&](SimThread& t, std::uint32_t) -> Task {
                    run.data = t.malloc(run.elements * 8, "data", policy);
                    co_return;
                  });

  if (cfg.distribution == Distribution::kColocated) {
    // Figure 1, distribution 3: the compute threads themselves perform the
    // first touch on their own blocks, co-locating data with computation.
    parallel_region(m, cfg.threads, "init._omp", base,
                    [&](SimThread& t, std::uint32_t index) -> Task {
                      const Slice s =
                          block_slice(run.elements, index, cfg.threads);
                      store_lines(t, run.data, s.begin, s.end);
                      co_return;
                    });
  }

  m.system().reset_stats();
  const numasim::Cycles before = m.elapsed();

  // Shared latency accumulator across workers: the run is cooperative
  // (single host thread), so plain aggregation is race-free.
  support::Accumulator latency;
  std::uint64_t remote = 0;
  std::uint64_t total = 0;

  parallel_region(
      m, cfg.threads, "process._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice s = block_slice(run.elements, index, cfg.threads);
        for (std::uint32_t sweep = 0; sweep < cfg.sweeps; ++sweep) {
          for (std::uint64_t i = s.begin; i < s.end; i += kLineStride) {
            const numasim::Cycles cycles = t.load(elem_addr(run.data, i));
            latency.add(static_cast<double>(cycles));
            const auto home = simos::domain_of_addr(
                m.memory().page_table(), elem_addr(run.data, i));
            ++total;
            if (home && *home != t.domain()) ++remote;
            t.exec(2);
            t.store(elem_addr(run.data, i));
            co_await t.tick();
          }
          co_await t.yield();
        }
        co_return;
      });

  run.compute_cycles = m.elapsed() - before;
  run.mean_access_latency = latency.mean();
  run.remote_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(remote) / static_cast<double>(total);
  run.controller_requests = m.system().controller_requests();
  run.controller_imbalance = support::imbalance(run.controller_requests);
  return run;
}

}  // namespace numaprof::apps
