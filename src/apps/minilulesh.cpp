#include "apps/minilulesh.hpp"

#include <array>
#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

struct Frames {
  FrameId main;
  FrameId leapfrog;
  FrameId domain_ctor;
  std::array<FrameId, 6> alloc;  // one operator new[] site per array
  FrameId init_loop;
  FrameId calc_force;
  FrameId node_loop;
  FrameId calc_kinematics;
  FrameId elem_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "lulesh.cc", 2720);
  fr.leapfrog = f.intern("LagrangeLeapFrog", "lulesh.cc", 2613);
  fr.domain_ctor = f.intern("Domain::Domain", "lulesh.cc", 2100);
  const std::array<std::uint32_t, 6> lines = {2159, 2160, 2164,
                                              2170, 2171, 2172};
  for (std::size_t i = 0; i < 6; ++i) {
    fr.alloc[i] = f.intern("operator new[]", "lulesh.cc", lines[i]);
  }
  fr.init_loop = f.intern("InitMeshDecomp", "lulesh.cc", 2300,
                          simrt::FrameKind::kLoop);
  fr.calc_force = f.intern("CalcForceForNodes._omp", "lulesh.cc", 1014,
                           simrt::FrameKind::kParallelRegion);
  fr.node_loop = f.intern("for_nodes", "lulesh.cc", 1022,
                          simrt::FrameKind::kLoop);
  fr.calc_kinematics = f.intern("CalcKinematicsForElems._omp", "lulesh.cc",
                                1544, simrt::FrameKind::kParallelRegion);
  fr.elem_loop = f.intern("for_elems", "lulesh.cc", 1550,
                          simrt::FrameKind::kLoop);
  return fr;
}

}  // namespace

LuleshRun run_minilulesh(Machine& m, const LuleshConfig& cfg) {
  const Frames fr = make_frames(m);
  LuleshRun run;
  run.elements = static_cast<std::uint64_t>(cfg.threads) *
                 cfg.pages_per_thread * kElemsPerPage;
  const std::uint64_t bytes = run.elements * 8;
  PhaseClock phase(m);

  // Prior work's interleave prescription applies to the variables the
  // tool flags as problematic: x/y/z/nodelist (master-inited, remote-heavy).
  // xd/yd/zd show no remote latency in the baseline (worker-first-touched),
  // so they keep their natural first-touch placement in every variant.
  const PolicySpec hot_policy = cfg.variant == Variant::kInterleave
                                    ? PolicySpec::interleave()
                                    : PolicySpec::first_touch();
  // nodelist: the promoted-to-static stack array of §8.1.
  run.nodelist = m.define_static("nodelist", bytes, hot_policy).start;

  const std::vector<FrameId> base = {fr.main};

  // --- Allocation + (master or parallel) initialization ---------------
  struct Slot {
    const char* name;
    simos::VAddr* addr;
    bool master_initialized;  // x/y/z + nodelist; xd/yd/zd are outputs
  };
  const std::array<Slot, 6> slots = {{{"x", &run.x, true},
                                      {"y", &run.y, true},
                                      {"z", &run.z, true},
                                      {"xd", &run.xd, false},
                                      {"yd", &run.yd, false},
                                      {"zd", &run.zd, false}}};

  parallel_region(
      m, 1, "Domain::Domain", base,
      [&](SimThread& t, std::uint32_t) -> Task {
        for (std::size_t i = 0; i < slots.size(); ++i) {
          ScopedFrame alloc(t, fr.alloc[i]);
          *slots[i].addr =
              t.malloc(bytes, slots[i].name,
                       slots[i].master_initialized
                           ? hot_policy
                           : simos::PolicySpec::first_touch());
        }
        if (cfg.variant != Variant::kBlockwise) {
          // Original code: the master thread initializes the mesh, first-
          // touching every page of x/y/z/nodelist into its own domain.
          ScopedFrame init(t, fr.init_loop);
          for (const Slot& slot : slots) {
            if (slot.master_initialized) {
              store_lines(t, *slot.addr, 0, run.elements);
              co_await t.tick();
            }
          }
          store_lines(t, run.nodelist, 0, run.elements);
        }
        co_return;
      });

  if (cfg.variant == Variant::kBlockwise) {
    // The paper's fix: adjust the code performing first touches so each
    // thread initializes (and therefore homes) its own block.
    parallel_region(
        m, cfg.threads, "InitMeshDecomp._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame init(t, fr.init_loop);
          const Slice s = block_slice(run.elements, index, cfg.threads);
          for (const Slot& slot : slots) {
            if (slot.master_initialized) {
              store_lines(t, *slot.addr, s.begin, s.end);
              co_await t.tick();
            }
          }
          store_lines(t, run.nodelist, s.begin, s.end);
          co_return;
        });
  }
  run.init_cycles = phase.lap();

  // --- Compute: the leapfrog alternates two regions per timestep:
  // CalcForceForNodes reads the coordinate arrays + nodelist block-wise and
  // writes the velocity arrays (their first touch, in the baseline);
  // CalcKinematicsForElems reads the velocities back and advances the
  // coordinates. ---------------------------------------------------------
  const std::vector<FrameId> compute_base = {fr.main, fr.leapfrog};
  parallel_region(
      m, cfg.threads, "timestep_loop._omp", compute_base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice s = block_slice(run.elements, index, cfg.threads);
        for (std::uint32_t step = 0; step < cfg.timesteps; ++step) {
          {
            ScopedFrame force(t, fr.calc_force);
            ScopedFrame loop(t, fr.node_loop);
            for (std::uint64_t i = s.begin; i < s.end; i += kLineStride) {
              t.load(elem_addr(run.x, i));
              t.load(elem_addr(run.y, i));
              t.load(elem_addr(run.z, i));
              t.load(elem_addr(run.nodelist, i));
              t.exec(6);  // force kernel arithmetic
              t.store(elem_addr(run.xd, i));
              t.store(elem_addr(run.yd, i));
              t.store(elem_addr(run.zd, i));
              co_await t.tick();
            }
          }
          co_await t.yield();  // region barrier
          {
            ScopedFrame kinematics(t, fr.calc_kinematics);
            ScopedFrame loop(t, fr.elem_loop);
            for (std::uint64_t i = s.begin; i < s.end; i += kLineStride) {
              t.load(elem_addr(run.xd, i));
              t.load(elem_addr(run.yd, i));
              t.load(elem_addr(run.zd, i));
              t.exec(5);  // position update arithmetic
              t.store(elem_addr(run.x, i));
              t.store(elem_addr(run.y, i));
              t.store(elem_addr(run.z, i));
              co_await t.tick();
            }
          }
          co_await t.yield();  // timestep barrier
        }
        co_return;
      });
  run.compute_cycles = phase.lap();
  run.total_cycles = run.init_cycles + run.compute_cycles;
  return run;
}

}  // namespace numaprof::apps
