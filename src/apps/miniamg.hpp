// MiniAmg: the AMG2006 case study workload (§8.2, Figures 4-7).
//
// Memory structure reproduced from the original (a BoomerAMG solve):
//  - RAP_diag_i / RAP_diag_j / RAP_diag_data: a CSR coarse-grid operator,
//    allocated and initialized by the master thread. The relaxation region
//    (hypre_BoomerAMGRelax._omp) partitions ROWS block-wise, so each
//    thread's INDIRECT accesses RAP_diag_data[RAP_diag_i[row]..] land in a
//    contiguous blocked range — but only inside that region. A setup pass
//    (master, full range) and a cyclically-partitioned matvec region smear
//    the whole-program picture into the irregular pattern of Figs. 4/6,
//    while the relax region shows the clean blocks of Figs. 5/7 and
//    carries ~74% of the variable's NUMA latency.
//  - x_vec / z_aux: vectors read through column indirection by every
//    thread across their full extent -> the "interleave these" variables.
//
// Variants:
//  - kBaseline: master init everywhere.
//  - kBlockwise: the paper's fix — block-wise first touch for the CSR
//    arrays, interleaved allocation for the full-range vectors (solver
//    time -51% in the paper).
//  - kInterleave: prior work — interleave every problematic variable
//    (solver time -36% in the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common.hpp"

namespace numaprof::apps {

struct AmgConfig {
  std::uint32_t threads = 48;
  /// CSR rows per thread (scales all arrays).
  std::uint32_t rows_per_thread = 1024;
  /// Non-zeros per row (RAP_diag_data/j sizes = rows * nnz_per_row).
  std::uint32_t nnz_per_row = 4;
  std::uint32_t relax_sweeps = 5;
  std::uint32_t matvec_sweeps = 1;
  /// Multigrid depth. Level k's operator has rows/4^k rows (AMG coarsens
  /// by ~4x per level); each solve sweep is a V-cycle relaxing down and
  /// back up the hierarchy. 1 = the single-level behaviour the case-study
  /// harness calibrates against.
  std::uint32_t levels = 1;
  Variant variant = Variant::kBaseline;
};

/// One multigrid level's coarse operator + solution vector.
struct AmgLevel {
  simos::VAddr rap_diag_i = 0;
  simos::VAddr rap_diag_j = 0;
  simos::VAddr rap_diag_data = 0;
  simos::VAddr x_vec = 0;
  std::uint64_t rows = 0;
  std::uint64_t nnz = 0;
};

struct AmgRun {
  // Level-0 (finest) aliases, matching the paper's variable names.
  simos::VAddr rap_diag_i = 0;
  simos::VAddr rap_diag_j = 0;
  simos::VAddr rap_diag_data = 0;
  simos::VAddr x_vec = 0;
  simos::VAddr z_aux = 0;
  std::uint64_t rows = 0;
  std::uint64_t nnz = 0;
  /// The full hierarchy (levels[0] aliases the fields above).
  std::vector<AmgLevel> levels;
  numasim::Cycles setup_cycles = 0;
  numasim::Cycles solve_cycles = 0;  // the paper's "solver phase" time
  numasim::Cycles total_cycles = 0;
};

AmgRun run_miniamg(simrt::Machine& machine, const AmgConfig& config);

}  // namespace numaprof::apps
