// Scenario registry: the matrix workloads with their expected diagnoses.
//
// Each entry binds one workload kernel (broken + fixed variants behind a
// single runner) to the diagnosis the tool is EXPECTED to produce on the
// broken variant: which variable carries the mismatch, which access
// pattern it exhibits, and which advisor Action fires. The regression grid
// (tests/matrix_grid_test), the matrix bench, and the docs all consume
// this one declarative table, so a kernel and its expectations cannot
// drift apart silently.
//
// Note the expectations are PLACEMENT-INDEPENDENT: pattern classification
// depends only on per-thread address ranges, so the expected pattern and
// action hold across every topology and page-policy cell of the grid.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "apps/common.hpp"
#include "core/advisor.hpp"
#include "simos/page_policy.hpp"

namespace numaprof::apps {

struct Scenario {
  /// Stable short name ("join", "graph", "orderbook", "kvcache").
  std::string_view name;
  /// The variable expected to top the mismatch ranking (broken variant).
  std::string_view hot_variable;
  /// Expected whole-program/guiding access pattern of the hot variable.
  core::PatternKind expected_pattern;
  /// Expected advisor recommendation for the hot variable.
  core::Action expected_action;
  /// One-line description of the deliberate antipattern (docs + bench).
  std::string_view antipattern;
  /// Runs the kernel: broken (fixed=false, `hot_policy` applied to the
  /// hot variable) or fixed (fixed=true, first-touch + the code fix).
  /// Returns total virtual cycles of the run.
  numasim::Cycles (*run)(simrt::Machine& machine, std::uint32_t threads,
                         bool fixed, const simos::PolicySpec& hot_policy);
};

/// All four matrix scenarios, in stable name order.
const std::vector<Scenario>& matrix_scenarios();

/// Lookup by short name; throws numaprof::Error{kUsage} naming the valid
/// choices when `name` is unknown.
const Scenario& scenario_by_name(std::string_view name);

}  // namespace numaprof::apps
