// MiniKvCache: a get/put key-value cache kernel.
//
// Memory structure modeled on an in-memory cache behind a fleet of client
// threads:
//  - values: the value heap, indexed by hashed key. The BROKEN variant
//    warms the whole cache from one loader thread (serial first touch);
//    clients then hash their requests across the WHOLE keyspace, with a
//    deliberate hot-key skew (a fraction of every client's ops lands on a
//    handful of keys packed into one page — the hot page the
//    address-centric view shows). Expected diagnosis: full-range ->
//    interleave.
//  - client_state: per-client scratch (worker-written, local).
//
// The FIXED variant shards the cache by domain: client i warms and serves
// only shard i, so every lookup is block-local — which is why the fix
// beats interleaving (interleave merely spreads the misses evenly).
#pragma once

#include <cstdint>

#include "apps/common.hpp"
#include "simos/page_policy.hpp"

namespace numaprof::apps {

struct KvCacheConfig {
  std::uint32_t threads = 8;
  /// Value-heap pages per client thread (keyspace scales with threads).
  std::uint32_t pages_per_thread = 3;
  /// get/put operations issued per client.
  std::uint32_t ops_per_client = 4096;
  /// Every `hot_every`-th op hits one of the hot keys instead of the
  /// hashed key (the skew knob; 4 = 25% of traffic on the hot page).
  std::uint32_t hot_every = 4;
  /// Domain-sharded cache (the fix) instead of the shared keyspace.
  bool fixed = false;
  /// Placement applied to values in the broken variant (the grid's
  /// page-policy axis); the fixed variant always relies on first touch.
  simos::PolicySpec hot_policy = simos::PolicySpec::first_touch();
};

struct KvCacheRun {
  simos::VAddr values = 0;
  simos::VAddr client_state = 0;
  std::uint64_t keys = 0;
  /// First key of the hot set (16 keys in one line-aligned run mid-heap).
  std::uint64_t hot_key = 0;
  numasim::Cycles warm_cycles = 0;
  numasim::Cycles serve_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

KvCacheRun run_minikvcache(simrt::Machine& machine, const KvCacheConfig& config);

}  // namespace numaprof::apps
