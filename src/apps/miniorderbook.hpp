// MiniOrderBook: a producer-consumer order-book kernel.
//
// Memory structure modeled on a market-data fan-out: one feed thread
// publishes orders into a ring, N matcher threads consume them.
//  - book: ONE allocation holding three equal SoA sections (price, qty,
//    side), each indexed by slot. The feed thread fills every slot
//    serially (serial first touch), and each matcher reads its slot slice
//    from EVERY section — ascending, heavily-overlapping staggered ranges,
//    exactly the Blackscholes Fig. 8 shape. Expected diagnosis:
//    staggered-overlap -> regroup-AoS+parallel-init.
//  - queue_ctrl: the hot shared queue head/tail page. Every operation by
//    every thread hits this single page, which first touch homes in the
//    feed thread's domain — the "hot page" the address-centric view shows.
//  - fills: per-matcher output (worker-written, local).
//
// The FIXED variant regroups the three sections into an AoS and lets each
// matcher first-touch its own slot block, and shards queue_ctrl per
// matcher (one counter line per thread instead of one shared head).
#pragma once

#include <cstdint>

#include "apps/common.hpp"
#include "simos/page_policy.hpp"

namespace numaprof::apps {

struct OrderBookConfig {
  std::uint32_t threads = 8;
  /// Order slots per matcher thread (book holds 3 sections x slots).
  std::uint32_t slots_per_thread = 1024;
  /// Matching passes over each matcher's slot window. Sized so each
  /// matcher collects enough samples under the mini IBS config that its
  /// staggered per-thread range is visible through 5-bin quantization.
  std::uint32_t passes = 24;
  /// AoS regroup + matcher-parallel first touch + sharded queue counters.
  bool fixed = false;
  /// Placement applied to the book in the broken variant (the grid's
  /// page-policy axis); the fixed variant always relies on first touch.
  simos::PolicySpec hot_policy = simos::PolicySpec::first_touch();
};

struct OrderBookRun {
  simos::VAddr book = 0;
  simos::VAddr queue_ctrl = 0;
  simos::VAddr fills = 0;
  std::uint64_t slots = 0;
  numasim::Cycles feed_cycles = 0;
  numasim::Cycles match_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

OrderBookRun run_miniorderbook(simrt::Machine& machine,
                               const OrderBookConfig& config);

}  // namespace numaprof::apps
