// Shared plumbing for the mini-app workloads (§8's four benchmarks).
//
// Each mini-app reproduces the *memory access structure* its original
// exhibits — who first-touches which variable, and which per-thread ranges
// the compute regions read/write — because those two properties are what
// every diagnosis and fix in the paper's case studies key off.
#pragma once

#include <cstdint>
#include <string_view>

#include "numasim/types.hpp"
#include "simos/types.hpp"
#include "simrt/machine.hpp"
#include "simrt/thread.hpp"

namespace numaprof::apps {

/// The optimization variants the case studies compare (§8).
enum class Variant : std::uint8_t {
  kBaseline,      // original code: master-thread initialization
  kBlockwise,     // §8.1/8.2 fix: block-wise distribution via a parallel
                  // first-touch initialization pass
  kInterleave,    // prior work's prescription: interleave page allocation
  kAosRegroup,    // §8.3 fix: regroup SoA sections into an AoS + parallel init
  kParallelInit,  // §8.4 fix: co-locating parallel initialization only
};

std::string_view to_string(Variant v) noexcept;

/// Elements per 4 KiB page for 8-byte elements.
inline constexpr std::uint64_t kElemsPerPage = simos::kPageBytes / 8;
/// Element stride covering one 64-byte cache line of 8-byte elements.
inline constexpr std::uint64_t kLineStride = numasim::kLineBytes / 8;

inline simos::VAddr elem_addr(simos::VAddr base, std::uint64_t index,
                              std::uint32_t elem_size = 8) noexcept {
  return base + index * elem_size;
}

/// Writes elements [begin, end) of an 8-byte-element array at cache-line
/// stride (touching every line, and therefore every page: exactly what an
/// initialization loop does for first-touch purposes).
void store_lines(simrt::SimThread& t, simos::VAddr base, std::uint64_t begin,
                 std::uint64_t end);

/// Reads elements [begin, end) at cache-line stride.
void load_lines(simrt::SimThread& t, simos::VAddr base, std::uint64_t begin,
                std::uint64_t end);

/// Measures per-phase virtual durations against a machine's elapsed clock.
class PhaseClock {
 public:
  explicit PhaseClock(const simrt::Machine& machine) noexcept
      : machine_(&machine), mark_(machine.elapsed()) {}

  /// Cycles since the last lap (or construction), and re-arms.
  numasim::Cycles lap() noexcept {
    const numasim::Cycles now = machine_->elapsed();
    const numasim::Cycles delta = now - mark_;
    mark_ = now;
    return delta;
  }

 private:
  const simrt::Machine* machine_;
  numasim::Cycles mark_;
};

/// Contiguous [begin, end) slice of `total` for worker `index` of `count`.
struct Slice {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};
constexpr Slice block_slice(std::uint64_t total, std::uint32_t index,
                            std::uint32_t count) noexcept {
  const std::uint64_t begin = total * index / count;
  const std::uint64_t end = total * (index + 1) / count;
  return {begin, end};
}

}  // namespace numaprof::apps
