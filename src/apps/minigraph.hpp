// MiniGraph: a BFS + PageRank graph kernel over a CSR adjacency.
//
// Memory structure modeled on level-synchronous BFS followed by PageRank
// sweeps over the same CSR graph:
//  - col_index: the CSR adjacency (the dominant array by volume — BFS and
//    PageRank both stream it, and BFS streams nothing else). Workers own
//    contiguous vertex blocks, and a vertex's adjacency list is contiguous
//    in col_index, so accesses are BLOCKED. The broken variant builds the
//    graph on one thread (serial first touch); the expected diagnosis is
//    blocked -> blockwise-first-touch.
//  - rank: chased through col_index (rank[neighbor]) from every worker —
//    full-range remote chasing that no static placement fixes (interleave
//    merely balances it); it must not outweigh col_index.
//  - depth: BFS output, worker-written (local either way).
//
// The FIXED variant initializes col_index/depth with a blockwise parallel
// first-touch pass so each worker's share of the adjacency is local.
#pragma once

#include <cstdint>

#include "apps/common.hpp"
#include "simos/page_policy.hpp"

namespace numaprof::apps {

struct GraphConfig {
  std::uint32_t threads = 8;
  /// col_index pages per thread (graph size scales with thread count).
  std::uint32_t pages_per_thread = 3;
  /// BFS levels + PageRank sweeps executed.
  std::uint32_t bfs_levels = 2;
  std::uint32_t pagerank_sweeps = 2;
  /// Blockwise parallel construction (the fix) instead of serial build.
  bool fixed = false;
  /// Placement applied to col_index in the broken variant (the grid's
  /// page-policy axis); the fixed variant always relies on first touch.
  simos::PolicySpec hot_policy = simos::PolicySpec::first_touch();
};

struct GraphRun {
  simos::VAddr col_index = 0;
  simos::VAddr rank = 0;
  simos::VAddr depth = 0;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  numasim::Cycles build_cycles = 0;
  numasim::Cycles traverse_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

GraphRun run_minigraph(simrt::Machine& machine, const GraphConfig& config);

}  // namespace numaprof::apps
