#include "apps/miniblackscholes.hpp"

#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

struct Frames {
  FrameId main;
  FrameId alloc_buffer;
  FrameId alloc_prices;
  FrameId init_loop;
  FrameId price_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "blackscholes.c", 310);
  fr.alloc_buffer = f.intern("malloc(buffer)", "blackscholes.c", 340);
  fr.alloc_prices = f.intern("malloc(prices)", "blackscholes.c", 346);
  fr.init_loop = f.intern("init_options", "blackscholes.c", 360,
                          simrt::FrameKind::kLoop);
  fr.price_loop = f.intern("BlkSchlsEqEuroNoDiv", "blackscholes.c", 236,
                           simrt::FrameKind::kLoop);
  return fr;
}

inline constexpr std::uint32_t kSections = 5;  // sptprice..otime

}  // namespace

BlackscholesRun run_miniblackscholes(Machine& m,
                                     const BlackscholesConfig& cfg) {
  const Frames fr = make_frames(m);
  BlackscholesRun run;
  run.options = static_cast<std::uint64_t>(cfg.threads) *
                cfg.options_per_thread;
  PhaseClock phase(m);

  const bool aos =
      cfg.variant == Variant::kAosRegroup || cfg.aos_with_master_init;
  const bool parallel_init =
      cfg.variant == Variant::kAosRegroup && !cfg.aos_with_master_init;
  const PolicySpec policy = cfg.variant == Variant::kInterleave
                                ? PolicySpec::interleave()
                                : PolicySpec::first_touch();
  const std::vector<FrameId> base = {fr.main};

  // Address of option i's field s (s in [0,5)): SoA places the five
  // sections end-to-end (Fig. 9a); AoS packs the five fields per option
  // (Fig. 9b).
  const auto field_addr = [&](std::uint64_t option,
                              std::uint32_t field) -> simos::VAddr {
    if (aos) return run.buffer + (option * kSections + field) * 8;
    return run.buffer + (static_cast<std::uint64_t>(field) * run.options +
                         option) * 8;
  };

  // --- Allocation + initialization ------------------------------------
  parallel_region(
      m, 1, "main_init", base, [&](SimThread& t, std::uint32_t) -> Task {
        {
          ScopedFrame a(t, fr.alloc_buffer);
          run.buffer =
              t.malloc(run.options * kSections * 8, "buffer", policy);
        }
        {
          ScopedFrame a(t, fr.alloc_prices);
          run.prices = t.malloc(run.options * 8, "prices", policy);
        }
        if (!parallel_init) {
          // Original: only the master initializes buffer (§8.3), homing
          // every page in its domain.
          ScopedFrame init(t, fr.init_loop);
          store_lines(t, run.buffer, 0, run.options * kSections);
        }
        co_return;
      });

  if (parallel_init) {
    // §8.3 fix: parallelize the initialization loop so each thread first
    // touches its own (now contiguous, AoS) option block.
    parallel_region(
        m, cfg.threads, "init_options._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame init(t, fr.init_loop);
          const Slice s = block_slice(run.options, index, cfg.threads);
          store_lines(t, run.buffer, s.begin * kSections,
                      s.end * kSections);
          co_return;
        });
  }
  run.init_cycles = phase.lap();

  // --- Pricing loop ----------------------------------------------------
  parallel_region(
      m, cfg.threads, "bs_thread._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice s = block_slice(run.options, index, cfg.threads);
        for (std::uint32_t iter = 0; iter < cfg.iterations; ++iter) {
          ScopedFrame loop(t, fr.price_loop);
          for (std::uint64_t option = s.begin; option < s.end;
               option += kLineStride) {
            for (std::uint32_t field = 0; field < kSections; ++field) {
              t.load(field_addr(option, field));
            }
            t.exec(cfg.flops_per_option);
            t.store(elem_addr(run.prices, option));
            co_await t.tick();
          }
          co_await t.yield();
        }
        co_return;
      });
  run.compute_cycles = phase.lap();
  run.total_cycles = run.init_cycles + run.compute_cycles;
  return run;
}

}  // namespace numaprof::apps
