// MiniUmt: the UMT2013 case study workload (§8.4, Figure 10).
//
// Memory structure reproduced from the original radiation-transport sweep:
//  - STime: a 3-D array STime(ig, c, Angle) (Fortran order: ig fastest),
//    allocated and initialized by the master thread. The sweep loop
//    assigns two-dimensional Angle-planes to threads ROUND-ROBIN, so
//    thread t reads planes t, t+T, t+2T, ... — a staggered pattern across
//    threads like Blackscholes' buffer (§8.4).
//  - STotal: same shape, master-initialized like STime (it keeps its
//    remote placement even in the fixed variant, as in the paper).
//  - psi: the angular flux output, allocated AND zeroed by the master
//    (Fortran allocate + initialization), so it is remote too.
//
// Variant kParallelInit is the paper's fix: parallelize STime's
// initialization so each thread first-touches exactly the planes it will
// read in the sweep (+7% whole-program in the paper — modest, because
// STime is only ~18% of remote accesses).
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace numaprof::apps {

struct UmtConfig {
  std::uint32_t threads = 32;
  std::uint32_t groups = 64;     // ig extent (fastest dimension)
  std::uint32_t corners = 8;     // c extent
  /// Angle-plane count; default 2 planes per thread.
  std::uint32_t angles = 64;
  std::uint32_t sweeps = 4;
  Variant variant = Variant::kBaseline;
};

struct UmtRun {
  simos::VAddr stime = 0;
  simos::VAddr stotal = 0;
  simos::VAddr psi = 0;
  std::uint64_t plane_elems = 0;  // groups * corners
  std::uint64_t elements = 0;     // plane_elems * angles
  numasim::Cycles init_cycles = 0;
  numasim::Cycles sweep_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

UmtRun run_miniumt(simrt::Machine& machine, const UmtConfig& config);

}  // namespace numaprof::apps
