#include "apps/miniorderbook.hpp"

#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

inline constexpr std::uint32_t kSections = 3;  // price, qty, side

struct Frames {
  FrameId main;
  FrameId alloc_book;
  FrameId alloc_ctrl;
  FrameId alloc_fills;
  FrameId feed_loop;
  FrameId match_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "orderbook.cc", 25);
  fr.alloc_book = f.intern("malloc(book)", "orderbook.cc", 38);
  fr.alloc_ctrl = f.intern("malloc(queue_ctrl)", "orderbook.cc", 41);
  fr.alloc_fills = f.intern("malloc(fills)", "orderbook.cc", 44);
  fr.feed_loop = f.intern("feed_orders", "orderbook.cc", 70,
                          simrt::FrameKind::kLoop);
  fr.match_loop = f.intern("match_orders", "orderbook.cc", 110,
                           simrt::FrameKind::kLoop);
  return fr;
}

}  // namespace

OrderBookRun run_miniorderbook(Machine& m, const OrderBookConfig& cfg) {
  const Frames fr = make_frames(m);
  OrderBookRun run;
  run.slots = static_cast<std::uint64_t>(cfg.threads) * cfg.slots_per_thread;
  PhaseClock phase(m);

  const PolicySpec book_policy =
      cfg.fixed ? PolicySpec::first_touch() : cfg.hot_policy;
  const std::vector<FrameId> base = {fr.main};

  // Field f of slot s: SoA lays the three sections end-to-end; the fixed
  // AoS packs one order's three fields together.
  const auto field_addr = [&](std::uint64_t slot,
                              std::uint32_t field) -> simos::VAddr {
    if (cfg.fixed) return run.book + (slot * kSections + field) * 8;
    return run.book +
           (static_cast<std::uint64_t>(field) * run.slots + slot) * 8;
  };
  // Shared head/tail counters on ONE page (broken), or one counter line
  // per matcher (fixed).
  const auto ctrl_addr = [&](std::uint32_t matcher) -> simos::VAddr {
    return run.queue_ctrl + (cfg.fixed ? matcher * kLineStride : 0) * 8;
  };

  // --- Allocation + feed (producer) ------------------------------------
  parallel_region(
      m, 1, "feed_thread", base, [&](SimThread& t, std::uint32_t) -> Task {
        {
          ScopedFrame a(t, fr.alloc_book);
          run.book = t.malloc(run.slots * kSections * 8, "book", book_policy);
        }
        {
          ScopedFrame a(t, fr.alloc_ctrl);
          run.queue_ctrl = t.malloc(
              std::max<std::uint64_t>(simos::kPageBytes,
                                      cfg.threads * kLineStride * 8ull),
              "queue_ctrl");
        }
        {
          ScopedFrame a(t, fr.alloc_fills);
          run.fills = t.malloc(run.slots * 8, "fills");
        }
        if (!cfg.fixed) {
          // Broken: the feed thread publishes every order, first-touching
          // all three sections (and the queue head) in its own domain.
          ScopedFrame feed(t, fr.feed_loop);
          store_lines(t, run.book, 0, run.slots * kSections);
          t.store(ctrl_addr(0));
        }
        co_return;
      });

  if (cfg.fixed) {
    // The fix: each matcher claims its slot block up front, first-touching
    // its (now contiguous, AoS) orders and its own counter line.
    parallel_region(
        m, cfg.threads, "claim_slots._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame feed(t, fr.feed_loop);
          const Slice s = block_slice(run.slots, index, cfg.threads);
          store_lines(t, run.book, s.begin * kSections, s.end * kSections);
          t.store(ctrl_addr(index));
          co_return;
        });
  }
  run.feed_cycles = phase.lap();

  // --- Matching (consumers) --------------------------------------------
  parallel_region(
      m, cfg.threads, "matcher._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        const Slice s = block_slice(run.slots, index, cfg.threads);
        for (std::uint32_t pass = 0; pass < cfg.passes; ++pass) {
          ScopedFrame match(t, fr.match_loop);
          for (std::uint64_t slot = s.begin; slot < s.end;
               slot += kLineStride) {
            // Claim a batch of two lines at a time: bump the (shared or
            // sharded) queue head. Batching keeps the book the dominant
            // variable by volume while the head page stays visibly hot.
            if ((slot / kLineStride) % 2 == 0) {
              t.load(ctrl_addr(index));
              t.store(ctrl_addr(index));
            }
            for (std::uint32_t field = 0; field < kSections; ++field) {
              t.load(field_addr(slot, field));
            }
            t.exec(4);  // price-time priority match
            t.store(elem_addr(run.fills, slot));
            co_await t.tick();
          }
          co_await t.yield();  // pass barrier
        }
        co_return;
      });
  run.match_cycles = phase.lap();
  run.total_cycles = run.feed_cycles + run.match_cycles;
  return run;
}

}  // namespace numaprof::apps
