#include "apps/miniumt.hpp"

#include <vector>

namespace numaprof::apps {

namespace {

using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

struct Frames {
  FrameId main;
  FrameId snswp;
  FrameId alloc_stime, alloc_stotal, alloc_psi;
  FrameId init_loop;
  FrameId corner_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "SuOlsonTest.cc", 120);
  fr.snswp = f.intern("snswp3d", "snswp3d.c", 88);
  fr.alloc_stime = f.intern("alloc(Z%STime)", "Teton.cc", 301);
  fr.alloc_stotal = f.intern("alloc(Z%STotal)", "Teton.cc", 305);
  fr.alloc_psi = f.intern("alloc(psi)", "Teton.cc", 309);
  fr.init_loop = f.intern("init_STime", "Teton.cc", 340,
                          simrt::FrameKind::kLoop);
  fr.corner_loop = f.intern("corner_group_loop", "snswp3d.c", 120,
                            simrt::FrameKind::kLoop);
  return fr;
}

}  // namespace

UmtRun run_miniumt(Machine& m, const UmtConfig& cfg) {
  const Frames fr = make_frames(m);
  UmtRun run;
  run.plane_elems = static_cast<std::uint64_t>(cfg.groups) * cfg.corners;
  run.elements = run.plane_elems * cfg.angles;
  PhaseClock phase(m);
  const std::vector<FrameId> base = {fr.main};

  // Element index of STime(ig, c, angle), Fortran order (ig fastest): one
  // Angle-plane is a contiguous chunk of plane_elems elements.
  const auto plane_base = [&](std::uint32_t angle) -> std::uint64_t {
    return static_cast<std::uint64_t>(angle) * run.plane_elems;
  };

  // --- Allocation + initialization ------------------------------------
  parallel_region(
      m, 1, "Teton_setup", base, [&](SimThread& t, std::uint32_t) -> Task {
        {
          ScopedFrame a(t, fr.alloc_stime);
          run.stime = t.malloc(run.elements * 8, "STime");
        }
        {
          ScopedFrame a(t, fr.alloc_stotal);
          run.stotal = t.malloc(run.elements * 8, "STotal");
        }
        {
          ScopedFrame a(t, fr.alloc_psi);
          run.psi = t.malloc(run.elements * 8, "psi");
        }
        {
          // STotal is ALWAYS master-initialized (the §8.4 fix only touched
          // STime; the other heap arrays kept their remote placement,
          // which is why the whole-program win was a modest 7%).
          ScopedFrame init(t, fr.init_loop);
          store_lines(t, run.stotal, 0, run.elements);
          store_lines(t, run.psi, 0, run.elements);  // master zeroes psi
          if (cfg.variant != Variant::kParallelInit) {
            // Original: the master initializes STime too, homing it
            // entirely in its own domain (§8.4).
            store_lines(t, run.stime, 0, run.elements);
          }
        }
        co_return;
      });

  if (cfg.variant == Variant::kParallelInit) {
    // The paper's fix: each thread initializes the STime planes it will
    // consume in the sweep (round-robin by Angle), co-locating data with
    // its computation.
    parallel_region(
        m, cfg.threads, "init_STime._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame init(t, fr.init_loop);
          for (std::uint32_t angle = index; angle < cfg.angles;
               angle += cfg.threads) {
            store_lines(t, run.stime, plane_base(angle),
                        plane_base(angle) + run.plane_elems);
            co_await t.tick();
          }
          co_return;
        });
  }
  run.init_cycles = phase.lap();

  // --- Sweep: Angle-planes round-robin across threads ------------------
  const std::vector<FrameId> sweep_base = {fr.main, fr.snswp};
  parallel_region(
      m, cfg.threads, "snswp3d._omp", sweep_base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        for (std::uint32_t sweep = 0; sweep < cfg.sweeps; ++sweep) {
          ScopedFrame loop(t, fr.corner_loop);
          for (std::uint32_t angle = index; angle < cfg.angles;
               angle += cfg.threads) {
            const std::uint64_t plane = plane_base(angle);
            // do c / do ig: source = STotal(ig,c) + STime(ig,c,Angle)
            for (std::uint64_t e = 0; e < run.plane_elems;
                 e += kLineStride) {
              t.load(elem_addr(run.stime, plane + e));
              t.load(elem_addr(run.stotal, plane + e));
              t.exec(4);
              t.store(elem_addr(run.psi, plane + e));
            }
            co_await t.tick();
          }
          co_await t.yield();
        }
        co_return;
      });
  run.sweep_cycles = phase.lap();
  run.total_cycles = run.init_cycles + run.sweep_cycles;
  return run;
}

}  // namespace numaprof::apps
