#include "apps/common.hpp"

namespace numaprof::apps {

std::string_view to_string(Variant v) noexcept {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kBlockwise: return "blockwise";
    case Variant::kInterleave: return "interleave";
    case Variant::kAosRegroup: return "AoS-regroup";
    case Variant::kParallelInit: return "parallel-init";
  }
  return "?";
}

void store_lines(simrt::SimThread& t, simos::VAddr base, std::uint64_t begin,
                 std::uint64_t end) {
  for (std::uint64_t i = begin; i < end; i += kLineStride) {
    t.store(elem_addr(base, i));
  }
}

void load_lines(simrt::SimThread& t, simos::VAddr base, std::uint64_t begin,
                std::uint64_t end) {
  for (std::uint64_t i = begin; i < end; i += kLineStride) {
    t.load(elem_addr(base, i));
  }
}

}  // namespace numaprof::apps
