// MiniJoin: a hash-join / table-scan database kernel.
//
// Memory structure modeled on a textbook in-memory equi-join:
//  - hashtable: the build side. The BROKEN variant builds it on one thread
//    (the classic single-threaded build phase), so first touch homes every
//    bucket page in the builder's domain; the probe phase then hashes keys
//    across the WHOLE table from every worker (full-range access). The
//    expected diagnosis is full-range -> interleave.
//  - probe_keys: each worker scans its own key block (worker
//    first-touched, naturally local).
//  - join_out: per-worker match output (first-written by workers, local).
//
// The FIXED variant radix-partitions the join: each worker builds and
// probes only its own hashtable partition, so the build-side pages land in
// (and stay in) the prober's domain.
#pragma once

#include <cstdint>

#include "apps/common.hpp"
#include "simos/page_policy.hpp"

namespace numaprof::apps {

struct JoinConfig {
  std::uint32_t threads = 8;
  /// Hashtable pages per thread (table size scales with thread count).
  std::uint32_t pages_per_thread = 3;
  /// Probe passes over each worker's key block.
  std::uint32_t passes = 4;
  /// Radix-partitioned build+probe (the fix) instead of the shared build.
  bool fixed = false;
  /// Placement applied to the hashtable in the broken variant (the grid's
  /// page-policy axis); the fixed variant always relies on first touch.
  simos::PolicySpec hot_policy = simos::PolicySpec::first_touch();
};

struct JoinRun {
  simos::VAddr hashtable = 0;
  simos::VAddr probe_keys = 0;
  simos::VAddr join_out = 0;
  std::uint64_t buckets = 0;
  numasim::Cycles build_cycles = 0;
  numasim::Cycles probe_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

JoinRun run_minijoin(simrt::Machine& machine, const JoinConfig& config);

}  // namespace numaprof::apps
