// MiniBlackscholes: the Blackscholes case study workload (§8.3, Figs. 8-9).
//
// Memory structure reproduced from the PARSEC original:
//  - buffer: ONE heap allocation holding five equal sections (sptprice,
//    strike, rate, volatility, otime), each section indexed by option.
//    The master thread initializes it; every worker thread then reads its
//    option slice from EVERY section, so thread t touches
//    [t*N/T, t*N/T + 4N + N/T] — the ascending, heavily-overlapping
//    staggered ranges of Fig. 8/9a.
//  - prices: per-option output, first-written by the workers (local).
//
// The kernel is compute-heavy (the Black-Scholes formula), so even though
// buffer's pages all live in the master's domain, lpi_NUMA stays below the
// 0.1 threshold and the paper's verdict is "optimization not worthwhile":
// the kAosRegroup variant (Fig. 9b: regroup sections into an array of
// structures + parallel first-touch init) eliminates the remote accesses
// yet improves runtime by well under 1%.
#pragma once

#include <cstdint>

#include "apps/common.hpp"

namespace numaprof::apps {

struct BlackscholesConfig {
  std::uint32_t threads = 48;
  /// Options per thread (buffer holds 5 sections x options doubles).
  /// Deliberately not a power of two: power-of-two section strides alias
  /// into the same L2 sets and manufacture conflict misses the real
  /// workload does not have.
  std::uint32_t options_per_thread = 480;
  std::uint32_t iterations = 384;  // PARSEC reruns the pricing loop
  /// ALU instructions per option: the Black-Scholes formula (CNDF etc.) is
  /// ~250 flops, which is what keeps memory (and NUMA) off the critical
  /// path.
  std::uint32_t flops_per_option = 256;
  Variant variant = Variant::kBaseline;
  /// Ablation knob: use the AoS layout but KEEP the master-thread
  /// initialization. Comparing this against kAosRegroup isolates the pure
  /// NUMA gain (co-location) from the cache-format gain (an AoS packs one
  /// option's five fields into a single cache line) — the §8.3 "<0.1%"
  /// claim is about the former.
  bool aos_with_master_init = false;
};

struct BlackscholesRun {
  simos::VAddr buffer = 0;  // the five-section SoA buffer (or AoS variant)
  simos::VAddr prices = 0;
  std::uint64_t options = 0;
  numasim::Cycles init_cycles = 0;
  numasim::Cycles compute_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

BlackscholesRun run_miniblackscholes(simrt::Machine& machine,
                                     const BlackscholesConfig& config);

}  // namespace numaprof::apps
