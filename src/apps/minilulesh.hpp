// MiniLulesh: the LULESH case study workload (§8.1).
//
// Memory structure reproduced from the original:
//  - coordinate arrays x, y, z: heap, allocated and INITIALIZED by the
//    master thread (so first-touch homes every page in the master's
//    domain), then read block-wise by all workers each timestep;
//  - velocity arrays xd, yd, zd: heap, pure outputs — first WRITTEN by the
//    workers inside the parallel region, so even the baseline first-touch
//    places them block-wise locally (this is why interleaving "every
//    problematic variable" can lose: it destroys this natural locality,
//    which is mild on the 8-domain AMD box but decisive on POWER7);
//  - nodelist: the stack array the paper promoted to a static variable so
//    the tool could observe it; master-initialized, read by all workers.
//
// Variants:
//  - kBaseline: master init of x/y/z/nodelist.
//  - kBlockwise: the paper's fix — parallel first-touch initialization, so
//    each thread's block of every array lands in its own domain (+25% on
//    AMD, +7.5% on POWER7 in the paper).
//  - kInterleave: prior work's fix — interleaved pages for ALL seven
//    variables (+13% on AMD, -16.4% on POWER7 in the paper).
#pragma once

#include <cstdint>
#include <string>

#include "apps/common.hpp"

namespace numaprof::apps {

struct LuleshConfig {
  std::uint32_t threads = 48;
  /// Pages of each array owned by each thread (array size scales with it).
  std::uint32_t pages_per_thread = 4;
  std::uint32_t timesteps = 6;
  Variant variant = Variant::kBaseline;
};

struct LuleshRun {
  // Variable base addresses (for locating them in profiles).
  simos::VAddr x = 0, y = 0, z = 0;
  simos::VAddr xd = 0, yd = 0, zd = 0;
  simos::VAddr nodelist = 0;
  std::uint64_t elements = 0;
  numasim::Cycles init_cycles = 0;
  numasim::Cycles compute_cycles = 0;
  numasim::Cycles total_cycles = 0;
};

/// Runs MiniLulesh on `machine` (which must be freshly constructed — the
/// run spawns threads and allocates program state).
LuleshRun run_minilulesh(simrt::Machine& machine, const LuleshConfig& config);

}  // namespace numaprof::apps
