#include "apps/miniamg.hpp"

#include <array>
#include <string>
#include <vector>

namespace numaprof::apps {

namespace {

using simos::PolicySpec;
using simrt::FrameId;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

struct Frames {
  FrameId main;
  FrameId solve;
  FrameId build;
  FrameId alloc_i, alloc_j, alloc_data, alloc_x, alloc_z;
  FrameId init_loop;
  FrameId relax_loop;
  FrameId matvec_loop;
};

Frames make_frames(Machine& m) {
  auto& f = m.frames();
  Frames fr;
  fr.main = f.intern("main", "amg2006.c", 540);
  fr.solve = f.intern("hypre_BoomerAMGSolve", "par_amg_solve.c", 100);
  fr.build = f.intern("hypre_BoomerAMGBuildCoarseOperator", "par_rap.c", 52);
  fr.alloc_i = f.intern("hypre_CTAlloc(RAP_diag_i)", "par_rap.c", 401);
  fr.alloc_j = f.intern("hypre_CTAlloc(RAP_diag_j)", "par_rap.c", 407);
  fr.alloc_data = f.intern("hypre_CTAlloc(RAP_diag_data)", "par_rap.c", 413);
  fr.alloc_x = f.intern("hypre_CTAlloc(x_vec)", "par_vector.c", 88);
  fr.alloc_z = f.intern("hypre_CTAlloc(z_aux)", "par_vector.c", 95);
  fr.init_loop = f.intern("rap_init", "par_rap.c", 430,
                          simrt::FrameKind::kLoop);
  fr.relax_loop = f.intern("relax_rows", "par_relax.c", 220,
                           simrt::FrameKind::kLoop);
  fr.matvec_loop = f.intern("matvec_rows", "par_csr_matvec.c", 140,
                            simrt::FrameKind::kLoop);
  return fr;
}

/// Deterministic "matrix column" for the indirect x_vec access — plays the
/// role of the RAP_diag_j values used as indices in the original
/// (RAP_diag_data[A_diag_i[i]]-style indirection, §8.2).
constexpr std::uint64_t column_of(std::uint64_t row, std::uint32_t k,
                                  std::uint64_t rows) noexcept {
  return (row * 2654435761ULL + 911382323ULL * (k + 1)) % rows;
}

/// Level-decorated variable name: level 0 keeps the paper's exact names.
std::string level_name(const char* base, std::uint32_t level) {
  return level == 0 ? base : std::string(base) + "_L" + std::to_string(level);
}

}  // namespace

AmgRun run_miniamg(Machine& m, const AmgConfig& cfg) {
  const Frames fr = make_frames(m);
  const std::uint32_t level_count = cfg.levels == 0 ? 1 : cfg.levels;
  AmgRun run;
  run.rows = static_cast<std::uint64_t>(cfg.threads) * cfg.rows_per_thread;
  run.nnz = run.rows * cfg.nnz_per_row;
  PhaseClock phase(m);

  const bool interleave_all = cfg.variant == Variant::kInterleave;
  const bool optimized = cfg.variant == Variant::kBlockwise;
  // Optimized: CSR arrays get their homes from a parallel first-touch pass;
  // the full-range vectors are interleaved (the §8.2 mixed prescription).
  const PolicySpec csr_policy =
      interleave_all ? PolicySpec::interleave() : PolicySpec::first_touch();
  const PolicySpec vec_policy =
      (interleave_all || optimized) ? PolicySpec::interleave()
                                    : PolicySpec::first_touch();

  const std::vector<FrameId> base = {fr.main, fr.solve};

  // Level geometry: AMG coarsens by ~4x per level.
  run.levels.resize(level_count);
  for (std::uint32_t l = 0; l < level_count; ++l) {
    run.levels[l].rows = std::max<std::uint64_t>(run.rows >> (2 * l),
                                                 cfg.threads);
    run.levels[l].nnz = run.levels[l].rows * cfg.nnz_per_row;
  }

  // --- Setup: allocate + master initialization (every level) -----------
  parallel_region(
      m, 1, "hypre_BoomerAMGBuildCoarseOperator", base,
      [&](SimThread& t, std::uint32_t) -> Task {
        for (std::uint32_t l = 0; l < level_count; ++l) {
          AmgLevel& level = run.levels[l];
          {
            ScopedFrame a(t, fr.alloc_i);
            level.rap_diag_i = t.malloc((level.rows + 1) * 8,
                                        level_name("RAP_diag_i", l),
                                        csr_policy);
          }
          {
            ScopedFrame a(t, fr.alloc_j);
            level.rap_diag_j = t.malloc(level.nnz * 8,
                                        level_name("RAP_diag_j", l),
                                        csr_policy);
          }
          {
            ScopedFrame a(t, fr.alloc_data);
            level.rap_diag_data = t.malloc(level.nnz * 8,
                                           level_name("RAP_diag_data", l),
                                           csr_policy);
          }
          {
            ScopedFrame a(t, fr.alloc_x);
            level.x_vec = t.malloc(level.rows * 8, level_name("x_vec", l),
                                   vec_policy);
          }
        }
        {
          ScopedFrame a(t, fr.alloc_z);
          run.z_aux = t.malloc(run.rows * 8, "z_aux", vec_policy);
        }
        if (cfg.variant != Variant::kBlockwise) {
          // Original code: the master builds every coarse operator,
          // first-touching all pages into its own domain.
          ScopedFrame init(t, fr.init_loop);
          for (std::uint32_t l = 0; l < level_count; ++l) {
            const AmgLevel& level = run.levels[l];
            store_lines(t, level.rap_diag_i, 0, level.rows + 1);
            co_await t.tick();
            store_lines(t, level.rap_diag_j, 0, level.nnz);
            co_await t.tick();
            store_lines(t, level.rap_diag_data, 0, level.nnz);
            co_await t.tick();
            store_lines(t, level.x_vec, 0, level.rows);
          }
          store_lines(t, run.z_aux, 0, run.rows);
        }
        co_return;
      });

  if (cfg.variant == Variant::kBlockwise) {
    // The paper's fix, applied at the first-touch location the tool
    // pinpointed: each thread initializes its own row block of every
    // level's CSR arrays; the interleaved vectors are touched master-side
    // (their homes are fixed by policy, not by toucher).
    parallel_region(
        m, cfg.threads, "rap_init._omp", base,
        [&](SimThread& t, std::uint32_t index) -> Task {
          ScopedFrame init(t, fr.init_loop);
          for (std::uint32_t l = 0; l < level_count; ++l) {
            const AmgLevel& level = run.levels[l];
            const Slice rows = block_slice(level.rows, index, cfg.threads);
            const Slice nnz = block_slice(level.nnz, index, cfg.threads);
            store_lines(t, level.rap_diag_i, rows.begin, rows.end);
            co_await t.tick();
            store_lines(t, level.rap_diag_j, nnz.begin, nnz.end);
            co_await t.tick();
            store_lines(t, level.rap_diag_data, nnz.begin, nnz.end);
            co_await t.tick();
          }
          if (index == 0) {
            for (std::uint32_t l = 0; l < level_count; ++l) {
              store_lines(t, run.levels[l].x_vec, 0, run.levels[l].rows);
            }
            store_lines(t, run.z_aux, 0, run.rows);
          }
          co_return;
        });
  }
  run.setup_cycles = phase.lap();

  // Level-0 aliases (the paper's names).
  run.rap_diag_i = run.levels[0].rap_diag_i;
  run.rap_diag_j = run.levels[0].rap_diag_j;
  run.rap_diag_data = run.levels[0].rap_diag_data;
  run.x_vec = run.levels[0].x_vec;

  // --- Solve: V-cycles of relaxation sweeps (block-partitioned rows) ---
  // Per sweep the cycle relaxes levels 0..L-1 going down and L-2..0 coming
  // back up; with one level this is exactly one relaxation pass.
  parallel_region(
      m, cfg.threads, "hypre_BoomerAMGRelax._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        // One row of relaxation on level `l` (plain body; the coroutine
        // below owns the suspension points).
        const auto relax_row = [&](std::uint32_t l, std::uint64_t row) {
          const AmgLevel& level = run.levels[l];
          t.load(elem_addr(level.rap_diag_i, row));
          for (std::uint32_t k = 0; k < cfg.nnz_per_row; ++k) {
            const std::uint64_t idx = row * cfg.nnz_per_row + k;
            t.load(elem_addr(level.rap_diag_j, idx));
            t.load(elem_addr(level.rap_diag_data, idx));
            t.load(elem_addr(level.x_vec, column_of(row, k, level.rows)));
          }
          t.exec(3 * cfg.nnz_per_row);
          t.store(elem_addr(level.x_vec, row));
        };
        // V-cycle level order: down 0..L-1, then up L-2..0.
        std::vector<std::uint32_t> order;
        for (std::uint32_t l = 0; l < level_count; ++l) order.push_back(l);
        for (std::uint32_t l = level_count - 1; l-- > 0;) order.push_back(l);

        for (std::uint32_t sweep = 0; sweep < cfg.relax_sweeps; ++sweep) {
          ScopedFrame loop(t, fr.relax_loop);
          for (const std::uint32_t l : order) {
            const Slice rows =
                block_slice(run.levels[l].rows, index, cfg.threads);
            for (std::uint64_t row = rows.begin; row < rows.end; ++row) {
              relax_row(l, row);
              co_await t.tick();
            }
            co_await t.yield();  // level barrier
          }
        }
        co_return;
      });

  // --- Solve: matvec sweeps on the finest level (CYCLIC row partition) --
  // This region's per-thread ranges span the whole CSR arrays, which is
  // what makes the WHOLE-PROGRAM address-centric view irregular (Fig. 4)
  // even though the dominant relax region is cleanly blocked (Fig. 5).
  parallel_region(
      m, cfg.threads, "hypre_ParCSRMatrixMatvec._omp", base,
      [&](SimThread& t, std::uint32_t index) -> Task {
        for (std::uint32_t sweep = 0; sweep < cfg.matvec_sweeps; ++sweep) {
          ScopedFrame loop(t, fr.matvec_loop);
          for (std::uint64_t row = index; row < run.rows;
               row += cfg.threads) {
            t.load(elem_addr(run.rap_diag_i, row));
            for (std::uint32_t k = 0; k < cfg.nnz_per_row; ++k) {
              const std::uint64_t idx = row * cfg.nnz_per_row + k;
              t.load(elem_addr(run.rap_diag_j, idx));
              t.load(elem_addr(run.rap_diag_data, idx));
              t.load(elem_addr(run.z_aux, column_of(row, k, run.rows)));
            }
            t.exec(2 * cfg.nnz_per_row);
            t.store(elem_addr(run.z_aux, row));
            co_await t.tick();
          }
          co_await t.yield();
        }
        co_return;
      });
  run.solve_cycles = phase.lap();
  run.total_cycles = run.setup_cycles + run.solve_cycles;
  return run;
}

}  // namespace numaprof::apps
