// Figure 1 workload: one shared array, three data distributions.
//
// The paper's Figure 1 contrasts (a) all data in one NUMA domain — locality
// AND bandwidth problems; (b) data distributed across domains without
// regard to access affinity (interleaving) — contention fixed, locality
// not; (c) data co-located with the computation that uses it — both fixed.
// This workload runs the same block-partitioned read/write kernel under
// the three placements and reports the measurements that tell them apart:
// runtime, average access latency, remote access fraction, and per-domain
// memory-controller request balance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common.hpp"

namespace numaprof::apps {

enum class Distribution : std::uint8_t {
  kCentralized,  // Figure 1, distribution 1: everything in domain 1
  kInterleaved,  // Figure 1, distribution 2
  kColocated,    // Figure 1, distribution 3: blocks live with their threads
};

std::string_view to_string(Distribution d) noexcept;

struct DistributionConfig {
  std::uint32_t threads = 48;
  std::uint32_t pages_per_thread = 4;
  std::uint32_t sweeps = 4;
  Distribution distribution = Distribution::kCentralized;
};

struct DistributionRun {
  simos::VAddr data = 0;
  std::uint64_t elements = 0;
  numasim::Cycles compute_cycles = 0;
  double mean_access_latency = 0.0;       // cycles, from the kernel itself
  double remote_fraction = 0.0;           // page-home vs thread-domain
  std::vector<std::uint64_t> controller_requests;  // per domain
  double controller_imbalance = 1.0;      // max/mean
};

DistributionRun run_distribution(simrt::Machine& machine,
                                 const DistributionConfig& config);

}  // namespace numaprof::apps
