#include "simrt/omp.hpp"

#include <memory>

namespace numaprof::simrt {

std::string_view to_string(Schedule schedule) noexcept {
  switch (schedule) {
    case Schedule::kStatic: return "static";
    case Schedule::kCyclic: return "cyclic";
    case Schedule::kDynamic: return "dynamic";
  }
  return "?";
}

void parallel_for(Machine& machine, std::uint32_t count,
                  std::string_view region, std::vector<FrameId> base_stack,
                  std::uint64_t total, Schedule schedule, std::uint64_t chunk,
                  ForBody body) {
  if (chunk == 0) chunk = 1;
  // The dynamic schedule's shared work counter. Execution is cooperative
  // (one host thread), so a plain integer is race-free; the DES scheduler
  // interleaves chunk grabs by virtual time, exactly like a contended
  // OpenMP dynamic loop.
  auto next = std::make_shared<std::uint64_t>(0);

  parallel_region(
      machine, count, region, std::move(base_stack),
      [total, schedule, chunk, next, body = std::move(body),
       count](SimThread& t, std::uint32_t index) -> Task {
        switch (schedule) {
          case Schedule::kStatic: {
            const std::uint64_t begin = total * index / count;
            const std::uint64_t end = total * (index + 1) / count;
            for (std::uint64_t i = begin; i < end; ++i) {
              body(t, i);
              if ((i - begin + 1) % chunk == 0) co_await t.tick();
            }
            break;
          }
          case Schedule::kCyclic: {
            std::uint64_t done = 0;
            for (std::uint64_t i = index; i < total; i += count) {
              body(t, i);
              if (++done % chunk == 0) co_await t.tick();
            }
            break;
          }
          case Schedule::kDynamic: {
            for (;;) {
              // Grab the next chunk. The grab itself costs a couple of
              // instructions (the real atomic fetch-add).
              t.exec(2);
              const std::uint64_t begin = *next;
              if (begin >= total) break;
              const std::uint64_t end = std::min(total, begin + chunk);
              *next = end;
              for (std::uint64_t i = begin; i < end; ++i) body(t, i);
              co_await t.yield();  // fairness: let others grab
            }
            break;
          }
        }
        co_return;
      });
}

}  // namespace numaprof::simrt
