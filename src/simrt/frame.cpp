#include "simrt/frame.hpp"

namespace numaprof::simrt {

FrameId FrameRegistry::intern(std::string_view name, std::string_view file,
                              std::uint32_t line, FrameKind kind) {
  std::string key;
  key.reserve(name.size() + file.size() + 16);
  key.append(name).push_back('\x1f');
  key.append(file).push_back('\x1f');
  key += std::to_string(line);
  key.push_back('\x1f');
  key += std::to_string(static_cast<int>(kind));

  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;

  const FrameId id = static_cast<FrameId>(frames_.size());
  frames_.push_back(FrameInfo{.name = std::string(name),
                              .file = std::string(file),
                              .line = line,
                              .kind = kind});
  index_.emplace(std::move(key), id);
  return id;
}

std::string FrameRegistry::describe(FrameId id) const {
  const FrameInfo& f = frames_.at(id);
  if (f.file.empty()) return f.name;
  return f.name + " (" + f.file + ":" + std::to_string(f.line) + ")";
}

}  // namespace numaprof::simrt
