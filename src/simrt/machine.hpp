// Machine: the facade tying together the NUMA hardware model (numasim),
// the OS memory layer (simos), and simulated threads (simrt).
//
// A workload is a set of thread kernels spawned on the machine and run to
// completion by a least-virtual-time scheduler. Observers (the PMU samplers
// and the profiler's wrappers) watch the instruction/access/allocation
// stream — the machine is the "hardware + OS" the paper's tool monitors.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "numasim/system.hpp"
#include "support/telemetry.hpp"
#include "numasim/topology.hpp"
#include "simos/address_space.hpp"
#include "simrt/events.hpp"
#include "simrt/frame.hpp"
#include "simrt/thread.hpp"

namespace numaprof::simrt {

struct MachineConfig {
  /// Instructions per scheduling quantum. Small values interleave threads
  /// finely (accurate contention, slower); large values batch. The default
  /// keeps worst-case per-quantum virtual-time spans (quantum x worst
  /// access latency) well inside the queue model's epoch ring, so
  /// concurrent demand is observed concurrently.
  std::uint64_t quantum = 200;
};

class Machine {
 public:
  using Kernel = std::function<Task(SimThread&)>;

  explicit Machine(numasim::Topology topology, MachineConfig config = {});

  // Non-movable: threads hold stable references to the machine.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const numasim::Topology& topology() const noexcept {
    return system_.topology();
  }
  numasim::System& system() noexcept { return system_; }
  const numasim::System& system() const noexcept { return system_; }
  simos::AddressSpace& memory() noexcept { return space_; }
  const simos::AddressSpace& memory() const noexcept { return space_; }
  FrameRegistry& frames() noexcept { return frames_; }
  const FrameRegistry& frames() const noexcept { return frames_; }

  /// Spawns a thread running `kernel`, bound to `core` (default: tid modulo
  /// core count, the paper's thread-per-core binding). The thread starts at
  /// the machine's current elapsed time, so spawn-after-run sequences model
  /// serial program phases. `initial_stack` seeds the call path (e.g.
  /// main -> solver -> parallel-region) so worker CCTs root correctly.
  ThreadId spawn(Kernel kernel,
                 std::optional<numasim::CoreId> core = std::nullopt,
                 std::vector<FrameId> initial_stack = {});

  /// Runs every unfinished thread to completion (deterministic least-clock
  /// order). May be called repeatedly as phases spawn more threads.
  void run();

  /// Max virtual time reached by any thread: the program's execution time.
  numasim::Cycles elapsed() const noexcept { return elapsed_; }

  SimThread& thread(ThreadId tid) { return *threads_.at(tid); }
  std::size_t thread_count() const noexcept { return threads_.size(); }

  // --- Monitoring hookup ---
  void add_observer(MachineObserver& observer);
  void remove_observer(MachineObserver& observer) noexcept;
  /// Installs the simulated-SIGSEGV handler (§6). Replaces any previous.
  void set_fault_handler(FaultHandler handler) {
    fault_handler_ = std::move(handler);
  }
  bool has_fault_handler() const noexcept {
    return static_cast<bool>(fault_handler_);
  }

  /// When true, SimThread::malloc protects the interior pages of each new
  /// block so the first access traps (enabled by the profiler's
  /// first-touch module).
  void set_protect_on_alloc(bool enabled) noexcept {
    protect_on_alloc_ = enabled;
  }

  /// Streams runtime self-observability into `hub`: per-thread retired
  /// instruction counts plus thread start/finish events. nullptr = off.
  /// The hub must outlive the machine.
  void set_telemetry(support::TelemetryHub* hub) noexcept {
    telemetry_ = hub;
  }

  /// Migrates one page to `target`, invalidating its cached lines and
  /// charging the page-copy cost to thread `tid` (the OS-migration model:
  /// the faulting thread pays, as with Linux NUMA hint faults). Returns
  /// the charged cycles.
  numasim::Cycles migrate_page(simos::VAddr addr, numasim::DomainId target,
                               ThreadId tid);

  /// Adds `cycles` to a thread's virtual clock (synchronous OS work
  /// performed on the thread's behalf, e.g. inside a fault handler).
  void charge(ThreadId tid, numasim::Cycles cycles);

  // --- Static variables (read from "the executable's symbols", §5.1) ---
  simos::StaticSymbol define_static(
      std::string name, std::uint64_t size,
      simos::PolicySpec policy = simos::PolicySpec::first_touch());

  // --- Aggregate counters ---
  std::uint64_t total_instructions() const noexcept;
  std::uint64_t total_accesses() const noexcept;

 private:
  friend class SimThread;

  /// The full memory-access path: protection check (fault delivery), page
  /// home resolution (first-touch assignment), hardware access, observer
  /// notification. Returns the latency charged to the thread.
  numasim::Cycles access_path(SimThread& thread, simos::VAddr addr,
                              std::uint32_t size, bool is_write);
  void notify_exec(SimThread& thread, std::uint64_t count);
  simos::VAddr wrapped_malloc(SimThread& thread, std::uint64_t size,
                              std::string_view name,
                              simos::PolicySpec policy);
  void wrapped_free(SimThread& thread, simos::VAddr addr);

  numasim::System system_;
  simos::AddressSpace space_;
  FrameRegistry frames_;
  MachineConfig config_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  std::vector<ThreadId> runnable_;
  std::vector<MachineObserver*> observers_;
  FaultHandler fault_handler_;
  support::TelemetryHub* telemetry_ = nullptr;
  bool protect_on_alloc_ = false;
  numasim::Cycles elapsed_ = 0;
};

/// Runs `body(thread, index)` on `count` freshly spawned threads (bound to
/// cores 0..count-1) and waits for all — an OpenMP `parallel` analogue.
/// `region` names the parallel-region frame pushed on every worker;
/// `base_stack` is the enclosing call path.
void parallel_region(Machine& machine, std::uint32_t count,
                     std::string_view region,
                     std::vector<FrameId> base_stack,
                     std::function<Task(SimThread&, std::uint32_t)> body);

}  // namespace numaprof::simrt
