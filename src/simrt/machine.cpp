#include "simrt/machine.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace numaprof::simrt {

Machine::Machine(numasim::Topology topology, MachineConfig config)
    : system_(std::move(topology)),
      space_(system_.topology().domain_count),
      config_(config) {}

ThreadId Machine::spawn(Kernel kernel, std::optional<numasim::CoreId> core,
                        std::vector<FrameId> initial_stack) {
  const auto tid = static_cast<ThreadId>(threads_.size());
  const numasim::CoreId bound =
      core.value_or(tid % system_.topology().core_count());
  if (bound >= system_.topology().core_count()) {
    throw std::out_of_range("spawn: core id out of range");
  }

  auto thread = std::make_unique<SimThread>(*this, tid, bound);
  thread->clock_ = elapsed_;  // serial-phase semantics: start "now"
  thread->quantum_ = config_.quantum;
  thread->fuel_ = config_.quantum;
  thread->stack_ = std::move(initial_stack);
  space_.stack_base(tid);  // reserve its stack segment

  SimThread& ref = *thread;
  threads_.push_back(std::move(thread));
  runnable_.push_back(tid);

  // Trampoline: a capture-less coroutine taking the kernel BY VALUE, so the
  // callable (and its captures) live inside the coroutine frame itself and
  // stay valid across suspensions regardless of what the caller does with
  // its copy.
  constexpr auto trampoline = [](Kernel owned, SimThread& t) -> Task {
    Task inner = owned(t);
    while (!inner.done()) {
      inner.resume();
      if (!inner.done()) co_await t.tick();
    }
  };
  ref.task_ = trampoline(std::move(kernel), ref);

  for (auto* obs : observers_) obs->on_thread_start(ref);
  if (telemetry_ != nullptr) {
    support::TelemetryEvent event;
    event.kind = support::TelemetryEventKind::kThreadStart;
    event.tid = tid;
    event.time = ref.clock_;
    telemetry_->ring(tid).publish(event);
  }
  return tid;
}

void Machine::run() {
  using Entry = std::pair<numasim::Cycles, ThreadId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (const ThreadId tid : runnable_) {
    queue.emplace(threads_[tid]->clock_, tid);
  }
  runnable_.clear();

  while (!queue.empty()) {
    const auto [time, tid] = queue.top();
    queue.pop();
    SimThread& thread = *threads_[tid];
    if (thread.finished()) continue;
    thread.fuel_ = thread.quantum_;
    thread.task_.resume();
    if (thread.finished()) {
      elapsed_ = std::max(elapsed_, thread.clock_);
      for (auto* obs : observers_) obs->on_thread_finish(thread);
      if (telemetry_ != nullptr) {
        support::TelemetryEvent event;
        event.kind = support::TelemetryEventKind::kThreadFinish;
        event.tid = thread.tid_;
        event.time = thread.clock_;
        telemetry_->ring(thread.tid_).publish(event);
      }
    } else {
      queue.emplace(thread.clock_, tid);
    }
  }
  for (const auto& thread : threads_) {
    elapsed_ = std::max(elapsed_, thread->clock_);
  }
}

void Machine::add_observer(MachineObserver& observer) {
  observers_.push_back(&observer);
}

void Machine::remove_observer(MachineObserver& observer) noexcept {
  std::erase(observers_, &observer);
}

numasim::Cycles Machine::migrate_page(simos::VAddr addr,
                                      numasim::DomainId target,
                                      ThreadId tid) {
  const simos::PageId page = simos::page_of(addr);
  space_.page_table().migrate(page, target);
  // The page's lines move: every cached copy is stale.
  const numasim::LineAddr first = numasim::line_of(simos::page_base(page));
  const auto lines_per_page = simos::kPageBytes / numasim::kLineBytes;
  for (numasim::LineAddr line = first; line < first + lines_per_page;
       ++line) {
    system_.invalidate_line(line);
  }
  // Copy cost: one page of lines through two controllers, flat-rated.
  const numasim::Cycles cost =
      lines_per_page * system_.topology().controller_service * 2;
  charge(tid, cost);
  return cost;
}

void Machine::charge(ThreadId tid, numasim::Cycles cycles) {
  threads_.at(tid)->clock_ += cycles;
}

simos::StaticSymbol Machine::define_static(std::string name,
                                           std::uint64_t size,
                                           simos::PolicySpec policy) {
  return space_.define_static(std::move(name), size, policy);
}

std::uint64_t Machine::total_instructions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& thread : threads_) total += thread->instructions();
  return total;
}

std::uint64_t Machine::total_accesses() const noexcept {
  std::uint64_t total = 0;
  for (const auto& thread : threads_) total += thread->memory_accesses();
  return total;
}

numasim::Cycles Machine::access_path(SimThread& thread, simos::VAddr addr,
                                     std::uint32_t size, bool is_write) {
  auto& page_table = space_.page_table();
  const simos::PageId page = simos::page_of(addr);

  // First-touch trap (§6): a protected page delivers a synchronous fault to
  // the installed handler, which must unprotect before the access retries.
  if (page_table.any_protected() && page_table.is_protected(page)) {
    if (!fault_handler_) {
      throw std::runtime_error("segfault: access to protected page with no handler");
    }
    fault_handler_(FaultEvent{.tid = thread.tid_,
                              .core = thread.core_,
                              .addr = addr,
                              .is_write = is_write,
                              .stack = thread.stack_});
    if (page_table.is_protected(page)) {
      throw std::runtime_error("segfault: fault handler left page protected");
    }
  }

  const numasim::DomainId home = page_table.home_of(page, thread.domain_);
  const numasim::MemoryResult result =
      system_.access(thread.core_, home, addr, is_write, thread.clock_);

  thread.clock_ += result.latency + 1;  // +1 issue cycle
  ++thread.instructions_;
  ++thread.memory_accesses_;
  thread.charge_fuel(1);

  if (!observers_.empty()) {
    const AccessEvent event{.tid = thread.tid_,
                            .core = thread.core_,
                            .thread_domain = thread.domain_,
                            .home_domain = home,
                            .addr = addr,
                            .size = size,
                            .is_write = is_write,
                            .latency = result.latency,
                            .source = result.source,
                            .l3_miss = result.l3_miss,
                            .time = thread.clock_,
                            .op_index = thread.instructions_,
                            .leaf_frame = thread.leaf_frame(),
                            .stack = thread.stack_};
    for (auto* obs : observers_) obs->on_access(thread, event);
  }
  if (telemetry_ != nullptr) {
    telemetry_->ring(thread.tid_).add(
        support::TelemetryCounter::kInstructions);
  }
  return result.latency;
}

void Machine::notify_exec(SimThread& thread, std::uint64_t count) {
  for (auto* obs : observers_) obs->on_exec(thread, count);
  if (telemetry_ != nullptr) {
    telemetry_->ring(thread.tid_).add(
        support::TelemetryCounter::kInstructions, count);
  }
}

simos::VAddr Machine::wrapped_malloc(SimThread& thread, std::uint64_t size,
                                     std::string_view name,
                                     simos::PolicySpec policy) {
  const simos::HeapBlock block = space_.heap_alloc(size, policy);
  // Allocator bookkeeping cost: a small constant, like a real malloc.
  thread.clock_ += 50;
  ++thread.instructions_;

  if (protect_on_alloc_) {
    space_.page_table().protect_range(simos::page_of(block.start),
                                      block.page_count);
  }
  if (!observers_.empty()) {
    const AllocEvent event{.tid = thread.tid_,
                           .block = block,
                           .name = std::string(name),
                           .policy = policy,
                           .stack = thread.stack_};
    for (auto* obs : observers_) obs->on_alloc(event);
  }
  return block.start;
}

void Machine::wrapped_free(SimThread& thread, simos::VAddr addr) {
  const auto block = space_.heap_free(addr);
  if (!block) {
    throw std::invalid_argument("free: not a live heap block start");
  }
  thread.clock_ += 50;
  ++thread.instructions_;
  if (!observers_.empty()) {
    const FreeEvent event{.tid = thread.tid_, .block = *block};
    for (auto* obs : observers_) obs->on_free(event);
  }
}

void parallel_region(Machine& machine, std::uint32_t count,
                     std::string_view region, std::vector<FrameId> base_stack,
                     std::function<Task(SimThread&, std::uint32_t)> body) {
  const FrameId region_frame = machine.frames().intern(
      region, "", 0, FrameKind::kParallelRegion);
  // Scatter binding: worker i lands in domain (i mod D), like
  // OMP_PLACES=scatter / the paper's thread-per-core binding. A compact
  // binding would put a small team entirely inside domain 0 and hide every
  // NUMA effect. Memory-only domains (a CXL-style far tier) have no cores,
  // so only compute domains participate.
  const auto& topo = machine.topology();
  const auto scatter_core = [&topo](std::uint32_t i) -> numasim::CoreId {
    const std::uint32_t domains = topo.compute_domain_count();
    const std::uint32_t domain = i % domains;
    const std::uint32_t slot = (i / domains) % topo.cores_per_domain;
    return domain * topo.cores_per_domain + slot;
  };
  for (std::uint32_t i = 0; i < count; ++i) {
    machine.spawn(
        [body, region_frame, i](SimThread& t) -> Task {
          ScopedFrame frame(t, region_frame);
          Task inner = body(t, i);
          while (!inner.done()) {
            inner.resume();
            if (!inner.done()) co_await t.tick();
          }
        },
        scatter_core(i), base_stack);
  }
  machine.run();
}

}  // namespace numaprof::simrt
