// SimThread: one simulated hardware thread of execution.
//
// Workload kernels receive a SimThread& and program against its API:
// load/store (memory instructions), exec (ALU instructions), malloc/free
// (wrapped heap calls), scoped frames (call-stack maintenance), and
// tick()/yield() suspension points for the discrete-event scheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "numasim/types.hpp"
#include "simos/page_policy.hpp"
#include "simos/types.hpp"
#include "simrt/frame.hpp"
#include "simrt/task.hpp"

namespace numaprof::simrt {

class Machine;
using ThreadId = std::uint32_t;

class SimThread {
 public:
  SimThread(Machine& machine, ThreadId tid, numasim::CoreId core);

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // --- Identity ---
  ThreadId tid() const noexcept { return tid_; }
  numasim::CoreId core() const noexcept { return core_; }
  numasim::DomainId domain() const noexcept { return domain_; }
  numasim::Cycles now() const noexcept { return clock_; }

  // --- Instruction stream ---
  /// One load/store of `size` bytes at `addr`; returns its latency and
  /// advances the virtual clock by issue cost + latency.
  numasim::Cycles load(simos::VAddr addr, std::uint32_t size = 8);
  numasim::Cycles store(simos::VAddr addr, std::uint32_t size = 8);
  /// `count` non-memory instructions (1 cycle each).
  void exec(std::uint64_t count);

  // --- Wrapped allocation (the tool's malloc interposition point, §6) ---
  /// Allocates, publishes an AllocEvent (carrying the current call path),
  /// and — when a profiler enabled first-touch tracking — protects the
  /// block's pages. `name` is the source-level variable name.
  simos::VAddr malloc(std::uint64_t size, std::string_view name = {},
                      simos::PolicySpec policy = simos::PolicySpec::first_touch());
  void free(simos::VAddr addr);

  // --- Scheduling ---
  /// Suspension point: suspends when the quantum's fuel is spent.
  /// Usage: `co_await thread.tick();` at loop boundaries.
  SuspendIf tick() noexcept;
  /// Unconditional suspension (barrier-like fairness point).
  SuspendIf yield() noexcept;

  // --- Call stack ---
  void push_frame(FrameId frame);
  void pop_frame() noexcept;
  std::span<const FrameId> call_stack() const noexcept { return stack_; }
  FrameId leaf_frame() const noexcept {
    return stack_.empty() ? kInvalidFrame : stack_.back();
  }

  // --- Counters (the "conventional PMU counters" of §4.2) ---
  std::uint64_t instructions() const noexcept { return instructions_; }
  std::uint64_t memory_accesses() const noexcept { return memory_accesses_; }

  bool finished() const noexcept { return task_.done(); }

  Machine& machine() noexcept { return machine_; }

 private:
  friend class Machine;
  friend class Scheduler;

  void charge_fuel(std::uint64_t instructions) noexcept {
    fuel_ = instructions >= fuel_ ? 0 : fuel_ - instructions;
  }

  Machine& machine_;
  ThreadId tid_;
  numasim::CoreId core_;
  numasim::DomainId domain_;
  numasim::Cycles clock_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t fuel_ = 0;
  std::uint64_t quantum_ = 0;
  std::vector<FrameId> stack_;
  Task task_;
};

/// RAII frame push/pop. Kernels create one per simulated function, loop, or
/// parallel region; coroutine locals persist across suspensions, so the
/// frame stays on the stack for the scope's full virtual duration.
class ScopedFrame {
 public:
  ScopedFrame(SimThread& thread, FrameId frame) : thread_(thread) {
    thread_.push_frame(frame);
  }
  /// Convenience: interns the frame in the machine's registry.
  ScopedFrame(SimThread& thread, std::string_view name,
              std::string_view file = "", std::uint32_t line = 0,
              FrameKind kind = FrameKind::kFunction);
  ~ScopedFrame() { thread_.pop_frame(); }

  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  SimThread& thread_;
};

}  // namespace numaprof::simrt
