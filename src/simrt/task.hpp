// Minimal coroutine task for simulated threads.
//
// A simulated thread's kernel is a C++20 coroutine returning Task. The
// discrete-event scheduler resumes it; the kernel suspends at explicit
// tick()/yield() points. Coroutines give deterministic cooperative
// interleaving on a single host core — every run of a workload replays the
// exact same event order, which the tests rely on.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace numaprof::simrt {

class Task {
 public:
  struct promise_type {
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> handle) noexcept
      : handle_(handle) {}

  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Resumes until the next suspension point (or completion). Rethrows any
  /// exception the kernel let escape — a simulated crash surfaces as a real
  /// C++ exception in the scheduler.
  void resume() {
    handle_.resume();
    if (handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable returned by SimThread::tick()/yield(): suspends (returning
/// control to the scheduler) only when `should_suspend` is true.
struct SuspendIf {
  bool should_suspend = false;
  bool await_ready() const noexcept { return !should_suspend; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

}  // namespace numaprof::simrt
