// Frame registry: interned (function, file, line) triples.
//
// Simulated programs maintain explicit call stacks of FrameIds; the
// profiler "unwinds" a thread by reading that stack — the same information
// HPCToolkit's unwinder recovers from a real stack walk (§5.1). Frames also
// represent loops and parallel regions (HPCToolkit attributes to those
// program-structure elements as well).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace numaprof::simrt {

using FrameId = std::uint32_t;

/// Reserved id meaning "no frame".
inline constexpr FrameId kInvalidFrame = 0xffffffffu;

enum class FrameKind : std::uint8_t {
  kFunction,
  kLoop,
  kParallelRegion,  // an OpenMP-style parallel region (AMG Figs. 5/7 group
                    // address-centric patterns by these)
};

/// Number of FrameKind enumerators (deserializers validate against this).
inline constexpr int kFrameKindCount = 3;

struct FrameInfo {
  std::string name;
  std::string file;
  std::uint32_t line = 0;
  FrameKind kind = FrameKind::kFunction;
};

class FrameRegistry {
 public:
  /// Interns a frame; identical (name,file,line,kind) yields the same id.
  FrameId intern(std::string_view name, std::string_view file = "",
                 std::uint32_t line = 0,
                 FrameKind kind = FrameKind::kFunction);

  const FrameInfo& info(FrameId id) const { return frames_.at(id); }
  std::size_t size() const noexcept { return frames_.size(); }

  /// "name" or "name (file:line)" for display.
  std::string describe(FrameId id) const;

 private:
  std::vector<FrameInfo> frames_;
  std::unordered_map<std::string, FrameId> index_;  // serialized key
};

}  // namespace numaprof::simrt
