// Events the machine publishes to observers (PMUs, the profiler's
// allocation wrappers, and the first-touch trap handler).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "numasim/types.hpp"
#include "simos/heap.hpp"
#include "simos/page_policy.hpp"
#include "simos/types.hpp"
#include "simrt/frame.hpp"

namespace numaprof::simrt {

using ThreadId = std::uint32_t;

/// One resolved memory access — the raw material of address sampling (§3):
/// effective address, "instruction pointer" (synthetic op index + leaf
/// frame), latency, and data source. Spans are valid only for the duration
/// of the callback.
struct AccessEvent {
  ThreadId tid = 0;
  numasim::CoreId core = 0;
  numasim::DomainId thread_domain = 0;  // domain executing the access
  numasim::DomainId home_domain = 0;    // domain owning the page
  simos::VAddr addr = 0;
  std::uint32_t size = 8;
  bool is_write = false;
  numasim::Cycles latency = 0;
  numasim::DataSource source = numasim::DataSource::kL1;
  bool l3_miss = false;
  numasim::Cycles time = 0;       // thread virtual time at completion
  std::uint64_t op_index = 0;     // thread-local retired-op number ("IP")
  FrameId leaf_frame = kInvalidFrame;
  std::span<const FrameId> stack;  // full call path, root..leaf
};

/// A heap allocation performed through the simulated malloc wrapper.
struct AllocEvent {
  ThreadId tid = 0;
  simos::HeapBlock block;
  std::string name;  // source-level variable name, may be empty
  simos::PolicySpec policy;
  std::span<const FrameId> stack;  // allocation call path
};

struct FreeEvent {
  ThreadId tid = 0;
  simos::HeapBlock block;
};

/// Delivered when an access hits a protected page (the simulated SIGSEGV of
/// §6). The handler must unprotect the page or the access faults fatally.
struct FaultEvent {
  ThreadId tid = 0;
  numasim::CoreId core = 0;
  simos::VAddr addr = 0;
  bool is_write = false;
  std::span<const FrameId> stack;
};

class SimThread;

/// Observer interface for everything that watches execution. Default
/// implementations are no-ops so observers override only what they need.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  /// `count` non-memory instructions retired in one batch.
  virtual void on_exec(const SimThread& /*thread*/, std::uint64_t /*count*/) {}
  virtual void on_access(const SimThread& /*thread*/,
                         const AccessEvent& /*event*/) {}
  virtual void on_alloc(const AllocEvent& /*event*/) {}
  virtual void on_free(const FreeEvent& /*event*/) {}
  virtual void on_thread_start(const SimThread& /*thread*/) {}
  virtual void on_thread_finish(const SimThread& /*thread*/) {}
};

using FaultHandler = std::function<void(const FaultEvent&)>;

}  // namespace numaprof::simrt
