#include "simrt/thread.hpp"

#include "simrt/machine.hpp"

namespace numaprof::simrt {

SimThread::SimThread(Machine& machine, ThreadId tid, numasim::CoreId core)
    : machine_(machine),
      tid_(tid),
      core_(core),
      domain_(machine.topology().domain_of_core(core)) {
  stack_.reserve(16);
}

numasim::Cycles SimThread::load(simos::VAddr addr, std::uint32_t size) {
  return machine_.access_path(*this, addr, size, /*is_write=*/false);
}

numasim::Cycles SimThread::store(simos::VAddr addr, std::uint32_t size) {
  return machine_.access_path(*this, addr, size, /*is_write=*/true);
}

void SimThread::exec(std::uint64_t count) {
  if (count == 0) return;
  clock_ += count;
  instructions_ += count;
  charge_fuel(count);
  machine_.notify_exec(*this, count);
}

simos::VAddr SimThread::malloc(std::uint64_t size, std::string_view name,
                               simos::PolicySpec policy) {
  return machine_.wrapped_malloc(*this, size, name, policy);
}

void SimThread::free(simos::VAddr addr) {
  machine_.wrapped_free(*this, addr);
}

SuspendIf SimThread::tick() noexcept {
  return SuspendIf{fuel_ == 0};
}

SuspendIf SimThread::yield() noexcept {
  fuel_ = 0;
  return SuspendIf{true};
}

void SimThread::push_frame(FrameId frame) { stack_.push_back(frame); }

void SimThread::pop_frame() noexcept {
  if (!stack_.empty()) stack_.pop_back();
}

ScopedFrame::ScopedFrame(SimThread& thread, std::string_view name,
                         std::string_view file, std::uint32_t line,
                         FrameKind kind)
    : thread_(thread) {
  thread_.push_frame(thread_.machine().frames().intern(name, file, line, kind));
}

}  // namespace numaprof::simrt
