// OpenMP-style worksharing over simulated threads.
//
// §2 observes that the right data distribution depends on the iteration
// schedule: with a FIXED thread<->data binding (static scheduling),
// co-locating each thread's block wins; "in cases where there is not a
// fixed binding between threads and data" (dynamic scheduling), block-wise
// placement cannot help and interleaving to balance requests may be the
// best available. This header provides the three schedules so workloads
// and ablations can exercise both regimes.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "simrt/machine.hpp"

namespace numaprof::simrt {

enum class Schedule : std::uint8_t {
  kStatic,   // contiguous block per thread (OpenMP schedule(static))
  kCyclic,   // iteration i -> thread i % T (schedule(static,1))
  kDynamic,  // first-come chunk grabbing (schedule(dynamic,chunk))
};

std::string_view to_string(Schedule schedule) noexcept;

/// The per-iteration body: performs loads/stores/exec on the thread. It
/// must NOT suspend (the driver inserts tick() suspension points between
/// chunks of `chunk` iterations).
using ForBody = std::function<void(SimThread&, std::uint64_t iteration)>;

/// Runs `body` for every iteration in [0, total) across `count` freshly
/// spawned threads under the given schedule, then joins. `chunk` is the
/// dynamic-grab size (and the suspension granularity for all schedules).
void parallel_for(Machine& machine, std::uint32_t count,
                  std::string_view region, std::vector<FrameId> base_stack,
                  std::uint64_t total, Schedule schedule, std::uint64_t chunk,
                  ForBody body);

}  // namespace numaprof::simrt
