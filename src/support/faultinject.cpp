#include "support/faultinject.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "support/env.hpp"

namespace numaprof::support {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_spec(std::string_view key, std::string_view value,
                           const char* why) {
  throw FaultSpecError("NUMAPROF_FAULTS: bad value '" + std::string(value) +
                       "' for '" + std::string(key) + "': " + why);
}

std::uint64_t parse_uint(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    bad_spec(key, value, "expected a non-negative integer");
  }
  return out;
}

double parse_probability(std::string_view key, std::string_view value) {
  try {
    std::size_t consumed = 0;
    const double p = std::stod(std::string(value), &consumed);
    if (consumed != value.size() || p < 0.0 || p > 1.0) {
      bad_spec(key, value, "expected a probability in [0, 1]");
    }
    return p;
  } catch (const FaultSpecError&) {
    throw;
  } catch (const std::exception&) {
    bad_spec(key, value, "expected a probability in [0, 1]");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  spec = trim(spec);
  if (spec.empty()) return plan;
  plan.enabled_ = true;

  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string_view item =
        trim(spec.substr(start, semi == std::string_view::npos
                                    ? std::string_view::npos
                                    : semi - start));
    start = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw FaultSpecError("NUMAPROF_FAULTS: expected key=value, got '" +
                           std::string(item) + "'");
    }
    const std::string_view key = trim(item.substr(0, eq));
    const std::string_view value = trim(item.substr(eq + 1));

    if (key == "seed") {
      plan.seed_ = parse_uint(key, value);
    } else if (key == "init-fail") {
      std::size_t pos = 0;
      while (pos <= value.size()) {
        const std::size_t comma = value.find(',', pos);
        std::string name(trim(value.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos)));
        pos = comma == std::string_view::npos ? value.size() + 1 : comma + 1;
        if (name.empty()) continue;
        std::transform(name.begin(), name.end(), name.begin(), [](char c) {
          return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        });
        plan.init_fail_.push_back(std::move(name));
      }
      if (plan.init_fail_.empty()) {
        bad_spec(key, value, "expected mechanism names");
      }
    } else if (key == "drop") {
      plan.drop_p_ = parse_probability(key, value);
    } else if (key == "corrupt") {
      plan.corrupt_p_ = parse_probability(key, value);
    } else if (key == "spike") {
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos) {
        bad_spec(key, value, "expected P:CYCLES");
      }
      plan.spike_p_ = parse_probability(key, trim(value.substr(0, colon)));
      plan.spike_cycles_ = parse_uint(key, trim(value.substr(colon + 1)));
    } else if (key == "truncate") {
      plan.truncate_at_ = parse_uint(key, value);
    } else if (key == "bitflip") {
      plan.bitflips_ = parse_uint(key, value);
    } else if (key == "frame-drop") {
      plan.frame_drop_p_ = parse_probability(key, value);
    } else if (key == "frame-corrupt") {
      plan.frame_corrupt_p_ = parse_probability(key, value);
    } else if (key == "stall") {
      plan.stall_after_ = parse_uint(key, value);
    } else if (key == "disconnect") {
      const std::uint64_t every = parse_uint(key, value);
      if (every == 0) bad_spec(key, value, "expected a positive frame count");
      plan.disconnect_every_ = every;
    } else if (key == "disk-full") {
      plan.disk_full_bytes_ = parse_uint(key, value);
    } else {
      throw FaultSpecError("NUMAPROF_FAULTS: unknown key '" +
                           std::string(key) + "'");
    }
  }
  plan.rng_ = Rng(plan.seed_);
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const auto spec = env_string("NUMAPROF_FAULTS");
  if (!spec) return FaultPlan{};
  return parse(*spec);
}

bool FaultPlan::fails_init(std::string_view mechanism) const {
  if (!enabled_) return false;
  for (const std::string& name : init_fail_) {
    if (name == "*" || name == mechanism) {
      ++counters_.init_failures;
      return true;
    }
  }
  return false;
}

bool FaultPlan::drop_sample() {
  if (!enabled_ || drop_p_ <= 0.0) return false;
  if (!rng_.next_bool(drop_p_)) return false;
  ++counters_.dropped_samples;
  return true;
}

bool FaultPlan::corrupt_sample() {
  if (!enabled_ || corrupt_p_ <= 0.0) return false;
  if (!rng_.next_bool(corrupt_p_)) return false;
  ++counters_.corrupted_samples;
  return true;
}

std::optional<std::uint64_t> FaultPlan::latency_outlier() {
  if (!enabled_ || spike_p_ <= 0.0) return std::nullopt;
  if (!rng_.next_bool(spike_p_)) return std::nullopt;
  ++counters_.latency_spikes;
  return spike_cycles_;
}

std::uint64_t FaultPlan::scramble(std::uint64_t value) {
  return value ^ rng_.next();
}

std::string FaultPlan::mutate_stream(std::string bytes) {
  if (!enabled_) return bytes;
  if (truncate_at_ && *truncate_at_ < bytes.size()) {
    bytes.resize(*truncate_at_);
    ++counters_.stream_truncations;
  }
  if (!bytes.empty()) {
    for (std::uint64_t i = 0; i < bitflips_; ++i) {
      const std::uint64_t pos = rng_.next_below(bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^
                                     (1u << rng_.next_below(8)));
      ++counters_.stream_bitflips;
    }
  }
  return bytes;
}

bool FaultPlan::drop_frame() {
  if (!enabled_ || frame_drop_p_ <= 0.0) return false;
  if (!rng_.next_bool(frame_drop_p_)) return false;
  ++counters_.dropped_frames;
  return true;
}

bool FaultPlan::corrupt_frame() {
  if (!enabled_ || frame_corrupt_p_ <= 0.0) return false;
  if (!rng_.next_bool(frame_corrupt_p_)) return false;
  ++counters_.corrupted_frames;
  return true;
}

std::string FaultPlan::corrupt_frame_bytes(std::string bytes) {
  if (bytes.empty()) return bytes;
  const std::uint64_t pos = rng_.next_below(bytes.size());
  // Flipping a bit (never zeroing) guarantees the byte actually changes,
  // so a "corrupt" fault can never be a silent no-op.
  bytes[pos] =
      static_cast<char>(bytes[pos] ^ (1u << rng_.next_below(8)));
  return bytes;
}

bool FaultPlan::stalls_after(std::uint64_t frames_sent) {
  if (!enabled_ || !stall_after_) return false;
  if (frames_sent < *stall_after_) return false;
  if (frames_sent == *stall_after_) ++counters_.transport_stalls;
  return true;
}

bool FaultPlan::disconnects_after(std::uint64_t frames_sent) {
  if (!enabled_ || !disconnect_every_) return false;
  if (frames_sent == 0 || frames_sent % *disconnect_every_ != 0) {
    return false;
  }
  ++counters_.disconnects;
  return true;
}

bool FaultPlan::wal_write_fails(std::uint64_t existing, std::uint64_t bytes) {
  if (!enabled_ || !disk_full_bytes_) return false;
  if (existing + bytes <= *disk_full_bytes_) return false;
  ++counters_.wal_full_rejections;
  return true;
}

std::string FaultPlan::describe() const {
  if (!enabled_) return "no faults";
  std::ostringstream os;
  os << "seed=" << seed_;
  if (!init_fail_.empty()) {
    os << " init-fail=";
    for (std::size_t i = 0; i < init_fail_.size(); ++i) {
      os << (i ? "," : "") << init_fail_[i];
    }
  }
  if (drop_p_ > 0.0) os << " drop=" << drop_p_;
  if (corrupt_p_ > 0.0) os << " corrupt=" << corrupt_p_;
  if (spike_p_ > 0.0) os << " spike=" << spike_p_ << ":" << spike_cycles_;
  if (truncate_at_) os << " truncate=" << *truncate_at_;
  if (bitflips_ > 0) os << " bitflip=" << bitflips_;
  if (frame_drop_p_ > 0.0) os << " frame-drop=" << frame_drop_p_;
  if (frame_corrupt_p_ > 0.0) os << " frame-corrupt=" << frame_corrupt_p_;
  if (stall_after_) os << " stall=" << *stall_after_;
  if (disconnect_every_) os << " disconnect=" << *disconnect_every_;
  if (disk_full_bytes_) os << " disk-full=" << *disk_full_bytes_;
  return os.str();
}

std::string FaultPlan::context_suffix() const {
  if (!enabled_) return {};
  return " [faults: " + describe() + "]";
}

FaultPlan& global_fault_plan() {
  static FaultPlan plan = FaultPlan::from_env();
  return plan;
}

}  // namespace numaprof::support
