// FNV-1a 64-bit: the repository's content-hash primitive. Deliberately
// boring — stable across platforms and runs, no seeding — because its
// outputs are persisted (numalint's incremental cache keys entries by
// fnv1a64 of path + contents) and must stay comparable between builds.
#pragma once

#include <cstdint>
#include <string_view>

namespace numaprof::support {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace numaprof::support
