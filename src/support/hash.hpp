// Content-hash and checksum primitives. Deliberately boring — stable
// across platforms and runs, no seeding — because their outputs are
// persisted (numalint's incremental cache keys entries by fnv1a64 of
// path + contents; profile and frame checksums are written to disk) and
// must stay comparable between builds.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace numaprof::support {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

namespace detail {
// Slicing-by-8 table set: kCrc32Tables[0] is the classic byte-at-a-time
// table; table k advances a byte's contribution k positions further into
// the message, so eight lookups retire eight input bytes per iteration.
constexpr std::array<std::array<std::uint32_t, 256>, 8>
make_crc32_tables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t k = 1; k < 8; ++k) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}
inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    make_crc32_tables();
}  // namespace detail

/// CRC32 (IEEE 802.3, the zlib polynomial), slicing-by-8 table-driven —
/// the binary profile format checksums whole mmapped sections, so the
/// classic one-byte-per-lookup loop is the load bottleneck. `seed` chains
/// incremental computations; pass the previous return value. Shared by
/// the ingest frame transport and the binary profile format so both
/// checksum families stay interoperable.
constexpr std::uint32_t crc32(std::string_view bytes,
                              std::uint32_t seed = 0) noexcept {
  const auto& t = detail::kCrc32Tables;
  const auto u8 = [&bytes](std::size_t at) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at]));
  };
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    const std::uint32_t lo = c ^ (u8(i) | (u8(i + 1) << 8) |
                                  (u8(i + 2) << 16) | (u8(i + 3) << 24));
    const std::uint32_t hi = u8(i + 4) | (u8(i + 5) << 8) |
                             (u8(i + 6) << 16) | (u8(i + 7) << 24);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
  }
  for (; i < bytes.size(); ++i) {
    c = t[0][(c ^ static_cast<unsigned char>(bytes[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace numaprof::support
